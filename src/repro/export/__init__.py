"""``repro.export`` — the streaming Prometheus export pipeline.

The consumer stage of the unified collector API (ROADMAP item 3,
ebpf_exporter-style): collectors aggregate in-kernel, the monitor's export
loop closes windows on a simulated-time cadence, and this package turns
them into Prometheus exposition text — counters and in-probe log2
histograms that match the source :class:`~repro.core.deltas.DeltaStats`
bit-for-bit, with OpenMetrics exemplars carrying lost-record confidence.

Turn it on by attaching an :class:`~repro.core.config.ExportConfig` to the
:class:`~repro.core.config.CollectorConfig` handed to the monitor (or to
``ExperimentSpec.export``), then read ``monitor.exporter``::

    config = CollectorConfig(mode="vm", export=ExportConfig(window_ns=50 * MSEC))
    monitor = RequestMetricsMonitor(kernel, tgid, config=config).attach()
    env.run(until=...)
    text = monitor.exporter.render()
"""

from ..core.config import ExportConfig
from .exporter import PrometheusExporter
from .metrics import MetricFamily, render_exposition
from .server import MetricsServer

__all__ = [
    "ExportConfig",
    "MetricFamily",
    "MetricsServer",
    "ParseError",
    "PrometheusExporter",
    "parse_text",
    "render_exposition",
]


def __getattr__(name):
    # Lazy so `python -m repro.export.parser` (the CI validation filter)
    # does not re-import its own module through the package and trip
    # runpy's found-in-sys.modules warning.
    if name in ("ParseError", "parse_text"):
        from . import parser

        return getattr(parser, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
