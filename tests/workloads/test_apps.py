"""Application-model tests: each architecture serves requests correctly and
emits the syscall mix the paper documents for it."""

import pytest

from repro.kernel import Kernel, MachineSpec, Sys, TraceRecorder
from repro.loadgen import OpenLoopClient
from repro.sim import MSEC, Environment, SeedSequence
from repro.workloads import (
    DispatchPoolApp,
    ServiceModel,
    ThreadedPollApp,
    TwoTierApp,
    WorkloadConfig,
    WorkloadDefinition,
    get_workload,
    register_workload,
    unregister_workload,
    workload_keys,
)
from repro.kernel.syscalls import SyscallSpec


def _kernel(cores=4):
    spec = MachineSpec(name="t", cores=cores, ctx_switch_ns=0, syscall_overhead_ns=0)
    return Kernel(Environment(), spec, SeedSequence(5), interference=False)


def _drive(kernel, app, requests=30, rate=500):
    client = OpenLoopClient(
        kernel.env,
        app.client_sockets,
        kernel.seeds.stream("test-client"),
        rate_rps=rate,
        total_requests=requests,
    )
    client.start()
    return kernel.env.run(until=client.done)


def _small_config(app_kind="poll", **overrides):
    defaults = dict(
        name="small",
        syscalls=SyscallSpec.data_caching(),
        service=ServiceModel(mean_ns=500_000, cv=0.2),
        workers=4,
        cores=4,
        connections=4,
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


class TestThreadedPollApp:
    def test_serves_all_requests(self):
        kernel = _kernel()
        app = ThreadedPollApp(kernel, _small_config()).start()
        report = _drive(kernel, app, requests=40)
        assert report.completed == 40

    def test_emits_configured_syscalls(self):
        kernel = _kernel()
        recorder = TraceRecorder(kernel.tracepoints).attach()
        app = ThreadedPollApp(kernel, _small_config()).start()
        _drive(kernel, app, requests=10)
        nrs = {r.syscall_nr for r in recorder.records if r.tgid == app.tgid}
        # Data Caching profile: read + sendmsg + epoll_wait (paper §IV-A).
        assert Sys.READ in nrs
        assert Sys.SENDMSG in nrs
        assert Sys.EPOLL_WAIT in nrs
        assert Sys.SELECT not in nrs
        # Setup phase happened (Fig. 1(b)).
        assert Sys.SOCKET in nrs
        assert Sys.ACCEPT in nrs

    def test_select_variant(self):
        kernel = _kernel()
        recorder = TraceRecorder(kernel.tracepoints).attach()
        config = _small_config(syscalls=SyscallSpec.tailbench())
        app = ThreadedPollApp(kernel, config).start()
        _drive(kernel, app, requests=10)
        nrs = {r.syscall_nr for r in recorder.records if r.tgid == app.tgid}
        assert Sys.SELECT in nrs
        assert Sys.RECVFROM in nrs
        assert Sys.SENDTO in nrs
        assert Sys.EPOLL_WAIT not in nrs

    def test_chunked_responses(self):
        kernel = _kernel()
        recorder = TraceRecorder(kernel.tracepoints).attach()
        config = _small_config(sends_per_request=(2, 2))
        app = ThreadedPollApp(kernel, config).start()
        report = _drive(kernel, app, requests=10)
        assert report.completed == 10  # tag rides the final chunk
        sends = [r for r in recorder.records
                 if r.tgid == app.tgid and r.syscall_nr == Sys.SENDMSG]
        assert len(sends) == 20

    def test_double_start_rejected(self):
        kernel = _kernel()
        app = ThreadedPollApp(kernel, _small_config()).start()
        with pytest.raises(RuntimeError):
            app.start()

    def test_io_uring_variant_serves_without_syscalls(self):
        """§V-C: io_uring bypasses the syscall layer; tracing sees nothing."""
        kernel = _kernel()
        recorder = TraceRecorder(kernel.tracepoints).attach()
        config = _small_config(io_uring=True)
        app = ThreadedPollApp(kernel, config).start()
        report = _drive(kernel, app, requests=20)
        assert report.completed == 20  # service still works...
        request_nrs = {
            r.syscall_nr for r in recorder.records if r.tgid == app.tgid
        }
        # ...but no recv/send/poll syscalls were observable.
        assert Sys.READ not in request_nrs
        assert Sys.SENDMSG not in request_nrs
        assert Sys.EPOLL_WAIT not in request_nrs


class TestDispatchPoolApp:
    def test_serves_all_requests(self):
        kernel = _kernel()
        config = _small_config(syscalls=SyscallSpec.triton_grpc())
        app = DispatchPoolApp(kernel, config).start()
        report = _drive(kernel, app, requests=30)
        assert report.completed == 30

    def test_grpc_syscall_mix_with_futex_dispatch(self):
        kernel = _kernel()
        recorder = TraceRecorder(kernel.tracepoints).attach()
        config = _small_config(syscalls=SyscallSpec.triton_grpc())
        app = DispatchPoolApp(kernel, config).start()
        _drive(kernel, app, requests=15, rate=200)
        nrs = {r.syscall_nr for r in recorder.records if r.tgid == app.tgid}
        assert Sys.RECVMSG in nrs
        assert Sys.SENDMSG in nrs
        assert Sys.FUTEX in nrs  # executors block on the dispatch queue

    def test_network_threads_receive_executors_send(self):
        kernel = _kernel()
        recorder = TraceRecorder(kernel.tracepoints).attach()
        config = _small_config(syscalls=SyscallSpec.triton_http())
        app = DispatchPoolApp(kernel, config).start()
        _drive(kernel, app, requests=20, rate=300)
        recv_tids = {r.tid for r in recorder.records
                     if r.tgid == app.tgid and r.syscall_nr == Sys.RECVFROM}
        send_tids = {r.tid for r in recorder.records
                     if r.tgid == app.tgid and r.syscall_nr == Sys.SENDTO}
        assert recv_tids.isdisjoint(send_tids)  # dispatch across threads
        assert len(recv_tids) <= DispatchPoolApp.NETWORK_THREADS


class TestTwoTierApp:
    def _config(self, **overrides):
        defaults = dict(
            name="ws",
            syscalls=SyscallSpec.web_search(),
            service=ServiceModel(mean_ns=1 * MSEC, cv=0.3),
            workers=4,
            cores=4,
            connections=4,
            frontend_threads=2,
            inflight_limit=8,
        )
        defaults.update(overrides)
        return WorkloadConfig(**defaults)

    def test_serves_all_requests(self):
        kernel = _kernel()
        app = TwoTierApp(kernel, self._config()).start()
        report = _drive(kernel, app, requests=40, rate=400)
        assert report.completed == 40

    def test_two_processes(self):
        kernel = _kernel()
        app = TwoTierApp(kernel, self._config()).start()
        assert app.backend_process.pid != app.process.pid
        assert app.tgid == app.process.pid  # monitoring targets the front-end

    def test_read_write_syscalls_in_both_tiers(self):
        kernel = _kernel()
        recorder = TraceRecorder(kernel.tracepoints).attach()
        app = TwoTierApp(kernel, self._config()).start()
        _drive(kernel, app, requests=20, rate=300)
        frontend = {r.syscall_nr for r in recorder.records if r.tgid == app.tgid}
        backend = {r.syscall_nr for r in recorder.records
                   if r.tgid == app.backend_process.pid}
        assert {Sys.READ, Sys.WRITE, Sys.EPOLL_WAIT} <= frontend
        assert {Sys.READ, Sys.WRITE, Sys.EPOLL_WAIT} <= backend

    def test_log_writes_add_noise(self):
        kernel = _kernel()
        recorder = TraceRecorder(kernel.tracepoints).attach()
        app = TwoTierApp(kernel, self._config(log_write_prob=1.0)).start()
        # A run factor in [0.2, 2.2] scales the probability; force >= 1.
        app._run_log_factor = 1.0
        _drive(kernel, app, requests=20, rate=300)
        writes = [r for r in recorder.records
                  if r.tgid == app.tgid and r.syscall_nr == Sys.WRITE]
        # 20 forwards + 20 responses + 20 log writes.
        assert len(writes) == 60

    def test_backpressure_keeps_completions_correct(self):
        kernel = _kernel()
        config = self._config(inflight_limit=2, service=ServiceModel(mean_ns=3 * MSEC))
        app = TwoTierApp(kernel, config).start()
        report = _drive(kernel, app, requests=60, rate=2000)  # overload
        assert report.completed == 60


class TestRegistry:
    def test_nine_workloads(self):
        assert len(workload_keys()) == 9

    def test_paper_failure_values(self):
        # §IV-A's reported failure RPS.
        expected = {
            "img-dnn": 1950, "xapian": 970, "silo": 2100, "specjbb": 3700,
            "moses": 900, "data-caching": 62000, "web-search": 420,
            "triton-http": 21, "triton-grpc": 21,
        }
        for key, value in expected.items():
            assert get_workload(key).paper_fail_rps == value

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("nginx")

    def test_suites(self):
        suites = {get_workload(k).suite for k in workload_keys()}
        assert suites == {"tailbench", "cloudsuite", "triton"}

    def test_capacity_calibration(self):
        """cores / mean_service must approximate the paper failure RPS."""
        for key in workload_keys():
            d = get_workload(key)
            capacity = d.config.cores / (d.config.service.mean_ns / 1e9)
            assert capacity == pytest.approx(d.paper_fail_rps, rel=0.25), key

    def test_register_and_unregister_custom_workload(self):
        base = get_workload("silo")
        custom = WorkloadDefinition(
            key="silo-custom",
            label="Silo (custom)",
            suite="tailbench",
            app_class=base.app_class,
            config=base.config.with_overrides(name="silo-custom"),
        )
        try:
            register_workload(custom)
            assert get_workload("silo-custom") is custom
            assert "silo-custom" in workload_keys()
            # Re-registering the identical definition is a no-op.
            assert register_workload(custom) is custom
            # A conflicting definition under the same key is rejected...
            clashing = WorkloadDefinition(
                key="silo-custom",
                label="different",
                suite="tailbench",
                app_class=base.app_class,
                config=base.config,
            )
            with pytest.raises(ValueError, match="already registered"):
                register_workload(clashing)
            # ...unless replacement is explicit.
            register_workload(clashing, replace=True)
            assert get_workload("silo-custom") is clashing
        finally:
            assert unregister_workload("silo-custom")
        assert len(workload_keys()) == 9
        assert not unregister_workload("silo-custom")

    def test_each_workload_serves_requests(self):
        """Every registry entry builds and completes a small burst."""
        for key in workload_keys():
            d = get_workload(key)
            kernel = Kernel(
                Environment(),
                MachineSpec(name="t", cores=d.config.cores),
                SeedSequence(7),
                interference=False,
            )
            app = d.build(kernel)
            report = _drive(kernel, app, requests=10,
                            rate=max(2.0, d.paper_fail_rps * 0.3))
            assert report.completed == 10, key
