"""Arrival processes for open-loop load generation.

TailBench, CloudSuite and Triton's ``perf_analyzer`` all drive servers
open-loop: requests arrive on a schedule independent of completions (the
configuration that actually exposes saturation).  Poisson arrivals are the
default, as in TailBench's integrated load generator.
"""

from __future__ import annotations

from typing import Iterator

from ..sim.rng import Stream
from ..sim.timebase import SEC

__all__ = ["poisson_interarrivals", "uniform_interarrivals"]


def poisson_interarrivals(stream: Stream, rate_rps: float) -> Iterator[int]:
    """Exponential inter-arrival gaps (ns) for a Poisson process."""
    if rate_rps <= 0:
        raise ValueError(f"rate must be positive, got {rate_rps}")
    mean_gap = SEC / rate_rps
    while True:
        yield max(1, int(round(stream.exponential(mean_gap))))


def uniform_interarrivals(stream: Stream, rate_rps: float, spread: float = 0.0) -> Iterator[int]:
    """Fixed-rate gaps with optional +/- fractional jitter."""
    if rate_rps <= 0:
        raise ValueError(f"rate must be positive, got {rate_rps}")
    if not 0.0 <= spread < 1.0:
        raise ValueError(f"spread must be in [0, 1), got {spread}")
    mean_gap = SEC / rate_rps
    while True:
        if spread:
            gap = stream.uniform(mean_gap * (1 - spread), mean_gap * (1 + spread))
        else:
            gap = mean_gap
        yield max(1, int(round(gap)))
