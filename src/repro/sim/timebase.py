"""Time units for the simulator.

The whole stack keeps time in **integer nanoseconds**, matching the unit of
``bpf_ktime_get_ns`` so that timestamps observed by simulated eBPF programs
are bit-identical to the kernel's notion of time.  Helpers here convert
between ns and human units and format durations for reports.
"""

from __future__ import annotations

NSEC = 1
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000

_UNITS = ((SEC, "s"), (MSEC, "ms"), (USEC, "us"), (NSEC, "ns"))


def ns(value: float, unit: int = NSEC) -> int:
    """Convert ``value`` expressed in ``unit`` into integer nanoseconds.

    >>> ns(1.5, MSEC)
    1500000
    """
    return int(round(value * unit))


def seconds(duration_ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return duration_ns / SEC


def per_second(count: int, duration_ns: int) -> float:
    """Rate of ``count`` events over ``duration_ns`` nanoseconds, in Hz."""
    if duration_ns <= 0:
        return 0.0
    return count * SEC / duration_ns


def fmt_ns(duration_ns: int) -> str:
    """Human-readable rendering of a duration in ns.

    >>> fmt_ns(1500000)
    '1.500ms'
    """
    magnitude = abs(duration_ns)
    for unit, suffix in _UNITS:
        if magnitude >= unit:
            return f"{duration_ns / unit:.3f}{suffix}"
    return f"{duration_ns}ns"
