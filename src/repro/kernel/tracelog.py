"""Plain-Python syscall trace recording.

A :class:`TraceRecorder` attaches to both ``raw_syscalls`` tracepoints and
reconstructs completed syscall records (enter + exit paired per task, the
same way Listing 1's BPF hash map pairs them).  It is the reference
implementation used by tests, by Fig. 1's timeline study, and by the
"native" fast path of the collectors in :mod:`repro.core.collectors`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .syscalls import SYSCALL_NAMES, SyscallFamily, family_of
from .tracepoints import SysEnterCtx, SysExitCtx, TracepointBus

__all__ = ["SyscallRecord", "TraceRecorder"]


@dataclass(frozen=True)
class SyscallRecord:
    """One completed syscall invocation."""

    pid_tgid: int
    syscall_nr: int
    enter_ns: int
    exit_ns: int
    ret: int

    @property
    def duration_ns(self) -> int:
        return self.exit_ns - self.enter_ns

    @property
    def tgid(self) -> int:
        return self.pid_tgid >> 32

    @property
    def tid(self) -> int:
        return self.pid_tgid & 0xFFFFFFFF

    @property
    def name(self) -> str:
        return SYSCALL_NAMES.get(self.syscall_nr, f"sys_{self.syscall_nr}")

    @property
    def family(self) -> SyscallFamily:
        return family_of(self.syscall_nr)

    def __repr__(self) -> str:
        return (
            f"<SyscallRecord {self.name} tid={self.tid} "
            f"[{self.enter_ns}..{self.exit_ns}] ret={self.ret}>"
        )


class TraceRecorder:
    """Records completed syscalls, optionally filtered by tgid.

    ``probe_cost_ns`` lets tests model per-firing probe cost (the eBPF path
    charges real interpreted-instruction costs instead).
    """

    def __init__(
        self,
        bus: TracepointBus,
        tgid: Optional[int] = None,
        probe_cost_ns: int = 0,
    ) -> None:
        self._bus = bus
        self._tgid = tgid
        self._probe_cost_ns = probe_cost_ns
        self.records: List[SyscallRecord] = []
        self._open: Dict[Tuple[int, int], int] = {}
        self._attached = False

    # -- lifecycle ---------------------------------------------------------
    def attach(self) -> "TraceRecorder":
        if self._attached:
            raise RuntimeError("recorder already attached")
        self._bus.sys_enter.attach(self._on_enter)
        self._bus.sys_exit.attach(self._on_exit)
        self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self._bus.sys_enter.detach(self._on_enter)
            self._bus.sys_exit.detach(self._on_exit)
            self._attached = False

    def __enter__(self) -> "TraceRecorder":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- probes ------------------------------------------------------------
    def _wanted(self, pid_tgid: int) -> bool:
        return self._tgid is None or (pid_tgid >> 32) == self._tgid

    def _on_enter(self, ctx: SysEnterCtx) -> int:
        if self._wanted(ctx.pid_tgid):
            self._open[(ctx.pid_tgid, ctx.syscall_nr)] = ctx.ktime_ns
        return self._probe_cost_ns

    def _on_exit(self, ctx: SysExitCtx) -> int:
        if self._wanted(ctx.pid_tgid):
            enter_ns = self._open.pop((ctx.pid_tgid, ctx.syscall_nr), None)
            if enter_ns is not None:
                self.records.append(
                    SyscallRecord(
                        pid_tgid=ctx.pid_tgid,
                        syscall_nr=ctx.syscall_nr,
                        enter_ns=enter_ns,
                        exit_ns=ctx.ktime_ns,
                        ret=ctx.ret,
                    )
                )
        return self._probe_cost_ns

    # -- queries ---------------------------------------------------------
    def by_syscall(self, nr: int) -> List[SyscallRecord]:
        return [r for r in self.records if r.syscall_nr == nr]

    def by_family(self, family: SyscallFamily) -> List[SyscallRecord]:
        return [r for r in self.records if r.family == family]

    def enter_times(self, nrs) -> List[int]:
        """Sorted sys_enter timestamps for the given syscall numbers."""
        wanted = set(nrs)
        times = [r.enter_ns for r in self.records if r.syscall_nr in wanted]
        times.sort()
        return times

    def __len__(self) -> int:
        return len(self.records)
