"""Machine profiles: the simulated analogues of the paper's Table I.

The paper runs on two servers (AMD EPYC 7302, Intel Xeon E5-2620) purely to
show the methodology generalizes across hardware.  A profile here carries
the parameters that shape syscall timing: core count, scheduler quantum,
context-switch and syscall overheads, and the contention (interference)
model coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..sim.timebase import MSEC, USEC

__all__ = ["MachineSpec", "MACHINES", "AMD_EPYC_7302", "INTEL_XEON_E5_2620"]


@dataclass(frozen=True)
class InterferenceSpec:
    """Coefficients of the contention-convoy substrate (see DESIGN.md §2).

    Under run-queue pressure the model opens **global convoy windows** —
    stop-the-world-style stalls (lock convoys, GC pauses, allocator storms)
    during which every core acquisition waits for the window to close.
    A convoy pauses the *whole* service pipeline, which is what creates the
    large merged-stream inter-send gaps behind the paper's variance signal
    (§IV-C-1); per-core stalls would be absorbed by the other cores.

    Windows obey a duty-cycle cap, so the throughput cost of contention is
    bounded regardless of how often cores are acquired.
    """

    #: Probability (per eligible core acquisition, at occupancy 1.0) that a
    #: new convoy window opens once the cooldown has passed.
    prob_per_occupancy: float = 0.05
    #: Upper bound on that probability.
    max_prob: float = 0.25
    #: Mean convoy duration at occupancy 1.0 (exponentially distributed).
    stall_mean_ns: int = 25 * MSEC
    #: Occupancy below which convoys never form (idle machines don't stall).
    min_occupancy: float = 0.15
    #: Convoy severity saturates past this occupancy (bounded badness).
    max_occupancy: float = 2.0
    #: Max fraction of wall time inside convoy windows (cooldown enforces
    #: window_duration * (1/duty - 1) quiet time after each window).
    duty_cycle: float = 0.12

    def __post_init__(self) -> None:
        if not 0.0 <= self.prob_per_occupancy <= 1.0:
            raise ValueError("prob_per_occupancy must be in [0, 1]")
        if not 0.0 <= self.max_prob <= 1.0:
            raise ValueError("max_prob must be in [0, 1]")
        if self.stall_mean_ns < 0:
            raise ValueError("stall_mean_ns must be non-negative")
        if not 0.0 < self.duty_cycle < 1.0:
            raise ValueError("duty_cycle must be in (0, 1)")


@dataclass(frozen=True)
class MachineSpec:
    """A server profile the kernel boots on."""

    name: str
    #: Schedulable CPUs (hardware threads).
    cores: int
    #: Round-robin scheduler quantum.
    quantum_ns: int = 1 * MSEC
    #: Cost charged on every core acquisition (context switch / migration).
    ctx_switch_ns: int = 2 * USEC
    #: Fixed kernel-entry cost charged to every syscall.
    syscall_overhead_ns: int = 600
    #: Contention substrate coefficients.
    interference: InterferenceSpec = field(default_factory=InterferenceSpec)

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("a machine needs at least one core")
        if self.quantum_ns <= 0:
            raise ValueError("quantum must be positive")
        if self.ctx_switch_ns < 0 or self.syscall_overhead_ns < 0:
            raise ValueError("overheads must be non-negative")

    def with_cores(self, cores: int) -> "MachineSpec":
        """Profile variant with a different core count (used by workloads
        that pin their server to a subset of the machine)."""
        return replace(self, cores=cores)


#: Analogue of the paper's AMD EPYC 7302 host (2 sockets x 16 cores x 2 SMT).
AMD_EPYC_7302 = MachineSpec(name="amd-epyc-7302", cores=64)

#: Analogue of the paper's Intel Xeon E5-2620 host (2 sockets x 8 cores).
INTEL_XEON_E5_2620 = MachineSpec(
    name="intel-xeon-e5-2620",
    cores=16,
    ctx_switch_ns=3 * USEC,
    syscall_overhead_ns=800,
)

MACHINES: Dict[str, MachineSpec] = {
    spec.name: spec for spec in (AMD_EPYC_7302, INTEL_XEON_E5_2620)
}
