"""End-to-end latency accounting (the client-side ground truth).

The paper's benchmarks report RPS and tail-latency percentiles from the
client; this tracker is our equivalent.  Percentiles are exact (all samples
kept) — experiment scales here are small enough that reservoir sampling
would only add noise to figures whose whole point is tail behaviour.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

__all__ = ["LatencyTracker", "percentile"]


def percentile(samples: Sequence[float], p: float, *, presorted: bool = False) -> float:
    """Exact percentile with linear interpolation (numpy 'linear' method).

    ``presorted=True`` skips the O(n log n) sort for callers that already
    hold an ascending sequence (e.g. a cached sorted copy queried for
    several percentiles).
    """
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    # NaN is not totally ordered, so sorting a sample set containing one
    # produces an arbitrary permutation and the interpolation below returns
    # order-dependent garbage (and +/-inf breaks it outright).  Refuse.
    if any(not math.isfinite(sample) for sample in samples):
        raise ValueError("samples must be finite (got NaN or infinity)")
    ordered = samples if presorted else sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (p / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high or ordered[low] == ordered[high]:
        # The equality case dodges float rounding (a*(1-f)+a*f can land a
        # few ULPs below a, breaking percentile monotonicity).
        return float(ordered[low])
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class LatencyTracker:
    """Collects per-request latencies (ns) and summarizes them."""

    def __init__(self) -> None:
        self._samples: List[int] = []
        self._sorted: Optional[List[int]] = None

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        self._samples.append(latency_ns)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._samples)

    def mean_ns(self) -> float:
        return sum(self._samples) / len(self._samples) if self._samples else 0.0

    def percentile_ns(self, p: float) -> float:
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return percentile(self._sorted, p, presorted=True)

    def p50_ns(self) -> float:
        return self.percentile_ns(50.0)

    def p99_ns(self) -> float:
        return self.percentile_ns(99.0)

    def max_ns(self) -> int:
        return max(self._samples) if self._samples else 0

    def reset(self) -> None:
        self._samples.clear()
        self._sorted = None

    def samples(self) -> List[int]:
        """A copy of the raw samples (for external analysis)."""
        return list(self._samples)

    def __repr__(self) -> str:
        if not self._samples:
            return "<LatencyTracker empty>"
        return (
            f"<LatencyTracker n={self.count} mean={self.mean_ns() / 1e6:.2f}ms "
            f"p99={self.p99_ns() / 1e6:.2f}ms>"
        )
