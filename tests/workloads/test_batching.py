"""Tests for Triton-style dynamic batching in DispatchPoolApp."""

import pytest

from repro.kernel import Kernel, MachineSpec, TraceRecorder
from repro.kernel.syscalls import Sys, SyscallSpec
from repro.loadgen import OpenLoopClient
from repro.sim import MSEC, Environment, SeedSequence
from repro.workloads import DispatchPoolApp, ServiceModel, WorkloadConfig


def _config(**overrides):
    defaults = dict(
        name="batchy",
        syscalls=SyscallSpec.triton_grpc(),
        service=ServiceModel(mean_ns=10 * MSEC, cv=0.0, distribution="deterministic"),
        workers=1,
        cores=1,
        connections=4,
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


def _run(config, rate, requests, seed=3):
    env = Environment()
    kernel = Kernel(env, MachineSpec(name="t", cores=config.cores),
                    SeedSequence(seed), interference=False)
    app = DispatchPoolApp(kernel, config).start()
    client = OpenLoopClient(
        env, app.client_sockets, kernel.seeds.stream("client"),
        rate_rps=rate, total_requests=requests, arrival="uniform",
    )
    client.start()
    report = env.run(until=client.done)
    return report


def test_batching_config_validation():
    with pytest.raises(ValueError):
        _config(batch_max=0)
    with pytest.raises(ValueError):
        _config(batch_window_ns=-1)
    with pytest.raises(ValueError):
        _config(batch_marginal_cost=0.0)


def test_batching_off_serves_sequentially():
    # 1 worker, 10ms deterministic service: 20 requests = 200ms+ of work.
    report = _run(_config(), rate=500, requests=20)
    assert report.completed == 20
    assert report.achieved_rps <= 115  # ~1/10ms ceiling (+ edge effects)


def test_batching_raises_throughput_ceiling():
    """Batch of 4 at 0.35 marginal cost: ceiling ~4/(1+3*0.35) = 1.95x."""
    plain = _run(_config(), rate=500, requests=40)
    batched = _run(
        _config(batch_max=4, batch_window_ns=5 * MSEC), rate=500, requests=40
    )
    assert batched.achieved_rps > 1.5 * plain.achieved_rps


def test_batching_window_delays_lone_requests():
    """At trickle load the batcher waits out its window before computing."""
    plain = _run(_config(), rate=20, requests=10)
    batched = _run(
        _config(batch_max=4, batch_window_ns=8 * MSEC), rate=20, requests=10
    )
    # Each lone request pays (up to) the batching window extra.
    assert batched.latency.p50_ns() > plain.latency.p50_ns() + 6 * MSEC


def test_batched_responses_still_tagged_correctly():
    report = _run(
        _config(batch_max=8, batch_window_ns=5 * MSEC), rate=1000, requests=30
    )
    assert report.completed == 30  # every response matched its request


def test_batch_send_syscalls_cluster():
    """A drained batch emits its sendmsg calls back-to-back — the send
    clustering that inflates delta variance at saturation."""
    config = _config(batch_max=4, batch_window_ns=5 * MSEC)
    env = Environment()
    kernel = Kernel(env, MachineSpec(name="t", cores=1), SeedSequence(7),
                    interference=False)
    recorder = TraceRecorder(kernel.tracepoints).attach()
    app = DispatchPoolApp(kernel, config).start()
    client = OpenLoopClient(
        env, app.client_sockets, kernel.seeds.stream("client"),
        rate_rps=2000, total_requests=12, arrival="uniform",
    )
    client.start()
    env.run(until=client.done)
    sends = sorted(r.enter_ns for r in recorder.records
                   if r.syscall_nr == Sys.SENDMSG)
    assert len(sends) == 12
    gaps = [b - a for a, b in zip(sends, sends[1:])]
    # Mostly tiny intra-batch gaps with a few large inter-batch ones.
    small = sum(1 for g in gaps if g < 1 * MSEC)
    large = sum(1 for g in gaps if g > 5 * MSEC)
    assert small >= 6
    assert large >= 2
