"""A bcc-like frontend: load maps + programs, attach to tracepoints.

Mirrors the pieces of BCC's Python API the paper's methodology needs::

    b = BPF(kernel, maps={"start": HashMap(8, 8)}, programs=[enter, exit_])
    b.attach_tracepoint("raw_syscalls:sys_enter", "on_enter")
    ...
    b["start"].items_int()
    b.detach_all()

Attachment converts the simulated tracepoint context into the real record
byte layout, builds a per-invocation helper runtime (clock = the kernel's
``ktime``, current task = the syscall-ing thread), and interprets the
program in the VM.  With ``charge_cost=True`` the interpreter's cost model
is charged to the traced syscall — the mechanism behind the overhead study.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..kernel.kernel import Kernel
from ..kernel.tracepoints import SysEnterCtx, SysExitCtx, Tracepoint
from .compiled import DEFAULT_VM_TIER, make_vm
from .context import ProgType, pack_sys_enter, pack_sys_exit
from .errors import BpfError
from .helpers import HelperRuntime
from .maps import BpfMap, PerfEventArray, RingBuf
from .program import Program
from .vm import Vm

__all__ = ["BPF"]

MapLike = Union[BpfMap, RingBuf, PerfEventArray]


class BPF:
    """Loads programs against a kernel and manages attachments.

    Programs run on the highest VM tier by default (the compiled tier,
    falling back per program where its code generator bails).  Pass
    ``vm_tier`` (``"reference"``/``"fast"``/``"compiled"``) to pin a
    tier, or ``vm`` for a pre-built interpreter instance; all tiers are
    bit-for-bit identical.  ``cpu_of`` maps a tracepoint context to the
    CPU the probe observes itself on (``bpf_get_smp_processor_id`` and
    the per-CPU ``perf_event_output`` buffer index); the default pins
    everything to CPU 0.

    ``config`` accepts anything with ``charge_cost``/``vm_tier``
    attributes — in practice a :class:`repro.core.config.CollectorConfig`
    (duck-typed to keep this layer free of core imports) — and supplies
    defaults for those two knobs; explicit keyword arguments win.
    """

    def __init__(
        self,
        kernel: Kernel,
        maps: Optional[Mapping[str, MapLike]] = None,
        programs: Sequence[Program] = (),
        charge_cost: Optional[bool] = None,
        vm: Optional[Vm] = None,
        cpu_of: Optional[Callable[[object], int]] = None,
        vm_tier: Optional[str] = None,
        config: Optional[object] = None,
    ) -> None:
        if config is not None:
            if charge_cost is None:
                charge_cost = getattr(config, "charge_cost", None)
            if vm_tier is None and vm is None:
                vm_tier = getattr(config, "vm_tier", None)
        if vm is not None and vm_tier is not None:
            raise BpfError("pass either vm or vm_tier, not both")
        self.kernel = kernel
        self.maps: Dict[str, MapLike] = dict(maps or {})
        for name, bpf_map in self.maps.items():
            if getattr(bpf_map, "name", None) in (None, "", bpf_map.map_type):
                bpf_map.name = name
        self.charge_cost = bool(charge_cost)
        #: Tier name the interpreter was built from (None for a custom vm).
        self.vm_tier = (vm_tier if vm_tier is not None
                        else None if vm is not None else DEFAULT_VM_TIER)
        self.vm = vm if vm is not None else make_vm(self.vm_tier)
        self.cpu_of = cpu_of
        self._programs: Dict[str, Program] = {}
        self._attached: List[tuple] = []
        #: Diagnostics: per-program invocation and instruction counts.
        self.invocations: Dict[str, int] = {}
        self.insns_executed: Dict[str, int] = {}
        for program in programs:
            self.load(program)

    # -- loading ---------------------------------------------------------
    def load(self, program: Program) -> Program:
        """Resolve map names, verify, and register a program."""
        if program.name in self._programs:
            raise BpfError(f"duplicate program name {program.name!r}")
        resolved = program.resolve_maps(self.maps).verify()
        self._programs[resolved.name] = resolved
        self.invocations[resolved.name] = 0
        self.insns_executed[resolved.name] = 0
        return resolved

    def __getitem__(self, map_name: str) -> MapLike:
        return self.maps[map_name]

    def translation_stats(self) -> Dict[str, int]:
        """Translation-cache counters for the VM behind this BPF object.

        Includes a ``"disk"`` sub-dict when a cross-process
        :class:`~repro.ebpf.diskcache.DiskCodeCache` backend is attached
        (see :func:`~repro.ebpf.diskcache.enable_disk_cache`), so a
        harness can check whether an attach was a memory hit, a disk
        hit, or a fresh translation.
        """
        cache = getattr(self.vm, "cache", None)
        return cache.stats() if cache is not None else {}

    @property
    def programs(self) -> Dict[str, Program]:
        return dict(self._programs)

    # -- attachment --------------------------------------------------------
    def attach_tracepoint(self, tp_name: str, prog_name: str) -> None:
        """Attach a loaded program to ``raw_syscalls:sys_enter``/``sys_exit``."""
        try:
            program = self._programs[prog_name]
        except KeyError:
            raise BpfError(f"no loaded program named {prog_name!r}") from None
        tracepoint = self.kernel.tracepoints.get(tp_name)
        expected = {
            "raw_syscalls:sys_enter": ProgType.tracepoint_sys_enter().name,
            "raw_syscalls:sys_exit": ProgType.tracepoint_sys_exit().name,
        }[tp_name]
        if program.prog_type.name != expected:
            raise BpfError(
                f"program {prog_name!r} has type {program.prog_type.name!r}, "
                f"but {tp_name} requires {expected!r}"
            )
        probe = self._make_probe(program)
        tracepoint.attach(probe)
        self._attached.append((tracepoint, probe))

    def detach_all(self) -> None:
        for tracepoint, probe in self._attached:
            tracepoint.detach(probe)
        self._attached.clear()

    def __enter__(self) -> "BPF":
        return self

    def __exit__(self, *exc) -> None:
        self.detach_all()

    # -- execution -----------------------------------------------------------
    def _make_probe(self, program: Program):
        pack = (
            pack_sys_enter
            if program.prog_type.name == ProgType.tracepoint_sys_enter().name
            else pack_sys_exit
        )
        prandom_stream = self.kernel.seeds.stream(f"bpf:{program.name}:prandom")
        # Bind the per-firing hot state into locals: the probe runs once
        # per traced syscall, millions of times per experiment.  The
        # program's translation is resolved once here (``prepare``), and
        # one HelperRuntime is reused across firings — only its per-firing
        # fields change, so allocation stays off the hot path.
        run = self.vm.prepare(program.insns)
        name = program.name
        cpu_of = self.cpu_of
        charge_cost = self.charge_cost
        invocations = self.invocations
        insns_executed = self.insns_executed
        prandom = lambda: prandom_stream.randint(0, (1 << 32) - 1)  # noqa: E731
        runtime = HelperRuntime(prandom=prandom)

        raw = getattr(run, "raw", None)
        if raw is not None:
            # Compiled-tier fast path: call the translated function
            # directly and consume the bare (r0, steps, cost) tuple —
            # no per-firing VmResult allocation.  ``pack`` always hands
            # over bytes, which is all the raw function accepts.
            fn, insn_cost_ns, scratch = raw
            if cpu_of is None:
                def probe(ctx) -> int:
                    runtime.ktime_ns = ctx.ktime_ns
                    runtime.pid_tgid = ctx.pid_tgid
                    _r0, steps, cost = fn(pack(ctx), runtime, insn_cost_ns, scratch)
                    invocations[name] += 1
                    insns_executed[name] += steps
                    return cost if charge_cost else 0
            else:
                def probe(ctx) -> int:
                    runtime.ktime_ns = ctx.ktime_ns
                    runtime.pid_tgid = ctx.pid_tgid
                    runtime.cpu_id = cpu_of(ctx)
                    _r0, steps, cost = fn(pack(ctx), runtime, insn_cost_ns, scratch)
                    invocations[name] += 1
                    insns_executed[name] += steps
                    return cost if charge_cost else 0
            return probe

        if cpu_of is None:
            def probe(ctx) -> int:
                runtime.ktime_ns = ctx.ktime_ns
                runtime.pid_tgid = ctx.pid_tgid
                result = run(pack(ctx), runtime)
                invocations[name] += 1
                insns_executed[name] += result.steps
                return result.cost_ns if charge_cost else 0
        else:
            def probe(ctx) -> int:
                runtime.ktime_ns = ctx.ktime_ns
                runtime.pid_tgid = ctx.pid_tgid
                runtime.cpu_id = cpu_of(ctx)
                result = run(pack(ctx), runtime)
                invocations[name] += 1
                insns_executed[name] += result.steps
                return result.cost_ns if charge_cost else 0

        return probe

    # -- userspace data access ----------------------------------------------
    def ring_records(self, map_name: str) -> List[bytes]:
        ring = self.maps[map_name]
        if not isinstance(ring, RingBuf):
            raise BpfError(f"{map_name!r} is not a ring buffer")
        return ring.drain()

    def perf_events(self, map_name: str) -> List[bytes]:
        perf = self.maps[map_name]
        if not isinstance(perf, PerfEventArray):
            raise BpfError(f"{map_name!r} is not a perf event array")
        return perf.poll()

    def __repr__(self) -> str:
        return (
            f"<BPF programs={sorted(self._programs)} maps={sorted(self.maps)} "
            f"attached={len(self._attached)}>"
        )
