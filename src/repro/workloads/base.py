"""Server application models.

Three threading architectures cover the paper's nine workload
configurations (§IV-A):

* :class:`ThreadedPollApp` — "straightforward request-handling threading"
  (TailBench apps with ``select``, Data Caching with ``epoll``): each worker
  thread polls its share of connections and handles requests end-to-end.
* :class:`DispatchPoolApp` — Triton's structure: "dedicated threads that
  consume requests and dispatch them across other threads for processing".
* :class:`TwoTierApp` — Web Search's structure: a front-end process
  forwarding to an index-search process over internal sockets, with bounded
  in-flight backpressure.

Every app goes through a realistic *setup phase* (``socket``/``bind``/
``listen``/``accept``/``epoll_create1``/``epoll_ctl`` syscalls — Fig. 1(b))
before entering the request-processing loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..kernel.kernel import Kernel
from ..kernel.polling import EpollInstance
from ..kernel.sockets import SocketEndpoint
from ..kernel.syscalls import Sys, SyscallSpec
from ..kernel.threads import KernelTask, KProcess
from ..net.netem import NetemConfig
from ..net.packet import Message
from ..sim.rng import Stream
from ..sim.timebase import MSEC
from .service import ServiceModel

__all__ = ["WorkloadConfig", "ServerApp", "ThreadedPollApp", "DispatchPoolApp", "TwoTierApp"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Everything an app model needs, plus calibration targets."""

    name: str
    syscalls: SyscallSpec
    service: ServiceModel
    workers: int = 8
    #: Cores the server is pinned to (the machine profile is restricted to
    #: this count, mirroring container CPU pinning in the paper's setup).
    cores: int = 8
    connections: int = 16
    request_size: int = 64
    response_size: int = 256
    #: p99 threshold defining QoS failure for this service.
    qos_latency_ns: int = 50 * MSEC
    #: The failure RPS the paper reports for this workload (ground truth
    #: for EXPERIMENTS.md comparisons).
    paper_fail_rps: float = 0.0
    #: Responses sent as 1..N chunked send syscalls (moses-style noise).
    sends_per_request: Tuple[int, int] = (1, 1)
    #: Probability of a non-request ``write`` per request (logging noise —
    #: Web Search's R² degradation).
    log_write_prob: float = 0.0
    #: Rate (per second) of bulk log flushes from a dedicated logger thread;
    #: each flush emits a burst of ``log_burst_size`` writes.  Burst counts
    #: do not average out across observation windows, which is what keeps
    #: Web Search's R² structurally low (~0.86) rather than
    #: sampling-limited.
    log_burst_rate: float = 0.0
    #: (min, max) writes per log flush burst.
    log_burst_size: Tuple[int, int] = (50, 150)
    #: Bypass the syscall layer entirely (the io_uring limitation, §V-C).
    io_uring: bool = False
    #: Scales the machine's convoy-window duration for this workload
    #: (contention timescales are app-specific: sub-ms for memcached's
    #: lock camping, tens of ms for JVM pauses).
    interference_scale: float = 1.0
    #: Dynamic batching (Triton-style): executors coalesce up to this many
    #: queued requests into one batch.  1 disables batching.
    batch_max: int = 1
    #: How long an executor waits for more requests to fill a batch.
    batch_window_ns: int = 0
    #: Marginal cost of each additional batched request relative to a solo
    #: one (GPU batching amortizes heavily; 0.35 ≈ Triton-like).
    batch_marginal_cost: float = 0.35
    #: Front-end threads (two-tier apps only).
    frontend_threads: int = 2
    #: Max in-flight requests per front-end thread before backpressure.
    inflight_limit: int = 8
    #: Small per-request front-end cost (two-tier) / network-thread cost.
    frontend_service: Optional[ServiceModel] = None

    def __post_init__(self) -> None:
        if self.workers < 1 or self.cores < 1 or self.connections < 1:
            raise ValueError("workers, cores and connections must be positive")
        low, high = self.sends_per_request
        if not 1 <= low <= high:
            raise ValueError(f"bad sends_per_request range {self.sends_per_request}")
        if not 0.0 <= self.log_write_prob <= 1.0:
            raise ValueError("log_write_prob must be a probability")
        if self.batch_max < 1 or self.batch_window_ns < 0:
            raise ValueError("batch_max must be >=1 and batch_window_ns >=0")
        if not 0.0 < self.batch_marginal_cost <= 1.0:
            raise ValueError("batch_marginal_cost must be in (0, 1]")

    def with_overrides(self, **kwargs) -> "WorkloadConfig":
        return replace(self, **kwargs)


def _round_robin_split(items: Sequence, buckets: int) -> List[list]:
    shares: List[list] = [[] for _ in range(buckets)]
    for index, item in enumerate(items):
        shares[index % buckets].append(item)
    return [share for share in shares if share]


class ServerApp:
    """Common wiring: connections, setup phase, client socket exposure."""

    #: Requested workload-sim tier: ``"reference"`` (generator service
    #: loops) or ``"compiled"`` (trace-specialized flat loops from
    #: :mod:`repro.workloads.compiled`).  Set before :meth:`start`.
    requested_sim_tier = "reference"
    #: The tier actually running after :meth:`start` — ``"compiled"``
    #: requests fall back to ``"reference"`` when the app's exact type or
    #: config is not specializable.
    sim_tier = "reference"

    def __init__(self, kernel: Kernel, config: WorkloadConfig,
                 client_to_server: Optional[NetemConfig] = None,
                 server_to_client: Optional[NetemConfig] = None) -> None:
        self.kernel = kernel
        self.config = config
        self.c2s = client_to_server or NetemConfig.ideal()
        self.s2c = server_to_client or NetemConfig.ideal()
        self.process = kernel.create_process(config.name)
        self.client_sockets: List[SocketEndpoint] = []
        self._server_sockets: List[SocketEndpoint] = []
        self._accepted_sockets: Optional[List[SocketEndpoint]] = None
        self._service_stream = kernel.seeds.stream(f"{config.name}:service")
        self._noise_stream = kernel.seeds.stream(f"{config.name}:noise")
        self._started = False
        # Per-run noise factors: logging verbosity and response chunking
        # vary run to run (different cache states, corpus mixes, warning
        # volumes).  These are *level-correlated* — they shift a whole run's
        # send-count-per-request — which is what keeps Web Search's and
        # moses' R² structurally below the others' (Fig. 2 / Table II)
        # instead of averaging away with window size.
        low, high = config.sends_per_request
        if config.log_write_prob > 0.0:
            self._run_log_factor = self._noise_stream.uniform(0.2, 2.2)
        else:
            self._run_log_factor = 1.0
        if high > low:
            midpoint = (low + high) / 2.0
            self._run_chunk_mean = midpoint + self._noise_stream.uniform(-0.3, 0.3)
        else:
            self._run_chunk_mean = float(low)
        #: Fault-injection hook (:class:`repro.faults.SendFragmentation`):
        #: when set, every response goes out as exactly this many small
        #: sends — a buffering regression (TCP_NODELAY flip, shrunk
        #: userspace write buffer) that multiplies send-syscall counts
        #: without touching request outcomes.
        self._fragment_override: Optional[int] = None

    @property
    def tgid(self) -> int:
        """The process to monitor (front-end process for multi-tier apps)."""
        return self.process.pid

    @property
    def worker_count(self) -> int:
        return self.config.workers

    def start(self) -> "ServerApp":
        if self._started:
            raise RuntimeError(f"{self.config.name} already started")
        requested = self.requested_sim_tier
        if requested not in ("reference", "compiled"):
            raise ValueError(
                f"unknown sim tier {requested!r}; pick 'reference' or 'compiled'"
            )
        self._started = True
        self._open_connections()
        if requested == "compiled":
            from .compiled import try_specialize

            if try_specialize(self):
                self.sim_tier = "compiled"
                return self
        self.sim_tier = "reference"
        self._spawn()
        return self

    # -- internals ---------------------------------------------------------
    def _open_connections(self) -> None:
        self._listener = self.kernel.create_listener(f"{self.config.name}:lsn")
        for index in range(self.config.connections):
            client, server = self.kernel.open_connection(
                listener=self._listener,
                client_to_server=self.c2s,
                server_to_client=self.s2c,
                name=f"{self.config.name}:c{index}",
            )
            self.client_sockets.append(client)
            self._server_sockets.append(server)

    def _setup_phase(self, task: KernelTask, conns: int):
        """Generator: the accept-loop setup syscalls of Fig. 1(b).

        Runs once per app: a worker *respawned* after a crash re-enters its
        body, but the process's fds survived, so the replacement inherits the
        already-accepted sockets instead of blocking on an empty listener.
        """
        if self._accepted_sockets is not None:
            return self._accepted_sockets
        yield from task.sys_socket()
        yield from task.sys_bind()
        yield from task.sys_listen()
        accepted = []
        for _ in range(conns):
            sock = yield from task.sys_accept(self._listener)
            accepted.append(sock)
        self._accepted_sockets = accepted
        return accepted

    def _chunks_for_response(self) -> int:
        if self._fragment_override is not None:
            return self._fragment_override
        low, high = self.config.sends_per_request
        if high == 1:
            return 1
        draw = self._noise_stream.normal(self._run_chunk_mean, 0.6)
        return max(low, min(high, int(round(draw))))

    @property
    def _effective_log_prob(self) -> float:
        return min(1.0, self.config.log_write_prob * self._run_log_factor)

    def _respond(self, task: KernelTask, sock: SocketEndpoint, request: Message):
        """Generator: send the (possibly chunked) response for a request."""
        config = self.config
        chunks = self._chunks_for_response()
        size = max(1, config.response_size // chunks)
        for chunk in range(chunks):
            tag = request.tag if chunk == chunks - 1 else None  # tag on final
            yield from task.sys_send(
                config.syscalls.send_nr, sock, Message(payload="response", size=size, tag=tag)
            )
        prob = self._effective_log_prob
        if prob and self._noise_stream.bernoulli(prob):
            yield from task.sys_write(self._log_sink(), Message(payload="log", size=128))

    _log_socket: Optional[SocketEndpoint] = None

    def _log_sink(self) -> SocketEndpoint:
        """A connected socket whose peer discards everything (log file)."""
        if self._log_socket is None:
            peer, sink_side = self.kernel.open_connection(name=f"{self.config.name}:log")
            peer.close()  # deliveries to a closed socket are dropped
            self._log_socket = sink_side
        return self._log_socket

    def _spawn_logger(self, process: Optional[KProcess] = None) -> None:
        """Optional logger thread issuing bursty bulk ``write`` flushes."""
        config = self.config
        if config.log_burst_rate <= 0.0:
            return
        stream = self.kernel.seeds.stream(f"{config.name}:logger")
        mean_gap = int(1e9 / config.log_burst_rate)
        low, high = config.log_burst_size

        def logger(task: KernelTask):
            while True:
                yield from task.sys_nanosleep(stream.exponential_ns(mean_gap))
                for _ in range(stream.randint(low, high)):
                    yield from task.sys_write(
                        self._log_sink(), Message(payload="log", size=100)
                    )

        (process or self.process).spawn_thread(logger, name=f"{config.name}/logger")

    # -- closed-loop actuation hooks (repro.control) -----------------------
    def admission_points(self) -> List[SocketEndpoint]:
        """Server-side sockets a shed-policy admission gate installs on.

        These sit below the application: the gate intercepts deliveries
        before the receive queue, so neither sim tier's service loop ever
        sees a rejected request.
        """
        return list(self._server_sockets)

    def worker_pools(self) -> List[tuple]:
        """``(process, name_substring)`` pools the scale actuator may act on.

        The substring convention matches the fault orchestrator's victim
        selection, so a controller revives exactly the population a
        :class:`~repro.faults.WorkerCrash` targets.
        """
        return [(self.process, f"{self.config.name}/w")]

    def _spawn(self) -> None:
        raise NotImplementedError


class ThreadedPollApp(ServerApp):
    """N worker threads, each polling its share of connections."""

    def worker_pools(self) -> List[tuple]:
        suffix = "/io" if self.config.io_uring else "/w"
        return [(self.process, f"{self.config.name}{suffix}")]

    def _spawn(self) -> None:
        if self.config.io_uring:
            self._spawn_io_uring()
            return
        shares = _round_robin_split(
            list(range(self.config.connections)), self.config.workers
        )
        uses_epoll = self.config.syscalls.poll_nr != Sys.SELECT

        def make_worker(share):
            def worker(task: KernelTask):
                accepted = []
                if share and share[0] == 0:
                    # First worker performs the listening-socket setup.
                    accepted = yield from self._setup_phase(
                        task, self.config.connections
                    )
                socks = [self._server_sockets[i] for i in share]
                epoll: Optional[EpollInstance] = None
                if uses_epoll:
                    epoll = yield from task.sys_epoll_create1()
                    for sock in socks:
                        yield from task.sys_epoll_ctl(epoll, sock)
                while True:
                    if uses_epoll:
                        ready = yield from task.sys_epoll_wait(epoll)
                    else:
                        ready = yield from task.sys_select(socks)
                    for sock in ready:
                        request = yield from task.sys_recv(
                            self.config.syscalls.recv_nr, sock
                        )
                        yield from task.compute(
                            self.config.service.draw(self._service_stream)
                        )
                        yield from self._respond(task, sock, request)

            return worker

        for index, share in enumerate(shares):
            self.process.spawn_thread(make_worker(share), name=f"{self.config.name}/w{index}")

    def _spawn_io_uring(self) -> None:
        """Workers using a completion-queue model: no recv/send/poll
        syscalls ever fire, so syscall-based observability sees nothing."""
        shares = _round_robin_split(self._server_sockets, self.config.workers)

        def make_worker(socks):
            def worker(task: KernelTask):
                while True:
                    ready = [s for s in socks if s.readable]
                    if not ready:
                        yield task.env.any_of([s.wait_readable() for s in socks])
                        ready = [s for s in socks if s.readable]
                    for sock in ready:
                        request = sock.pop()
                        yield from task.compute(
                            self.config.service.draw(self._service_stream)
                        )
                        sock.send(Message(payload="response",
                                          size=self.config.response_size,
                                          tag=request.tag))

            return worker

        for index, socks in enumerate(shares):
            self.process.spawn_thread(make_worker(socks), name=f"{self.config.name}/io{index}")


class DispatchPoolApp(ServerApp):
    """Triton's structure: network threads dispatch to an executor pool."""

    NETWORK_THREADS = 2

    def worker_pools(self) -> List[tuple]:
        return [(self.process, f"{self.config.name}/exec")]

    def _spawn(self) -> None:
        from ..sim.resources import Store

        queue = Store(self.kernel.env)
        shares = _round_robin_split(
            list(range(self.config.connections)),
            min(self.NETWORK_THREADS, self.config.connections),
        )

        def make_net_thread(share):
            def net_thread(task: KernelTask):
                if share and share[0] == 0:
                    yield from self._setup_phase(task, self.config.connections)
                socks = [self._server_sockets[i] for i in share]
                epoll = yield from task.sys_epoll_create1()
                for sock in socks:
                    yield from task.sys_epoll_ctl(epoll, sock)
                while True:
                    ready = yield from task.sys_epoll_wait(epoll)
                    for sock in ready:
                        request = yield from task.sys_recv(
                            self.config.syscalls.recv_nr, sock
                        )
                        queue.put((sock, request))

            return net_thread

        config = self.config

        def executor(task: KernelTask):
            env = task.env
            while True:
                get_event = queue.get()
                if get_event.triggered:
                    batch = [get_event.value]
                else:
                    # Blocking on the empty dispatch queue surfaces as a
                    # futex wait to a syscall tracer.
                    batch = [(yield from task.sys_futex_wait(get_event))]
                # Dynamic batching: keep collecting until the batch fills or
                # the batching window closes (Triton's dynamic_batching).
                if config.batch_max > 1:
                    deadline = env.now + config.batch_window_ns
                    while len(batch) < config.batch_max:
                        ok, item = queue.try_get()
                        if ok:
                            batch.append(item)
                            continue
                        remaining = deadline - env.now
                        if remaining <= 0:
                            break
                        waiter = queue.get()
                        yield env.any_of([waiter, env.timeout(remaining)])
                        if waiter.triggered:
                            batch.append(waiter.value)
                        else:
                            queue.cancel_get(waiter)
                            break
                solo_cost = config.service.draw(self._service_stream)
                batch_cost = int(
                    solo_cost * (1 + (len(batch) - 1) * config.batch_marginal_cost)
                )
                yield from task.compute(batch_cost)
                for sock, request in batch:
                    yield from self._respond(task, sock, request)

        for index, share in enumerate(shares):
            self.process.spawn_thread(
                make_net_thread(share), name=f"{self.config.name}/net{index}"
            )
        for index in range(self.config.workers):
            self.process.spawn_thread(executor, name=f"{self.config.name}/exec{index}")


class TwoTierApp(ServerApp):
    """Web Search: front-end process + index-search process.

    The front-end polls client connections, forwards requests to the
    back-end over internal sockets (``write``), and relays responses back
    (``write``), occasionally emitting log writes.  When a front-end thread
    has too many requests in flight it *deregisters* its client connections
    (backpressure) and waits only on the back-end — the mechanism behind
    Web Search's post-saturation idleness rise in Fig. 4.
    """

    def __init__(self, kernel: Kernel, config: WorkloadConfig,
                 client_to_server: Optional[NetemConfig] = None,
                 server_to_client: Optional[NetemConfig] = None) -> None:
        super().__init__(kernel, config, client_to_server, server_to_client)
        self.backend_process = kernel.create_process(f"{config.name}-index")

    def worker_pools(self) -> List[tuple]:
        return [
            (self.process, f"{self.config.name}/fe"),
            (self.backend_process, f"{self.config.name}/ix"),
        ]

    def _spawn(self) -> None:
        config = self.config
        frontends = min(config.frontend_threads, config.connections)
        # One internal connection per back-end worker; each belongs to one
        # front-end thread for response reading.
        internal: List[Tuple[SocketEndpoint, SocketEndpoint]] = []
        for index in range(config.workers):
            front_side, back_side = self.kernel.open_connection(
                name=f"{config.name}:int{index}"
            )
            internal.append((front_side, back_side))

        client_shares = _round_robin_split(list(range(config.connections)), frontends)
        backend_shares = _round_robin_split(list(range(config.workers)), frontends)

        def make_frontend(fe_index, client_ids, backend_ids):
            def frontend(task: KernelTask):
                if client_ids and client_ids[0] == 0:
                    yield from self._setup_phase(task, config.connections)
                clients = [self._server_sockets[i] for i in client_ids]
                backends = [internal[i][0] for i in backend_ids]
                epoll = yield from task.sys_epoll_create1()
                for sock in clients + backends:
                    yield from task.sys_epoll_ctl(epoll, sock)
                fe_service = config.frontend_service
                inflight = 0
                clients_registered = True
                rr = 0
                while True:
                    ready = yield from task.sys_epoll_wait(epoll)
                    for sock in ready:
                        if sock in backends:
                            response = yield from task.sys_recv(
                                config.syscalls.recv_nr, sock
                            )
                            inflight -= 1
                            client_index, tag = response.payload
                            # The front-end relays in one send unless the
                            # fragmentation fault is active (chunk noise is a
                            # back-end property; the relay buffer is not).
                            chunks = self._fragment_override or 1
                            size = max(1, config.response_size // chunks)
                            for chunk in range(chunks):
                                chunk_tag = tag if chunk == chunks - 1 else None
                                yield from task.sys_send(
                                    config.syscalls.send_nr,
                                    self._server_sockets[client_index],
                                    Message(payload="response", size=size,
                                            tag=chunk_tag),
                                )
                            if config.log_write_prob and self._noise_stream.bernoulli(
                                self._effective_log_prob
                            ):
                                yield from task.sys_write(
                                    self._log_sink(), Message(payload="log", size=128)
                                )
                        elif clients_registered:
                            request = yield from task.sys_recv(
                                config.syscalls.recv_nr, sock
                            )
                            if fe_service is not None:
                                yield from task.compute(
                                    fe_service.draw(self._service_stream)
                                )
                            client_index = self._server_sockets.index(sock)
                            backend = backends[rr % len(backends)]
                            rr += 1
                            yield from task.sys_send(
                                config.syscalls.send_nr,
                                backend,
                                Message(payload=(client_index, request.tag),
                                        size=request.size),
                            )
                            inflight += 1
                    # Backpressure: stop listening to clients when too many
                    # requests are in flight; resume once drained.
                    if clients_registered and inflight >= config.inflight_limit:
                        for sock in clients:
                            yield from task.sys_epoll_del(epoll, sock)
                        clients_registered = False
                    elif not clients_registered and inflight <= config.inflight_limit // 2:
                        for sock in clients:
                            yield from task.sys_epoll_ctl(epoll, sock)
                        clients_registered = True

            return frontend

        def make_backend(back_side):
            def backend(task: KernelTask):
                epoll = yield from task.sys_epoll_create1()
                yield from task.sys_epoll_ctl(epoll, back_side)
                while True:
                    yield from task.sys_epoll_wait(epoll)
                    request = yield from task.sys_recv(config.syscalls.recv_nr, back_side)
                    yield from task.compute(config.service.draw(self._service_stream))
                    yield from task.sys_send(
                        config.syscalls.send_nr,
                        back_side,
                        Message(payload=request.payload, size=config.response_size),
                    )

            return backend

        for index, (client_ids, backend_ids) in enumerate(
            zip(client_shares, backend_shares)
        ):
            self.process.spawn_thread(
                make_frontend(index, client_ids, backend_ids),
                name=f"{config.name}/fe{index}",
            )
        for index, (_front, back_side) in enumerate(internal):
            self.backend_process.spawn_thread(
                make_backend(back_side), name=f"{config.name}/ix{index}"
            )
        self._spawn_logger()

    @property
    def worker_count(self) -> int:
        return min(self.config.frontend_threads, self.config.connections)
