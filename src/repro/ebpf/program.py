"""Program objects: instructions + type + load-time map resolution."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional

from .context import ProgType
from .errors import BpfError
from .insn import Insn, encode
from .opcodes import AluOp, InsnClass, JmpOp
from .verifier import verify

__all__ = ["Program"]


@dataclass
class Program:
    """An eBPF program ready for verification and attachment."""

    name: str
    insns: List[Insn]
    prog_type: ProgType
    license: str = "GPL"

    def resolve_maps(self, maps: Mapping[str, object]) -> "Program":
        """Replace by-name map references with live map objects."""
        resolved = []
        for insn in self.insns:
            if isinstance(insn.map_ref, str):
                try:
                    target = maps[insn.map_ref]
                except KeyError:
                    raise BpfError(
                        f"program {self.name!r} references unknown map {insn.map_ref!r}"
                    ) from None
                insn = replace(insn, map_ref=target)
            resolved.append(insn)
        return Program(self.name, resolved, self.prog_type, self.license)

    def verify(self) -> "Program":
        """Run the verifier (raises VerifierError on rejection)."""
        verify(self.insns, self.prog_type)
        return self

    def bytecode(self) -> bytes:
        """Real wire encoding of the instruction stream."""
        return encode(self.insns)

    def decoded(self):
        """Pre-decoded fast-path translation (cached process-wide).

        Returns the :class:`~repro.ebpf.fastvm.DecodedProgram` the
        :class:`~repro.ebpf.fastvm.FastVm` executes for this program.
        """
        from .fastvm import decode_program

        return decode_program(self.insns)

    def disasm(self) -> str:
        """Compact human-readable listing (diagnostics/docs)."""
        lines = []
        skip_next = False
        for index, insn in enumerate(self.insns):
            if skip_next:
                skip_next = False
                continue
            text = _disasm_one(insn, index)
            if insn.is_ld_imm64:
                skip_next = True
                if insn.is_map_load:
                    ref = insn.map_ref
                    name = getattr(ref, "name", ref)
                    text = f"r{insn.dst} = map[{name!r}]"
                else:
                    high = self.insns[index + 1].imm & 0xFFFFFFFF
                    value = (high << 32) | (insn.imm & 0xFFFFFFFF)
                    text = f"r{insn.dst} = {value:#x} ll"
            lines.append(f"{index:4d}: {text}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.insns)


_ALU_SYMBOL = {
    AluOp.ADD: "+=", AluOp.SUB: "-=", AluOp.MUL: "*=", AluOp.DIV: "/=",
    AluOp.OR: "|=", AluOp.AND: "&=", AluOp.LSH: "<<=", AluOp.RSH: ">>=",
    AluOp.MOD: "%=", AluOp.XOR: "^=", AluOp.MOV: "=", AluOp.ARSH: "s>>=",
}

_JMP_SYMBOL = {
    JmpOp.JEQ: "==", JmpOp.JNE: "!=", JmpOp.JGT: ">", JmpOp.JGE: ">=",
    JmpOp.JLT: "<", JmpOp.JLE: "<=", JmpOp.JSET: "&", JmpOp.JSGT: "s>",
    JmpOp.JSGE: "s>=", JmpOp.JSLT: "s<", JmpOp.JSLE: "s<=",
}

_SIZE_SUFFIX = {0x00: "u32", 0x08: "u16", 0x10: "u8", 0x18: "u64"}


def _disasm_one(insn: Insn, index: int) -> str:
    klass = insn.opcode & 0x07
    if klass in (InsnClass.ALU, InsnClass.ALU64):
        op = AluOp(insn.opcode & 0xF0)
        width = "" if klass == InsnClass.ALU64 else " (w)"
        if op == AluOp.NEG:
            return f"r{insn.dst} = -r{insn.dst}{width}"
        operand = f"r{insn.src}" if insn.uses_reg_source else str(insn.imm)
        return f"r{insn.dst} {_ALU_SYMBOL[op]} {operand}{width}"
    if klass == InsnClass.LDX:
        suffix = _SIZE_SUFFIX[insn.opcode & 0x18]
        return f"r{insn.dst} = *({suffix} *)(r{insn.src} {insn.off:+d})"
    if klass == InsnClass.STX:
        suffix = _SIZE_SUFFIX[insn.opcode & 0x18]
        return f"*({suffix} *)(r{insn.dst} {insn.off:+d}) = r{insn.src}"
    if klass == InsnClass.ST:
        suffix = _SIZE_SUFFIX[insn.opcode & 0x18]
        return f"*({suffix} *)(r{insn.dst} {insn.off:+d}) = {insn.imm}"
    if klass in (InsnClass.JMP, InsnClass.JMP32):
        op = insn.opcode & 0xF0
        if op == JmpOp.CALL:
            return f"call #{insn.imm}"
        if op == JmpOp.EXIT:
            return "exit"
        if op == JmpOp.JA:
            return f"goto {index + 1 + insn.off}"
        operand = f"r{insn.src}" if insn.uses_reg_source else str(insn.imm)
        symbol = _JMP_SYMBOL[JmpOp(op)]
        return f"if r{insn.dst} {symbol} {operand} goto {index + 1 + insn.off}"
    return repr(insn)
