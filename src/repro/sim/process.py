"""Generator-coroutine processes.

A process wraps a Python generator.  The generator ``yield``\\ s
:class:`~repro.sim.events.Event` objects; the process registers itself as a
callback and resumes the generator with the event's value when it triggers
(or throws the event's exception into it).  A :class:`Process` is itself an
event that triggers when the generator returns, so processes can wait on
each other.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Generator, Optional

from .events import Event, Interrupt, PENDING

__all__ = ["Process"]


class Process(Event):
    """A running generator coroutine inside an environment."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not isinstance(generator, GeneratorType):
            raise TypeError(f"{generator!r} is not a generator — call the function first")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None when running
        #: or finished).
        self._target: Optional[Event] = None
        self.name = name or generator.__name__

        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env._schedule(init, env._now)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point.

        Interrupting a dead process is an error; interrupting a process that
        is currently scheduled to resume delivers the interrupt first.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is None:
            raise RuntimeError(f"{self!r} is not waiting and cannot be interrupted")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defuse()
        # Stop listening on the old target: replace our callback so a later
        # trigger of the original event is ignored by this process.
        target = self._target
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        interrupt_event.callbacks.append(self._resume)
        self.env._schedule(interrupt_event, self.env._now, priority=0)

    # -- engine plumbing ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                event.defuse()
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._target = None
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(next_target, Event):
            raise RuntimeError(
                f"process {self.name!r} yielded {next_target!r}, which is not an Event"
            )
        if next_target.env is not self.env:
            raise RuntimeError("process yielded an event from a different environment")
        self._target = next_target
        if next_target.processed:
            # Already-processed events resume the process on the next step.
            resume = Event(self.env)
            resume._ok = next_target._ok
            resume._value = next_target._value
            if not next_target._ok:
                next_target.defuse()
                resume.defuse()
            resume.callbacks.append(self._resume)
            self.env._schedule(resume, self.env._now)
        else:
            next_target.callbacks.append(self._resume)

    def __repr__(self) -> str:
        status = "alive" if self.is_alive else "done"
        return f"<Process {self.name!r} {status}>"
