"""Tests for the netem impairment model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import NetemConfig, NetemPath, TCP_MIN_RTO_NS
from repro.sim import MSEC, SeedSequence


def _path(config, seed=1):
    return NetemPath(config, SeedSequence(seed).stream("netem"))


class TestNetemConfig:
    def test_ideal(self):
        cfg = NetemConfig.ideal()
        assert cfg.delay_ns == 0 and cfg.loss == 0.0

    def test_paper_impaired(self):
        cfg = NetemConfig.paper_impaired()
        assert cfg.delay_ns == 10 * MSEC
        assert cfg.loss == 0.01

    def test_label(self):
        assert NetemConfig.paper_impaired().label() == "10ms delay / 1% loss"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"delay_ns": -1},
            {"jitter_ns": -1},
            {"loss": 1.0},
            {"loss": -0.1},
            {"delay_ns": 5, "jitter_ns": 10},
            {"rto_ns": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            NetemConfig(**kwargs)


class TestNetemPath:
    def test_no_impairment_zero_transit(self):
        path = _path(NetemConfig.ideal())
        assert all(path.transit_ns() == 0 for _ in range(100))

    def test_fixed_delay(self):
        path = _path(NetemConfig(delay_ns=3 * MSEC))
        assert all(path.transit_ns() == 3 * MSEC for _ in range(100))

    def test_jitter_bounds(self):
        cfg = NetemConfig(delay_ns=10 * MSEC, jitter_ns=2 * MSEC)
        path = _path(cfg)
        draws = [path.transit_ns() for _ in range(2000)]
        assert min(draws) >= 8 * MSEC
        assert max(draws) <= 12 * MSEC
        assert len(set(draws)) > 100  # actually jittered

    def test_loss_adds_rto(self):
        # With loss ~1, every message pays at least one RTO; our cap stops
        # the worst case. Use 0.9 to terminate quickly.
        path = _path(NetemConfig(loss=0.9))
        draws = [path.transit_ns() for _ in range(200)]
        assert all(d == 0 or d >= TCP_MIN_RTO_NS for d in draws)
        assert sum(d >= TCP_MIN_RTO_NS for d in draws) > 150

    def test_loss_rate_statistics(self):
        path = _path(NetemConfig(loss=0.01))
        n = 50000
        hit = sum(path.transit_ns() >= TCP_MIN_RTO_NS for _ in range(n))
        assert hit / n == pytest.approx(0.01, abs=0.004)

    def test_backoff_doubles(self):
        # loss=0.97 gives frequent multi-loss streaks; delays must be sums of
        # doubling RTOs: 200, 200+400, 200+400+800 ...
        path = _path(NetemConfig(loss=0.97), seed=3)
        valid = set()
        total, rto = 0, TCP_MIN_RTO_NS
        for _ in range(16):
            valid.add(total)
            total += rto
            rto *= 2
        for _ in range(500):
            assert path.transit_ns() in valid

    def test_loss_counter(self):
        path = _path(NetemConfig(loss=0.5))
        for _ in range(1000):
            path.transit_ns()
        assert path.carried == 1000
        assert path.loss_fraction == pytest.approx(0.5, abs=0.06)

    @given(
        delay=st.integers(min_value=0, max_value=50 * MSEC),
        loss=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=50)
    def test_transit_never_negative(self, delay, loss):
        path = _path(NetemConfig(delay_ns=delay, loss=loss))
        assert all(path.transit_ns() >= 0 for _ in range(20))
