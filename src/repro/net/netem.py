"""tc-netem model: deterministic delay, uniform jitter, iid packet loss.

The paper injects network impairments with Linux ``tc-netem`` on the
loopback interface (client and server share a machine).  This module models
the two knobs the paper turns — fixed delay (with optional jitter) and iid
loss probability — plus the TCP behaviour that makes loss matter:
retransmission after a retransmission timeout (RTO) with exponential
backoff.  Linux clamps the minimum TCP RTO at 200 ms, which is exactly why
1 % loss devastates millisecond-scale tail latency (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.rng import Stream
from ..sim.timebase import MSEC

__all__ = ["NetemConfig", "NetemPath", "TCP_MIN_RTO_NS"]

#: Linux's minimum TCP retransmission timeout (net.ipv4 default).
TCP_MIN_RTO_NS = 200 * MSEC

#: Give up after this many retransmissions (far above anything the paper's
#: 1 % loss scenario can hit; prevents unbounded loops in pathological
#: configurations).
MAX_RETRANSMISSIONS = 15


@dataclass(frozen=True)
class NetemConfig:
    """One direction's impairment configuration (mirrors ``tc-netem``)."""

    #: Fixed one-way delay in nanoseconds.
    delay_ns: int = 0
    #: Uniform jitter half-width: actual delay is U[delay-jitter, delay+jitter].
    jitter_ns: int = 0
    #: iid probability that a transmission attempt is lost.
    loss: float = 0.0
    #: Base retransmission timeout (doubles per consecutive loss).
    rto_ns: int = TCP_MIN_RTO_NS
    #: Link rate in bits/second (tc-netem's ``rate`` option); 0 = unlimited.
    #: Adds per-message serialization delay and queueing behind earlier
    #: messages on the same direction.
    rate_bps: int = 0

    def __post_init__(self) -> None:
        if self.delay_ns < 0 or self.jitter_ns < 0:
            raise ValueError("delay and jitter must be non-negative")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")
        if self.jitter_ns > self.delay_ns:
            raise ValueError("jitter larger than delay would allow negative delays")
        if self.rto_ns <= 0:
            raise ValueError("rto must be positive")
        if self.rate_bps < 0:
            raise ValueError("rate must be non-negative (0 = unlimited)")

    def serialization_ns(self, size_bytes: int) -> int:
        """Time to clock ``size_bytes`` onto the link (0 when unlimited)."""
        if self.rate_bps <= 0:
            return 0
        return int(round(size_bytes * 8 * 1e9 / self.rate_bps))

    @classmethod
    def ideal(cls) -> "NetemConfig":
        """Unimpaired loopback (the paper's ``0ms delay / 0% loss`` column)."""
        return cls()

    @classmethod
    def paper_impaired(cls) -> "NetemConfig":
        """The paper's ``10ms delay / 1% loss`` column (Table II)."""
        return cls(delay_ns=10 * MSEC, loss=0.01)

    def label(self) -> str:
        return f"{self.delay_ns / MSEC:g}ms delay / {self.loss * 100:g}% loss"


class NetemPath:
    """Computes per-message latency through one impaired direction.

    The path is stateless apart from its RNG stream; FIFO (head-of-line)
    ordering across messages of one connection is enforced by the channel,
    not here.
    """

    def __init__(self, config: NetemConfig, stream: Stream) -> None:
        self.config = config
        self._stream = stream
        #: Diagnostics: transmission attempts lost so far.
        self.losses = 0
        #: Diagnostics: messages carried.
        self.carried = 0

    MSS_BYTES = 1460

    def transit_ns(self, recovery_ns: Optional[int] = None, size_bytes: int = 0) -> int:
        """Latency of one message: retransmission backoffs + one-way delay.

        ``recovery_ns`` is the first-retransmission latency; callers that
        know the flow is busy pass a fast-retransmit estimate (TCP recovers
        via dup-ACKs in ~1 RTT on dense flows), while sparse flows eat the
        full RTO.  Defaults to the RTO.  Backoff doubling applies on
        consecutive losses either way.

        ``size_bytes``: netem drops *segments*; a message spanning several
        MSS-sized segments is exposed to loss once per segment.
        """
        cfg = self.config
        total = 0
        recovery = cfg.rto_ns if recovery_ns is None else min(cfg.rto_ns, recovery_ns)
        recovery = max(1, recovery)
        segments = max(1, -(-size_bytes // self.MSS_BYTES)) if size_bytes else 1
        loss = 1.0 - (1.0 - cfg.loss) ** segments if cfg.loss > 0.0 else 0.0
        retries = 0
        while loss > 0.0 and self._stream.bernoulli(loss):
            self.losses += 1
            retries += 1
            total += recovery
            recovery *= 2
            if retries >= MAX_RETRANSMISSIONS:
                break
        delay = cfg.delay_ns
        if cfg.jitter_ns:
            delay += int(self._stream.uniform(-cfg.jitter_ns, cfg.jitter_ns))
        self.carried += 1
        return total + max(0, delay)

    @property
    def loss_fraction(self) -> float:
        """Observed fraction of transmission attempts lost (diagnostics)."""
        attempts = self.carried + self.losses
        return self.losses / attempts if attempts else 0.0
