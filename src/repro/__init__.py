"""ebpf-observer: in-kernel observability of request-level metrics.

Reproduction of *"Characterizing In-Kernel Observability of Latency-Sensitive
Request-Level Metrics with eBPF"* (ISPASS 2024) as a pure-Python simulation
stack:

* :mod:`repro.sim` — discrete-event engine (integer-ns clock);
* :mod:`repro.kernel` — simulated Linux-like kernel with a real syscall
  enter/exit tracepoint path;
* :mod:`repro.net` — tc-netem-style network substrate;
* :mod:`repro.ebpf` — eBPF substrate: bytecode, verifier, VM, maps, bcc-like
  frontend;
* :mod:`repro.workloads` — the paper's nine latency-sensitive workloads;
* :mod:`repro.loadgen` — open-loop clients and latency accounting;
* :mod:`repro.core` — the paper's contribution: syscall-statistics
  observability of RPS, saturation and saturation slack;
* :mod:`repro.faults` — scripted fault injection (degraded collection
  path, server stalls/crashes, connection resets) for the robustness
  experiments;
* :mod:`repro.analysis` — experiment harness regenerating every table and
  figure;
* :mod:`repro.export` — streaming Prometheus export stage consuming the
  collector pipeline (text/OpenMetrics exposition, ``/metrics`` server).
"""

__version__ = "1.8.0"

from .analysis import (
    ExperimentSpec,
    LevelResult,
    ResultCache,
    SweepResult,
    default_levels,
    run_cells,
    run_level,
    sweep,
)
from .core import (
    CollectorConfig,
    ExportConfig,
    MetricsSnapshot,
    RequestMetricsMonitor,
)
from .faults import (
    ConnectionReset,
    ConsumerSchedule,
    WorkerCrash,
    WorkerStall,
    run_faulted_cell,
)
from .kernel import AMD_EPYC_7302, INTEL_XEON_E5_2620, Kernel, MachineSpec
from .loadgen import OpenLoopClient
from .net import NetemConfig
from .sim import Environment, SeedSequence
from .workloads import WORKLOADS, get_workload, workload_keys

__all__ = [
    "__version__",
    "Kernel",
    "MachineSpec",
    "AMD_EPYC_7302",
    "INTEL_XEON_E5_2620",
    "Environment",
    "SeedSequence",
    "NetemConfig",
    "OpenLoopClient",
    "RequestMetricsMonitor",
    "MetricsSnapshot",
    "CollectorConfig",
    "ExportConfig",
    "WORKLOADS",
    "get_workload",
    "workload_keys",
    "run_level",
    "sweep",
    "default_levels",
    "ExperimentSpec",
    "LevelResult",
    "SweepResult",
    "ResultCache",
    "run_cells",
    "ConnectionReset",
    "ConsumerSchedule",
    "WorkerCrash",
    "WorkerStall",
    "run_faulted_cell",
]
