"""CPU scheduling: FIFO run queue over N cores with round-robin quanta.

Application *compute* (request service time) flows through
:meth:`CPU.execute`: the task claims a core, runs for at most one scheduler
quantum, then goes to the back of the run queue if work remains.  This
yields the two behaviours the observability study depends on:

* below capacity, core claims are immediate and service times are faithful;
* above capacity, the run queue grows without bound, wait time inflates
  every request, and (via :mod:`repro.kernel.interference`) contention
  stalls appear — the saturation regime of Figs. 3 and 4.
"""

from __future__ import annotations

from typing import Union

from ..sim.engine import Environment
from ..sim.resources import Resource
from .interference import InterferenceModel, NullInterference
from .machine import MachineSpec

__all__ = ["CPU"]


class CPU:
    """The machine's cores plus scheduling policy and accounting."""

    def __init__(
        self,
        env: Environment,
        spec: MachineSpec,
        interference: Union[InterferenceModel, NullInterference, None] = None,
    ) -> None:
        self.env = env
        self.spec = spec
        self._cores = Resource(env, capacity=spec.cores)
        self.interference = interference if interference is not None else NullInterference()
        #: Total core-ns spent executing task work (excludes switch cost).
        self.busy_ns = 0
        #: Total ns of injected contention stalls.
        self.stall_ns = 0
        #: Scripted fault-injection stall deadline: tasks acquiring a core
        #: before this instant stall until it passes (models a machine-wide
        #: freeze — GC pause, cgroup throttle, co-tenant burst).
        self._stall_until = 0
        #: DVFS speed factor: 1.0 = nominal frequency.  Work demands are
        #: expressed in nominal-ns; wall time per slice is demand / speed.
        self._speed = 1.0
        self._boot_time = env.now

    # -- introspection -----------------------------------------------------
    @property
    def cores(self) -> int:
        return self.spec.cores

    @property
    def run_queue_len(self) -> int:
        """Tasks runnable but waiting for a core."""
        return self._cores.queue_len

    @property
    def running(self) -> int:
        """Tasks currently holding a core."""
        return self._cores.count

    @property
    def speed(self) -> float:
        return self._speed

    def set_speed(self, factor: float) -> None:
        """Set the DVFS speed factor (applies from the next quantum)."""
        if factor <= 0:
            raise ValueError(f"speed factor must be positive, got {factor}")
        self._speed = factor

    def inject_stall(self, duration_ns: int) -> None:
        """Freeze compute for ``duration_ns`` from now (fault injection).

        Overlapping injections extend the freeze rather than stack: the
        deadline is max-combined, like overlapping throttle intervals.
        """
        if duration_ns <= 0:
            raise ValueError(f"stall duration must be positive, got {duration_ns}")
        self._stall_until = max(self._stall_until, self.env.now + duration_ns)

    def utilization(self) -> float:
        """Fraction of total core time spent busy since boot."""
        elapsed = self.env.now - self._boot_time
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_ns / (elapsed * self.spec.cores))

    # -- execution -----------------------------------------------------------
    def execute(self, duration_ns: int):
        """Consume ``duration_ns`` of CPU, competing with other tasks.

        Generator — drive with ``yield from`` inside a sim process.  The
        elapsed wall time is at least ``duration_ns`` and grows with queueing
        delay, context-switch costs and contention stalls.
        """
        if duration_ns < 0:
            raise ValueError(f"negative duration {duration_ns}")
        remaining = int(duration_ns)
        quantum = self.spec.quantum_ns
        while remaining > 0:
            claim = self._cores.request()
            yield claim
            stall = self.interference.stall_ns(
                self.run_queue_len, self.spec.cores, self.env.now
            )
            if self._stall_until > self.env.now:
                stall += self._stall_until - self.env.now
            # Uncontended tasks run to completion in one hold (nobody to
            # preempt for); under contention the round-robin quantum applies.
            slice_ns = remaining if self._cores.queue_len == 0 else min(quantum, remaining)
            wall_ns = max(1, int(round(slice_ns / self._speed)))
            hold = self.spec.ctx_switch_ns + stall + wall_ns
            try:
                yield self.env.timeout(hold)
            finally:
                self._cores.release(claim)
            self.busy_ns += wall_ns
            self.stall_ns += stall
            remaining -= slice_ns

    def __repr__(self) -> str:
        return (
            f"<CPU {self.spec.name} {self.running}/{self.cores} running, "
            f"{self.run_queue_len} queued>"
        )
