"""Equivalence tests for the engine's hot-loop fast paths.

The inlined ``run()`` drain loops, the dedicated ``Timeout`` schedule
path, and lazy timeout cancellation are pure performance work: event
order and clock values must be indistinguishable from repeated
``step()`` dispatch.  These tests pin that contract, plus the new
cancellation semantics.
"""

import random

import pytest

from repro.kernel import Kernel, MachineSpec
from repro.loadgen import OpenLoopClient
from repro.net import Message
from repro.sim import EmptySchedule, Environment, Interrupt, SeedSequence
from repro.sim.events import Timeout


# ----------------------------------------------------------------------
# inlined run() loops vs step()
# ----------------------------------------------------------------------

def _random_workload(env, trace, seed):
    """Spawn a tangle of processes with same-instant collisions, nested
    spawns, interrupts, and shared events — every dispatch-order hazard."""
    rng = random.Random(seed)
    gate = env.event()

    def sleeper(name, delays):
        for d in delays:
            yield env.timeout(d)
            trace.append((env.now, name))

    def opener():
        yield env.timeout(50)
        trace.append((env.now, "open"))
        gate.succeed("opened")

    def waiter(name):
        value = yield gate
        trace.append((env.now, name, value))
        yield env.timeout(rng.randint(0, 5))
        trace.append((env.now, name, "done"))

    def spawner():
        yield env.timeout(10)
        child = env.process(sleeper("child", [rng.randint(1, 30)]))
        trace.append((env.now, "spawned"))
        yield child
        trace.append((env.now, "joined"))

    def victim():
        try:
            yield env.timeout(10_000)
            trace.append((env.now, "victim-survived"))
        except Interrupt as interrupt:
            trace.append((env.now, "victim-interrupted", interrupt.cause))

    def assassin(target):
        yield env.timeout(rng.randint(1, 80))
        target.interrupt("bang")
        trace.append((env.now, "fired"))

    for i in range(4):
        delays = [rng.randint(0, 40) for _ in range(rng.randint(1, 4))]
        env.process(sleeper(f"s{i}", delays))
    env.process(opener())
    for i in range(3):
        env.process(waiter(f"w{i}"))
    env.process(spawner())
    target = env.process(victim())
    env.process(assassin(target))


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_run_drain_matches_step_by_step(seed):
    """run(until=None) must produce the exact event order and final clock
    of a manual step() loop over an identically-seeded workload."""
    trace_run, trace_step = [], []

    env = Environment()
    _random_workload(env, trace_run, seed)
    env.run()
    now_run = env.now

    env = Environment()
    _random_workload(env, trace_step, seed)
    while True:
        try:
            env.step()
        except EmptySchedule:
            break
    assert trace_run == trace_step
    assert now_run == env.now


@pytest.mark.parametrize("seed", [0, 5])
def test_run_until_horizon_matches_step_by_step(seed):
    trace_run, trace_step = [], []

    env = Environment()
    _random_workload(env, trace_run, seed)
    env.run(until=60)
    now_run = env.now

    env = Environment()
    _random_workload(env, trace_step, seed)
    while (peek := env.peek()) is not None and peek <= 60:
        env.step()
    trimmed = [entry for entry in trace_run if entry[0] <= 60]
    assert trace_run == trimmed == trace_step
    assert now_run == 60


def test_run_until_event_matches_step_by_step():
    trace_run, trace_step = [], []

    def build(trace):
        env = Environment()
        _random_workload(env, trace, seed=7)
        stop = env.timeout(55, value="stopped")
        return env, stop

    env, stop = build(trace_run)
    assert env.run(until=stop) == "stopped"
    now_run = env.now

    env, stop = build(trace_step)
    while not stop.processed:
        env.step()
    assert trace_run == trace_step
    assert now_run == env.now == 55


def test_failed_event_propagates_from_run():
    env = Environment()

    def bomber():
        yield env.timeout(10)
        raise RuntimeError("boom")

    env.process(bomber())
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


# ----------------------------------------------------------------------
# the dedicated Timeout schedule path
# ----------------------------------------------------------------------

def test_timeout_fast_path_state():
    env = Environment(initial_time=100)
    timeout = env.timeout(40, value="v")
    assert isinstance(timeout, Timeout)
    assert timeout.triggered and timeout.ok and not timeout.processed
    assert timeout.value == "v"
    assert timeout.delay == 40
    assert env.peek() == 140
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_ordering_interleaves_with_generic_events():
    """Timeouts and generic succeed()-scheduled events share one insertion
    counter, so same-instant events still fire in creation order."""
    env = Environment()
    fired = []
    t1 = env.timeout(10)
    ev = env.event()
    t2 = env.timeout(10)
    t1.callbacks.append(lambda _: fired.append("t1"))
    ev.callbacks.append(lambda _: fired.append("ev"))
    t2.callbacks.append(lambda _: fired.append("t2"))

    def trigger_at_ten():
        yield env.timeout(10)
        ev.succeed()

    env.process(trigger_at_ten())
    env.run()
    assert fired == ["t1", "t2", "ev"]  # ev scheduled last, at the same ns


# ----------------------------------------------------------------------
# lazy cancellation
# ----------------------------------------------------------------------

def test_canceled_timeout_never_fires_and_clock_skips_it():
    env = Environment()
    fired = []
    doomed = env.timeout(500)
    doomed.callbacks.append(lambda _: fired.append("doomed"))
    keeper = env.timeout(200)
    keeper.callbacks.append(lambda _: fired.append("keeper"))
    env.cancel(doomed)
    env.run()
    assert fired == ["keeper"]
    # The clock never advanced to the canceled deadline.
    assert env.now == 200


def test_cancel_is_lazy_no_heap_rebuild():
    env = Environment()
    doomed = env.timeout(500)
    env.cancel(doomed)
    # Still physically queued (lazy deletion), but invisible to peek/step.
    assert len(env._queue) == 1
    assert env.peek() is None
    with pytest.raises(EmptySchedule):
        env.step()


def test_cancel_processed_event_raises():
    env = Environment()
    timeout = env.timeout(10)
    env.run()
    with pytest.raises(RuntimeError, match="already processed"):
        env.cancel(timeout)


def test_canceled_event_inside_horizon_is_skipped():
    env = Environment()
    fired = []
    doomed = env.timeout(30)
    doomed.callbacks.append(lambda _: fired.append("doomed"))
    env.timeout(40).callbacks.append(lambda _: fired.append("kept"))
    env.cancel(doomed)
    env.run(until=100)
    assert fired == ["kept"]
    assert env.now == 100


# ----------------------------------------------------------------------
# watchdog wiring: a finished client leaves no live timer behind
# ----------------------------------------------------------------------

def _echo_kernel_and_sockets():
    spec = MachineSpec(name="t", cores=4, ctx_switch_ns=0, syscall_overhead_ns=0)
    kernel = Kernel(Environment(), spec, SeedSequence(2), interference=False)
    proc = kernel.create_process("echo")
    client_sock, server = kernel.open_connection()

    def worker(task, sock=server):
        while True:
            msg = yield from task.sys_read(sock)
            yield from task.compute(100_000)
            yield from task.sys_sendmsg(
                sock, Message(payload="r", size=msg.size, tag=msg.tag)
            )

    proc.spawn_thread(worker)
    return kernel, [client_sock]


def test_watchdog_timer_canceled_when_done_fires():
    kernel, sockets = _echo_kernel_and_sockets()
    client = OpenLoopClient(
        kernel.env, sockets, SeedSequence(3).stream("cl"), rate_rps=1000,
        total_requests=20, retry_timeout_ns=10_000_000_000,  # never stale
    )
    client.start()
    report = kernel.env.run(until=client.done)
    assert report.completed == 20
    assert report.retried == 0
    done_at = kernel.env.now
    # The watchdog's pending 10s sleep was lazily canceled: draining the
    # queue must not advance the clock anywhere near its deadline.
    kernel.env.run()
    assert kernel.env.now - done_at < 10_000_000_000


# ----------------------------------------------------------------------
# canceled-set compaction and fast-forward
# ----------------------------------------------------------------------

def test_canceled_set_bounded_across_horizon_windows():
    """Regression: dead schedule entries must not accumulate without bound.

    The windowed-collection pattern — every window arms a far-future
    watchdog, does its work, cancels the watchdog, then stops at the
    window edge via ``run(until=horizon)`` — never pops the canceled
    entries (the run stops long before their deadlines).  Pre-compaction,
    both the canceled set and the heap grew by one dead entry per cancel
    for the whole simulation.
    """
    env = Environment()
    windows, per_window = 200, 5
    for w in range(windows):
        watchdogs = [env.timeout(10_000_000_000) for _ in range(per_window)]
        env.timeout(10)  # some live work inside the window
        env.run(until=(w + 1) * 1_000)
        for watchdog in watchdogs:
            env.cancel(watchdog)
    dead = windows * per_window
    assert len(env._canceled) < dead // 4
    assert len(env._queue) + len(env._immediate) < dead // 4


def test_compaction_keeps_live_events():
    """Compaction must only drop canceled entries — live watchdogs armed
    alongside hundreds of canceled ones still fire on schedule."""
    env = Environment()
    fired = []
    keeper = env.timeout(5_000_000)
    keeper.callbacks.append(lambda ev: fired.append(env.now))
    for _ in range(500):
        env.cancel(env.timeout(1_000_000_000))
    env.run()
    assert fired == [5_000_000]


def test_cancel_before_schedule_survives_compaction():
    """An event canceled while only in the canceled set (never scheduled)
    keeps its suppression through a compaction pass."""
    env = Environment()
    pending = env.event()
    pending.callbacks.append(lambda ev: pytest.fail("canceled event fired"))
    env.cancel(pending)
    for _ in range(500):  # force at least one compaction
        env.cancel(env.timeout(1_000_000_000))
    pending.succeed("late")  # schedules it; the old cancel must still hold
    env.run()


def test_fast_forward_skips_idle_span():
    env = Environment()
    assert env.fast_forward(1_000_000) == 1_000_000
    assert env.now == 1_000_000


def test_fast_forward_purges_canceled_entries_in_bulk():
    env = Environment()
    for _ in range(10):
        env.cancel(env.timeout(500))
    env.fast_forward(1_000)
    assert env.now == 1_000
    assert not env._queue
    assert not env._canceled


def test_fast_forward_refuses_to_jump_over_live_events():
    env = Environment()
    env.timeout(500)
    with pytest.raises(RuntimeError):
        env.fast_forward(1_000)
    with pytest.raises(ValueError):
        env.fast_forward(-1)


def test_immediate_lane_merges_with_heap_in_eid_order():
    """Same-instant default-priority events split across the two schedule
    containers — zero-delay Timeouts land on the heap, ``succeed()`` lands
    in the immediate deque — must still dispatch in creation order."""
    order = []

    def build(env):
        for i in range(10):
            if i % 2:
                ev = env.event()
                ev.callbacks.append(lambda _e, i=i: order.append(i))
                ev.succeed(i)  # immediate lane
            else:
                t = env.timeout(0)  # heap, same instant
                t.callbacks.append(lambda _e, i=i: order.append(i))

    env = Environment()
    build(env)
    env.run()
    run_order = list(order)

    order.clear()
    env = Environment()
    build(env)
    while True:
        try:
            env.step()
        except EmptySchedule:
            break
    assert run_order == order == list(range(10))
