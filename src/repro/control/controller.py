"""The in-sim feedback-free QoS controller and its two actuators.

Signal -> decision contract (DESIGN.md §12): the controller consumes one
:class:`~repro.core.MetricsSnapshot` per ``window_ns`` of sim time from a
:class:`~repro.analysis.correlate.WindowRecorder` and nothing else.  The
first ``calibrate_windows`` traffic-carrying windows establish the run's
own baseline (median + MAD, the correlator's self-calibrating robust-z
scheme); after that a window is *troubled* when any kernel signal fires:

- ``confidence``: combined collection confidence below the floor (records
  were dropped — the kernel's own view is degrading);
- ``dispersion-knee``: send-delta dispersion more than ``knee_multiplier``
  robust deviations above baseline (the paper's Fig. 3 saturation knee);
- ``slack-collapse``: mean poll duration below ``1/slack_ratio`` x
  baseline (the paper's Fig. 4 epoll-slack collapse — polls return
  immediately because work is always pending);
- ``rps-drop``: windowed RPS_obsv (the paper's Eq. 1 headline metric)
  below ``1/rps_drop_ratio`` x baseline — the observed service went
  quiet under sustained offered load (stall, crash, capacity loss).

Hysteresis turns windows into actions: ``trigger_windows`` consecutive
troubled windows engage the actuator, ``clear_windows`` consecutive healthy
windows release it, and ``cooldown_windows`` refractory windows separate
successive state changes so one noisy window can't flap the loop.

Everything is deterministic: the shed fraction is enforced with an error
accumulator (no RNG), the scaler walks task lists in spawn order, and all
decisions derive from snapshot values the executor already reproduces
bit-identically across VM tiers, sim tiers and process pools.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.correlate import WindowRecorder, _median
from ..net.packet import Message

__all__ = ["AdmissionGate", "QoSController", "WorkerScaler"]


class AdmissionGate:
    """Socket-layer load shedder: rejects a deterministic request fraction.

    Installed on an app's server-side sockets (``admission_points()``), the
    gate sees every inbound delivery *before* the receive queue.  While
    engaged it sheds ``fraction`` of requests by answering them on the wire
    with a ``"rejected"`` message — the application never observes them,
    which is what zero-cooperation admission control means.  The fraction
    is enforced with an error accumulator rather than an RNG draw, so the
    reject pattern is a pure function of the delivery sequence.
    """

    def __init__(self, fraction: float, reject_size: int = 32) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)
        self.reject_size = int(reject_size)
        self.engaged = False
        self.admitted = 0
        self.rejected = 0
        self._acc = 0.0

    def install(self, sockets) -> "AdmissionGate":
        """Attach this gate to the given server-side sockets."""
        for sock in sockets:
            sock.admission = self
        return self

    def admit(self, sock, message: Message) -> bool:
        """Called by :meth:`SocketEndpoint.deliver`; False = shed."""
        if not self.engaged:
            return True
        self._acc += self.fraction
        if self._acc >= 1.0:
            self._acc -= 1.0
            self.rejected += 1
            sock.send(Message(payload="rejected", size=self.reject_size, tag=message.tag))
            return False
        self.admitted += 1
        return True


class WorkerScaler:
    """Worker-thread scale-up: revives dead threads in the app's pools.

    Walks the ``(process, name_substring)`` pools from ``worker_pools()``
    in spawn order and respawns threads whose simulated process has died
    (the population a :class:`~repro.faults.WorkerCrash` kills).  A revived
    thread re-enters its original body; the process's file descriptors
    survived, so it inherits the already-accepted sockets — exactly the
    PR 3 crash-restart path, but driven by the controller instead of the
    fault schedule.
    """

    def __init__(self, app, step: int = 0) -> None:
        self.pools = list(app.worker_pools())
        self.step = int(step)
        self.respawned = 0

    def dead_workers(self) -> List:
        """Matching tasks whose simulated process is not alive."""
        dead = []
        for process, needle in self.pools:
            for task in list(process.tasks):
                if needle not in task.name or task.body_fn is None:
                    continue
                proc = task.sim_process
                if proc is not None and proc.is_alive:
                    continue
                if getattr(task, "control_revived", False):
                    continue
                dead.append((process, task))
        return dead

    def scale_up(self) -> int:
        """Revive up to ``step`` dead workers (0 = all); returns the count."""
        revived = 0
        for process, task in self.dead_workers():
            if self.step > 0 and revived >= self.step:
                break
            process.respawn_thread(task)
            # The corpse task object stays in the process's task list; mark
            # it so repeated engagements don't recount it (the replacement
            # is a fresh task and is itself revivable if killed again).
            task.control_revived = True
            revived += 1
        self.respawned += revived
        return revived


class QoSController:
    """Feedback-free closed loop: windowed eBPF signals in, actuation out.

    Wire-up (done by ``execute_cell`` when the spec carries a
    :class:`~repro.core.ControlConfig` with ``policy != "none"``)::

        controller = QoSController(app, monitor, config).start()
        env.run(until=client.done)
        windows = controller.finish()
        extra = {"control": controller.summary(report, qos_latency_ns)}

    The controller's only input is the window stream; ``summary`` takes the
    client report purely for *post-hoc scoring* (QoS violations, goodput) —
    no decision ever read it.
    """

    def __init__(self, app, monitor, config) -> None:
        self.app = app
        self.monitor = monitor
        self.config = config
        self.env = monitor.kernel.env
        self.recorder = WindowRecorder(monitor, config.window_ns, on_window=self._on_window)
        self.gate: Optional[AdmissionGate] = None
        self.scaler: Optional[WorkerScaler] = None
        if config.policy == "shed":
            self.gate = AdmissionGate(config.shed_fraction, config.reject_size)
            self.gate.install(app.admission_points())
        elif config.policy == "scale":
            self.scaler = WorkerScaler(app, config.scale_step)
        # Calibration state.
        self.calibrated = False
        self._cov2_pool: List[float] = []
        self._poll_pool: List[float] = []
        self.baseline_cov2: Optional[float] = None
        self.baseline_poll_ns: Optional[float] = None
        self.baseline_rps: Optional[float] = None
        self._rps_pool: List[float] = []
        self._cov2_scale: Optional[float] = None
        # Hysteresis state.
        self.engaged = False
        self.windows = 0
        self.engaged_windows = 0
        self._trouble_streak = 0
        self._healthy_streak = 0
        self._cooldown = 0
        #: Bit-reproducible action log: one entry per state change.
        self.actions: List[dict] = []

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "QoSController":
        self.recorder.start()
        return self

    def finish(self):
        """Stop the window loop; returns the recorded windows."""
        return self.recorder.finish()

    def merged(self):
        """Whole-run composite snapshot (see ``WindowRecorder.merged``)."""
        return self.recorder.merged()

    # -- the decision loop -------------------------------------------------
    def _on_window(self, snapshot) -> None:
        self.windows += 1
        if not self.calibrated:
            self._calibrate(snapshot)
            return
        signals = self._signals(snapshot)
        if self._cooldown > 0:
            self._cooldown -= 1
        if signals:
            self._trouble_streak += 1
            self._healthy_streak = 0
        else:
            self._healthy_streak += 1
            self._trouble_streak = 0
        if (
            not self.engaged
            and self._cooldown == 0
            and self._trouble_streak >= self.config.trigger_windows
        ):
            self._actuate("engage", signals)
        elif (
            self.engaged
            and self._cooldown == 0
            and self._healthy_streak >= self.config.clear_windows
        ):
            self._actuate("release", signals)
        if self.engaged:
            self.engaged_windows += 1

    def _calibrate(self, snapshot) -> None:
        if snapshot.send.count >= self.config.min_events:
            self._cov2_pool.append(snapshot.send.cov2())
            self._rps_pool.append(float(snapshot.rps_obsv))
            if snapshot.poll.count > 0:
                self._poll_pool.append(float(snapshot.poll_mean_duration_ns))
        if len(self._cov2_pool) < self.config.calibrate_windows:
            return
        self.baseline_cov2 = _median(self._cov2_pool)
        mad = _median([abs(x - self.baseline_cov2) for x in self._cov2_pool])
        self._cov2_scale = max(mad, 0.1 * self.baseline_cov2, 1e-3)
        self.baseline_rps = _median(self._rps_pool)
        if len(self._poll_pool) >= 3:
            self.baseline_poll_ns = _median(self._poll_pool)
        self.calibrated = True
        self.actions.append(
            {
                "window": self.windows,
                "t_ns": self.env.now,
                "action": "calibrated",
                "baseline_cov2": self.baseline_cov2,
                "baseline_poll_ns": self.baseline_poll_ns,
                "baseline_rps": self.baseline_rps,
            }
        )

    def _signals(self, snapshot) -> List[str]:
        """The correlator's kernel-side signal set, evaluated causally."""
        config = self.config
        fired: List[str] = []
        if snapshot.overall_confidence < config.confidence_floor:
            fired.append("confidence")
        if snapshot.send.count >= config.min_events:
            cov2 = snapshot.send.cov2()
            if (
                cov2 > config.cov2_floor
                and (cov2 - self.baseline_cov2) / self._cov2_scale > config.knee_multiplier
            ):
                fired.append("dispersion-knee")
        if (
            self.baseline_poll_ns is not None
            and self.baseline_poll_ns > 0
            and snapshot.poll.count > 0
            and snapshot.poll_mean_duration_ns < self.baseline_poll_ns / config.slack_ratio
        ):
            fired.append("slack-collapse")
        if (
            self.baseline_rps is not None
            and self.baseline_rps > 0
            and snapshot.rps_obsv < self.baseline_rps / config.rps_drop_ratio
        ):
            fired.append("rps-drop")
        return fired

    def _actuate(self, action: str, signals: List[str]) -> None:
        entry = {
            "window": self.windows,
            "t_ns": self.env.now,
            "action": action,
            "signals": list(signals),
        }
        if action == "engage":
            self.engaged = True
            if self.gate is not None:
                self.gate.engaged = True
            if self.scaler is not None:
                entry["respawned"] = self.scaler.scale_up()
            self._trouble_streak = 0
        else:
            self.engaged = False
            if self.gate is not None:
                self.gate.engaged = False
            self._healthy_streak = 0
        self._cooldown = self.config.cooldown_windows
        self.actions.append(entry)

    # -- post-hoc scoring --------------------------------------------------
    def summary(self, report, qos_latency_ns: int) -> dict:
        """Score the run: actions taken, QoS violations, goodput kept.

        A *QoS violation* is a completion later than the workload's QoS
        threshold or an abandoned request; *goodput* is completions within
        the threshold.  Rejected requests are neither — the client got a
        definitive cheap refusal instead of a broken promise.  The report
        is only read here, after the run; decisions never saw it.
        """
        late = sum(1 for s in report.latency.samples() if s > qos_latency_ns)
        goodput = report.completed - late
        return {
            "policy": self.config.policy,
            "window_ns": self.config.window_ns,
            "windows": self.windows,
            "calibrated": self.calibrated,
            "baseline_cov2": self.baseline_cov2,
            "baseline_poll_ns": self.baseline_poll_ns,
            "baseline_rps": self.baseline_rps,
            "engaged_windows": self.engaged_windows,
            "actions": list(self.actions),
            "engagements": sum(1 for a in self.actions if a["action"] == "engage"),
            "rejected": report.rejected,
            "respawned": self.scaler.respawned if self.scaler is not None else 0,
            "offered": report.offered,
            "completed": report.completed,
            "abandoned": report.abandoned,
            "late_completions": late,
            "qos_violations": late + report.abandoned,
            "goodput": goodput,
        }
