"""Code generation: BPF-C AST → verified eBPF programs.

Strategy (chosen for verifier-friendliness over cleverness):

* the tracepoint context pointer is parked in ``r9`` for the whole program;
* scalar locals and expression temporaries live in 8-byte **stack slots**
  (helper calls clobber r0-r5, so nothing scalar is ever live in a scratch
  register across a call);
* pointer locals (map-lookup results) cannot be spilled — the verifier
  forbids pointer stores — so they are pinned to callee-saved ``r6``/``r7``,
  with ``r8`` reserved as the generator's own pointer scratch;
* every expression evaluates into ``r0``; binaries stage the left operand
  through a temp slot.

The result of compilation is real, verifiable bytecode: the test suite
compiles the paper's Listing 1 verbatim and runs it through the verifier
and the VM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..asm import Asm
from ..context import ProgType
from ..maps import ArrayMap, BpfMap, HashMap, PerfEventArray
from ..helpers import Helper
from ..opcodes import MemSize, Reg
from ..program import Program
from .lexer import CompileError
from .parser import (
    Assign, Binary, BlockStmt, Call, CtxField, ExprStmt, If, MapDecl,
    MethodCall, Name, Num, ProbeDecl, Return, TranslationUnit, Unary, VarDecl,
)

__all__ = ["CompiledUnit", "compile_unit"]

_TYPE_SIZES = {"u32": 4, "s32": 4, "int": 4, "u64": 8, "s64": 8, "long": 8}

_BUILTINS = {
    "bpf_get_current_pid_tgid": Helper.GET_CURRENT_PID_TGID,
    "bpf_ktime_get_ns": Helper.KTIME_GET_NS,
    "bpf_get_prandom_u32": Helper.GET_PRANDOM_U32,
    "bpf_get_smp_processor_id": Helper.GET_SMP_PROCESSOR_ID,
}

_CTX_OFFSETS = {
    "sys_enter": {"id": 8, **{f"args{i}": 16 + 8 * i for i in range(6)}},
    "sys_exit": {"id": 8, "ret": 16},
}

_POINTER_REGS = (Reg.R6, Reg.R7)
_SCRATCH_PTR = Reg.R8

_SIGNED_MIN = -(1 << 31)
_SIGNED_MAX = (1 << 31) - 1


@dataclass
class CompiledUnit:
    """Everything a loader needs: live maps + one program per probe."""

    maps: Dict[str, BpfMap]
    programs: List[Program]
    #: tracepoint name ("raw_syscalls:sys_enter") per program name.
    attach_points: Dict[str, str]


def compile_unit(unit: TranslationUnit,
                 constants: Optional[Dict[str, int]] = None) -> CompiledUnit:
    """Compile a parsed translation unit."""
    constants = dict(constants or {})
    maps: Dict[str, BpfMap] = {}
    for decl in unit.maps:
        if decl.name in maps:
            raise CompileError(f"duplicate map {decl.name!r}", decl.line)
        key_size = _TYPE_SIZES[decl.key_type]
        value_size = _TYPE_SIZES[decl.value_type]
        if decl.kind == "hash":
            maps[decl.name] = HashMap(key_size, value_size, max_entries=decl.size,
                                      name=decl.name)
        elif decl.kind == "array":
            maps[decl.name] = ArrayMap(value_size, max_entries=decl.size,
                                       name=decl.name)
        else:  # perf
            maps[decl.name] = PerfEventArray(cpus=1, per_cpu_capacity=decl.size,
                                             name=decl.name)

    programs: List[Program] = []
    attach_points: Dict[str, str] = {}
    for probe in unit.probes:
        generator = _ProbeCodegen(probe, maps, constants)
        program = generator.generate()
        programs.append(program)
        attach_points[program.name] = f"{probe.category}:{probe.event}"
    return CompiledUnit(maps=maps, programs=programs, attach_points=attach_points)


def _falls_through(block) -> bool:
    """Can control reach past this statement sequence?"""
    for stmt in block:
        if isinstance(stmt, Return):
            return False
        if isinstance(stmt, If) and stmt.orelse:
            if not _falls_through(stmt.then) and not _falls_through(stmt.orelse):
                return False
        if isinstance(stmt, BlockStmt) and not _falls_through(stmt.body):
            return False
    return True


class _ProbeCodegen:
    def __init__(self, probe: ProbeDecl, maps: Dict[str, BpfMap],
                 constants: Dict[str, int]) -> None:
        if probe.category != "raw_syscalls" or probe.event not in _CTX_OFFSETS:
            raise CompileError(
                f"unsupported probe {probe.category}:{probe.event} "
                "(raw_syscalls sys_enter/sys_exit only)", probe.line,
            )
        self.probe = probe
        self.maps = maps
        self.constants = constants
        self.asm = Asm()
        self.ctx_offsets = _CTX_OFFSETS[probe.event]
        self._scalar_slots: Dict[str, int] = {}
        self._pointer_regs: Dict[str, int] = {}
        self._next_slot = 0
        self._temp_depth = 0
        self._max_slots = 56  # 448 bytes of the 512-byte frame
        self._labels = 0

    # -- frame helpers ------------------------------------------------------
    def _fresh_label(self, tag: str) -> str:
        self._labels += 1
        return f"__{tag}_{self._labels}"

    def _alloc_slot(self, line: int) -> int:
        self._next_slot += 1
        if self._next_slot > self._max_slots:
            raise CompileError("out of stack slots (expression too deep?)", line)
        return -8 * self._next_slot

    def _temp_slot(self, line: int) -> int:
        """A temp slot beyond all named locals (stack discipline)."""
        self._temp_depth += 1
        slot_index = len(self._scalar_slots) + self._temp_depth
        if slot_index > self._max_slots:
            raise CompileError("expression too deep", line)
        return -8 * slot_index

    def _release_temp(self) -> None:
        self._temp_depth -= 1

    # -- top level ---------------------------------------------------------
    def generate(self) -> Program:
        asm = self.asm
        asm.mov_reg(Reg.R9, Reg.R1)  # ctx for the whole program
        self._gen_block(self.probe.body)
        # Implicit `return 0` only when the body can fall through; the
        # verifier (like the kernel's) rejects dead code.
        if _falls_through(self.probe.body):
            asm.mov_imm(Reg.R0, 0)
        asm.label("__exit")
        asm.exit_()
        prog_type = (ProgType.tracepoint_sys_enter()
                     if self.probe.event == "sys_enter"
                     else ProgType.tracepoint_sys_exit())
        name = f"{self.probe.category}__{self.probe.event}"
        return Program(name, asm.build(), prog_type)

    def _gen_block(self, block) -> None:
        """Generate a lexical scope: declarations die at the block's end.

        Stack slots are not recycled (monotonic allocation keeps slot
        lifetimes trivially disjoint), but names and pointer *registers* are
        released, so sibling branches can each use the register budget.
        """
        scalar_names = set(self._scalar_slots)
        pointer_names = set(self._pointer_regs)
        live = True
        for stmt in block:
            if not live:
                line = getattr(stmt, "line", 0)
                raise CompileError("unreachable code after return", line)
            self._gen_statement(stmt)
            live = _falls_through((stmt,))
        for name in [n for n in self._scalar_slots if n not in scalar_names]:
            del self._scalar_slots[name]
        for name in [n for n in self._pointer_regs if n not in pointer_names]:
            del self._pointer_regs[name]

    # -- statements -----------------------------------------------------------
    def _gen_statement(self, stmt) -> None:
        if isinstance(stmt, VarDecl):
            self._gen_var_decl(stmt)
        elif isinstance(stmt, Assign):
            self._gen_assign(stmt)
        elif isinstance(stmt, Return):
            self._eval(stmt.value, stmt.line)
            self.asm.ja("__exit")
        elif isinstance(stmt, If):
            self._gen_if(stmt)
        elif isinstance(stmt, BlockStmt):
            self._gen_block(stmt.body)
        elif isinstance(stmt, ExprStmt):
            self._eval(stmt.expr, stmt.line)
        else:  # pragma: no cover
            raise CompileError(f"unsupported statement {stmt!r}", 0)

    def _gen_var_decl(self, stmt: VarDecl) -> None:
        if stmt.name in self._scalar_slots or stmt.name in self._pointer_regs:
            raise CompileError(f"redeclaration of {stmt.name!r}", stmt.line)
        if stmt.name in self.maps or stmt.name in self.constants:
            raise CompileError(f"{stmt.name!r} shadows a map/constant", stmt.line)
        if stmt.ctype.endswith("*"):
            if not isinstance(stmt.init, MethodCall) or stmt.init.method != "lookup":
                raise CompileError(
                    "pointer variables must be initialized from map.lookup()",
                    stmt.line,
                )
            if len(self._pointer_regs) >= len(_POINTER_REGS):
                raise CompileError("too many live pointer variables (max 2)",
                                   stmt.line)
            self._eval(stmt.init, stmt.line)  # pointer (or NULL) in r0
            register = _POINTER_REGS[len(self._pointer_regs)]
            self._pointer_regs[stmt.name] = register
            self.asm.mov_reg(register, Reg.R0)
            return
        slot = self._alloc_slot(stmt.line)
        self._scalar_slots[stmt.name] = slot
        if stmt.init is None:
            self.asm.st_imm(MemSize.DW, Reg.R10, slot, 0)
        else:
            self._eval(stmt.init, stmt.line)
            self.asm.stx(MemSize.DW, Reg.R10, slot, Reg.R0)

    def _gen_assign(self, stmt: Assign) -> None:
        asm = self.asm
        value_expr = stmt.value
        if stmt.op != "=":
            # x op= v  ->  x = x op v (same for *p).
            value_expr = Binary(op=stmt.op[:-1], lhs=stmt.target, rhs=stmt.value)
        if isinstance(stmt.target, Name):
            name = stmt.target.ident
            if name in self._pointer_regs:
                raise CompileError("cannot reassign pointer variables", stmt.line)
            slot = self._scalar_slots.get(name)
            if slot is None:
                raise CompileError(f"assignment to undeclared {name!r}", stmt.line)
            self._eval(value_expr, stmt.line)
            asm.stx(MemSize.DW, Reg.R10, slot, Reg.R0)
            return
        # *p = value
        pointer = stmt.target.operand.ident
        register = self._pointer_regs.get(pointer)
        if register is None:
            raise CompileError(f"{pointer!r} is not a pointer variable", stmt.line)
        self._eval(value_expr, stmt.line)
        asm.stx(MemSize.DW, register, 0, Reg.R0)

    def _gen_if(self, stmt: If) -> None:
        asm = self.asm
        else_label = self._fresh_label("else")
        end_label = self._fresh_label("endif")
        self._eval_condition(stmt.cond, stmt.line, false_label=else_label)
        self._gen_block(stmt.then)
        if stmt.orelse:
            asm.ja(end_label)
        asm.label(else_label)
        if stmt.orelse:
            self._gen_block(stmt.orelse)
            asm.label(end_label)

    def _eval_condition(self, cond, line: int, false_label: str) -> None:
        """Evaluate cond; jump to false_label when it is false (0)."""
        # Pointer null-checks get dedicated handling (no scalar conversion).
        pointer = self._as_pointer_operand(cond)
        if pointer is not None:
            register, negated = pointer
            if negated:  # if (!p): false-branch when p != 0
                self.asm.jne_imm(register, 0, false_label)
            else:  # if (p): false-branch when p == 0
                self.asm.jeq_imm(register, 0, false_label)
            return
        self._eval(cond, line)
        self.asm.jeq_imm(Reg.R0, 0, false_label)

    def _as_pointer_operand(self, expr) -> Optional[Tuple[int, bool]]:
        if isinstance(expr, Name) and expr.ident in self._pointer_regs:
            return self._pointer_regs[expr.ident], False
        if (isinstance(expr, Unary) and expr.op == "!"
                and isinstance(expr.operand, Name)
                and expr.operand.ident in self._pointer_regs):
            return self._pointer_regs[expr.operand.ident], True
        if (isinstance(expr, Binary) and expr.op in ("==", "!=")
                and isinstance(expr.lhs, Name)
                and expr.lhs.ident in self._pointer_regs
                and isinstance(expr.rhs, Num) and expr.rhs.value == 0):
            register = self._pointer_regs[expr.lhs.ident]
            return register, expr.op == "=="
        return None

    # -- expressions ---------------------------------------------------------
    def _eval(self, expr, line: int) -> None:
        """Evaluate a (scalar or lookup) expression into r0."""
        asm = self.asm
        if isinstance(expr, Num):
            if _SIGNED_MIN <= expr.value <= _SIGNED_MAX:
                asm.mov_imm(Reg.R0, expr.value)
            else:
                asm.ld_imm64(Reg.R0, expr.value)
        elif isinstance(expr, Name):
            self._eval_name(expr, line)
        elif isinstance(expr, CtxField):
            offset = self.ctx_offsets.get(expr.field)
            if offset is None:
                raise CompileError(
                    f"ctx field {expr.field!r} not available in "
                    f"{self.probe.event}", line,
                )
            asm.ldx(MemSize.DW, Reg.R0, Reg.R9, offset)
        elif isinstance(expr, Unary):
            self._eval_unary(expr, line)
        elif isinstance(expr, Binary):
            self._eval_binary(expr, line)
        elif isinstance(expr, Call):
            helper = _BUILTINS.get(expr.func)
            if helper is None:
                raise CompileError(f"unknown function {expr.func!r}", line)
            if expr.args:
                raise CompileError(f"{expr.func} takes no arguments", line)
            asm.call(helper)
        elif isinstance(expr, MethodCall):
            self._eval_method(expr, line)
        else:  # pragma: no cover
            raise CompileError(f"unsupported expression {expr!r}", line)

    def _eval_name(self, expr: Name, line: int) -> None:
        slot = self._scalar_slots.get(expr.ident)
        if slot is not None:
            self.asm.ldx(MemSize.DW, Reg.R0, Reg.R10, slot)
            return
        if expr.ident in self._pointer_regs:
            raise CompileError(
                f"pointer {expr.ident!r} used as a scalar (deref it?)", line
            )
        if expr.ident in self.constants:
            value = self.constants[expr.ident]
            if _SIGNED_MIN <= value <= _SIGNED_MAX:
                self.asm.mov_imm(Reg.R0, value)
            else:
                self.asm.ld_imm64(Reg.R0, value)
            return
        raise CompileError(f"undeclared identifier {expr.ident!r}", line)

    def _eval_unary(self, expr: Unary, line: int) -> None:
        asm = self.asm
        if expr.op == "&":
            raise CompileError("'&' is only valid in map call arguments", line)
        if expr.op == "*":
            if not (isinstance(expr.operand, Name)
                    and expr.operand.ident in self._pointer_regs):
                raise CompileError("'*' requires a pointer variable", line)
            register = self._pointer_regs[expr.operand.ident]
            asm.ldx(MemSize.DW, Reg.R0, register, 0)
            return
        self._eval(expr.operand, line)
        if expr.op == "-":
            asm.neg(Reg.R0)
        elif expr.op == "~":
            asm.mov_imm(Reg.R1, -1)
            asm.xor_reg(Reg.R0, Reg.R1)
        elif expr.op == "!":
            done = self._fresh_label("bang")
            asm.mov_reg(Reg.R1, Reg.R0)
            asm.mov_imm(Reg.R0, 1)
            asm.jeq_imm(Reg.R1, 0, done)
            asm.mov_imm(Reg.R0, 0)
            asm.label(done)
        else:  # pragma: no cover
            raise CompileError(f"unsupported unary {expr.op!r}", line)

    _ARITH = {"+": "add_reg", "-": "sub_reg", "*": "mul_reg", "/": "div_reg",
              "%": "mod_reg", "^": "xor_reg", "&": "and_reg", "|": "or_reg",
              "<<": "lsh_reg", ">>": "rsh_reg"}
    _COMPARE = {"==": "jeq_reg", "!=": "jne_reg", "<": "jlt_reg", ">=": "jge_reg"}

    def _eval_binary(self, expr: Binary, line: int) -> None:
        asm = self.asm
        op = expr.op
        if op in ("&&", "||"):
            self._eval_logical(expr, line)
            return
        # Normalize >, <= onto <, >= by swapping operands.
        lhs, rhs = expr.lhs, expr.rhs
        if op == ">":
            op, lhs, rhs = "<", rhs, lhs
        elif op == "<=":
            op, lhs, rhs = ">=", rhs, lhs

        self._eval(lhs, line)
        slot = self._temp_slot(line)
        asm.stx(MemSize.DW, Reg.R10, slot, Reg.R0)
        self._eval(rhs, line)
        asm.mov_reg(Reg.R1, Reg.R0)
        asm.ldx(MemSize.DW, Reg.R0, Reg.R10, slot)
        self._release_temp()

        if op in self._ARITH:
            getattr(asm, self._ARITH[op])(Reg.R0, Reg.R1)
        elif op in self._COMPARE:
            true_label = self._fresh_label("cmp")
            done = self._fresh_label("cmpend")
            getattr(asm, self._COMPARE[op])(Reg.R0, Reg.R1, true_label)
            asm.mov_imm(Reg.R0, 0)
            asm.ja(done)
            asm.label(true_label)
            asm.mov_imm(Reg.R0, 1)
            asm.label(done)
        else:  # pragma: no cover
            raise CompileError(f"unsupported operator {op!r}", line)

    def _eval_logical(self, expr: Binary, line: int) -> None:
        """Short-circuit && / || producing 0/1 in r0."""
        asm = self.asm
        short = self._fresh_label("sc")
        done = self._fresh_label("scend")
        self._eval(expr.lhs, line)
        if expr.op == "&&":
            asm.jeq_imm(Reg.R0, 0, short)  # lhs false -> 0
        else:
            asm.jne_imm(Reg.R0, 0, short)  # lhs true -> 1
        self._eval(expr.rhs, line)
        # Normalize rhs to 0/1.
        truthy = self._fresh_label("truthy")
        asm.jne_imm(Reg.R0, 0, truthy)
        asm.mov_imm(Reg.R0, 0)
        asm.ja(done)
        asm.label(truthy)
        asm.mov_imm(Reg.R0, 1)
        asm.ja(done)
        asm.label(short)
        asm.mov_imm(Reg.R0, 0 if expr.op == "&&" else 1)
        asm.label(done)

    # -- map calls ---------------------------------------------------------
    def _addr_of_local(self, arg, line: int) -> int:
        if not (isinstance(arg, Unary) and arg.op == "&"
                and isinstance(arg.operand, Name)):
            raise CompileError("map call arguments must be &local", line)
        slot = self._scalar_slots.get(arg.operand.ident)
        if slot is None:
            raise CompileError(
                f"&{arg.operand.ident}: not a declared scalar local", line
            )
        return slot

    def _eval_method(self, expr: MethodCall, line: int) -> None:
        asm = self.asm
        bpf_map = self.maps.get(expr.map_name)
        if bpf_map is None:
            raise CompileError(f"unknown map {expr.map_name!r}", line)
        if expr.method == "lookup":
            if len(expr.args) != 1:
                raise CompileError("lookup takes exactly (&key)", line)
            key_slot = self._addr_of_local(expr.args[0], line)
            asm.ld_map_fd(Reg.R1, expr.map_name)
            asm.mov_reg(Reg.R2, Reg.R10)
            asm.add_imm(Reg.R2, key_slot)
            asm.call(Helper.MAP_LOOKUP_ELEM)
        elif expr.method == "update":
            if len(expr.args) != 2:
                raise CompileError("update takes exactly (&key, &value)", line)
            key_slot = self._addr_of_local(expr.args[0], line)
            value_slot = self._addr_of_local(expr.args[1], line)
            asm.ld_map_fd(Reg.R1, expr.map_name)
            asm.mov_reg(Reg.R2, Reg.R10)
            asm.add_imm(Reg.R2, key_slot)
            asm.mov_reg(Reg.R3, Reg.R10)
            asm.add_imm(Reg.R3, value_slot)
            asm.mov_imm(Reg.R4, 0)
            asm.call(Helper.MAP_UPDATE_ELEM)
        elif expr.method == "delete":
            if len(expr.args) != 1:
                raise CompileError("delete takes exactly (&key)", line)
            key_slot = self._addr_of_local(expr.args[0], line)
            asm.ld_map_fd(Reg.R1, expr.map_name)
            asm.mov_reg(Reg.R2, Reg.R10)
            asm.add_imm(Reg.R2, key_slot)
            asm.call(Helper.MAP_DELETE_ELEM)
        elif expr.method == "increment":
            self._eval_increment(expr, bpf_map, line)
        elif expr.method == "perf_submit":
            self._eval_perf_submit(expr, bpf_map, line)
        else:  # pragma: no cover
            raise CompileError(f"unknown map method {expr.method!r}", line)

    def _eval_perf_submit(self, expr: MethodCall, bpf_map, line: int) -> None:
        """BCC's events.perf_submit(args, &data, size)."""
        asm = self.asm
        if not isinstance(bpf_map, PerfEventArray):
            raise CompileError(
                f"{expr.map_name!r} is not a BPF_PERF_OUTPUT", line
            )
        if len(expr.args) != 3:
            raise CompileError(
                "perf_submit takes exactly (args, &data, size)", line
            )
        ctx_arg, data_arg, size_arg = expr.args
        if not (isinstance(ctx_arg, Name) and ctx_arg.ident in ("args", "ctx")):
            raise CompileError("perf_submit's first argument must be args", line)
        data_slot = self._addr_of_local(data_arg, line)
        if not isinstance(size_arg, Num) or not 1 <= size_arg.value <= 8:
            raise CompileError(
                "perf_submit size must be a literal 1..8 (one local slot)", line
            )
        asm.mov_reg(Reg.R1, Reg.R9)  # ctx
        asm.ld_map_fd(Reg.R2, expr.map_name)
        asm.mov_imm(Reg.R3, 0)
        asm.mov_reg(Reg.R4, Reg.R10)
        asm.add_imm(Reg.R4, data_slot)
        asm.mov_imm(Reg.R5, size_arg.value)
        asm.call(Helper.PERF_EVENT_OUTPUT)

    def _eval_increment(self, expr: MethodCall, bpf_map: BpfMap, line: int) -> None:
        """BCC's map.increment(key): lookup-or-init then (*value)++."""
        asm = self.asm
        if len(expr.args) != 1:
            raise CompileError("increment takes exactly (key)", line)
        key_slot = self._temp_slot(line)
        value_slot = self._temp_slot(line)
        self._eval(expr.args[0], line)
        asm.stx(MemSize.DW, Reg.R10, key_slot, Reg.R0)

        found = self._fresh_label("incfound")
        done = self._fresh_label("incdone")
        asm.ld_map_fd(Reg.R1, expr.map_name)
        asm.mov_reg(Reg.R2, Reg.R10)
        asm.add_imm(Reg.R2, key_slot)
        asm.call(Helper.MAP_LOOKUP_ELEM)
        asm.jne_imm(Reg.R0, 0, found)
        # Missing entry: seed it with 1.
        asm.st_imm(MemSize.DW, Reg.R10, value_slot, 1)
        asm.ld_map_fd(Reg.R1, expr.map_name)
        asm.mov_reg(Reg.R2, Reg.R10)
        asm.add_imm(Reg.R2, key_slot)
        asm.mov_reg(Reg.R3, Reg.R10)
        asm.add_imm(Reg.R3, value_slot)
        asm.mov_imm(Reg.R4, 0)
        asm.call(Helper.MAP_UPDATE_ELEM)
        asm.ja(done)
        asm.label(found)
        asm.mov_reg(_SCRATCH_PTR, Reg.R0)
        width = MemSize.DW if bpf_map.value_size == 8 else MemSize.W
        asm.ldx(width, Reg.R1, _SCRATCH_PTR, 0)
        asm.add_imm(Reg.R1, 1)
        asm.stx(width, _SCRATCH_PTR, 0, Reg.R1)
        asm.label(done)
        asm.mov_imm(Reg.R0, 0)
        self._release_temp()
        self._release_temp()
