"""ABL-SIG — which delta statistic detects saturation best? (§IV-C-1)

Compares three candidate in-kernel signals over the same sweeps:
* mean(Δt_send)         — tracks rate, monotone, no knee;
* var(Δt_send) (Eq. 2)  — the paper's choice; raw form is rate-dependent;
* var/mean² (dispersion)— rate-independent variant.

A good saturation signal should fire near the QoS-failure point: not at
40 % load, not never.
"""

from __future__ import annotations

from conftest import emit, sweep_cache

from repro.analysis import save_record, series_table
from repro.core import detect_knee
from repro.sim import SEC


def knee_at(xs, ys) -> float:
    knee = detect_knee(xs, ys, baseline_fraction=0.4, threshold_factor=3.0)
    return None if knee is None else knee.x


def analyze(sweep) -> dict:
    xs = sweep.achieved
    mean_deltas = [SEC / l.rps_obsv if l.rps_obsv else 0.0 for l in sweep.levels]
    return {
        "workload": sweep.workload,
        "qos_fail": sweep.qos_failure_rps(),
        "knee_mean": knee_at(xs, mean_deltas),
        "knee_var": knee_at(xs, sweep.variances),
        "knee_dispersion": knee_at(xs, sweep.dispersion),
    }


def test_signal_ablation(benchmark, sweep_cache):
    def run():
        return [analyze(sweep_cache.full_sweep(key))
                for key in ("xapian", "triton-grpc", "data-caching")]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_record({"ablation": "signals", "rows": rows}, "abl_signals")

    emit("ABL-SIG — saturation-detection knee per candidate signal")
    emit(series_table({
        "workload": [r["workload"] for r in rows],
        "QoS fail": [r["qos_fail"] for r in rows],
        "mean knee": [str(r["knee_mean"]) for r in rows],
        "var knee": [str(r["knee_var"]) for r in rows],
        "disp. knee": [str(r["knee_dispersion"]) for r in rows],
    }))

    for row in rows:
        fail = row["qos_fail"]
        assert fail is not None, row["workload"]
        # mean(delta) only falls with load; a rise-detector never fires.
        assert row["knee_mean"] is None, row["workload"]
        # The dispersion form fires, in the saturation neighbourhood.
        assert row["knee_dispersion"] is not None, row["workload"]
        assert row["knee_dispersion"] >= 0.5 * fail, row["workload"]
