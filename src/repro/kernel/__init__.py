"""Simulated Linux-like kernel: scheduler, syscalls, sockets, tracepoints."""

from .cpu import CPU
from .dvfs import DEFAULT_PSTATES, DvfsDriver, PState
from .interference import InterferenceModel, NullInterference
from .kernel import Kernel
from .machine import AMD_EPYC_7302, INTEL_XEON_E5_2620, MACHINES, MachineSpec
from .objects import FdTable, FileDescriptor
from .polling import EpollInstance, wait_for_readable
from .sockets import ListenSocket, SocketEndpoint, connect_pair
from .syscalls import (
    POLL_FAMILY,
    RECV_FAMILY,
    SEND_FAMILY,
    SETUP_SYSCALLS,
    SYSCALL_NAMES,
    Sys,
    SyscallFamily,
    SyscallSpec,
    family_of,
    nr_of,
)
from .threads import KernelTask, KProcess
from .tracelog import SyscallRecord, TraceRecorder
from .tracepoints import SysEnterCtx, SysExitCtx, Tracepoint, TracepointBus

__all__ = [
    "Kernel",
    "CPU",
    "DvfsDriver",
    "PState",
    "DEFAULT_PSTATES",
    "MachineSpec",
    "MACHINES",
    "AMD_EPYC_7302",
    "INTEL_XEON_E5_2620",
    "InterferenceModel",
    "NullInterference",
    "FileDescriptor",
    "FdTable",
    "EpollInstance",
    "wait_for_readable",
    "SocketEndpoint",
    "ListenSocket",
    "connect_pair",
    "KProcess",
    "KernelTask",
    "Sys",
    "SyscallFamily",
    "SyscallSpec",
    "SYSCALL_NAMES",
    "nr_of",
    "family_of",
    "RECV_FAMILY",
    "SEND_FAMILY",
    "POLL_FAMILY",
    "SETUP_SYSCALLS",
    "SysEnterCtx",
    "SysExitCtx",
    "Tracepoint",
    "TracepointBus",
    "SyscallRecord",
    "TraceRecorder",
]
