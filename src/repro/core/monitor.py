"""The high-level observability façade: one monitor per target process.

:class:`RequestMetricsMonitor` bundles the three collectors the paper's
methodology needs — send-family deltas (Eq. 1 + Eq. 2), recv-family deltas,
and poll-family durations (saturation slack) — behind a windowed snapshot
API.  This is the interface a management runtime (power governor, resource
allocator) would consume (§VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..kernel.kernel import Kernel
from ..kernel.syscalls import POLL_FAMILY, RECV_FAMILY, SEND_FAMILY, SyscallSpec
from ..sim.timebase import SEC
from .collectors import DeltaCollector, DurationCollector, DurationStats
from .config import CollectorConfig, resolve_collector_config
from .deltas import DeltaStats
from .histograms import DeltaHistogram
from .streaming import StreamingDeltaCollector

__all__ = ["RequestMetricsMonitor", "MetricsSnapshot"]


@dataclass(frozen=True)
class MetricsSnapshot:
    """One observation window's worth of request-level observability."""

    window_start_ns: int
    window_end_ns: int
    send: DeltaStats
    recv: DeltaStats
    poll: DurationStats
    #: Collection-path records dropped in this window (stream mode only:
    #: the in-kernel collectors never lose events, so these stay 0).
    send_lost: int = 0
    recv_lost: int = 0
    #: Log2 delta histograms (export pipeline only; ``None`` otherwise).
    send_hist: Optional[DeltaHistogram] = None
    recv_hist: Optional[DeltaHistogram] = None

    @property
    def duration_ns(self) -> int:
        return self.window_end_ns - self.window_start_ns

    @property
    def rps_obsv(self) -> float:
        """Eq. 1 over the send family."""
        return self.send.rps_obsv()

    @property
    def rps_obsv_recv(self) -> float:
        """Eq. 1 computed from the recv family (ABL-RECV)."""
        return self.recv.rps_obsv()

    @property
    def send_delta_variance(self) -> int:
        """Eq. 2 over the send family (integer, in-kernel form)."""
        return self.send.variance_ns2()

    @property
    def recv_delta_variance(self) -> int:
        return self.recv.variance_ns2()

    @property
    def send_delta_cov2(self) -> float:
        """Rate-independent dispersion index of send deltas."""
        return self.send.cov2()

    @property
    def poll_mean_duration_ns(self) -> int:
        """Mean poll-family syscall duration — the idleness signal."""
        return self.poll.mean_ns()

    # -- degraded-collection accounting ---------------------------------
    @property
    def lost_records(self) -> int:
        """Total collection-path drops charged to this window."""
        return self.send_lost + self.recv_lost

    @property
    def confidence(self) -> float:
        """Fraction of send-family events that actually reached the
        statistics (1.0 = nothing dropped).  Consumers should treat
        windows with low confidence as known-degraded rather than
        trusting the raw Eq. 1/Eq. 2 values."""
        seen = self.send.events
        total = seen + self.send_lost
        return seen / total if total else 1.0

    @property
    def recv_confidence(self) -> float:
        seen = self.recv.events
        total = seen + self.recv_lost
        return seen / total if total else 1.0

    @property
    def overall_confidence(self) -> float:
        """Event-weighted confidence over *both* monitored families.

        ``confidence`` alone counts only send-family drops, so a recv-only
        outage (``recv_lost > 0, send_lost == 0``) would report a perfect
        1.0 while ``lost_records`` says otherwise.  This is the combined
        fraction of all send+recv events that reached the statistics — the
        number downstream consumers (LevelResult, the cross-layer
        correlator) should trust.
        """
        seen = self.send.events + self.recv.events
        total = seen + self.send_lost + self.recv_lost
        return seen / total if total else 1.0

    @property
    def degraded(self) -> bool:
        """True when any collection-path drop degraded this window."""
        return self.lost_records > 0

    @property
    def rps_obsv_corrected(self) -> float:
        """Eq. 1 corrected for known drops.  The send-delta sum telescopes
        to ``last_seen - first_seen`` no matter how many interior events
        were dropped, so re-crediting the lost count to the numerator
        recovers the true rate (up to edge effects at the window rim)."""
        if self.send.sum <= 0:
            return self.rps_obsv
        return SEC * (self.send.count + self.send_lost) / self.send.sum

    @property
    def recv_rate_corrected(self) -> float:
        """The recv-family counterpart of :attr:`rps_obsv_corrected`.

        Same telescoping argument, applied to recv deltas: re-crediting
        ``recv_lost`` to the numerator recovers the true recv rate.  The
        correlator needs both sides drop-corrected before judging whether
        a window's kernel view disagrees with the app's."""
        if self.recv.sum <= 0:
            return self.rps_obsv_recv
        return SEC * (self.recv.count + self.recv_lost) / self.recv.sum

    # -- composition -----------------------------------------------------
    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two windows: statistics merge, losses add, the window
        bounds take the extremes, histograms sum (``None``-aware)."""
        def merge_hists(a, b):
            if a is None:
                return b
            if b is None:
                return a
            return a.merge(b)
        return MetricsSnapshot(
            window_start_ns=min(self.window_start_ns, other.window_start_ns),
            window_end_ns=max(self.window_end_ns, other.window_end_ns),
            send=self.send.merge(other.send),
            recv=self.recv.merge(other.recv),
            poll=self.poll.merge(other.poll),
            send_lost=self.send_lost + other.send_lost,
            recv_lost=self.recv_lost + other.recv_lost,
            send_hist=merge_hists(self.send_hist, other.send_hist),
            recv_hist=merge_hists(self.recv_hist, other.recv_hist),
        )

    @staticmethod
    def merge_all(windows: Iterable["MetricsSnapshot"]) -> "MetricsSnapshot":
        """Fold a non-empty window sequence into one composite snapshot.

        With contiguous windows this reproduces the unwindowed totals
        exactly (the carried-anchor semantics make per-window delta
        populations a partition of the full trace's).
        """
        iterator = iter(windows)
        try:
            merged = next(iterator)
        except StopIteration:
            raise ValueError("merge_all needs at least one window") from None
        for window in iterator:
            merged = merged.merge(window)
        return merged

    def __repr__(self) -> str:
        return (
            f"<MetricsSnapshot rps={self.rps_obsv:.1f} "
            f"var={self.send_delta_variance} poll={self.poll_mean_duration_ns}ns"
            + (f" lost={self.lost_records}" if self.degraded else "")
            + ">"
        )

class RequestMetricsMonitor:
    """Attach/observe/window the paper's three signals for one process.

    Parameters
    ----------
    kernel, tgid:
        Target kernel and process.
    spec:
        The workload's :class:`~repro.kernel.syscalls.SyscallSpec`.  When
        omitted, whole families are monitored (the deployable blackbox
        configuration — no per-app knowledge needed).
    config:
        A :class:`~repro.core.config.CollectorConfig` (or a bare mode
        string) describing the whole collection pipeline.  ``mode`` picks
        the strategy: ``"vm"`` for interpreted eBPF collectors,
        ``"native"`` for the fast equivalent path, ``"stream"`` for the
        paper's first methodology — per-event perf streaming with
        userspace aggregation.  Stream mode is the only one that can
        *lose* events (slow consumer, full perf buffer); losses surface
        as ``MetricsSnapshot.send_lost``/``recv_lost`` so downstream
        consumers see degraded confidence instead of silently wrong
        rates.  ``cpus`` shards the collection state (vm/native) or fans
        out the perf rings (stream); ``capacity`` sizes the per-CPU perf
        rings; ``vm_tier`` pins the eBPF VM tier (all tiers bit-for-bit
        identical); ``charge_cost`` charges probe cost to traced
        syscalls (the overhead study).  A non-``None`` ``export`` starts
        the streaming Prometheus stage: a simulated-time loop closes a
        window every ``export.window_ns``, feeds it to the attached
        :class:`~repro.export.PrometheusExporter` (``self.exporter``)
        and renders a scrape.  Poll durations always run in-kernel: in
        stream mode the streamed record carries no entry/exit pairing,
        exactly as in the paper's first methodology.

        The old per-knob keywords (``mode``, ``charge_cost``,
        ``stream_capacity``, ``vm_tier``, ``cpus``) are removed: supplying
        any of them raises :class:`TypeError` with the migration hint.

    Note: with export enabled the window loop keeps a simulated event
    pending forever, so drive the environment with an explicit
    ``env.run(until=...)`` target rather than run-to-empty-schedule.
    """

    def __init__(
        self,
        kernel: Kernel,
        tgid: int,
        spec: Optional[SyscallSpec] = None,
        config: Union[None, str, CollectorConfig] = None,
        *,
        mode: Optional[str] = None,
        charge_cost: Optional[bool] = None,
        stream_capacity: Optional[int] = None,
        vm_tier: Optional[str] = None,
        cpus: Optional[int] = None,
    ) -> None:
        config = resolve_collector_config(
            config, "RequestMetricsMonitor",
            mode=mode, charge_cost=charge_cost, stream_capacity=stream_capacity,
            vm_tier=vm_tier, cpus=cpus,
        )
        self.config = config
        self.kernel = kernel
        self.tgid = tgid
        self.mode = config.mode
        self.vm_tier = config.vm_tier
        self.cpus = config.cpus
        send_nrs = (spec.send_nr,) if spec else tuple(sorted(SEND_FAMILY))
        recv_nrs = (spec.recv_nr,) if spec else tuple(sorted(RECV_FAMILY))
        poll_nrs = (spec.poll_nr,) if spec else tuple(sorted(POLL_FAMILY))
        if config.mode == "stream":
            self.send_collector = StreamingDeltaCollector(
                kernel, tgid, send_nrs, config, name="send")
            self.recv_collector = StreamingDeltaCollector(
                kernel, tgid, recv_nrs, config, name="recv")
            # Poll durations need syscall entry *and* exit pairing, which
            # the streamed record format does not carry; the paper's first
            # methodology measured durations in-kernel too.
            poll_config = config.replace(mode="native")
        else:
            self.send_collector = DeltaCollector(
                kernel, tgid, send_nrs, config, name="send")
            self.recv_collector = DeltaCollector(
                kernel, tgid, recv_nrs, config, name="recv")
            poll_config = config
        self.poll_collector = DurationCollector(
            kernel, tgid, poll_nrs, poll_config, name="poll")
        #: The attached Prometheus export stage (``None`` when export is
        #: off).  Windows land here every ``export.window_ns`` of sim time.
        self.exporter = None
        if config.export is not None:
            # Imported lazily: repro.export consumes repro.core types, so a
            # module-level import here would be circular.
            from ..export.exporter import PrometheusExporter
            self.exporter = PrometheusExporter(config.export)
        self._window_start: Optional[int] = None
        self._attached = False
        self._export_epoch = 0

    # -- lifecycle ---------------------------------------------------------
    def attach(self) -> "RequestMetricsMonitor":
        self.send_collector.attach()
        self.recv_collector.attach()
        self.poll_collector.attach()
        self._window_start = self.kernel.env.now
        self._attached = True
        if self.exporter is not None:
            self._export_epoch += 1
            self.kernel.env.process(
                self._export_loop(self._export_epoch), name="prom-export")
        return self

    def detach(self) -> None:
        self.send_collector.detach()
        self.recv_collector.detach()
        self.poll_collector.detach()
        self._attached = False

    def __enter__(self) -> "RequestMetricsMonitor":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- windows ---------------------------------------------------------
    def snapshot(self, reset: bool = False) -> MetricsSnapshot:
        """Read the current window; optionally start a fresh one."""
        if not self._attached:
            raise RuntimeError("monitor is not attached")
        snap = MetricsSnapshot(
            window_start_ns=self._window_start if self._window_start is not None else 0,
            window_end_ns=self.kernel.env.now,
            send=self.send_collector.snapshot(),
            recv=self.recv_collector.snapshot(),
            poll=self.poll_collector.snapshot(),
            send_lost=getattr(self.send_collector, "lost_in_window", 0),
            recv_lost=getattr(self.recv_collector, "lost_in_window", 0),
            send_hist=self.send_collector.hist_snapshot(),
            recv_hist=self.recv_collector.hist_snapshot(),
        )
        if reset:
            self.reset_window()
        return snap

    def reset_window(self) -> None:
        self.send_collector.reset_window()
        self.recv_collector.reset_window()
        self.poll_collector.reset_window()
        self._window_start = self.kernel.env.now

    # -- export ----------------------------------------------------------
    def _export_loop(self, epoch: int):
        """Simulated-time export driver: close a window every
        ``export.window_ns``, feed it to the exporter, render a scrape.

        The epoch guard retires a stale loop after detach()/re-attach():
        the superseded generator wakes once more, sees a newer epoch, and
        returns without touching the collectors.
        """
        window_ns = self.config.export.window_ns
        env = self.kernel.env
        while self._attached and self._export_epoch == epoch:
            yield env.timeout(window_ns)
            if not self._attached or self._export_epoch != epoch:
                return
            self.exporter.observe_window(self.snapshot(reset=True))
            self.exporter.scrape()
