"""The export pipeline's central contract: exposition text round-trips
through a conformant parser with every counter and histogram bucket
bit-identical to the source DeltaStats — across all three VM tiers, both
aggregation modes and perf streaming, including degraded (lost-record)
windows."""

import pytest

from repro.core import (
    NBUCKETS,
    CollectorConfig,
    ExportConfig,
    MetricsSnapshot,
    RequestMetricsMonitor,
    bucket_upper_bound,
)
from repro.export.parser import parse_text
from repro.kernel import Kernel, MachineSpec, Sys
from repro.net import Message
from repro.sim import MSEC, Environment, SeedSequence

CONFIGS = [
    ("native", None),
    ("vm", "reference"),
    ("vm", "fast"),
    ("vm", "compiled"),
    ("stream", None),
]


def _kernel():
    spec = MachineSpec(name="t", cores=4, ctx_switch_ns=0, syscall_overhead_ns=0)
    return Kernel(Environment(), spec, SeedSequence(1), interference=False)


def _echo_server(kernel, sends=20, period_ms=2):
    env = kernel.env
    proc = kernel.create_process("srv")
    client, server = kernel.open_connection()

    def worker(task):
        ep = yield from task.sys_epoll_create1()
        yield from task.sys_epoll_ctl(ep, server)
        for _ in range(sends):
            yield from task.sys_epoll_wait(ep)
            msg = yield from task.sys_read(server)
            yield from task.sys_sendmsg(server, Message(size=msg.size))

    proc.spawn_thread(worker)

    def driver():
        for _ in range(sends):
            yield env.timeout(period_ms * MSEC)
            client.send(Message(size=64))

    env.process(driver())
    return proc


def _run_export(mode, tier, capacity=65536, sends=20, period_ms=2,
                window_ms=5):
    kernel = _kernel()
    proc = _echo_server(kernel, sends=sends, period_ms=period_ms)
    config = CollectorConfig(
        mode=mode, vm_tier=tier, capacity=capacity,
        export=ExportConfig(window_ns=window_ms * MSEC),
    )
    monitor = RequestMetricsMonitor(kernel, proc.pid, config=config).attach()
    kernel.env.run(until=(sends * period_ms + 3) * MSEC)
    # Close the partial tail window the way execute_cell does.
    monitor.exporter.observe_window(monitor.snapshot(reset=True))
    return monitor


def _value(families, base, suffix="", **labels):
    """The unique sample of ``base+suffix`` matching the given labels."""
    matches = [
        s for s in families[base].samples
        if s.name == base + suffix
        and all(s.labels.get(k) == v for k, v in labels.items())
    ]
    assert len(matches) == 1, (base, suffix, labels, matches)
    return matches[0].value


def _check_against_source(monitor, families, text):
    """Every exported counter/histogram equals the merged source windows."""
    merged = MetricsSnapshot.merge_all(monitor.exporter.windows)
    for family_name, stats, hist, lost in (
        ("send", merged.send, merged.send_hist, merged.send_lost),
        ("recv", merged.recv, merged.recv_hist, merged.recv_lost),
    ):
        label = {"family": family_name}
        assert _value(families, "repro_observed_syscalls", "_total",
                      **label) == stats.events
        assert _value(families, "repro_deltas", "_total", **label) == stats.count
        assert _value(families, "repro_delta_sum_ns", "_total",
                      **label) == stats.sum
        assert _value(families, "repro_delta_sumsq_ns2", "_total",
                      **label) == stats.sumsq
        assert _value(families, "repro_lost_records", "_total", **label) == lost
        # Exact decimal text (no float detour), past what parsing can prove.
        assert (f'repro_delta_sum_ns_total{{family="{family_name}"}} '
                f"{stats.sum}\n") in text
        assert (f'repro_delta_sumsq_ns2_total{{family="{family_name}"}} '
                f"{stats.sumsq}\n") in text
        # The in-probe log2 histogram, bucket by bucket.
        cumulative = hist.cumulative()
        for bucket in range(NBUCKETS):
            assert _value(families, "repro_delta_ns", "_bucket", **label,
                          le=str(bucket_upper_bound(bucket))
                          ) == cumulative[bucket]
        assert _value(families, "repro_delta_ns", "_bucket", **label,
                      le="+Inf") == hist.total
        assert _value(families, "repro_delta_ns", "_sum", **label) == stats.sum
        assert _value(families, "repro_delta_ns", "_count",
                      **label) == hist.total
        # The invariant tying the two representations together.
        assert hist.total == stats.count
    assert _value(families, "repro_poll_duration_ns", "_count"
                  ) == merged.poll.count
    assert _value(families, "repro_poll_duration_ns", "_sum"
                  ) == merged.poll.sum
    assert _value(families, "repro_windows", "_total"
                  ) == len(monitor.exporter.windows)


@pytest.mark.parametrize("mode,tier", CONFIGS,
                         ids=[f"{m}-{t or 'default'}" for m, t in CONFIGS])
def test_roundtrip_matches_source_stats(mode, tier):
    monitor = _run_export(mode, tier)
    assert len(monitor.exporter.windows) >= 5
    for openmetrics in (False, True):
        text = monitor.exporter.render(openmetrics=openmetrics)
        _check_against_source(monitor, parse_text(text), text)


def test_bit_identical_across_all_configurations():
    """Five collection pipelines, one workload, byte-identical expositions
    (the tier/mode-equivalence invariant extended to the export stage)."""
    texts = []
    for mode, tier in CONFIGS:
        monitor = _run_export(mode, tier)
        texts.append((monitor.exporter.render(),
                      monitor.exporter.render(openmetrics=True)))
    assert all(t == texts[0] for t in texts[1:])


def test_export_windows_merge_to_unwindowed_snapshot():
    """Export on vs off must not change what was measured: the merged
    windows reproduce the plain monitor's whole-run snapshot exactly."""
    kernel = _kernel()
    proc = _echo_server(kernel)
    plain = RequestMetricsMonitor(kernel, proc.pid, config="vm").attach()
    kernel.env.run(until=43 * MSEC)
    reference = plain.snapshot()

    monitor = _run_export("vm", None)
    merged = MetricsSnapshot.merge_all(monitor.exporter.windows)
    assert merged.send == reference.send
    assert merged.recv == reference.recv
    assert merged.poll == reference.poll


class TestDegradedWindows:
    def _run_lossy(self):
        # 1 ms sends into 4-record rings with 10 ms windows: each window
        # overflows before the window-close drain can relieve it.
        return _run_export("stream", None, capacity=4, sends=30,
                           period_ms=1, window_ms=10)

    def test_lost_records_reach_the_export(self):
        monitor = self._run_lossy()
        merged = MetricsSnapshot.merge_all(monitor.exporter.windows)
        assert merged.lost_records > 0
        text = monitor.exporter.render()
        families = parse_text(text)
        _check_against_source(monitor, families, text)
        assert _value(families, "repro_lost_records", "_total",
                      family="send") == merged.send_lost
        assert _value(families, "repro_confidence", family="send"
                      ) == pytest.approx(merged.confidence)
        assert _value(families, "repro_confidence", family="send") < 1.0

    def test_exemplar_carries_confidence(self):
        monitor = self._run_lossy()
        families = parse_text(monitor.exporter.render(openmetrics=True))
        last = monitor.exporter.last_window
        for base, suffix, labels in (
            ("repro_deltas", "_total", {"family": "send"}),
            ("repro_delta_ns", "_bucket", {"family": "send", "le": "+Inf"}),
        ):
            matches = [
                s for s in families[base].samples
                if s.name == base + suffix
                and all(s.labels.get(k) == v for k, v in labels.items())
            ]
            assert len(matches) == 1
            exemplar = matches[0]
            assert exemplar.exemplar_labels == {
                "confidence": f"{last.confidence:.6f}",
                "lost_records": str(last.lost_records),
            }
            assert exemplar.exemplar_value == last.send.count

    def test_classic_dialect_has_no_exemplars(self):
        monitor = self._run_lossy()
        assert " # " not in monitor.exporter.render()


def test_prometheus_client_cross_check():
    """When the real client library is importable, its parser must agree
    with the bundled one (it is not a repo dependency, so skip cleanly)."""
    prometheus_parser = pytest.importorskip("prometheus_client.parser")
    monitor = _run_export("vm", None)
    text = monitor.exporter.render()
    theirs = {
        family.name: family
        for family in prometheus_parser.text_string_to_metric_families(text)
    }
    ours = parse_text(text)
    merged = MetricsSnapshot.merge_all(monitor.exporter.windows)
    their_deltas = {
        sample.labels["family"]: sample.value
        for sample in theirs["repro_deltas"].samples
        if sample.name == "repro_deltas_total"
    }
    assert their_deltas["send"] == merged.send.count
    assert set(theirs) == set(ours)
