"""AST and recursive-descent parser for the BPF-C dialect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .lexer import CompileError, Token, parse_int, tokenize

__all__ = [
    "parse",
    "TranslationUnit", "MapDecl", "ProbeDecl",
    "Block", "VarDecl", "Assign", "If", "Return", "ExprStmt", "BlockStmt",
    "Num", "Name", "Unary", "Binary", "Call", "MethodCall", "CtxField",
]


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Num:
    value: int


@dataclass(frozen=True)
class Name:
    ident: str


@dataclass(frozen=True)
class Unary:
    op: str  # '!', '-', '~', '*', '&'
    operand: "Expr"


@dataclass(frozen=True)
class Binary:
    op: str
    lhs: "Expr"
    rhs: "Expr"


@dataclass(frozen=True)
class Call:
    func: str
    args: Tuple["Expr", ...]


@dataclass(frozen=True)
class MethodCall:
    map_name: str
    method: str  # 'lookup' | 'update' | 'delete' | 'increment'
    args: Tuple["Expr", ...]


@dataclass(frozen=True)
class CtxField:
    field: str  # 'id' | 'ret' | 'args0'..'args5'


Expr = object  # union of the above


@dataclass(frozen=True)
class VarDecl:
    ctype: str  # 'u64' or 'u64*'
    name: str
    init: Optional[Expr]
    line: int


@dataclass(frozen=True)
class Assign:
    target: Expr  # Name or Unary('*', Name)
    op: str  # '=', '+=', '-=', '*=', '/=', '&=', '|=', '^='
    value: Expr
    line: int


@dataclass(frozen=True)
class If:
    cond: Expr
    then: Tuple["Stmt", ...]
    orelse: Tuple["Stmt", ...]
    line: int


@dataclass(frozen=True)
class Return:
    value: Expr
    line: int


@dataclass(frozen=True)
class ExprStmt:
    expr: Expr
    line: int


@dataclass(frozen=True)
class BlockStmt:
    """A bare ``{ ... }`` scope (frees its locals at the closing brace)."""

    body: Tuple["Stmt", ...]
    line: int


Stmt = object
Block = Tuple[Stmt, ...]


@dataclass(frozen=True)
class MapDecl:
    kind: str  # 'hash' | 'array'
    name: str
    key_type: str
    value_type: str
    size: int
    line: int


@dataclass(frozen=True)
class ProbeDecl:
    category: str
    event: str
    body: Block
    line: int


@dataclass(frozen=True)
class TranslationUnit:
    maps: Tuple[MapDecl, ...]
    probes: Tuple[ProbeDecl, ...]


_TYPES = {"u32", "u64", "int", "long", "s32", "s64"}
_MAP_METHODS = {"lookup", "update", "delete", "increment", "perf_submit"}

_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_COMPOUND_OPS = {"=", "+=", "-=", "*=", "/=", "&=", "|=", "^="}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ------------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, text: str) -> bool:
        return self._cur.text == text and self._cur.kind in ("punct", "ident")

    def _accept(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            raise CompileError(
                f"expected {text!r}, found {self._cur.text!r}", self._cur.line
            )
        return self._advance()

    def _expect_ident(self) -> Token:
        if self._cur.kind != "ident":
            raise CompileError(
                f"expected identifier, found {self._cur.text!r}", self._cur.line
            )
        return self._advance()

    # -- top level ---------------------------------------------------------
    def parse_unit(self) -> TranslationUnit:
        maps: List[MapDecl] = []
        probes: List[ProbeDecl] = []
        while self._cur.kind != "eof":
            token = self._cur
            if token.text in ("BPF_HASH", "BPF_ARRAY", "BPF_PERF_OUTPUT"):
                maps.append(self._parse_map_decl())
            elif token.text == "TRACEPOINT_PROBE":
                probes.append(self._parse_probe())
            else:
                raise CompileError(
                    f"expected BPF_HASH/BPF_ARRAY/TRACEPOINT_PROBE, found "
                    f"{token.text!r}", token.line,
                )
        if not probes:
            raise CompileError("no TRACEPOINT_PROBE in source", self._cur.line)
        return TranslationUnit(maps=tuple(maps), probes=tuple(probes))

    def _parse_type_name(self) -> str:
        token = self._expect_ident()
        if token.text not in _TYPES:
            raise CompileError(f"unsupported type {token.text!r}", token.line)
        return token.text

    def _parse_map_decl(self) -> MapDecl:
        kind_token = self._advance()
        kind = {"BPF_HASH": "hash", "BPF_ARRAY": "array",
                "BPF_PERF_OUTPUT": "perf"}[kind_token.text]
        self._expect("(")
        name = self._expect_ident().text
        if kind == "perf":
            self._expect(")")
            self._expect(";")
            return MapDecl(kind=kind, name=name, key_type="u32",
                           value_type="u64", size=65536, line=kind_token.line)
        key_type, value_type, size = "u64", "u64", 10240
        if self._accept(","):
            if kind == "hash":
                key_type = self._parse_type_name()
                if self._accept(","):
                    value_type = self._parse_type_name()
                    if self._accept(","):
                        size = parse_int(self._advance().text, kind_token.line)
            else:
                value_type = self._parse_type_name()
                key_type = "u32"
                if self._accept(","):
                    size = parse_int(self._advance().text, kind_token.line)
        elif kind == "array":
            key_type = "u32"
        self._expect(")")
        self._expect(";")
        return MapDecl(kind=kind, name=name, key_type=key_type,
                       value_type=value_type, size=size, line=kind_token.line)

    def _parse_probe(self) -> ProbeDecl:
        start = self._advance()
        self._expect("(")
        category = self._expect_ident().text
        self._expect(",")
        event = self._expect_ident().text
        self._expect(")")
        body = self._parse_block()
        return ProbeDecl(category=category, event=event, body=body, line=start.line)

    # -- statements -----------------------------------------------------------
    def _parse_block(self) -> Block:
        self._expect("{")
        statements: List[Stmt] = []
        while not self._accept("}"):
            if self._cur.kind == "eof":
                raise CompileError("unterminated block", self._cur.line)
            statements.append(self._parse_statement())
        return tuple(statements)

    def _parse_stmt_or_block(self) -> Block:
        if self._check("{"):
            return self._parse_block()
        return (self._parse_statement(),)

    def _parse_statement(self) -> Stmt:
        token = self._cur
        if token.text == "{":
            return BlockStmt(body=self._parse_block(), line=token.line)
        if token.text in _TYPES:
            return self._parse_var_decl()
        if token.text == "return":
            self._advance()
            value = self._parse_expression()
            self._expect(";")
            return Return(value=value, line=token.line)
        if token.text == "if":
            self._advance()
            self._expect("(")
            cond = self._parse_expression()
            self._expect(")")
            then = self._parse_stmt_or_block()
            orelse: Block = ()
            if self._accept("else"):
                orelse = self._parse_stmt_or_block()
            return If(cond=cond, then=then, orelse=orelse, line=token.line)
        # Expression-ish statements: assignment, ++/--, or a bare call.
        expr = self._parse_expression()
        if self._cur.text in _COMPOUND_OPS:
            op = self._advance().text
            value = self._parse_expression()
            self._expect(";")
            self._check_assign_target(expr, token.line)
            return Assign(target=expr, op=op, value=value, line=token.line)
        if self._cur.text in ("++", "--"):
            op = self._advance().text
            self._expect(";")
            self._check_assign_target(expr, token.line)
            delta = Num(1)
            return Assign(target=expr, op="+=" if op == "++" else "-=",
                          value=delta, line=token.line)
        self._expect(";")
        if not isinstance(expr, (Call, MethodCall)):
            raise CompileError("expression statement has no effect", token.line)
        return ExprStmt(expr=expr, line=token.line)

    @staticmethod
    def _check_assign_target(expr, line: int) -> None:
        if isinstance(expr, Name):
            return
        if isinstance(expr, Unary) and expr.op == "*" and isinstance(expr.operand, Name):
            return
        raise CompileError("assignment target must be a variable or *pointer", line)

    def _parse_var_decl(self) -> VarDecl:
        type_token = self._advance()
        ctype = type_token.text
        if self._accept("*"):
            ctype += "*"
        name = self._expect_ident().text
        init: Optional[Expr] = None
        if self._accept("="):
            init = self._parse_expression()
        self._expect(";")
        return VarDecl(ctype=ctype, name=name, init=init, line=type_token.line)

    # -- expressions (precedence climbing) ------------------------------------
    def _parse_expression(self, min_precedence: int = 1):
        lhs = self._parse_unary()
        while True:
            op = self._cur.text
            precedence = _PRECEDENCE.get(op)
            if self._cur.kind != "punct" or precedence is None or precedence < min_precedence:
                return lhs
            self._advance()
            rhs = self._parse_expression(precedence + 1)
            lhs = Binary(op=op, lhs=lhs, rhs=rhs)

    def _parse_unary(self):
        token = self._cur
        if token.kind == "punct" and token.text in ("!", "-", "~", "*", "&"):
            self._advance()
            return Unary(op=token.text, operand=self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            if self._accept("."):
                method = self._expect_ident().text
                if not isinstance(expr, Name):
                    raise CompileError("method call on non-map", self._cur.line)
                if method not in _MAP_METHODS:
                    raise CompileError(f"unknown map method {method!r}", self._cur.line)
                args = self._parse_call_args()
                expr = MethodCall(map_name=expr.ident, method=method, args=args)
            elif self._accept("->"):
                field_token = self._expect_ident()
                if not isinstance(expr, Name) or expr.ident not in ("args", "ctx"):
                    raise CompileError("'->' only valid on args/ctx", field_token.line)
                field = field_token.text
                if field == "args":
                    self._expect("[")
                    index_token = self._advance()
                    index = parse_int(index_token.text, index_token.line)
                    if not 0 <= index <= 5:
                        raise CompileError("args index out of range", index_token.line)
                    self._expect("]")
                    field = f"args{index}"
                elif field not in ("id", "ret"):
                    raise CompileError(f"unknown ctx field {field!r}", field_token.line)
                expr = CtxField(field=field)
            else:
                return expr

    def _parse_call_args(self) -> Tuple[Expr, ...]:
        self._expect("(")
        args: List[Expr] = []
        if not self._check(")"):
            args.append(self._parse_expression())
            while self._accept(","):
                args.append(self._parse_expression())
        self._expect(")")
        return tuple(args)

    def _parse_primary(self):
        token = self._advance()
        if token.kind == "number":
            return Num(parse_int(token.text, token.line))
        if token.kind == "ident":
            if self._check("("):
                args = self._parse_call_args()
                return Call(func=token.text, args=args)
            return Name(ident=token.text)
        if token.text == "(":
            expr = self._parse_expression()
            self._expect(")")
            return expr
        raise CompileError(f"unexpected token {token.text!r}", token.line)


def parse(source: str) -> TranslationUnit:
    """Parse BPF-C source into a translation unit."""
    return _Parser(tokenize(source)).parse_unit()
