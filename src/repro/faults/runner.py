"""Run one experiment cell with faults armed.

:func:`run_faulted_cell` is the fault-injection counterpart of
:func:`repro.analysis.executor.execute_cell`: same spec-driven cell, plus a
fault schedule and/or a degraded stream consumer wired in through the
cell's ``setup`` hook before the clock starts.  Faulted cells are *not*
cached — their outcome depends on the fault arguments, which are not part
of the spec's cache key.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..analysis.executor.pool import CellHandles, execute_cell
from ..analysis.executor.spec import ExperimentSpec, LevelResult
from .collection import ConsumerSchedule, SlowConsumer
from .orchestrator import FaultOrchestrator, FaultReport

__all__ = ["run_faulted_cell"]


def run_faulted_cell(
    spec: ExperimentSpec,
    faults: Sequence = (),
    consumer: Optional[ConsumerSchedule] = None,
    retry_timeout_ns: Optional[int] = None,
) -> Tuple[LevelResult, FaultReport]:
    """Execute ``spec`` with the given fault schedule; returns the level
    result plus the orchestrator's :class:`FaultReport`.

    ``consumer`` (stream mode only) replaces the implicit
    drain-everything-at-snapshot consumer with a scheduled one, so a small
    ``spec.stream_capacity`` plus consumer pauses produces real
    ``lost_records``.  ``retry_timeout_ns`` should be set whenever the
    schedule contains faults that can swallow requests outright
    (``WorkerCrash`` without restart, ``ConnectionReset``), otherwise the
    cell never finishes.

    Faulted cells always run the *reference* workload-sim tier:
    kill/respawn semantics live on the fully general generator path, so a
    compiled-tier request (explicit or via ``sim_tier="auto"``) is
    overridden here rather than risking a specialized worker being
    respawned into a half-specialized state.
    """
    spec = spec.replace(sim_tier="reference")
    state = {}

    def setup(handles: CellHandles) -> None:
        if faults:
            state["orchestrator"] = FaultOrchestrator(
                handles.env, handles.kernel, handles.app, faults
            ).start()
        if consumer is not None:
            state["consumer"] = SlowConsumer(
                handles.env,
                (handles.monitor.send_collector, handles.monitor.recv_collector),
                consumer,
            ).start()

    result = execute_cell(spec, setup=setup, retry_timeout_ns=retry_timeout_ns)
    orchestrator = state.get("orchestrator")
    report = orchestrator.report if orchestrator is not None else FaultReport()
    return result, report
