"""CI perf-regression gate over the e2e cell benchmark.

Compares a fresh ``bench_e2e_cell`` run (typically the ``--smoke`` output
in ``results/bench_e2e_smoke.json``) against the committed full-size
baseline ``BENCH_e2e.json`` and fails when any cell's higher-tier cost
regressed by more than the threshold.

Absolute CPU seconds are not comparable between a smoke run and the
full baseline (different request counts, different machines), so the
gate compares **normalized** per-cell costs: each tier's ``cpu_s``
divided by the same run's reference-tier ``cpu_s``.  That ratio is the
quantity the optimisation work actually moves — how much cheaper the
fast/compiled tiers are than the interpreter on the same cells — and it
is scale- and machine-invariant to first order.  A fresh ratio more
than ``threshold`` times the baseline ratio on any (cell, tier) fails
the gate.

Cells whose reference cost is below ``--min-cpu-s`` in either run are
skipped: at sub-50ms totals the ratio is dominated by fixed per-cell
setup, not the probe hot loop, and would flap.

The committed full-size baseline is additionally held to absolute
per-cell compiled-tier speedup floors (``SPEEDUP_FLOORS``): every cell
of the matrix must keep the compiled probe + workload-sim tiers at
least 3x cheaper than the reference interpreter.  The drift check above
cannot catch a slow erosion that refreshes the baseline each time; the
floors can.

The gate also judges the export pipeline when a fresh
``bench_export_overhead`` smoke record is present (absent records are
reported and skipped, so the gate works on branches that never ran the
export smoke).  The fresh smoke run is judged on *identity* only —
export on/off must not change what was measured; smoke cells are too
small to time the overhead meaningfully.  The overhead ceiling at the
default scrape interval is judged against the committed full-size
baseline ``BENCH_export.json``, which CI refreshes on full runs.

The fleet-scale sweep gate works the same way: when a fresh
``bench_sweep_scale`` smoke record is present it is judged on the
executor's deterministic counters — warm-fleet disk hit rate at or
above the floor, zero warm translations, shard union identity, and the
parent-RSS ceiling — and the committed full-size baseline
``BENCH_sweep.json`` must hold the same gates at 1000-cell scale.
Absent fresh records are reported and skipped.

Exit codes: 0 pass, 1 regression (or identity failure in the fresh
run), 2 usage errors (missing/corrupt input files).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Tiers judged against the reference interpreter.
JUDGED_TIERS = ("fast", "compiled")

DEFAULT_THRESHOLD = 1.25
DEFAULT_MIN_CPU_S = 0.05

#: Absolute compiled-tier speedup floor (reference cpu_s / compiled cpu_s)
#: each cell of the committed full-size baseline must hold.  Unlike the
#: fresh-vs-baseline drift check above, this gates the baseline itself:
#: a refresh that lands with a cell below its floor means the compiled
#: sim/probe tiers stopped covering that cell's hot path.  Smoke runs are
#: never judged here — their ratios are setup-dominated.
SPEEDUP_FLOORS = {
    "data-caching/vm/clean": 3.0,
    "data-caching/stream/clean": 3.0,
    "data-caching/vm/faulted": 3.0,
    "triton-grpc/vm/clean": 3.0,
    "triton-grpc/stream/clean": 3.0,
    "triton-grpc/vm/faulted": 3.0,
}


def _usage_error(message: str) -> SystemExit:
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(2)


def load_run(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise _usage_error(f"{path}: no such file (run the benchmark first)")
    except json.JSONDecodeError as exc:
        raise _usage_error(f"{path}: not valid JSON ({exc})")
    if "cells" not in data:
        raise _usage_error(f"{path}: not a bench_e2e_cell record (no 'cells')")
    return data


def load_export_run(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise _usage_error(f"{path}: no such file (run the benchmark first)")
    except json.JSONDecodeError as exc:
        raise _usage_error(f"{path}: not valid JSON ({exc})")
    if data.get("benchmark") != "bench_export_overhead":
        raise _usage_error(f"{path}: not a bench_export_overhead record")
    return data


def load_sweep_run(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise _usage_error(f"{path}: no such file (run the benchmark first)")
    except json.JSONDecodeError as exc:
        raise _usage_error(f"{path}: not valid JSON ({exc})")
    if data.get("benchmark") != "bench_sweep_scale":
        raise _usage_error(f"{path}: not a bench_sweep_scale record")
    return data


def load_ctl_run(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise _usage_error(f"{path}: no such file (run the benchmark first)")
    except json.JSONDecodeError as exc:
        raise _usage_error(f"{path}: not valid JSON ({exc})")
    if data.get("benchmark") != "bench_closed_loop":
        raise _usage_error(f"{path}: not a bench_closed_loop record")
    return data


def normalized_ratios(cell: dict) -> dict:
    """Per-tier cpu_s normalized by the run's own reference tier."""
    cpu = cell["cpu_s"]
    reference = cpu["reference"]
    if not reference:
        return {}
    return {tier: cpu[tier] / reference for tier in JUDGED_TIERS if tier in cpu}


def check(fresh: dict, baseline: dict, threshold: float, min_cpu_s: float, println=print) -> int:
    """Compare runs; returns the number of failures (0 = gate passes)."""
    failures = 0
    if not fresh.get("all_identical", False):
        println("FAIL identity: fresh run has cross-tier divergence")
        failures += 1

    shared = [name for name in baseline["cells"] if name in fresh["cells"]]
    if not shared:
        println("FAIL coverage: no cells shared between fresh run and baseline")
        return failures + 1

    for name in shared:
        fresh_cell = fresh["cells"][name]
        base_cell = baseline["cells"][name]
        fresh_ref = fresh_cell["cpu_s"]["reference"]
        base_ref = base_cell["cpu_s"]["reference"]
        if fresh_ref < min_cpu_s or base_ref < min_cpu_s:
            println(f"skip {name}: reference cpu_s below {min_cpu_s}s (setup-dominated)")
            continue
        fresh_ratios = normalized_ratios(fresh_cell)
        base_ratios = normalized_ratios(base_cell)
        for tier in JUDGED_TIERS:
            if tier not in fresh_ratios or not base_ratios.get(tier):
                continue
            rel = fresh_ratios[tier] / base_ratios[tier]
            verdict = "FAIL" if rel > threshold else "ok"
            ratio = f"ratio {fresh_ratios[tier]:.3f} vs baseline {base_ratios[tier]:.3f}"
            detail = f"{ratio} ({rel:.2f}x, limit {threshold}x)"
            println(f"{verdict:>4} {name:<28} {tier:<9} {detail}")
            if rel > threshold:
                failures += 1
    return failures


def check_baseline_floors(baseline: dict, println=print) -> int:
    """Gate the committed baseline's absolute compiled-tier speedups.

    Returns the number of cells below their floor.  Cells missing from
    the baseline are failures too — dropping a floored cell from the
    matrix must be an explicit decision here, not a silent skip.
    """
    failures = 0
    if baseline.get("smoke"):
        println("skip speedup floors: baseline is a smoke record")
        return 0
    for name, floor in sorted(SPEEDUP_FLOORS.items()):
        cell = baseline["cells"].get(name)
        if cell is None:
            println(f"FAIL {name:<28} missing from the committed baseline")
            failures += 1
            continue
        speedup = cell["speedup_vs_reference"].get("compiled")
        if speedup is None:
            println(f"FAIL {name:<28} no compiled-tier timing in baseline")
            failures += 1
            continue
        verdict = "FAIL" if speedup < floor else "ok"
        println(
            f"{verdict:>4} {name:<28} compiled  "
            f"{speedup:.2f}x vs reference (floor {floor}x, committed baseline)"
        )
        if speedup < floor:
            failures += 1
    return failures


def check_export(fresh: dict, baseline: dict, println=print) -> int:
    """Gate the export pipeline; returns the number of failures.

    Fresh (smoke) runs prove identity; the committed full-size baseline
    proves the overhead ceiling at the default scrape interval held when
    it was generated at gate-able scale.
    """
    failures = 0
    if not fresh.get("all_identical", False):
        println("FAIL export identity: export-enabled runs diverged from base")
        failures += 1
    else:
        settings = len(fresh.get("points", {}))
        println(f"  ok export identity: {settings} window settings measurement-identical")

    limit = baseline.get("overhead_limit", 0.10)
    headline = baseline.get("headline", {})
    overhead = headline.get("overhead_frac")
    if overhead is None:
        println("FAIL export baseline: no headline overhead recorded")
        return failures + 1
    verdict = "FAIL" if overhead > limit else "  ok"
    window = headline.get("window_ms")
    detail = f"{overhead:+.1%} at {window}ms (limit {limit:.0%}, committed full-size baseline)"
    println(f"{verdict} export overhead: {detail}")
    if overhead > limit:
        failures += 1
    return failures


def _judge_sweep_record(record: dict, origin: str, println=print) -> int:
    """Apply the sweep-scale gates to one record (fresh or baseline).

    The gated quantities are deterministic executor counters, so the
    same gates hold for a smoke grid and the full-size baseline — only
    the scale differs.
    """
    failures = 0
    limits = record.get("limits", {})
    hit_floor = limits.get("hit_rate_floor", 0.99)
    rss_ceiling = limits.get("rss_ceiling", 1.3)
    warm = record.get("warm", {})

    hit_rate = warm.get("disk_hit_rate")
    if hit_rate is None:
        println(f"FAIL sweep {origin}: no warm disk hit rate recorded")
        return failures + 1
    verdict = "FAIL" if hit_rate < hit_floor else "  ok"
    println(
        f"{verdict} sweep {origin}: warm disk hit rate {hit_rate:.2%} "
        f"over {record['cells']} cells (floor {hit_floor:.0%})"
    )
    failures += hit_rate < hit_floor

    translations = warm.get("translation", {}).get("translations", -1)
    verdict = "FAIL" if translations != 0 else "  ok"
    println(f"{verdict} sweep {origin}: warm fleet translations {translations} (must be 0)")
    failures += translations != 0

    # The mirror gate: the cold fleet must really have translated.  A
    # "cold" run served from a stale shared code cache would both pass
    # the warm gate trivially and corrupt the cold timing baseline.
    cold = record.get("cold", {}).get("translation", {}).get("translations", 0)
    verdict = "FAIL" if cold <= 0 else "  ok"
    println(f"{verdict} sweep {origin}: cold fleet translations {cold} (must be > 0)")
    failures += cold <= 0

    ratio = record.get("rss", {}).get("ratio")
    if ratio is None:
        println(f"FAIL sweep {origin}: no RSS ratio recorded")
        failures += 1
    else:
        verdict = "FAIL" if ratio > rss_ceiling else "  ok"
        println(
            f"{verdict} sweep {origin}: peak RSS {ratio:.3f}x the "
            f"{record['base_cells']}-cell watermark (ceiling {rss_ceiling}x)"
        )
        failures += ratio > rss_ceiling

    shard = record.get("shard", {})
    verdict = "  ok" if shard.get("identical", False) else "FAIL"
    println(f"{verdict} sweep {origin}: shard union bit-identical ({shard.get('cells', 0)} cells)")
    failures += not shard.get("identical", False)
    return failures


def check_sweep(fresh: dict, baseline: dict, println=print) -> int:
    """Gate the fleet-scale sweep records; returns the failure count.

    The fresh (smoke) record proves the executor still amortizes and
    streams on this branch; the committed baseline proves it held at
    1000-cell scale when it was generated.
    """
    failures = _judge_sweep_record(fresh, "fresh", println)
    if baseline.get("smoke"):
        println(
            "FAIL sweep baseline: committed BENCH_sweep.json is a smoke "
            "record (regenerate with a full run)"
        )
        return failures + 1
    failures += _judge_sweep_record(baseline, "baseline", println)
    return failures


def _judge_ctl_record(record: dict, origin: str, println=print) -> int:
    """Apply the EXP-CTL documented bounds to one closed-loop record.

    The bounds live in ``bench_closed_loop.check_bounds`` — the same
    per-scenario violation-ratio ceilings and goodput floors hold for a
    smoke record (one workload per architecture) and the committed
    full-matrix baseline; only the cell count differs.
    """
    from bench_closed_loop import check_bounds

    problems = check_bounds(record)
    cells = len(record.get("cells", {}))
    if problems:
        for problem in problems:
            println(f"FAIL ctl {origin}: {problem}")
        return len(problems)
    println(f"  ok ctl {origin}: {cells} closed-loop cells inside the documented bounds")
    return 0


def check_ctl(fresh: dict, baseline: dict, println=print) -> int:
    """Gate the closed-loop controller records; returns the failure count.

    The fresh (smoke) record proves the controller still detects and
    sheds/re-scales on this branch; the committed baseline proves the
    bounds held across the full workload matrix when it was generated.
    """
    failures = _judge_ctl_record(fresh, "fresh", println)
    if baseline.get("smoke"):
        println(
            "FAIL ctl baseline: committed BENCH_ctl.json is a smoke "
            "record (regenerate with a full run)"
        )
        return failures + 1
    failures += _judge_ctl_record(baseline, "baseline", println)
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh",
        default=str(REPO_ROOT / "results" / "bench_e2e_smoke.json"),
        help="fresh benchmark record (default: the smoke output)",
    )
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "BENCH_e2e.json"),
        help="committed baseline record",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"max allowed fresh/baseline normalized-cost ratio (default {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--min-cpu-s",
        type=float,
        default=DEFAULT_MIN_CPU_S,
        help=f"skip cells whose reference cpu_s is below this (default {DEFAULT_MIN_CPU_S})",
    )
    parser.add_argument(
        "--export-fresh",
        default=str(REPO_ROOT / "results" / "bench_export_smoke.json"),
        help="fresh export benchmark record (skipped with a note if absent)",
    )
    parser.add_argument(
        "--export-baseline",
        default=str(REPO_ROOT / "BENCH_export.json"),
        help="committed full-size export baseline",
    )
    parser.add_argument(
        "--sweep-fresh",
        default=str(REPO_ROOT / "results" / "bench_sweep_smoke.json"),
        help="fresh sweep-scale benchmark record (skipped with a note if absent)",
    )
    parser.add_argument(
        "--sweep-baseline",
        default=str(REPO_ROOT / "BENCH_sweep.json"),
        help="committed full-size sweep-scale baseline",
    )
    parser.add_argument(
        "--ctl-fresh",
        default=str(REPO_ROOT / "results" / "bench_ctl_smoke.json"),
        help="fresh closed-loop benchmark record (skipped with a note if absent)",
    )
    parser.add_argument(
        "--ctl-baseline",
        default=str(REPO_ROOT / "BENCH_ctl.json"),
        help="committed full-matrix closed-loop baseline",
    )
    args = parser.parse_args(argv)

    fresh = load_run(Path(args.fresh))
    baseline = load_run(Path(args.baseline))
    failures = check(fresh, baseline, args.threshold, args.min_cpu_s)
    failures += check_baseline_floors(baseline)

    export_fresh_path = Path(args.export_fresh)
    if export_fresh_path.exists():
        failures += check_export(
            load_export_run(export_fresh_path),
            load_export_run(Path(args.export_baseline)),
        )
    else:
        print(f"skip export gate: {export_fresh_path} absent (run the export smoke first)")

    sweep_fresh_path = Path(args.sweep_fresh)
    if sweep_fresh_path.exists():
        failures += check_sweep(
            load_sweep_run(sweep_fresh_path),
            load_sweep_run(Path(args.sweep_baseline)),
        )
    else:
        print(f"skip sweep gate: {sweep_fresh_path} absent (run the sweep smoke first)")

    ctl_fresh_path = Path(args.ctl_fresh)
    if ctl_fresh_path.exists():
        failures += check_ctl(
            load_ctl_run(ctl_fresh_path),
            load_ctl_run(Path(args.ctl_baseline)),
        )
    else:
        print(f"skip ctl gate: {ctl_fresh_path} absent (run the closed-loop smoke first)")

    if failures:
        print(f"{failures} perf-regression check(s) failed", file=sys.stderr)
        return 1
    print("perf-regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
