"""The /metrics endpoint: content negotiation, lifecycle, error paths."""

import urllib.error
import urllib.request

import pytest

from repro.export.metrics import MetricFamily, render_exposition
from repro.export.parser import parse_text
from repro.export.server import (
    CONTENT_TYPE_OPENMETRICS,
    CONTENT_TYPE_TEXT,
    MetricsServer,
)


def _render(openmetrics: bool) -> str:
    family = MetricFamily("m", "counter", "a counter")
    family.add(7)
    return render_exposition([family], openmetrics=openmetrics)


def _get(url: str, accept: str = ""):
    request = urllib.request.Request(
        url, headers={"Accept": accept} if accept else {})
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.headers["Content-Type"], response.read().decode()


def test_serves_classic_by_default():
    with MetricsServer(_render) as server:
        content_type, body = _get(server.url)
    assert content_type == CONTENT_TYPE_TEXT
    assert "# EOF" not in body
    assert parse_text(body)["m"].samples[0].value == 7


def test_accept_header_selects_openmetrics():
    with MetricsServer(_render) as server:
        content_type, body = _get(
            server.url, accept="application/openmetrics-text")
    assert content_type == CONTENT_TYPE_OPENMETRICS
    assert body.rstrip("\n").endswith("# EOF")
    assert parse_text(body)["m"].samples[0].value == 7


def test_only_metrics_path_served():
    with MetricsServer(_render) as server:
        root = server.url[: -len("/metrics")]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{root}/other")
        assert excinfo.value.code == 404


def test_render_failure_returns_500():
    def broken(_openmetrics: bool) -> str:
        raise RuntimeError("boom")

    with MetricsServer(broken) as server:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url)
        assert excinfo.value.code == 500


def test_double_start_rejected():
    server = MetricsServer(_render).start()
    try:
        with pytest.raises(RuntimeError):
            server.start()
    finally:
        server.stop()


def test_stop_is_idempotent_and_frees_port():
    server = MetricsServer(_render).start()
    port = server.port
    server.stop()
    server.stop()  # no-op
    # The port is released: a new server can bind it immediately.
    rebound = MetricsServer(_render, port=port).start()
    try:
        assert rebound.port == port
    finally:
        rebound.stop()


def test_port_before_start_rejected():
    with pytest.raises(RuntimeError):
        MetricsServer(_render).port
