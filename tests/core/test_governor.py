"""Tests for the slack-driven DVFS governor (§VI extension)."""

import pytest

from repro.core import RequestMetricsMonitor, SlackDvfsGovernor
from repro.kernel import DvfsDriver, Kernel, MachineSpec
from repro.loadgen import OpenLoopClient
from repro.sim import MSEC, Environment, SeedSequence
from repro.workloads import get_workload


def _stack(rate_frac, governed, requests=1200, seed=5, **gov_kwargs):
    definition = get_workload("xapian")
    config = definition.config
    env = Environment()
    seeds = SeedSequence(seed)
    kernel = Kernel(env, MachineSpec(name="t", cores=config.cores), seeds)
    app = definition.build(kernel)
    driver = DvfsDriver(env, kernel.cpu)
    monitor = RequestMetricsMonitor(kernel, app.tgid, spec=config.syscalls).attach()
    client = OpenLoopClient(
        env, app.client_sockets, seeds.stream("client"),
        rate_rps=definition.paper_fail_rps * rate_frac,
        total_requests=requests,
        qos_latency_ns=config.qos_latency_ns,
        arrival="uniform",
    )
    governor = None
    if governed:
        governor = SlackDvfsGovernor(monitor, driver, workers=config.workers,
                                     **gov_kwargs)
        env.process(governor.run(client.done))
    client.start()
    report = env.run(until=client.done)
    return report, driver, governor


def test_validation():
    definition = get_workload("xapian")
    env = Environment()
    kernel = Kernel(env, MachineSpec(name="t", cores=4), SeedSequence(1))
    monitor = RequestMetricsMonitor(kernel, 1).attach()
    driver = DvfsDriver(env, kernel.cpu)
    with pytest.raises(ValueError):
        SlackDvfsGovernor(monitor, driver, workers=4,
                          idle_threshold=0.2, busy_threshold=0.4)


def test_downclocks_at_low_load():
    _report, driver, governor = _stack(0.3, governed=True)
    assert driver.transitions > 0
    assert any(d.action == "down" for d in governor.decisions)
    # Spent time below max frequency.
    assert min(d.pstate_index for d in governor.decisions) < len(driver.pstates) - 1


def test_saves_energy_at_low_load_without_qos_violation():
    base_report, base_driver, _ = _stack(0.3, governed=False)
    gov_report, gov_driver, _ = _stack(0.3, governed=True)
    assert not base_report.qos_violated
    assert not gov_report.qos_violated
    savings = 1 - gov_driver.energy_joules() / base_driver.energy_joules()
    assert savings > 0.15


def test_stays_at_max_when_busy():
    _report, driver, governor = _stack(0.85, governed=True)
    # Hot system: the governor must not park below max for long.
    below_max = sum(1 for d in governor.decisions
                    if d.pstate_index < len(driver.pstates) - 1)
    assert below_max <= len(governor.decisions) // 3


def test_decisions_recorded_with_fields():
    _report, _driver, governor = _stack(0.5, governed=True)
    assert governor.decisions
    decision = governor.decisions[0]
    assert decision.action in ("up", "down", "hold", "max")
    assert 0.0 <= decision.idleness <= 1.0
    assert decision.time_ns > 0


def test_governor_reacts_to_saturation_with_race_to_max():
    """Force low frequency, then slam the system: governor must race to max."""
    definition = get_workload("xapian")
    config = definition.config
    env = Environment()
    seeds = SeedSequence(9)
    kernel = Kernel(env, MachineSpec(name="t", cores=config.cores), seeds)
    app = definition.build(kernel)
    driver = DvfsDriver(env, kernel.cpu)
    monitor = RequestMetricsMonitor(kernel, app.tgid, spec=config.syscalls).attach()
    governor = SlackDvfsGovernor(monitor, driver, workers=config.workers)
    client = OpenLoopClient(
        env, app.client_sockets, seeds.stream("client"),
        rate_rps=definition.paper_fail_rps,  # saturating at full speed
        total_requests=1500, arrival="uniform",
    )
    driver.set_index(0)  # start parked at minimum frequency
    env.process(governor.run(client.done))
    client.start()
    env.run(until=client.done)
    assert driver.at_max  # it recovered to maximum frequency
