"""The package's public surface: imports, __all__ integrity, versioning."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.sim",
    "repro.kernel",
    "repro.net",
    "repro.ebpf",
    "repro.workloads",
    "repro.loadgen",
    "repro.core",
    "repro.analysis",
]


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_all_resolvable():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_resolvable(module_name):
    module = importlib.import_module(module_name)
    assert module.__all__, module_name
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


def test_nine_workloads_exposed():
    assert len(repro.workload_keys()) == 9
    assert set(repro.WORKLOADS) == set(repro.workload_keys())


def test_public_entry_points_are_documented():
    for name in ("Kernel", "RequestMetricsMonitor", "OpenLoopClient",
                 "run_level", "sweep"):
        obj = getattr(repro, name)
        assert (obj.__doc__ or "").strip(), name
