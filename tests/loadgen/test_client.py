"""Open-loop client and arrival-process tests."""

import statistics

import pytest

from repro.kernel import Kernel, MachineSpec
from repro.loadgen import OpenLoopClient, poisson_interarrivals, uniform_interarrivals
from repro.net import Message
from repro.sim import MSEC, SEC, Environment, SeedSequence


def test_poisson_interarrival_mean():
    stream = SeedSequence(1).stream("arr")
    gaps = poisson_interarrivals(stream, rate_rps=1000)
    draws = [next(gaps) for _ in range(20000)]
    assert statistics.mean(draws) == pytest.approx(SEC / 1000, rel=0.05)


def test_poisson_validation():
    stream = SeedSequence(1).stream("arr")
    with pytest.raises(ValueError):
        next(poisson_interarrivals(stream, 0))


def test_uniform_interarrivals_fixed():
    stream = SeedSequence(1).stream("arr")
    gaps = uniform_interarrivals(stream, rate_rps=100)
    assert {next(gaps) for _ in range(10)} == {10 * MSEC}


def test_uniform_interarrivals_spread():
    stream = SeedSequence(1).stream("arr")
    gaps = uniform_interarrivals(stream, rate_rps=100, spread=0.5)
    draws = [next(gaps) for _ in range(1000)]
    assert min(draws) >= 5 * MSEC
    assert max(draws) <= 15 * MSEC
    with pytest.raises(ValueError):
        next(uniform_interarrivals(stream, 100, spread=1.0))


def _echo_kernel_and_sockets(n_conns=2):
    """A kernel with a trivial instant-echo server over n connections."""
    spec = MachineSpec(name="t", cores=4, ctx_switch_ns=0, syscall_overhead_ns=0)
    kernel = Kernel(Environment(), spec, SeedSequence(2), interference=False)
    proc = kernel.create_process("echo")
    clients = []
    for _ in range(n_conns):
        client, server = kernel.open_connection()
        clients.append(client)

        def worker(task, sock=server):
            while True:
                msg = yield from task.sys_read(sock)
                yield from task.compute(100_000)  # 0.1 ms
                yield from task.sys_sendmsg(
                    sock, Message(payload="r", size=msg.size, tag=msg.tag)
                )

        proc.spawn_thread(worker)
    return kernel, clients


def test_client_completes_all_requests():
    kernel, sockets = _echo_kernel_and_sockets()
    client = OpenLoopClient(
        kernel.env, sockets, SeedSequence(3).stream("cl"), rate_rps=1000,
        total_requests=50,
    )
    client.start()
    report = kernel.env.run(until=client.done)
    assert report.completed == 50
    assert report.offered == 50
    assert report.latency.count == 50
    assert report.achieved_rps > 0


def test_client_latency_includes_service_time():
    kernel, sockets = _echo_kernel_and_sockets(n_conns=1)
    client = OpenLoopClient(
        kernel.env, sockets, SeedSequence(3).stream("cl"), rate_rps=100,
        total_requests=10,
    )
    client.start()
    report = kernel.env.run(until=client.done)
    assert report.latency.p50_ns() >= 100_000  # at least the service time


def test_qos_flag():
    kernel, sockets = _echo_kernel_and_sockets()
    client = OpenLoopClient(
        kernel.env, sockets, SeedSequence(3).stream("cl"), rate_rps=500,
        total_requests=20, qos_latency_ns=1,  # impossible target
    )
    client.start()
    report = kernel.env.run(until=client.done)
    assert report.qos_violated
    ok_client_report = report  # same data, relaxed target
    ok_client_report.qos_latency_ns = 10 * SEC
    assert not ok_client_report.qos_violated


def test_round_robin_across_connections():
    kernel, sockets = _echo_kernel_and_sockets(n_conns=2)
    client = OpenLoopClient(
        kernel.env, sockets, SeedSequence(4).stream("cl"), rate_rps=1000,
        total_requests=10,
    )
    client.start()
    kernel.env.run(until=client.done)
    assert sockets[0].tx_messages == 5
    assert sockets[1].tx_messages == 5


def test_client_validation():
    env = Environment()
    stream = SeedSequence(1).stream("c")
    with pytest.raises(ValueError):
        OpenLoopClient(env, [], stream, 100, 10)


def test_double_start_rejected():
    kernel, sockets = _echo_kernel_and_sockets()
    client = OpenLoopClient(kernel.env, sockets, SeedSequence(1).stream("c"), 100, 5)
    client.start()
    with pytest.raises(RuntimeError):
        client.start()


def test_report_before_any_completion():
    env = Environment()
    from repro.kernel import SocketEndpoint

    client = OpenLoopClient(env, [SocketEndpoint(env)], SeedSequence(1).stream("c"), 100, 5)
    report = client.report()
    assert report.completed == 0
    assert report.achieved_rps == 0.0


def _lossy_kernel_and_sockets(drop_tags, drop_forever=False):
    """Echo server that swallows requests with tags in ``drop_tags`` (the
    first time only, unless ``drop_forever``)."""
    spec = MachineSpec(name="t", cores=4, ctx_switch_ns=0, syscall_overhead_ns=0)
    kernel = Kernel(Environment(), spec, SeedSequence(2), interference=False)
    proc = kernel.create_process("echo")
    client, server = kernel.open_connection()
    dropped = set()

    def worker(task):
        while True:
            msg = yield from task.sys_read(server)
            if msg.tag in drop_tags and (drop_forever or msg.tag not in dropped):
                dropped.add(msg.tag)
                continue  # swallow: no response
            yield from task.sys_sendmsg(
                server, Message(payload="r", size=msg.size, tag=msg.tag)
            )

    proc.spawn_thread(worker)
    return kernel, [client]


class TestRetryWatchdog:
    def test_retry_recovers_swallowed_request(self):
        kernel, sockets = _lossy_kernel_and_sockets(drop_tags={1})
        client = OpenLoopClient(
            kernel.env, sockets, SeedSequence(3).stream("cl"), rate_rps=1000,
            total_requests=20, retry_timeout_ns=50 * MSEC,
        )
        client.start()
        report = kernel.env.run(until=client.done)
        assert report.completed == 20
        assert report.retried >= 1
        assert report.abandoned == 0
        # The retried request's latency counts from the ORIGINAL send.
        assert report.latency.max_ns() >= 50 * MSEC

    def test_abandon_after_max_retries(self):
        kernel, sockets = _lossy_kernel_and_sockets(drop_tags={1}, drop_forever=True)
        client = OpenLoopClient(
            kernel.env, sockets, SeedSequence(3).stream("cl"), rate_rps=1000,
            total_requests=20, retry_timeout_ns=20 * MSEC, max_retries=2,
        )
        client.start()
        report = kernel.env.run(until=client.done)
        # done still fires: the unanswerable request is given up on.
        assert report.abandoned == 1
        assert report.completed == 19
        assert report.retried == 2

    def test_no_watchdog_no_retries(self):
        kernel, sockets = _lossy_kernel_and_sockets(drop_tags=set())
        client = OpenLoopClient(
            kernel.env, sockets, SeedSequence(3).stream("cl"), rate_rps=1000,
            total_requests=10,
        )
        client.start()
        report = kernel.env.run(until=client.done)
        assert report.retried == 0 and report.abandoned == 0

    def test_validation(self):
        kernel, sockets = _lossy_kernel_and_sockets(drop_tags=set())
        stream = SeedSequence(3).stream("cl")
        with pytest.raises(ValueError):
            OpenLoopClient(kernel.env, sockets, stream, rate_rps=10,
                           total_requests=1, retry_timeout_ns=0)
        with pytest.raises(ValueError):
            OpenLoopClient(kernel.env, sockets, stream, rate_rps=10,
                           total_requests=1, max_retries=-1)
