"""Tests for the syscall table and family classification."""

import pytest

from repro.kernel import (
    POLL_FAMILY,
    RECV_FAMILY,
    SEND_FAMILY,
    SETUP_SYSCALLS,
    SYSCALL_NAMES,
    Sys,
    SyscallFamily,
    SyscallSpec,
    family_of,
    nr_of,
)


def test_real_x86_64_numbers():
    # The numbers the paper relies on (Listing 1 filters epoll_wait == 232).
    assert Sys.EPOLL_WAIT == 232
    assert Sys.READ == 0
    assert Sys.WRITE == 1
    assert Sys.SELECT == 23
    assert Sys.SENDTO == 44
    assert Sys.RECVFROM == 45
    assert Sys.SENDMSG == 46
    assert Sys.RECVMSG == 47
    assert Sys.ACCEPT == 43


def test_names_round_trip():
    for nr, name in SYSCALL_NAMES.items():
        assert nr_of(name) == nr


def test_nr_of_unknown():
    with pytest.raises(KeyError):
        nr_of("not_a_syscall")


def test_families_are_disjoint():
    assert not (RECV_FAMILY & SEND_FAMILY)
    assert not (RECV_FAMILY & POLL_FAMILY)
    assert not (SEND_FAMILY & POLL_FAMILY)


def test_family_of():
    assert family_of(Sys.READ) == SyscallFamily.RECV
    assert family_of(Sys.RECVFROM) == SyscallFamily.RECV
    assert family_of(Sys.SENDMSG) == SyscallFamily.SEND
    assert family_of(Sys.EPOLL_WAIT) == SyscallFamily.POLL
    assert family_of(Sys.SELECT) == SyscallFamily.POLL
    assert family_of(Sys.ACCEPT) == SyscallFamily.OTHER
    assert family_of(Sys.FUTEX) == SyscallFamily.OTHER


def test_setup_syscalls_not_request_oriented():
    request_oriented = RECV_FAMILY | SEND_FAMILY | POLL_FAMILY
    assert not (SETUP_SYSCALLS & request_oriented)
    assert Sys.ACCEPT in SETUP_SYSCALLS
    assert Sys.SOCKET in SETUP_SYSCALLS


class TestSyscallSpec:
    def test_paper_workload_specs(self):
        # §IV-A: TailBench -> recvfrom/sendto/select; Data Caching ->
        # read/sendmsg/epoll_wait; Web Search -> read/write; Triton gRPC ->
        # recvmsg/sendmsg; Triton HTTP -> recvfrom/sendto.
        tb = SyscallSpec.tailbench()
        assert (tb.recv_nr, tb.send_nr, tb.poll_nr) == (Sys.RECVFROM, Sys.SENDTO, Sys.SELECT)
        dc = SyscallSpec.data_caching()
        assert (dc.recv_nr, dc.send_nr, dc.poll_nr) == (Sys.READ, Sys.SENDMSG, Sys.EPOLL_WAIT)
        ws = SyscallSpec.web_search()
        assert (ws.recv_nr, ws.send_nr) == (Sys.READ, Sys.WRITE)
        tg = SyscallSpec.triton_grpc()
        assert (tg.recv_nr, tg.send_nr) == (Sys.RECVMSG, Sys.SENDMSG)
        th = SyscallSpec.triton_http()
        assert (th.recv_nr, th.send_nr) == (Sys.RECVFROM, Sys.SENDTO)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SyscallSpec(Sys.WRITE, Sys.SENDTO, Sys.SELECT)  # write is not recv
        with pytest.raises(ValueError):
            SyscallSpec(Sys.READ, Sys.READ, Sys.SELECT)  # read is not send
        with pytest.raises(ValueError):
            SyscallSpec(Sys.READ, Sys.WRITE, Sys.ACCEPT)  # accept is not poll
