"""Per-CPU delta-state sharding (the per-CPU-map discipline).

With ``cpus > 1`` the delta collector keys its array by
``bpf_get_smp_processor_id()`` — one slot per simulated CPU, no
cross-CPU write sharing — and merges the shards at window close.
These tests pin that the sharded configuration is:

* identical between vm and native modes,
* identical across all three VM tiers,
* byte-identical to the historical program when ``cpus == 1``,
* equal to the unsharded statistics when only one shard is active.
"""

import pytest

from repro.core import CollectorConfig, DeltaCollector, RequestMetricsMonitor
from repro.core.collectors import build_delta_program
from repro.kernel import Kernel, MachineSpec, Sys, SyscallSpec
from repro.net import Message
from repro.sim import MSEC, Environment, SeedSequence


def _kernel():
    spec = MachineSpec(name="t", cores=4, ctx_switch_ns=0, syscall_overhead_ns=0)
    return Kernel(Environment(), spec, SeedSequence(1), interference=False)


def _threaded_server(kernel, workers=3, sends=6, period_ms=2):
    """One process, ``workers`` threads, each answering its own connection."""
    env = kernel.env
    proc = kernel.create_process("srv")
    endpoints = []
    for _ in range(workers):
        client, server = kernel.open_connection()
        endpoints.append(client)

        def worker(task, server=server):
            ep = yield from task.sys_epoll_create1()
            yield from task.sys_epoll_ctl(ep, server)
            for _ in range(sends):
                yield from task.sys_epoll_wait(ep)
                msg = yield from task.sys_recv(Sys.READ, server)
                yield from task.sys_send(Sys.SENDMSG, server, Message(size=msg.size))

        proc.spawn_thread(worker)

    def driver():
        for round_ in range(sends):
            for offset, client in enumerate(endpoints):
                yield env.timeout(period_ms * MSEC // len(endpoints))
                client.send(Message(size=64))

    env.process(driver())
    return proc


@pytest.mark.parametrize("cpus", [1, 2, 3])
class TestShardedVmNativeEquivalence:
    def test_identical_snapshots(self, cpus):
        snaps = []
        for mode in ("native", "vm"):
            kernel = _kernel()
            proc = _threaded_server(kernel)
            collector = DeltaCollector(
                kernel, proc.pid, [Sys.SENDMSG], CollectorConfig(mode=mode, cpus=cpus)
            ).attach()
            kernel.env.run()
            snaps.append(collector.snapshot())
        assert snaps[0] == snaps[1]
        assert snaps[0].events == 18

    def test_identical_after_window_reset(self, cpus):
        snaps = []
        for mode in ("native", "vm"):
            kernel = _kernel()
            proc = _threaded_server(kernel)
            collector = DeltaCollector(
                kernel, proc.pid, [Sys.SENDMSG], CollectorConfig(mode=mode, cpus=cpus)
            ).attach()
            kernel.env.run(until=6 * MSEC)
            first = collector.snapshot()
            collector.reset_window()
            kernel.env.run()
            snaps.append((first, collector.snapshot()))
        assert snaps[0] == snaps[1]


class TestShardedTierIdentity:
    def test_all_tiers_identical(self):
        results = []
        for tier in ("reference", "fast", "compiled"):
            kernel = _kernel()
            proc = _threaded_server(kernel)
            collector = DeltaCollector(
                kernel, proc.pid, [Sys.SENDMSG],
                CollectorConfig(mode="vm", cpus=2, vm_tier=tier)
            ).attach()
            kernel.env.run()
            results.append((collector.snapshot(),
                            dict(collector.bpf.invocations),
                            dict(collector.bpf.insns_executed)))
        assert results[0] == results[1] == results[2]


class TestShardingSemantics:
    def test_cpus_1_program_is_byte_identical(self):
        """The default configuration emits the historical program exactly."""
        legacy = build_delta_program("m", 7, (Sys.SENDMSG,))
        explicit = build_delta_program("m", 7, (Sys.SENDMSG,), cpus=1)
        assert [str(i) for i in legacy.insns] == [str(i) for i in explicit.insns]

    def test_sharded_program_adds_smp_key(self):
        sharded = build_delta_program("m", 7, (Sys.SENDMSG,), cpus=4)
        legacy = build_delta_program("m", 7, (Sys.SENDMSG,))
        assert len(sharded.insns) == len(legacy.insns) + 1

    def test_single_active_shard_matches_unsharded(self):
        """One thread -> one shard -> identical to the cpus=1 statistics."""
        snaps = []
        for cpus in (1, 4):
            kernel = _kernel()
            proc = _threaded_server(kernel, workers=1)
            collector = DeltaCollector(
                kernel, proc.pid, [Sys.SENDMSG], CollectorConfig(mode="vm", cpus=cpus)
            ).attach()
            kernel.env.run()
            snaps.append(collector.snapshot())
        assert snaps[0] == snaps[1]

    def test_out_of_range_cpu_drops_in_both_modes(self):
        """A cpu_of outside [0, cpus) finds no slot, in vm and native alike."""
        snaps = []
        for mode in ("native", "vm"):
            kernel = _kernel()
            proc = _threaded_server(kernel, workers=2)
            collector = DeltaCollector(
                kernel, proc.pid, [Sys.SENDMSG], CollectorConfig(mode=mode, cpus=2),
                cpu_of=lambda ctx: 5,
            ).attach()
            kernel.env.run()
            snaps.append(collector.snapshot())
        assert snaps[0] == snaps[1]
        assert snaps[0].events == 0

    def test_merged_events_sum_over_shards(self):
        kernel = _kernel()
        proc = _threaded_server(kernel, workers=3, sends=4)
        collector = DeltaCollector(
            kernel, proc.pid, [Sys.SENDMSG], CollectorConfig(mode="vm", cpus=3)
        ).attach()
        kernel.env.run()
        stats = collector.snapshot()
        assert stats.events == 12
        # Each shard's trace contributes events-1 deltas.
        assert stats.count == 9

    def test_monitor_passes_cpus_through(self):
        kernel = _kernel()
        proc = _threaded_server(kernel, workers=2)
        monitor = RequestMetricsMonitor(
            kernel, proc.pid, spec=SyscallSpec.data_caching(),
            config=CollectorConfig(mode="vm", cpus=2)
        ).attach()
        kernel.env.run()
        snap = monitor.snapshot()
        assert snap.send.events == 12
        assert monitor.send_collector.cpus == 2
