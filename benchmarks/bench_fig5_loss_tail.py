"""EXP-F5 — Figure 5: network loss wrecks tail latency, not the metric.

Triton + gRPC under 0 % vs 1 % loss (the paper's configuration):
* top row — client-observed p99 latency inflates massively under loss
  (200 ms-floor TCP retransmissions + head-of-line blocking);
* bottom row — the epoll_wait-duration (idleness / saturation-slack) metric
  is essentially unmoved, because server-side syscall timing never sees the
  retransmissions.
"""

from __future__ import annotations

from conftest import emit, scaled

from repro.analysis import (
    ExperimentSpec,
    default_levels,
    run_level,
    save_record,
    series_table,
)
from repro.core import normalize
from repro.net import NetemConfig
from repro.workloads import get_workload


def run_fig5() -> dict:
    definition = get_workload("triton-grpc")
    levels = default_levels(definition, count=8, low_frac=0.3, high_frac=1.0)
    configs = {
        "no loss": NetemConfig.ideal(),
        "1% loss": NetemConfig(loss=0.01),
    }
    series: dict = {}
    for label, netem in configs.items():
        p99s, polls, rps = [], [], []
        for rate in levels:
            level = run_level(ExperimentSpec(
                workload=definition.key, offered_rps=rate,
                requests=scaled(1200, minimum=400),
                client_to_server=netem, server_to_client=netem,
            ))
            p99s.append(level.p99_ns / 1e6)
            polls.append(level.poll_mean_duration_ns / 1e6)
            rps.append(level.achieved_rps)
        series[label] = {"p99_ms": p99s, "poll_ms": polls, "achieved": rps}
    return {"levels": levels, "series": series}


def test_fig5_loss_vs_tail(benchmark):
    data = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    save_record({"figure": "fig5", **{
        "levels": data["levels"],
        "series": data["series"],
    }}, "fig5_loss_tail")

    clean = data["series"]["no loss"]
    lossy = data["series"]["1% loss"]
    emit("FIGURE 5 — Triton/gRPC: 1% loss vs p99 (top) and epoll duration (bottom)")
    emit(series_table({
        "offered": data["levels"],
        "p99 clean": clean["p99_ms"],
        "p99 lossy": lossy["p99_ms"],
        "poll clean": clean["poll_ms"],
        "poll lossy": lossy["poll_ms"],
    }))

    # Top row: loss devastates tail latency well below saturation: every
    # pre-saturation level inflates, and on average by ~a TCP minimum RTO.
    mid = len(data["levels"]) // 2
    inflations = [lossy["p99_ms"][i] - clean["p99_ms"][i] for i in range(mid)]
    for index, inflation in enumerate(inflations):
        assert inflation > 30, (
            f"level {index}: loss did not inflate p99 "
            f"({clean['p99_ms'][index]:.1f} -> {lossy['p99_ms'][index]:.1f} ms)"
        )
    assert sum(inflations) / len(inflations) > 100, inflations

    # Bottom row: the normalized idleness trajectories stay close.
    clean_norm = normalize(clean["poll_ms"])
    lossy_norm = normalize(lossy["poll_ms"])
    for a, b in zip(clean_norm, lossy_norm):
        assert abs(a - b) < 0.15, "epoll-duration metric was disturbed by loss"

    # And the server processed the same load either way.
    for a, b in zip(clean["achieved"], lossy["achieved"]):
        assert abs(a - b) / max(a, 1e-9) < 0.1
