"""EXP-T2 — Table II: the effect of the network on approximated RPS.

Repeats the Fig. 2 correlation under the paper's two tc-netem
configurations — unimpaired loopback vs 10 ms delay + 1 % loss — and shows
R² is essentially unchanged: the syscall-derived RPS is robust to network
impairments that devastate client-observed tail latency.
"""

from __future__ import annotations

from conftest import bench_scale, emit, fig2_requests

from repro.analysis import (
    ExperimentSpec,
    default_levels,
    render_table2,
    run_level,
    save_record,
)
from repro.core import fit_linear
from repro.net import NetemConfig
from repro.workloads import get_workload, workload_keys

#: Paper Table II values: (0ms/0%, 10ms/1%).
PAPER_TABLE2 = {
    "img-dnn": (0.9997, 0.9998),
    "xapian": (0.9976, 0.9964),
    "silo": (0.9998, 0.9986),
    "specjbb": (0.9997, 0.9996),
    "moses": (0.9411, 0.9435),
    "data-caching": (0.9995, 0.9989),
    "web-search": (0.8642, 0.8573),
    "triton-http": (0.9976, 0.9981),
    "triton-grpc": (0.9711, 0.9703),
}


def r2_under(key: str, netem: NetemConfig) -> float:
    definition = get_workload(key)
    levels = default_levels(definition, count=8, low_frac=0.3, high_frac=1.0)
    xs, ys = [], []
    for rate in levels:
        level = run_level(ExperimentSpec(
            workload=key, offered_rps=rate, requests=fig2_requests(rate),
            client_to_server=netem, server_to_client=netem,
        ))
        for estimate in level.window_rps:
            xs.append(estimate)
            ys.append(level.achieved_rps)
    return fit_linear(xs, ys).r_squared


def run_table2() -> dict:
    table = {}
    for key in workload_keys():
        ideal = r2_under(key, NetemConfig.ideal())
        impaired = r2_under(key, NetemConfig.paper_impaired())
        table[key] = (ideal, impaired)
    return table


def test_table2_netem_r2(benchmark):
    table = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    save_record(
        {"table": "table2",
         "rows": {k: {"ideal": v[0], "impaired": v[1]} for k, v in table.items()},
         "paper": {k: {"ideal": v[0], "impaired": v[1]}
                   for k, v in PAPER_TABLE2.items()}},
        "table2_netem_r2",
    )
    emit(render_table2(table, paper_values=PAPER_TABLE2))

    tolerance = 0.08 if bench_scale() >= 1.0 else 0.25
    for key, (ideal, impaired) in table.items():
        # The paper's core claim: netem impairment barely moves R².
        assert abs(ideal - impaired) < tolerance, (
            f"{key}: R^2 moved from {ideal:.4f} to {impaired:.4f} under netem"
        )
        assert impaired > 0.5, key
