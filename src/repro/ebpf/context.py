"""Tracepoint context structs as seen by BPF programs.

``raw_syscalls:sys_enter`` / ``sys_exit`` programs receive a pointer to the
tracepoint's record.  The layouts below follow the real format files
(``/sys/kernel/debug/tracing/events/raw_syscalls/*/format``): an 8-byte
common header, then ``long id`` and the payload.  Listing 1 reads
``args->id`` — that is the field at :data:`SYS_ENTER_ID_OFF`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Sequence

from ..kernel.tracepoints import SysEnterCtx, SysExitCtx

__all__ = [
    "ProgType",
    "SYS_ENTER_ID_OFF",
    "SYS_ENTER_ARGS_OFF",
    "SYS_EXIT_ID_OFF",
    "SYS_EXIT_RET_OFF",
    "SYS_ENTER_CTX_SIZE",
    "SYS_EXIT_CTX_SIZE",
    "pack_sys_enter",
    "pack_sys_exit",
]

#: Offset of ``long id`` in both tracepoint records.
SYS_ENTER_ID_OFF = 8
SYS_EXIT_ID_OFF = 8
#: Offset of ``unsigned long args[6]`` in sys_enter.
SYS_ENTER_ARGS_OFF = 16
#: Offset of ``long ret`` in sys_exit.
SYS_EXIT_RET_OFF = 16

SYS_ENTER_CTX_SIZE = 16 + 6 * 8  # header + id + args[6]
SYS_EXIT_CTX_SIZE = 16 + 8  # header + id + ret


@dataclass(frozen=True)
class ProgType:
    """Program type: names the attach point and fixes the ctx layout."""

    name: str
    ctx_size: int

    @classmethod
    def tracepoint_sys_enter(cls) -> "ProgType":
        return cls("tracepoint/raw_syscalls/sys_enter", SYS_ENTER_CTX_SIZE)

    @classmethod
    def tracepoint_sys_exit(cls) -> "ProgType":
        return cls("tracepoint/raw_syscalls/sys_exit", SYS_EXIT_CTX_SIZE)


def _common_header(pid: int) -> bytes:
    # common_type(u16), common_flags(u8), common_preempt_count(u8),
    # common_pid(s32)
    return struct.pack("<HBBi", 0, 0, 0, pid & 0x7FFFFFFF)


def pack_sys_enter(ctx: SysEnterCtx) -> bytes:
    """Serialize a sys_enter context into its tracepoint record bytes.

    The record is memoized on the (frozen, hence immutable) context
    object: one tracepoint firing is packed once even when several
    attached programs — the monitor runs three collectors — read it.
    """
    blob = getattr(ctx, "_blob", None)
    if blob is None:
        args: Sequence[int] = tuple(ctx.args)[:6] + (0,) * max(0, 6 - len(ctx.args))
        blob = (
            _common_header(ctx.tid)
            + struct.pack("<q", ctx.syscall_nr)
            + struct.pack("<6Q", *[a & 0xFFFFFFFFFFFFFFFF for a in args])
        )
        object.__setattr__(ctx, "_blob", blob)
    return blob


def pack_sys_exit(ctx: SysExitCtx) -> bytes:
    """Serialize a sys_exit context into its tracepoint record bytes.

    Memoized on the frozen context object, like :func:`pack_sys_enter`.
    """
    blob = getattr(ctx, "_blob", None)
    if blob is None:
        blob = (
            _common_header(ctx.tid)
            + struct.pack("<q", ctx.syscall_nr)
            + struct.pack("<q", ctx.ret)
        )
        object.__setattr__(ctx, "_blob", blob)
    return blob
