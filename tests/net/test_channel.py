"""Tests for ordered reliable channels."""

import pytest

from repro.net import Channel, Message, NetemConfig
from repro.sim import MSEC, Environment, SeedSequence


def _channel(env, config=None, seed=1):
    received = []
    chan = Channel(
        env,
        config or NetemConfig.ideal(),
        SeedSequence(seed).stream("chan"),
        deliver=lambda msg: received.append((env.now, msg)),
    )
    return chan, received


def test_requires_receiver():
    env = Environment()
    chan = Channel(env, NetemConfig.ideal(), SeedSequence(1).stream("c"))
    with pytest.raises(RuntimeError):
        chan.send(Message())


def test_ideal_delivery_is_prompt():
    env = Environment()
    chan, received = _channel(env)
    chan.send(Message(payload="hi"))
    env.run()
    assert len(received) == 1
    when, msg = received[0]
    assert when <= 1  # only the FIFO min-spacing tick
    assert msg.payload == "hi"
    assert msg.sent_at == 0
    assert msg.delivered_at == when


def test_fixed_delay_applied():
    env = Environment()
    chan, received = _channel(env, NetemConfig(delay_ns=5 * MSEC))
    chan.send(Message())
    env.run()
    assert received[0][0] == 5 * MSEC


def test_fifo_order_preserved():
    env = Environment()
    chan, received = _channel(env, NetemConfig(delay_ns=1 * MSEC, jitter_ns=MSEC // 2))
    for i in range(50):
        chan.send(Message(tag=i))
    env.run()
    tags = [msg.tag for _, msg in received]
    assert tags == list(range(50))


def test_head_of_line_blocking_on_loss():
    """A lost first message must delay the (un-lost) second one."""
    env = Environment()
    # seed chosen so the first transit draw is lost, rest are not; emulate by
    # brute-force searching a seed where message 0 pays an RTO.
    for seed in range(1, 60):
        chan, received = _channel(env := Environment(), NetemConfig(loss=0.3), seed=seed)
        chan.send(Message(tag=0))
        chan.send(Message(tag=1))
        env.run()
        t0, t1 = received[0][0], received[1][0]
        if t0 > 0:  # message 0 was retransmitted
            assert t1 >= t0  # message 1 head-of-line blocked behind it
            assert received[0][1].tag == 0
            return
    pytest.fail("no seed produced a first-message loss")


def test_counters():
    env = Environment()
    chan, received = _channel(env)
    for _ in range(10):
        chan.send(Message())
    env.run()
    assert chan.sent == 10
    assert chan.delivered == 10
    assert len(received) == 10


def test_send_returns_arrival_time():
    env = Environment()
    chan, _ = _channel(env, NetemConfig(delay_ns=2 * MSEC))
    arrival = chan.send(Message())
    assert arrival == 2 * MSEC


def test_simultaneous_sends_get_distinct_arrivals():
    env = Environment()
    chan, received = _channel(env)
    chan.send(Message(tag=0))
    chan.send(Message(tag=1))
    env.run()
    assert received[0][0] != received[1][0]


def test_late_connect():
    env = Environment()
    got = []
    chan = Channel(env, NetemConfig.ideal(), SeedSequence(1).stream("c"))
    chan.connect(lambda msg: got.append(msg))
    chan.send(Message(payload=1))
    env.run()
    assert len(got) == 1


def test_duplicate_consumes_link_capacity():
    # 1 Mbit/s: a 1000-byte message serializes in 8 ms.  A duplicated first
    # message occupies a second serialization slot, so the next message
    # queues behind original + copy (24 ms) instead of just the original.
    env = Environment()
    chan, received = _channel(env, NetemConfig(rate_bps=1_000_000, duplicate=0.99))
    chan.send(Message(size=1000))
    chan.send(Message(size=1000))
    env.run()
    assert chan.path.duplicated >= 1
    first, second = received[0][0], received[1][0]
    assert first == 8 * MSEC
    assert second == 24 * MSEC


def test_reset_clears_pacing_watermark():
    """Regression: the in-order watermark must not survive a reset.

    Pre-fix, ``reset()`` left ``_last_arrival`` pointing at the discarded
    in-flight message's arrival, so the first send on the *new* connection
    head-of-line-blocked behind data that was never going to be delivered.
    """
    env = Environment()
    # 1 Mbit/s: the 1000-byte in-flight message holds the link until 8 ms.
    chan, received = _channel(env, NetemConfig(rate_bps=1_000_000))
    chan.send(Message(size=1000, tag=1))

    def resetter():
        yield env.timeout(1 * MSEC)
        chan.reset()
        chan.send(Message(size=1, tag=2))

    env.process(resetter())
    env.run()
    assert [msg.tag for _, msg in received] == [2]
    # The fresh connection's send must not queue behind the torn-down
    # connection's 8 ms serialization slot.
    assert received[0][0] < 2 * MSEC


def test_reset_clears_flow_density_state():
    """Regression: the send-gap EWMA is per-connection state and must not
    leak through a reset into the replacement connection."""
    env = Environment()
    chan, _ = _channel(env, NetemConfig(delay_ns=1 * MSEC))

    def sender():
        chan.send(Message())
        yield env.timeout(1 * MSEC)
        chan.send(Message())
        assert chan._gap_ewma_ns is not None
        chan.reset()
        assert chan._last_send_ns is None
        assert chan._gap_ewma_ns is None

    env.process(sender())
    env.run()


def test_reset_drops_in_flight_messages():
    env = Environment()
    chan, received = _channel(env, NetemConfig(delay_ns=5 * MSEC))
    chan.send(Message(tag=1))

    def resetter():
        yield env.timeout(1 * MSEC)
        chan.reset()
        chan.send(Message(tag=2))

    env.process(resetter())
    env.run()
    assert [msg.tag for _, msg in received] == [2]
    assert chan.reset_drops == 1
