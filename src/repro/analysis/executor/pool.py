"""Cell execution and the parallel experiment executor.

:func:`execute_cell` runs one :class:`ExperimentSpec` to completion — boot
a kernel, start the app, attach the observability monitor, drive an
open-loop burst of requests, collect every signal.  :func:`run_cells` fans
a batch of cells out across a process pool, consulting a
:class:`ResultCache` first and reporting progress through a telemetry
callback.

Determinism: each cell derives its own :class:`SeedSequence` from its spec
(see :meth:`ExperimentSpec.seed_sequence`), so results are a pure function
of the spec — ``jobs=4`` is bit-identical to ``jobs=1``, and a cache hit is
bit-identical to a fresh computation.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ...core.monitor import MetricsSnapshot, RequestMetricsMonitor
from ...core.windows import window_estimates
from ...kernel.kernel import Kernel
from ...loadgen.client import ClientReport, OpenLoopClient
from ...net.netem import NetemConfig
from ...sim.engine import Environment
from .cache import ResultCache
from .spec import ExperimentSpec, LevelResult

__all__ = [
    "CellHandles",
    "CellProgress",
    "ExecutorStats",
    "ProgressCallback",
    "execute_cell",
    "run_cells",
]


class _SendTimestampProbe:
    """Minimal native probe recording send-family sys_enter timestamps
    (for the per-window estimates of Fig. 2's residual analysis)."""

    def __init__(self, kernel: Kernel, tgid: int, syscall_nrs) -> None:
        self.kernel = kernel
        self.tgid = tgid
        self.nrs = frozenset(syscall_nrs)
        self.timestamps: List[int] = []

    def __call__(self, ctx) -> int:
        if ctx.pid_tgid >> 32 == self.tgid and ctx.syscall_nr in self.nrs:
            self.timestamps.append(ctx.ktime_ns)
        return 0

    def attach(self) -> "_SendTimestampProbe":
        self.kernel.tracepoints.sys_enter.attach(self)
        return self


@dataclass
class CellHandles:
    """Live simulation objects of one running cell, handed to ``setup``
    hooks (fault orchestration, extra probes) before the clock starts."""

    env: "Environment"
    kernel: Kernel
    app: object
    monitor: RequestMetricsMonitor
    client: OpenLoopClient


def execute_cell(
    spec: ExperimentSpec,
    *,
    setup: Optional[Callable[[CellHandles], None]] = None,
    retry_timeout_ns: Optional[int] = None,
) -> LevelResult:
    """Run one experiment cell to completion and collect all signals.

    ``setup``, if given, is called with the cell's live objects after the
    client is constructed but before the simulation runs — the hook point
    for fault injectors.  ``retry_timeout_ns`` arms the client's
    retransmission watchdog (needed when faults can swallow requests
    outright, e.g. connection resets).  Cells run with either knob are
    *not* pure functions of the spec, so callers must bypass the result
    cache — :func:`repro.faults.run_faulted_cell` does exactly that.
    """
    definition = spec.definition
    config = definition.config
    machine = spec.machine.with_cores(config.cores)
    if config.interference_scale != 1.0:
        from dataclasses import replace as _replace

        machine = _replace(
            machine,
            interference=_replace(
                machine.interference,
                stall_mean_ns=max(1, int(machine.interference.stall_mean_ns
                                         * config.interference_scale)),
            ),
        )
    env = Environment()
    seeds = spec.seed_sequence()
    kernel = Kernel(env, machine, seeds, interference=spec.interference)

    app = definition.build(
        kernel,
        spec.client_to_server,
        spec.server_to_client,
        sim_tier=spec.resolved_sim_tier,
    )
    monitor = RequestMetricsMonitor(
        kernel, app.tgid, spec=config.syscalls, config=spec.collector_config(),
    ).attach()
    send_probe = _SendTimestampProbe(kernel, app.tgid, (config.syscalls.send_nr,)).attach()

    client = OpenLoopClient(
        env,
        app.client_sockets,
        seeds.stream("client:arrivals"),
        rate_rps=spec.offered_rps,
        total_requests=spec.requests,
        request_size=config.request_size,
        qos_latency_ns=config.qos_latency_ns,
        arrival=spec.arrival,
        retry_timeout_ns=retry_timeout_ns,
    )
    recorder = None
    outcome_log: Optional[list] = None
    if spec.correlate is not None:
        # Imported lazily: repro.analysis.correlate consumes executor types
        # through LevelResult.extra only, but keeping the import local means
        # cells without correlation never pay for the module.
        from ..correlate import WindowRecorder

        recorder = WindowRecorder(monitor, spec.correlate.window_ns).start()
        outcome_log = client.enable_outcome_log()
    if setup is not None:
        setup(CellHandles(env=env, kernel=kernel, app=app,
                          monitor=monitor, client=client))
    client.start()
    report: ClientReport = env.run(until=client.done)
    export_payload: Optional[dict] = None
    extra: Optional[dict] = None
    if recorder is not None:
        from ..correlate import correlate_windows

        windows = recorder.finish()
        # Merging the recorded windows reproduces the unwindowed totals
        # exactly (carried-anchor window semantics), so the headline
        # LevelResult numbers stay bit-identical to a correlate-off cell.
        snapshot = recorder.merged() if windows else monitor.snapshot()
        correlation = correlate_windows(
            windows,
            outcome_log or (),
            spec.correlate,
            config.qos_latency_ns,
            workload=definition.key,
        )
        extra = {"correlation": correlation.to_dict()}
    elif monitor.exporter is not None:
        # Close the partial tail window, then rebuild the whole-run view by
        # merging the exported windows — bit-identical to the unwindowed
        # snapshot in vm/native modes (the carried-anchor window semantics
        # partition the delta population exactly).
        exporter = monitor.exporter
        exporter.observe_window(monitor.snapshot(reset=True))
        snapshot = MetricsSnapshot.merge_all(exporter.windows)
        export_payload = {
            "windows": len(exporter.windows),
            "window_ns": spec.export.window_ns,
            "window_rps": [w.rps_obsv for w in exporter.windows],
            "window_lost": [w.lost_records for w in exporter.windows],
            "window_confidence": [w.confidence for w in exporter.windows],
            "scrapes": exporter.render_count,
            "bytes_rendered": exporter.bytes_rendered,
            "text": exporter.render(),
            "openmetrics": exporter.render(openmetrics=True),
        }
    else:
        snapshot = monitor.snapshot()

    # Steady-state trim for the per-window estimates too: sends after the
    # final offered arrival belong to the drain, not the measured load.
    send_times = send_probe.timestamps
    if client.last_offered_ns is not None:
        send_times = [t for t in send_times if t <= client.last_offered_ns]

    c2s = spec.client_to_server or NetemConfig.ideal()
    return LevelResult(
        workload=definition.key,
        offered_rps=spec.offered_rps,
        achieved_rps=report.achieved_rps,
        p99_ns=report.p99_ns,
        p50_ns=report.latency.p50_ns(),
        mean_latency_ns=report.latency.mean_ns(),
        completed=report.completed,
        qos_violated=report.qos_violated,
        rps_obsv=snapshot.rps_obsv,
        rps_obsv_recv=snapshot.rps_obsv_recv,
        send_delta_variance=float(snapshot.send_delta_variance),
        send_delta_cov2=snapshot.send_delta_cov2,
        recv_delta_variance=float(snapshot.recv_delta_variance),
        poll_mean_duration_ns=float(snapshot.poll_mean_duration_ns),
        poll_count=snapshot.poll.count,
        window_rps=window_estimates(send_times, spec.estimate_windows),
        lost_records=snapshot.lost_records,
        confidence=snapshot.overall_confidence,
        rps_obsv_corrected=snapshot.rps_obsv_corrected,
        recv_rate_corrected=snapshot.recv_rate_corrected,
        machine=machine.name,
        netem_label=c2s.label(),
        utilization=kernel.cpu.utilization(),
        sim_duration_ns=env.now,
        export=export_payload,
        extra=extra,
    )


def _cell_worker(payload: dict) -> dict:
    """Process-pool entry point: dicts in, dicts out (spawn-safe, picklable)."""
    return execute_cell(ExperimentSpec.from_dict(payload)).to_dict()


@dataclass(frozen=True)
class CellProgress:
    """One telemetry event: a cell finished (from cache or computed)."""

    #: Position of the cell in the submitted batch.
    index: int
    #: Batch size.
    total: int
    #: The cell's spec.
    spec: ExperimentSpec
    #: ``"cache"`` or ``"computed"``.
    source: str
    #: Cells finished so far (cache hits + computed).
    done: int
    #: Cache hits so far.
    cache_hits: int
    #: Cells computed so far.
    computed: int
    #: Wall-clock seconds since the batch started.
    elapsed_s: float


@dataclass
class ExecutorStats:
    """End-of-batch telemetry: cells done, cache hits, wall-clock."""

    total: int = 0
    cache_hits: int = 0
    computed: int = 0
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        return dict(self.__dict__)

    def summary(self) -> str:
        return (
            f"{self.total} cells: {self.cache_hits} cached, "
            f"{self.computed} computed in {self.wall_s:.2f}s"
        )


ProgressCallback = Callable[[CellProgress], None]


def run_cells(
    specs: Sequence[ExperimentSpec],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
) -> Tuple[List[LevelResult], ExecutorStats]:
    """Run a batch of cells, in spec order, across up to ``jobs`` workers.

    Cache hits are served first (and never occupy a worker); only missing
    cells are computed.  Freshly computed results are written back to the
    cache from the parent process, so concurrent workers never race on the
    cache directory.  The returned results list is ordered like ``specs``
    regardless of completion order.
    """
    specs = list(specs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    start = time.perf_counter()
    stats = ExecutorStats(total=len(specs))
    results: List[Optional[LevelResult]] = [None] * len(specs)

    def emit(index: int, source: str) -> None:
        if progress is not None:
            progress(CellProgress(
                index=index,
                total=len(specs),
                spec=specs[index],
                source=source,
                done=stats.cache_hits + stats.computed,
                cache_hits=stats.cache_hits,
                computed=stats.computed,
                elapsed_s=time.perf_counter() - start,
            ))

    pending: List[int] = []
    for index, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            results[index] = hit
            stats.cache_hits += 1
            emit(index, "cache")
        else:
            pending.append(index)

    def finish(index: int, result: LevelResult) -> None:
        results[index] = result
        stats.computed += 1
        if cache is not None:
            cache.put(specs[index], result)
        emit(index, "computed")

    workers = min(jobs, len(pending))
    if workers <= 1:
        for index in pending:
            finish(index, execute_cell(specs[index]))
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_cell_worker, specs[index].to_dict()): index
                for index in pending
            }
            for future in as_completed(futures):
                finish(futures[future], LevelResult(**future.result()))

    stats.wall_s = time.perf_counter() - start
    return results, stats
