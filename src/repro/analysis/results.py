"""Result persistence: JSON records under ``results/``."""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import List, Optional

from .experiment import LevelResult, SweepResult

__all__ = ["save_sweep", "load_sweep", "save_record", "results_dir"]


def results_dir(base: Optional[Path] = None) -> Path:
    """The repository's results directory (created on demand)."""
    root = Path(base) if base is not None else Path(__file__).resolve().parents[3]
    path = root / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def save_sweep(sweep: SweepResult, name: str, base: Optional[Path] = None) -> Path:
    """Persist a sweep as ``results/<name>.json``; returns the path.

    Executor telemetry (cells done, cache hits, wall-clock), when the sweep
    carries it, is stored alongside the levels so reports can show how the
    run went.
    """
    path = results_dir(base) / f"{name}.json"
    payload = {
        "workload": sweep.workload,
        # Sharded sweeps keep positional null holes (see SweepResult).
        "levels": [
            level.to_dict() if level is not None else None
            for level in sweep.levels
        ],
    }
    if sweep.telemetry is not None:
        payload["telemetry"] = dict(sweep.telemetry)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_sweep(name: str, base: Optional[Path] = None) -> SweepResult:
    """Load a sweep previously written by :func:`save_sweep`."""
    path = results_dir(base) / f"{name}.json"
    payload = json.loads(path.read_text())
    levels: List[Optional[LevelResult]] = [
        LevelResult(**entry) if entry is not None else None
        for entry in payload["levels"]
    ]
    return SweepResult(
        workload=payload["workload"],
        levels=levels,
        telemetry=payload.get("telemetry"),
    )


def save_record(record: dict, name: str, base: Optional[Path] = None) -> Path:
    """Persist an arbitrary experiment record as JSON."""
    path = results_dir(base) / f"{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True, default=str))
    return path
