"""Tests for the parallel experiment executor and its typed spec API."""

import json

import pytest

from repro.analysis import (
    CellProgress,
    ExperimentSpec,
    ResultCache,
    execute_cell,
    run_cells,
    sweep,
)
from repro.kernel import AMD_EPYC_7302, INTEL_XEON_E5_2620
from repro.net import NetemConfig
from repro.workloads import get_workload


class TestExperimentSpec:
    def test_defaults(self):
        spec = ExperimentSpec(workload="silo", offered_rps=500)
        assert spec.requests == 3000
        assert spec.seed == 1317
        assert spec.machine is AMD_EPYC_7302
        assert spec.monitor_mode == "native"
        assert spec.definition is get_workload("silo")
        assert spec.label() == "silo@500"

    def test_frozen_and_hashable(self):
        spec = ExperimentSpec(workload="silo", offered_rps=500)
        with pytest.raises(AttributeError):
            spec.offered_rps = 600
        assert spec == ExperimentSpec(workload="silo", offered_rps=500.0)
        assert len({spec, ExperimentSpec(workload="silo", offered_rps=500)}) == 1

    def test_machine_accepts_name(self):
        spec = ExperimentSpec(workload="silo", offered_rps=500,
                              machine="intel-xeon-e5-2620")
        assert spec.machine is INTEL_XEON_E5_2620

    def test_validation(self):
        with pytest.raises(KeyError):
            ExperimentSpec(workload="nginx", offered_rps=500)
        with pytest.raises(ValueError):
            ExperimentSpec(workload="silo", offered_rps=0)
        with pytest.raises(ValueError):
            ExperimentSpec(workload="silo", offered_rps=500, requests=0)
        with pytest.raises(ValueError):
            ExperimentSpec(workload="silo", offered_rps=500, monitor_mode="jit")
        with pytest.raises(ValueError):
            ExperimentSpec(workload="silo", offered_rps=500, arrival="bursty")
        with pytest.raises(KeyError):
            ExperimentSpec(workload="silo", offered_rps=500, machine="cray-1")

    def test_dict_round_trip(self):
        spec = ExperimentSpec(
            workload="silo",
            offered_rps=700,
            requests=250,
            seed=7,
            machine=INTEL_XEON_E5_2620,
            client_to_server=NetemConfig.paper_impaired(),
            monitor_mode="vm",
            arrival="poisson",
        )
        payload = json.loads(json.dumps(spec.to_dict()))  # via real JSON
        rebuilt = ExperimentSpec.from_dict(payload)
        assert rebuilt == spec
        assert rebuilt.cache_key() == spec.cache_key()

    def test_cache_key_stability_and_sensitivity(self):
        spec = ExperimentSpec(workload="silo", offered_rps=500, seed=7)
        assert spec.cache_key() == ExperimentSpec(
            workload="silo", offered_rps=500.0, seed=7
        ).cache_key()
        changed = [
            spec.replace(seed=8),
            spec.replace(offered_rps=501),
            spec.replace(requests=2999),
            spec.replace(client_to_server=NetemConfig.paper_impaired()),
            spec.replace(monitor_mode="vm"),
            spec.replace(machine=INTEL_XEON_E5_2620),
        ]
        keys = {spec.cache_key()} | {c.cache_key() for c in changed}
        assert len(keys) == len(changed) + 1  # all distinct

    def test_grid(self):
        specs = ExperimentSpec.grid(["silo", "xapian"], [400, 800], seed=3)
        assert len(specs) == 4
        assert {s.workload for s in specs} == {"silo", "xapian"}
        assert all(s.seed == 3 for s in specs)

    def test_seed_sequence_matches_legacy_derivation(self):
        from repro.sim import SeedSequence

        spec = ExperimentSpec(workload="silo", offered_rps=500, seed=9)
        expected = SeedSequence(9).child("silo@500")
        assert spec.seed_sequence().seed == expected.seed


class TestParallelDeterminism:
    def test_parallel_equals_serial_on_grid(self):
        """2-workload x 3-level grid: jobs=4 is bit-identical to jobs=1."""
        specs = ExperimentSpec.grid(
            ["silo", "xapian"], [300, 600, 900], requests=120, seed=11
        )
        serial, serial_stats = run_cells(specs, jobs=1)
        parallel, parallel_stats = run_cells(specs, jobs=4)
        assert serial_stats.computed == parallel_stats.computed == 6
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]

    def test_execute_cell_matches_run_cells(self):
        spec = ExperimentSpec(workload="silo", offered_rps=500, requests=120)
        alone = execute_cell(spec)
        batched, _ = run_cells([spec, spec.replace(seed=2)], jobs=1)
        assert batched[0].to_dict() == alone.to_dict()


class TestResultCache:
    def test_cache_round_trip_is_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ExperimentSpec(workload="silo", offered_rps=500, requests=120)
        fresh = execute_cell(spec)
        cache.put(spec, fresh)
        assert cache.get(spec).to_dict() == fresh.to_dict()

    def test_miss_compute_then_warm_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = ExperimentSpec.grid(["silo"], [400, 800], requests=100)
        cold, cold_stats = run_cells(specs, cache=cache)
        assert (cold_stats.computed, cold_stats.cache_hits) == (2, 0)
        warm, warm_stats = run_cells(specs, cache=cache)
        assert (warm_stats.computed, warm_stats.cache_hits) == (0, 2)
        assert [r.to_dict() for r in warm] == [r.to_dict() for r in cold]

    def test_warm_sixteen_cell_sweep_recomputes_nothing(self, tmp_path):
        """Acceptance: a warm-cache re-run of a 16-cell sweep computes zero
        cells, verified via the telemetry callback's cache-hit counter."""
        cache = ResultCache(tmp_path)
        levels = [200 + 100 * i for i in range(8)]
        specs = ExperimentSpec.grid(["silo", "xapian"], levels, requests=80)
        assert len(specs) == 16
        _, cold_stats = run_cells(specs, cache=cache)
        assert cold_stats.computed == 16
        events = []
        warm, warm_stats = run_cells(specs, jobs=4, cache=cache,
                                     progress=events.append)
        assert warm_stats.computed == 0
        assert warm_stats.cache_hits == 16
        assert events[-1].cache_hits == 16
        assert all(e.source == "cache" for e in events)
        assert all(r is not None for r in warm)

    def test_changed_fields_invalidate(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ExperimentSpec(workload="silo", offered_rps=500, requests=100)
        run_cells([spec], cache=cache)
        for changed in (
            spec.replace(seed=spec.seed + 1),
            spec.replace(offered_rps=spec.offered_rps + 50),
            spec.replace(client_to_server=NetemConfig.paper_impaired(),
                         server_to_client=NetemConfig.paper_impaired()),
        ):
            assert cache.get(changed) is None
            _, stats = run_cells([changed], cache=cache)
            assert (stats.computed, stats.cache_hits) == (1, 0)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ExperimentSpec(workload="silo", offered_rps=500, requests=100)
        result = execute_cell(spec)
        path = cache.put(spec, result)
        path.write_text("{not json")
        assert cache.get(spec) is None
        _, stats = run_cells([spec], cache=cache)
        assert stats.computed == 1  # recomputed and re-stored
        assert cache.get(spec).to_dict() == result.to_dict()

    def test_invalidate_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ExperimentSpec(workload="silo", offered_rps=500, requests=100)
        cache.put(spec, execute_cell(spec))
        assert len(cache) == 1
        assert cache.invalidate(spec) is True
        assert cache.invalidate(spec) is False
        cache.put(spec, execute_cell(spec))
        assert cache.clear() == 1
        assert len(cache) == 0


class TestTelemetry:
    def test_progress_events(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = ExperimentSpec.grid(["silo"], [400, 800, 1200], requests=100)
        run_cells(specs[:1], cache=cache)  # pre-warm one cell
        events = []
        _, stats = run_cells(specs, cache=cache, progress=events.append)
        assert len(events) == 3
        assert all(isinstance(e, CellProgress) for e in events)
        assert [e.done for e in events] == [1, 2, 3]
        assert events[0].source == "cache"  # hits served before computes
        assert {e.source for e in events[1:]} == {"computed"}
        assert all(e.total == 3 for e in events)
        assert events[-1].elapsed_s >= 0.0
        assert stats.cache_hits == 1 and stats.computed == 2
        assert "3 cells" in stats.summary()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_cells([], jobs=0)


class TestSweepIntegration:
    def test_sweep_parallel_cached_equals_plain(self, tmp_path):
        d = get_workload("silo")
        plain = sweep(d, levels=[400, 800], requests=100)
        fancy = sweep(d, levels=[400, 800], requests=100, jobs=4,
                      cache=tmp_path / "cache")
        assert [l.to_dict() for l in plain.levels] == [
            l.to_dict() for l in fancy.levels
        ]
        assert fancy.telemetry["computed"] == 2
        rerun = sweep(d, levels=[400, 800], requests=100,
                      cache=tmp_path / "cache")
        assert rerun.telemetry["cache_hits"] == 2
        assert rerun.telemetry["computed"] == 0

    def test_sweep_accepts_workload_key(self):
        result = sweep("silo", levels=[400], requests=100)
        assert result.workload == "silo"
        assert result.telemetry["total"] == 1


class TestStreamModeSpec:
    def test_round_trip_and_cache_key(self):
        spec = ExperimentSpec(workload="silo", offered_rps=100,
                              monitor_mode="stream", stream_capacity=128)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        # capacity shapes the outcome in stream mode -> must shape the key
        assert spec.cache_key() != spec.replace(stream_capacity=256).cache_key()

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSpec(workload="silo", offered_rps=100, stream_capacity=0)
        with pytest.raises(ValueError):
            ExperimentSpec(workload="silo", offered_rps=100, monitor_mode="bogus")

    def test_stream_cell_populates_loss_fields(self):
        result = execute_cell(ExperimentSpec(
            workload="silo", offered_rps=200, requests=120,
            monitor_mode="stream",
        ))
        # Healthy consumer (drain-at-snapshot), ample buffer: no loss.
        assert result.lost_records == 0
        assert result.confidence == 1.0
        assert result.rps_obsv_corrected == pytest.approx(result.rps_obsv)
