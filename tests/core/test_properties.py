"""Cross-cutting property-based tests on core invariants."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import sparkline
from repro.core import DeltaStats, SlackEstimator
from repro.loadgen import LatencyTracker

_gaps = st.lists(st.integers(min_value=1, max_value=10**9), min_size=2, max_size=80)


def _timestamps(gaps):
    out = [0]
    for gap in gaps:
        out.append(out[-1] + gap)
    return out


@given(gaps=_gaps, split=st.integers(min_value=1, max_value=79))
@settings(max_examples=100)
def test_merge_of_split_equals_whole(gaps, split):
    """Splitting a trace anywhere and merging the halves loses nothing
    except the single boundary delta (which belongs to neither half)."""
    timestamps = _timestamps(gaps)
    assume(split < len(timestamps) - 1)
    whole = DeltaStats.from_timestamps(timestamps)
    left = DeltaStats.from_timestamps(timestamps[: split + 1])
    right = DeltaStats.from_timestamps(timestamps[split + 1 :])
    merged = left.merge(right)
    boundary = timestamps[split + 1] - timestamps[split]
    assert merged.count == whole.count - 1
    assert merged.sum == whole.sum - boundary
    assert merged.sumsq == whole.sumsq - boundary * boundary
    assert merged.first_ns == whole.first_ns
    assert merged.last_ns == whole.last_ns


@given(gaps=_gaps, resets=st.sets(st.integers(min_value=1, max_value=78), max_size=5))
@settings(max_examples=100)
def test_windowed_accumulation_sums_to_whole(gaps, resets):
    """reset_window() at arbitrary points: the per-window stats sum exactly
    to the unwindowed stats (the boundary delta lands in the next window)."""
    timestamps = _timestamps(gaps)
    resets = {r for r in resets if r < len(timestamps) - 1}
    whole = DeltaStats.from_timestamps(timestamps)

    stats = DeltaStats()
    windows = []
    for index, ts in enumerate(timestamps):
        stats.add_timestamp(ts)
        if index in resets:
            windows.append((stats.count, stats.sum, stats.sumsq))
            stats.reset_window()
    windows.append((stats.count, stats.sum, stats.sumsq))

    assert sum(w[0] for w in windows) == whole.count
    assert sum(w[1] for w in windows) == whole.sum
    assert sum(w[2] for w in windows) == whole.sumsq


@given(gaps=_gaps)
@settings(max_examples=60)
def test_rps_obsv_bounded_by_extreme_gaps(gaps):
    stats = DeltaStats.from_timestamps(_timestamps(gaps))
    rps = stats.rps_obsv()
    assert 1e9 / max(gaps) <= rps + 1e-6
    assert rps <= 1e9 / min(gaps) + 1e-6


@given(
    loads=st.lists(st.floats(min_value=1, max_value=1e4), min_size=2, max_size=8,
                   unique=True),
    query=st.floats(min_value=0, max_value=1e9),
)
@settings(max_examples=100)
def test_slack_estimator_bounds(loads, query):
    loads = sorted(loads)
    # Durations strictly decreasing with load.
    calibration = [(load, 1e9 / load) for load in loads]
    estimator = SlackEstimator(calibration)
    implied = estimator.implied_load(query)
    assert loads[0] <= implied <= loads[-1]
    slack = estimator.slack(query)
    assert 0.0 <= slack <= 1.0


@given(
    durations=st.lists(st.floats(min_value=1, max_value=1e9), min_size=2, max_size=20),
)
@settings(max_examples=60)
def test_slack_estimator_monotone(durations):
    estimator = SlackEstimator([(100, 1e6), (500, 1e4), (1000, 1e2)])
    ordered = sorted(durations)
    implied = [estimator.implied_load(d) for d in ordered]
    # Longer poll durations imply lower (or equal) load.
    assert all(a >= b for a, b in zip(implied, implied[1:]))


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=100),
       st.floats(min_value=0, max_value=100), st.floats(min_value=0, max_value=100))
@settings(max_examples=100)
def test_percentiles_monotone_in_p(samples, p_low, p_high):
    tracker = LatencyTracker()
    for sample in samples:
        tracker.record(sample)
    low, high = sorted((p_low, p_high))
    assert tracker.percentile_ns(low) <= tracker.percentile_ns(high)


@given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
@settings(max_examples=100)
def test_sparkline_length_matches(values):
    assert len(sparkline(values)) == len(values)
