"""Pre-decoded fast path for the eBPF interpreter.

:class:`~repro.ebpf.vm.Vm` re-derives the instruction class, operand
source, and helper signature of every instruction on every step — fine
for a reference implementation, but it is the hot path under every
simulated syscall of every experiment cell.  This module performs a
one-time translation pass over a program: each :class:`Insn` becomes a
specialized micro-op closure with its registers, masked immediates,
jump targets, fused ``ld_imm64`` constants, map references, and helper
signatures already resolved.  The dispatch loop then just indexes a
tuple::

    pc = ops[pc](regs, pc, frame)

Translations are cached per program (keyed on the instruction blob and
the identity of referenced maps) so `BPF`/`Kernel` attach sites reuse
them across millions of firings.

Semantics contract: the fast path must be **bit-for-bit identical** to
``Vm.execute`` — same ``(r0, steps, cost_ns)``, same map mutations, same
fault messages.  Every micro-op therefore handles only the plain-integer
(or pointer, where profitable) common case inline and falls back to the
reference ``_alu``/``_branch``/``mem_load``/``mem_store`` routines for
anything exotic, so uncommon cases share the reference code path rather
than re-implementing it.  The cost model is shared outright:
instructions are counted by the loop exactly as the reference counts
them, and helper costs come from the same :func:`~repro.ebpf.vm.call_helper`.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

from .errors import VmFault
from .helpers import HELPER_SIGS, HelperRuntime
from .insn import Insn, encode
from .maps import BpfMap, PerfEventArray, RingBuf
from .opcodes import AluOp, InsnClass, JmpOp, MemSize, Reg
from .vm import (
    DEFAULT_INSN_COST_NS,
    MAX_STEPS,
    STACK_SIZE,
    MapRef,
    MemRegion,
    Pointer,
    RegValue,
    Vm,
    VmResult,
    _to_signed,
    call_helper,
    mem_load,
    mem_store,
)

__all__ = [
    "FastVm",
    "DecodedProgram",
    "TranslationCache",
    "decode_program",
    "translate",
    "translation_cache_stats",
    "clear_translation_cache",
]

_MASK32 = (1 << 32) - 1
_MASK64 = (1 << 64) - 1

#: Reference interpreter instance the micro-ops delegate to for every
#: non-fast case (pointer arithmetic oddities, uninitialized registers,
#: faults).  ``_alu``/``_branch`` are stateless, so sharing one is safe.
_REF = Vm()

#: Sentinel marking "program has not reached EXIT" in the execution frame.
_UNSET = object()


def _sx32(value: int) -> int:
    return value - ((value & 0x80000000) << 1)


def _sx64(value: int) -> int:
    return value - ((value & 0x8000000000000000) << 1)


# ----------------------------------------------------------------------
# micro-op factories
#
# The int/int case of every ALU and JMP op is generated with ``exec`` so
# the operator itself is inlined into the closure body (no per-step table
# lookup or lambda call).  Each factory bakes registers, masked
# immediates, and jump targets into closure cells.
# ----------------------------------------------------------------------

_ALU_EXPR = {
    AluOp.ADD: "a + b",
    AluOp.SUB: "a - b",
    AluOp.MUL: "a * b",
    AluOp.DIV: "(a // b) if b else 0",
    AluOp.MOD: "(a % b) if b else a",
    AluOp.OR: "a | b",
    AluOp.AND: "a & b",
    AluOp.XOR: "a ^ b",
    AluOp.LSH: "a << (b & SHIFT)",
    AluOp.RSH: "a >> (b & SHIFT)",
    AluOp.ARSH: "SX(a) >> (b & SHIFT)",
    AluOp.NEG: "-a",
}

# (immediate-operand condition, register-operand condition)
_JMP_EXPR = {
    JmpOp.JEQ: ("a == B", "a == b"),
    JmpOp.JNE: ("a != B", "a != b"),
    JmpOp.JGT: ("a > B", "a > b"),
    JmpOp.JGE: ("a >= B", "a >= b"),
    JmpOp.JLT: ("a < B", "a < b"),
    JmpOp.JLE: ("a <= B", "a <= b"),
    JmpOp.JSET: ("a & B", "a & b"),
    JmpOp.JSGT: ("SX(a) > SB", "SX(a) > SX(b)"),
    JmpOp.JSGE: ("SX(a) >= SB", "SX(a) >= SX(b)"),
    JmpOp.JSLT: ("SX(a) < SB", "SX(a) < SX(b)"),
    JmpOp.JSLE: ("SX(a) <= SB", "SX(a) <= SX(b)"),
}

_ALU_IMM_SRC = """
def make(DST, B, NXT, insn):
    def step(regs, pc, frame):
        a = regs[DST]
        if type(a) is int:
            a &= MASK
            b = B
            regs[DST] = ({EXPR}) & MASK
            return NXT
        _REF._alu(insn, regs, IS64)
        return NXT
    return step
"""

# ADD/SUB with an immediate also get an inline pointer case: stack/map
# pointer bumps (``r2 = r10; r2 += -8``) fire on every probe invocation.
_ALU_PTR_IMM_SRC = """
def make(DST, B, DELTA, NXT, insn):
    def step(regs, pc, frame):
        a = regs[DST]
        if type(a) is int:
            a &= MASK
            b = B
            regs[DST] = ({EXPR}) & MASK
            return NXT
        if a.__class__ is Pointer:
            regs[DST] = Pointer(a.region, a.offset + DELTA)
            return NXT
        _REF._alu(insn, regs, IS64)
        return NXT
    return step
"""

_ALU_REG_SRC = """
def make(DST, SRC, NXT, insn):
    def step(regs, pc, frame):
        a = regs[DST]
        b = regs[SRC]
        if type(a) is int and type(b) is int:
            a &= MASK
            b &= MASK
            regs[DST] = ({EXPR}) & MASK
            return NXT
        _REF._alu(insn, regs, IS64)
        return NXT
    return step
"""

_JMP_IMM_SRC = """
def make(DST, B, SB, TGT, NXT, insn):
    def step(regs, pc, frame):
        a = regs[DST]
        if type(a) is int:
            a &= MASK
            return TGT if ({COND}) else NXT
        return TGT if _REF._branch(insn, regs, IS32) else NXT
    return step
"""

_JMP_REG_SRC = """
def make(DST, SRC, TGT, NXT, insn):
    def step(regs, pc, frame):
        a = regs[DST]
        b = regs[SRC]
        if type(a) is int and type(b) is int:
            a &= MASK
            b &= MASK
            return TGT if ({COND}) else NXT
        return TGT if _REF._branch(insn, regs, IS32) else NXT
    return step
"""

# JEQ/JNE against immediate 0 is the null-check after map_lookup_elem —
# inline the pointer answer (a pointer never equals scalar 0).
_JMP_NULL_SRC = """
def make(DST, TGT, NXT, insn):
    def step(regs, pc, frame):
        a = regs[DST]
        if type(a) is int:
            a &= MASK
            return TGT if ({COND}) else NXT
        cls = a.__class__
        if cls is Pointer or cls is MapRef:
            return {PTR_RESULT}
        return TGT if _REF._branch(insn, regs, IS32) else NXT
    return step
"""


def _compile_factory(source: str, namespace: dict):
    scope = dict(namespace)
    exec(source, scope)  # noqa: S102 - building specialized closures
    return scope["make"]


def _build_factories():
    alu = {}
    for is64 in (False, True):
        ns = {
            "MASK": _MASK64 if is64 else _MASK32,
            "SHIFT": 63 if is64 else 31,
            "SX": _sx64 if is64 else _sx32,
            "IS64": is64,
            "_REF": _REF,
            "Pointer": Pointer,
        }
        imm, imm_ptr, reg = {}, {}, {}
        for op, expr in _ALU_EXPR.items():
            if op in (AluOp.ADD, AluOp.SUB):
                imm_ptr[op] = _compile_factory(
                    _ALU_PTR_IMM_SRC.replace("{EXPR}", expr), ns)
            else:
                imm[op] = _compile_factory(_ALU_IMM_SRC.replace("{EXPR}", expr), ns)
            reg[op] = _compile_factory(_ALU_REG_SRC.replace("{EXPR}", expr), ns)
        alu[is64] = {"imm": imm, "imm_ptr": imm_ptr, "reg": reg}

    jmp = {}
    for is32 in (False, True):
        ns = {
            "MASK": _MASK32 if is32 else _MASK64,
            "SX": _sx32 if is32 else _sx64,
            "IS32": is32,
            "_REF": _REF,
            "Pointer": Pointer,
            "MapRef": MapRef,
        }
        imm, reg = {}, {}
        for op, (cond_imm, cond_reg) in _JMP_EXPR.items():
            imm[op] = _compile_factory(_JMP_IMM_SRC.replace("{COND}", cond_imm), ns)
            reg[op] = _compile_factory(_JMP_REG_SRC.replace("{COND}", cond_reg), ns)
        null = {
            JmpOp.JEQ: _compile_factory(
                _JMP_NULL_SRC.replace("{COND}", "a == 0").replace("{PTR_RESULT}", "NXT"), ns),
            JmpOp.JNE: _compile_factory(
                _JMP_NULL_SRC.replace("{COND}", "a != 0").replace("{PTR_RESULT}", "TGT"), ns),
        }
        jmp[is32] = {"imm": imm, "reg": reg, "null": null}
    return alu, jmp


_ALU_FACTORIES, _JMP_FACTORIES = _build_factories()


# ----------------------------------------------------------------------
# translation
# ----------------------------------------------------------------------

def _make_fault(message: str):
    def step(regs, pc, frame):
        raise VmFault(message)
    return step


def _make_ref_alu(insn: Insn, is64: bool, nxt: int):
    def step(regs, pc, frame):
        _REF._alu(insn, regs, is64)
        return nxt
    return step


def _make_ref_jmp(insn: Insn, is32: bool, tgt: int, nxt: int):
    def step(regs, pc, frame):
        return tgt if _REF._branch(insn, regs, is32) else nxt
    return step


def _translate_alu(insn: Insn, nxt: int, is64: bool):
    op = insn.opcode & 0xF0
    mask = _MASK64 if is64 else _MASK32
    dst = insn.dst
    if op == AluOp.MOV:
        if not insn.uses_reg_source:
            value = insn.imm & mask
            def step(regs, pc, frame):
                regs[dst] = value
                return nxt
            return step
        src = insn.src
        def step(regs, pc, frame):
            v = regs[src]
            if type(v) is int:
                regs[dst] = v & mask
            else:
                cls = v.__class__
                if cls is Pointer or cls is MapRef:
                    regs[dst] = v
                elif v is None:
                    raise VmFault(f"mov from uninitialized r{src}")
                else:
                    regs[dst] = v & mask
            return nxt
        return step

    factories = _ALU_FACTORIES[is64]
    if insn.uses_reg_source:
        make = factories["reg"].get(op)
        if make is None:
            return _make_ref_alu(insn, is64, nxt)
        return make(dst, insn.src, nxt, insn)
    b = insn.imm & mask
    make = factories["imm_ptr"].get(op)
    if make is not None:
        delta = _to_signed(b, 64)
        if op == AluOp.SUB:
            delta = -delta
        return make(dst, b, delta, nxt, insn)
    make = factories["imm"].get(op)
    if make is None:
        return _make_ref_alu(insn, is64, nxt)
    return make(dst, b, nxt, insn)


def _translate_jmp(insn: Insn, pc: int, is32: bool):
    op = insn.opcode & 0xF0
    nxt = pc + 1
    if op == JmpOp.CALL:
        sig = HELPER_SIGS.get(insn.imm)
        if sig is None:
            return _make_fault(f"unknown helper id {insn.imm}")
        def step(regs, _pc, frame):
            frame[0] += call_helper(sig, regs, frame[1])
            return nxt
        return step
    if op == JmpOp.EXIT:
        def step(regs, _pc, frame):
            r0 = regs[0]
            if not isinstance(r0, int):
                raise VmFault(f"exit with non-scalar r0 {r0!r}")
            frame[2] = r0
            return -1
        return step
    tgt = pc + 1 + insn.off
    if op == JmpOp.JA:
        def step(regs, _pc, frame):
            return tgt
        return step
    factories = _JMP_FACTORIES[is32]
    if insn.uses_reg_source:
        make = factories["reg"].get(op)
        if make is None:
            return _make_ref_jmp(insn, is32, tgt, nxt)
        return make(insn.dst, insn.src, tgt, nxt, insn)
    mask = _MASK32 if is32 else _MASK64
    b = insn.imm & mask
    if b == 0 and op in (JmpOp.JEQ, JmpOp.JNE):
        return factories["null"][op](insn.dst, tgt, nxt, insn)
    make = factories["imm"].get(op)
    if make is None:
        return _make_ref_jmp(insn, is32, tgt, nxt)
    sb = _to_signed(b, 32 if is32 else 64)
    return make(insn.dst, b, sb, tgt, nxt, insn)


def _translate_ldx(insn: Insn, nxt: int):
    dst, src, off = insn.dst, insn.src, insn.off
    size = MemSize(insn.opcode & 0x18)
    nb = size.nbytes
    from_bytes = int.from_bytes
    def step(regs, pc, frame):
        ptr = regs[src]
        if ptr.__class__ is Pointer:
            start = ptr.offset + off
            data = ptr.region.data
            if 0 <= start and start + nb <= len(data):
                regs[dst] = from_bytes(data[start:start + nb], "little")
                return nxt
        regs[dst] = mem_load(regs[src], off, size)  # replays the exact fault
        return nxt
    return step


def _translate_stx(insn: Insn, nxt: int):
    dst, src, off = insn.dst, insn.src, insn.off
    size = MemSize(insn.opcode & 0x18)
    nb = size.nbytes
    vmask = (1 << (8 * nb)) - 1
    def step(regs, pc, frame):
        value = regs[src]
        if value.__class__ is int:
            ptr = regs[dst]
            if ptr.__class__ is Pointer:
                region = ptr.region
                if region.writable:
                    start = ptr.offset + off
                    data = region.data
                    if 0 <= start and start + nb <= len(data):
                        data[start:start + nb] = (value & vmask).to_bytes(nb, "little")
                        return nxt
            mem_store(regs[dst], off, size, value)  # replays the exact fault
            return nxt
        if not isinstance(value, int):
            raise VmFault(f"store of non-scalar {value!r}")
        mem_store(regs[dst], off, size, value)
        return nxt
    return step


def _translate_st(insn: Insn, nxt: int):
    dst, off = insn.dst, insn.off
    size = MemSize(insn.opcode & 0x18)
    nb = size.nbytes
    value = insn.imm & _MASK64
    blob = (value & ((1 << (8 * nb)) - 1)).to_bytes(nb, "little")
    def step(regs, pc, frame):
        ptr = regs[dst]
        if ptr.__class__ is Pointer:
            region = ptr.region
            if region.writable:
                start = ptr.offset + off
                data = region.data
                if 0 <= start and start + nb <= len(data):
                    data[start:start + nb] = blob
                    return nxt
        mem_store(regs[dst], off, size, value)  # replays the exact fault
        return nxt
    return step


def _translate_ld(insns: Sequence[Insn], insn: Insn, pc: int, n: int):
    if not insn.is_ld_imm64 or pc + 1 >= n:
        return _make_fault(f"unsupported LD insn {insn!r}")
    dst = insn.dst
    skip = pc + 2
    if insn.is_map_load:
        ref = insn.map_ref
        if not isinstance(ref, (BpfMap, RingBuf, PerfEventArray)):
            return _make_fault(f"unresolved map reference {ref!r}")
        # MapRef is immutable and compared only by null-check, so one
        # shared instance per translation is indistinguishable from the
        # reference's per-execution allocation.
        map_ref = MapRef(ref)
        def step(regs, _pc, frame):
            regs[dst] = map_ref
            return skip
        return step
    value = ((insns[pc + 1].imm & _MASK32) << 32) | (insn.imm & _MASK32)
    def step(regs, _pc, frame):
        regs[dst] = value
        return skip
    return step


def _translate_one(insns: Sequence[Insn], pc: int, n: int):
    insn = insns[pc]
    klass = insn.opcode & 0x07
    nxt = pc + 1
    if klass == InsnClass.ALU or klass == InsnClass.ALU64:
        return _translate_alu(insn, nxt, klass == InsnClass.ALU64)
    if klass == InsnClass.LDX:
        return _translate_ldx(insn, nxt)
    if klass == InsnClass.STX:
        return _translate_stx(insn, nxt)
    if klass == InsnClass.ST:
        return _translate_st(insn, nxt)
    if klass == InsnClass.LD:
        return _translate_ld(insns, insn, pc, n)
    if klass == InsnClass.JMP or klass == InsnClass.JMP32:
        return _translate_jmp(insn, pc, klass == InsnClass.JMP32)
    return _make_fault(f"unknown instruction class {klass}")  # pragma: no cover


class DecodedProgram:
    """A translated program: one micro-op closure per instruction slot.

    The second slot of a fused ``ld_imm64`` pair keeps its own micro-op
    (an "unsupported LD" fault, exactly as the reference treats a jump
    into the middle of the pair), so every pc remains a valid index.
    """

    __slots__ = ("ops", "n")

    def __init__(self, ops: Tuple) -> None:
        self.ops = ops
        self.n = len(ops)

    def __len__(self) -> int:
        return self.n


def translate(insns: Sequence[Insn]) -> DecodedProgram:
    """One-time translation of an instruction stream into micro-ops."""
    n = len(insns)
    return DecodedProgram(tuple(_translate_one(insns, pc, n) for pc in range(n)))


# ----------------------------------------------------------------------
# translation cache
# ----------------------------------------------------------------------

#: Cached marker for programs the compiled-tier generator rejected, so
#: the (cheap but not free) unsupported-construct scan runs only once.
_UNSUPPORTED = object()

#: ``compile_insns`` resolved on first use (repro.ebpf.compiled imports
#: this module, so a top-level import would be circular) and memoized so
#: the hot path never re-enters importlib.
_compile_insns = None


class TranslationCache:
    """Blob-keyed cache of per-tier program translations.

    One cache serves both accelerated tiers — ``"fast"`` entries hold
    :class:`DecodedProgram` micro-op lists, ``"compiled"`` entries hold
    whole-program functions from :mod:`repro.ebpf.compiled` — so
    attaching the same program under two tiers never double-translates
    the shared decode work and the two tiers' entries age in one LRU.

    Two layers per tier:

    * an identity memo (``id(insns)`` → per-tier entries) that makes the
      steady state — the same ``Program.insns`` list executed millions
      of times from an attach site — a single dict probe, and
    * a content cache keyed on ``(wire encoding, map identities, tier)``
      so distinct but identical instruction lists (e.g. per-level
      rebuilds of the same collector) share one translation.

    Map identities are part of the key because translations bind map
    objects into closures; a cached entry keeps those maps alive, which
    also guarantees their ``id``\\ s cannot be recycled while the entry
    exists.

    ``disk`` optionally attaches a cross-process backend (in practice a
    :class:`repro.ebpf.diskcache.DiskCodeCache`, duck-typed so this
    module never imports it): an in-memory content miss consults
    ``disk.load(insns, tier)`` before translating, and a fresh
    translation is offered to ``disk.store`` so the next process starts
    warm.  Disk entries are map-identity-free (the backend re-binds map
    *roles* against the caller's live maps), which is why the disk layer
    can sit below the identity-ful in-memory key.
    """

    def __init__(self, max_entries: int = 256, disk=None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        #: ``(blob, map identities, tier)`` → translation (or, for the
        #: compiled tier, the ``_UNSUPPORTED`` marker).
        self._by_blob: "OrderedDict[tuple, object]" = OrderedDict()
        #: ``id(insns)`` → ``[insns, {tier: translation}, content key,
        #: hit-since-last-purge flag]``.
        self._by_seq: dict = {}
        self.disk = disk
        self.hits = 0
        self.misses = 0
        #: Translations actually performed (in-memory and disk both missed).
        self.translations = 0
        #: Wall time spent inside ``translate_fn`` (the amortization metric).
        self.translate_ns = 0

    @staticmethod
    def _content_key(insns: Sequence[Insn]) -> tuple:
        return (
            encode(insns),
            tuple(id(i.map_ref) for i in insns if i.map_ref is not None),
        )

    def _lookup(self, insns: Sequence[Insn], tier: str, translate_fn):
        memo = self._by_seq.get(id(insns))
        if memo is not None and memo[0] is insns:
            entry = memo[1].get(tier)
            if entry is not None:
                self.hits += 1
                memo[3] = True
                return entry
        else:
            memo = None
        base = self._content_key(insns)
        key = base + (tier,)
        entry = self._by_blob.get(key)
        if entry is None:
            self.misses += 1
            entry = self.disk.load(insns, tier) if self.disk is not None else None
            if entry is None:
                start = time.perf_counter_ns()
                entry = translate_fn(insns)
                self.translate_ns += time.perf_counter_ns() - start
                self.translations += 1
                if self.disk is not None:
                    self.disk.store(insns, tier, entry)
            self._by_blob[key] = entry
            while len(self._by_blob) > self.max_entries:
                self._by_blob.popitem(last=False)
        else:
            self.hits += 1
        if memo is None:
            if len(self._by_seq) > 4 * self.max_entries:
                self._purge_seq_memos()
            memo = [insns, {}, base, True]
            self._by_seq[id(insns)] = memo
        memo[1][tier] = entry
        memo[3] = True
        return entry

    def _purge_seq_memos(self) -> None:
        """Shed cold identity memos without touching the hot ones.

        A memo is *live* while any of its tiers' translations is still in
        ``_by_blob`` — those are the attach sites the memo layer exists
        for, and evicting them mid-run (as the old wholesale ``clear()``
        did) put a content-key probe back on every subsequent firing
        until re-memoized.  Memos whose blob entry aged out of the LRU
        are dead weight and dropped.  If that alone does not get under
        budget (many distinct list objects of the same live content), a
        second-chance pass drops memos not hit since the previous purge,
        so steadily-firing attach sites always survive.
        """
        by_blob = self._by_blob
        live = {
            seq_id: memo
            for seq_id, memo in self._by_seq.items()
            if any(memo[2] + (tier,) in by_blob for tier in memo[1])
        }
        if len(live) > 4 * self.max_entries:
            live = {
                seq_id: memo for seq_id, memo in live.items() if memo[3]
            }
        for memo in live.values():
            memo[3] = False
        self._by_seq = live

    def get(self, insns: Sequence[Insn]) -> DecodedProgram:
        """The fast-tier (micro-op) translation of ``insns``."""
        return self._lookup(insns, "fast", translate)

    def get_compiled(self, insns: Sequence[Insn]):
        """The compiled-tier translation, or ``None`` when the program
        is outside the code generator's subset (cached either way)."""
        global _compile_insns
        if _compile_insns is None:
            from .compiled import compile_insns

            _compile_insns = compile_insns
        entry = self._lookup(
            insns, "compiled",
            lambda seq: _compile_insns(seq) or _UNSUPPORTED,
        )
        return None if entry is _UNSUPPORTED else entry

    def clear(self) -> None:
        self._by_blob.clear()
        self._by_seq.clear()
        self.hits = 0
        self.misses = 0
        self.translations = 0
        self.translate_ns = 0

    def stats(self) -> dict:
        stats = {
            "entries": len(self._by_blob),
            "hits": self.hits,
            "misses": self.misses,
            "translations": self.translations,
            "translate_ns": self.translate_ns,
        }
        if self.disk is not None:
            stats["disk"] = self.disk.stats()
        return stats

    def __len__(self) -> int:
        return len(self._by_blob)


_GLOBAL_CACHE = TranslationCache()


def decode_program(insns: Sequence[Insn],
                   cache: Optional[TranslationCache] = None) -> DecodedProgram:
    """Translate ``insns`` through the (default: global) cache."""
    return (cache or _GLOBAL_CACHE).get(insns)


def translation_cache_stats() -> dict:
    """Hit/miss/entry counters of the process-wide translation cache."""
    return _GLOBAL_CACHE.stats()


def clear_translation_cache() -> None:
    _GLOBAL_CACHE.clear()


# ----------------------------------------------------------------------
# the fast interpreter
# ----------------------------------------------------------------------

class FastVm(Vm):
    """Drop-in :class:`Vm` that executes pre-decoded micro-ops.

    Produces results bit-for-bit identical to the reference interpreter
    (enforced by the differential suite in ``tests/ebpf/test_fastvm.py``)
    while dispatching instructions several times faster.
    """

    def __init__(self, insn_cost_ns: int = DEFAULT_INSN_COST_NS,
                 cache: Optional[TranslationCache] = None) -> None:
        super().__init__(insn_cost_ns)
        self.cache = cache if cache is not None else _GLOBAL_CACHE

    def prepare(self, insns: Sequence[Insn]):
        """Per-program executor with the translation resolved up front, so
        each firing skips the cache probe entirely."""
        ops_holder = self.cache.get(insns)
        run_decoded = self._run_decoded

        def run(ctx: bytes, runtime: Optional[HelperRuntime] = None) -> VmResult:
            return run_decoded(ops_holder, ctx, runtime)

        return run

    def execute(
        self,
        insns: Sequence[Insn],
        ctx: bytes,
        runtime: Optional[HelperRuntime] = None,
    ) -> VmResult:
        return self._run_decoded(self.cache.get(insns), ctx, runtime)

    def _run_decoded(
        self,
        ops_holder: DecodedProgram,
        ctx: bytes,
        runtime: Optional[HelperRuntime] = None,
    ) -> VmResult:
        runtime = runtime or HelperRuntime()
        stack = MemRegion("stack", bytearray(STACK_SIZE), writable=True)
        ctx_region = MemRegion("ctx", bytes(ctx), writable=False)

        regs: List[RegValue] = [None] * 11
        regs[Reg.R1] = Pointer(ctx_region, 0)
        regs[Reg.R10] = Pointer(stack, STACK_SIZE)

        # frame = [helper_cost_ns, runtime, r0-at-exit]
        frame: list = [0, runtime, _UNSET]
        ops = ops_holder.ops
        n = ops_holder.n
        pc = 0
        steps = 0
        max_steps = MAX_STEPS
        while 0 <= pc < n:
            steps += 1
            if steps > max_steps:
                raise VmFault("instruction budget exhausted (runaway program)")
            pc = ops[pc](regs, pc, frame)
        r0 = frame[2]
        if r0 is _UNSET:
            raise VmFault(f"pc {pc} out of program bounds")
        return VmResult(r0=r0, steps=steps, cost_ns=frame[0] + steps * self.insn_cost_ns)
