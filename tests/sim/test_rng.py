"""Tests for deterministic random streams."""

import math
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import SeedSequence, splitmix64


def test_same_seed_same_stream():
    a = SeedSequence(1).stream("arrivals")
    b = SeedSequence(1).stream("arrivals")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_independent():
    seq = SeedSequence(1)
    a = seq.stream("arrivals")
    b = seq.stream("service")
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_stream_instance_reused():
    seq = SeedSequence(1)
    assert seq.stream("x") is seq.stream("x")


def test_child_sequences_independent():
    root = SeedSequence(7)
    a = root.child("machine-a").stream("svc")
    b = root.child("machine-b").stream("svc")
    assert a.random() != b.random()


def test_adding_stream_does_not_perturb_existing():
    seq1 = SeedSequence(9)
    s1 = seq1.stream("alpha")
    first = [s1.random() for _ in range(5)]

    seq2 = SeedSequence(9)
    seq2.stream("beta")  # new consumer registered first
    s2 = seq2.stream("alpha")
    second = [s2.random() for _ in range(5)]
    assert first == second


def test_splitmix64_known_vector():
    # Reference values from the canonical splitmix64 with seed state 0 and 1.
    assert splitmix64(0) == 0xE220A8397B1DCDAF
    assert splitmix64(1) != splitmix64(0)
    assert 0 <= splitmix64(12345) < 2**64


def test_exponential_mean():
    s = SeedSequence(3).stream("exp")
    draws = [s.exponential(100.0) for _ in range(20000)]
    assert statistics.mean(draws) == pytest.approx(100.0, rel=0.05)


def test_exponential_rejects_nonpositive_mean():
    s = SeedSequence(3).stream("exp")
    with pytest.raises(ValueError):
        s.exponential(0)


def test_lognormal_mean_cv_moments():
    s = SeedSequence(4).stream("lognorm")
    mean, cv = 50.0, 0.8
    draws = [s.lognormal_mean_cv(mean, cv) for _ in range(40000)]
    assert statistics.mean(draws) == pytest.approx(mean, rel=0.05)
    assert statistics.stdev(draws) / statistics.mean(draws) == pytest.approx(cv, rel=0.1)


def test_lognormal_zero_cv_is_deterministic():
    s = SeedSequence(4).stream("lognorm")
    assert s.lognormal_mean_cv(10.0, 0.0) == 10.0


def test_bernoulli_edges():
    s = SeedSequence(5).stream("bern")
    assert not s.bernoulli(0.0)
    assert s.bernoulli(1.0)


def test_bernoulli_rate():
    s = SeedSequence(5).stream("bern")
    hits = sum(s.bernoulli(0.25) for _ in range(40000))
    assert hits / 40000 == pytest.approx(0.25, abs=0.01)


def test_exponential_ns_is_positive_int():
    s = SeedSequence(6).stream("expns")
    for _ in range(100):
        draw = s.exponential_ns(1000)
        assert isinstance(draw, int) and draw >= 1


@given(seed=st.integers(min_value=0, max_value=2**64 - 1), name=st.text(max_size=20))
@settings(max_examples=50)
def test_streams_reproducible_property(seed, name):
    a = SeedSequence(seed).stream(name)
    b = SeedSequence(seed).stream(name)
    assert [a.random() for _ in range(3)] == [b.random() for _ in range(3)]


@given(st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=200)
def test_splitmix64_range_property(state):
    assert 0 <= splitmix64(state) < 2**64


def test_pareto_min_scale():
    s = SeedSequence(8).stream("pareto")
    draws = [s.pareto(10.0, 2.0) for _ in range(1000)]
    assert min(draws) >= 10.0


def test_pareto_validation():
    s = SeedSequence(8).stream("pareto")
    with pytest.raises(ValueError):
        s.pareto(0, 1)
    with pytest.raises(ValueError):
        s.pareto(1, 0)


def test_lognormal_heavy_tail_vs_light():
    s = SeedSequence(10).stream("tail")
    light = [s.lognormal_mean_cv(100, 0.1) for _ in range(5000)]
    heavy = [s.lognormal_mean_cv(100, 2.0) for _ in range(5000)]
    assert max(heavy) > max(light)
    assert math.isfinite(max(heavy))
