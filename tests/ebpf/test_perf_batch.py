"""Batched perf-buffer drain equivalence (DESIGN.md §6).

``PerfEventArray.drain_batches`` returns one contiguous byte block per
CPU; the batched consumer decodes each block with a single
``struct.iter_unpack`` and k-way-merges across CPUs by arrival sequence.
These properties pin that the batched path is observably identical to a
record-at-a-time reader — same records, same global order, same
lost-record accounting — under arbitrary per-CPU interleavings,
capacity overflow, and mid-window drains.
"""

import heapq
import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deltas import DeltaStats
from repro.ebpf.maps import PerfEventArray

_RECORD = struct.Struct("<QQ")


def _drive(events, cpus, capacity):
    """Feed the same event stream to the real map and a naive journal."""
    pea = PerfEventArray(cpus=cpus, per_cpu_capacity=capacity, name="t")
    journal = []  # (arrival index, record) for accepted records, per model
    counts = [0] * cpus
    lost = 0
    for arrival, (cpu, payload) in enumerate(events):
        accepted = pea.output(cpu, payload)
        index = cpu % cpus
        if counts[index] < capacity:
            assert accepted
            journal.append((arrival, index, bytes(payload)))
            counts[index] += 1
        else:
            assert not accepted
            lost += 1
    return pea, journal, lost


def _batched_decode(pea):
    """The consumer-side batched path, as the streaming collector runs it."""
    batches = pea.drain_batches()
    for batch in batches:
        if batch.record_size is not None:
            fmt = struct.Struct(f"<{batch.record_size}s")
            decoded = [blob for (blob,) in fmt.iter_unpack(batch.data)]
        else:
            decoded = batch.records()
        assert decoded == batch.records()
    merged = heapq.merge(*(zip(b.seqs, b.records()) for b in batches))
    return [record for _seq, record in merged]


uniform_events = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), st.binary(min_size=16, max_size=16)),
    max_size=80,
)

mixed_events = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), st.binary(min_size=1, max_size=24)),
    max_size=80,
)

sorted_timestamps = st.lists(st.integers(min_value=0, max_value=1 << 48), max_size=60).map(sorted)


@settings(max_examples=120, deadline=None)
@given(
    events=mixed_events,
    cpus=st.integers(min_value=1, max_value=4),
    capacity=st.integers(min_value=1, max_value=16),
)
def test_poll_matches_arrival_order_journal(events, cpus, capacity):
    pea, journal, lost = _drive(events, cpus, capacity)
    assert pea.poll() == [record for _a, _c, record in journal]
    assert pea.lost == lost
    assert len(pea) == 0


@settings(max_examples=120, deadline=None)
@given(
    events=mixed_events,
    cpus=st.integers(min_value=1, max_value=4),
    capacity=st.integers(min_value=1, max_value=16),
)
def test_drain_batches_equals_record_at_a_time(events, cpus, capacity):
    record_wise, _journal, _lost = _drive(events, cpus, capacity)
    batch_wise, journal, lost = _drive(events, cpus, capacity)
    assert _batched_decode(batch_wise) == record_wise.poll()
    assert batch_wise.lost == record_wise.lost == lost


@settings(max_examples=100, deadline=None)
@given(events=uniform_events, cpus=st.integers(min_value=1, max_value=4))
def test_uniform_batches_iter_unpack_whole_block(events, cpus):
    pea, _journal, _lost = _drive(events, cpus, capacity=1 << 16)
    for batch in pea.drain_batches():
        assert batch.record_size == 16
        assert len(batch.data) == 16 * len(batch)
        decoded = list(_RECORD.iter_unpack(batch.data))
        assert decoded == [_RECORD.unpack(blob) for blob in batch.records()]


@settings(max_examples=100, deadline=None)
@given(
    events=mixed_events,
    cpus=st.integers(min_value=1, max_value=4),
    split=st.integers(min_value=0, max_value=80),
)
def test_mid_window_drain_preserves_stream(events, cpus, split):
    """Draining mid-stream (reset_window's tail drain) loses nothing and
    keeps the global order: the two drains concatenate to one full poll."""
    whole, _journal, _lost = _drive(events, cpus, capacity=1 << 16)
    expected = whole.poll()

    pea = PerfEventArray(cpus=cpus, per_cpu_capacity=1 << 16, name="t")
    for cpu, payload in events[:split]:
        pea.output(cpu, payload)
    first = _batched_decode(pea)
    assert len(pea) == 0
    for cpu, payload in events[split:]:
        pea.output(cpu, payload)
    second = _batched_decode(pea)
    assert first + second == expected


@settings(max_examples=120, deadline=None)
@given(timestamps=sorted_timestamps, split=st.integers(min_value=0, max_value=60))
def test_add_timestamps_bit_identical_to_looped_add(timestamps, split):
    """The batched DeltaStats feed is bit-identical to the per-record one,
    including across a window reset between two batches."""
    looped = DeltaStats()
    batched = DeltaStats()
    for ts in timestamps[:split]:
        looped.add_timestamp(ts)
    batched.add_timestamps(timestamps[:split])
    assert looped == batched
    looped.reset_window()
    batched.reset_window()
    for ts in timestamps[split:]:
        looped.add_timestamp(ts)
    batched.add_timestamps(timestamps[split:])
    assert looped == batched


def test_record_size_tracks_mixed_sizes():
    pea = PerfEventArray(cpus=2, per_cpu_capacity=8, name="t")
    pea.output(0, b"x" * 16)
    pea.output(0, b"y" * 16)
    pea.output(1, b"z" * 8)
    pea.output(1, b"w" * 16)
    batches = {batch.cpu: batch for batch in pea.drain_batches()}
    assert batches[0].record_size == 16
    assert batches[1].record_size is None
    assert batches[1].sizes == [8, 16]


def test_drain_batches_resets_per_cpu_state():
    pea = PerfEventArray(cpus=2, per_cpu_capacity=2, name="t")
    for _ in range(4):  # overflow cpu 0
        pea.output(0, b"a" * 16)
    assert pea.lost == 2
    assert len(pea.drain_batches()) == 1
    # Capacity is freed by the drain; the next window starts clean.
    assert pea.output(0, b"b" * 16)
    [batch] = pea.drain_batches()
    assert batch.records() == [b"b" * 16]
    # Dropped records never consumed a sequence number; the map-global
    # sequence continues from the last *accepted* record.
    assert batch.seqs == [2]
    assert pea.lost == 2
