"""Compiled-tier process driver for trace-specialized service loops.

The workload specializer (:mod:`repro.workloads.compiled`) flattens each
app archetype's steady-state service loop into a single generator with the
syscall plumbing inlined.  Those generators are *internal*: they only ever
yield live events owned by their own environment, so the full
:class:`~repro.sim.process.Process` resume path — active-process
bookkeeping, yield-type validation, cross-environment checks — is pure
overhead on the simulator's hottest call site.  :class:`FlatProcess` is
the lean driver: same event semantics (it *is* a :class:`Process`, so
joins, ``interrupt`` and the fault injector's kill path keep working),
with a resume that does only the work the flat generators can observe.

Self-driving generators
-----------------------

A flat generator may end its cold-path setup by yielding the
:data:`SELF_DRIVE` sentinel.  :meth:`FlatProcess._resume` answers by
sending the generator *its own* ``send`` bound method and stepping aside:
from that point on the generator pre-registers ``send`` as the sole
callback of every event it is about to wait on (``event.callbacks =
[my_send]``) and suspends on a bare ``yield``.  The engine's dispatch
loop then resumes the generator *directly* — ``callback(event)`` is
``gen.send(event)`` — with no driver frame, no callback append, and no
fresh event allocation on the hot path (the specialized loops re-arm one
claim and one hold event per worker).  The yield expression evaluates to
the dispatched event, so value-carrying waits read ``(yield)._value``.

The trade: a self-driven generator no longer maintains ``_target``, so it
cannot be interrupted or killed (``repro.faults.runner`` forces faulted
cells onto the reference tier for exactly this reason), and every one of
its yields after the switch must be self-registered — a bubbled
``yield from`` through the reference syscall helpers would strand the
process.

The contract mirrors ``repro.ebpf.compiled``'s relationship to the VM
tiers: bit-identical behaviour, pinned by the differential suite in
``tests/workloads/test_compiled_apps.py``.
"""

from __future__ import annotations

from .events import Event
from .process import Process

__all__ = ["FlatProcess", "SELF_DRIVE"]

#: Yielded (once) by a flat generator to switch to the self-driving
#: protocol; answered by sending the generator its own ``send`` method.
SELF_DRIVE = object()


class FlatProcess(Process):
    """A :class:`Process` whose resume path is specialized for generated
    flat service loops.

    Dropped relative to :meth:`Process._resume` (all unobservable by the
    generated loops):

    * ``env._active_process`` tracking — never read anywhere in the tree;
    * the ``isinstance(next_target, Event)`` yield validation — generated
      code yields only events (or the :data:`SELF_DRIVE` sentinel, once);
    * the cross-environment check — generated code closes over exactly one
      environment.

    Kept: ``_target`` tracking (``interrupt``/``kill_thread`` need it),
    StopIteration/exception conversion, the failed-event throw path, and
    the already-processed-target re-schedule path (a dispatch-queue getter
    can be handed its item while the flat executor is still paying a
    syscall's entry cost, so the target may be processed by the time it is
    yielded — exactly as in the reference path).
    """

    __slots__ = ()

    def _resume(self, event: Event) -> None:
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                event.defuse()
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._target = None
            self.fail(exc)
            return

        if next_target is SELF_DRIVE:
            # Hand over: the generator runs its first self-registered
            # stint right now and the engine drives it directly after.
            generator = self._generator
            self._target = None
            try:
                generator.send(generator.send)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as exc:
                self.fail(exc)
            return

        self._target = next_target
        if next_target.callbacks is None:
            # Already-processed events resume the process on the next step.
            env = self.env
            resume = Event(env)
            resume._ok = next_target._ok
            resume._value = next_target._value
            if not next_target._ok:
                next_target.defuse()
                resume.defuse()
            resume.callbacks.append(self._resume)
            env._schedule(resume, env._now)
        else:
            next_target.callbacks.append(self._resume)
