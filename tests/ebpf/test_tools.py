"""Tests for the bcc-tools-style utilities (all-eBPF code paths)."""

import pytest

from repro.ebpf import Syscount, SyscallLatencyHist, render_histogram
from repro.ebpf.tools import HIST_BUCKETS
from repro.kernel import Kernel, MachineSpec, Sys
from repro.net import Message, NetemConfig
from repro.sim import MSEC, Environment, SeedSequence


def _kernel():
    spec = MachineSpec(name="t", cores=4, ctx_switch_ns=0, syscall_overhead_ns=0)
    return Kernel(Environment(), spec, SeedSequence(3), interference=False)


def _echo(kernel, n=6, delays_ms=None):
    """Worker answering n requests; arrival delays configurable per request."""
    env = kernel.env
    proc = kernel.create_process("srv")
    client, server = kernel.open_connection()
    delays_ms = delays_ms or [2] * n

    def worker(task):
        ep = yield from task.sys_epoll_create1()
        yield from task.sys_epoll_ctl(ep, server)
        for _ in range(n):
            yield from task.sys_epoll_wait(ep)
            msg = yield from task.sys_read(server)
            yield from task.sys_sendmsg(server, Message(size=msg.size))

    proc.spawn_thread(worker)

    def driver():
        for delay in delays_ms:
            yield env.timeout(delay * MSEC)
            client.send(Message(size=64))

    env.process(driver())
    return proc


class TestSyscount:
    def test_counts_by_name(self):
        kernel = _kernel()
        proc = _echo(kernel, n=6)
        tool = Syscount(kernel, proc.pid).attach()
        kernel.env.run()
        report = tool.report()
        assert report["read"] == 6
        assert report["sendmsg"] == 6
        assert report["epoll_wait"] == 6
        assert report["epoll_create1"] == 1

    def test_filters_other_processes(self):
        kernel = _kernel()
        proc = _echo(kernel, n=3)
        other = kernel.create_process("noise")

        def noise(task):
            yield from task.sys_socket()

        other.spawn_thread(noise)
        tool = Syscount(kernel, proc.pid).attach()
        kernel.env.run()
        assert "socket" not in tool.report()

    def test_detach(self):
        kernel = _kernel()
        proc = _echo(kernel, n=3)
        tool = Syscount(kernel, proc.pid).attach()
        tool.detach()
        kernel.env.run()
        assert tool.report() == {}


class TestSyscallLatencyHist:
    def test_epoll_wait_histogram_buckets(self):
        kernel = _kernel()
        # Waits of ~2ms land in bucket ilog2(2e6) = 20.
        proc = _echo(kernel, n=8, delays_ms=[2] * 8)
        tool = SyscallLatencyHist(kernel, proc.pid, Sys.EPOLL_WAIT).attach()
        kernel.env.run()
        buckets = tool.buckets()
        assert tool.total() == 8
        assert buckets[20] == 8  # 2ms = 2_000_000ns, ilog2 = 20

    def test_bimodal_waits_split_buckets(self):
        kernel = _kernel()
        proc = _echo(kernel, n=6, delays_ms=[1, 1, 1, 30, 30, 30])
        tool = SyscallLatencyHist(kernel, proc.pid, Sys.EPOLL_WAIT).attach()
        kernel.env.run()
        buckets = tool.buckets()
        assert buckets[19] == 3  # ~1ms
        assert buckets[24] == 3  # ~30ms (2^24 ~ 16.7ms .. 2^25)
        assert tool.total() == 6

    def test_ilog2_program_matches_python(self):
        """The unrolled in-eBPF ilog2 must agree with int.bit_length."""
        kernel = _kernel()
        env = kernel.env
        proc = kernel.create_process("srv")
        recorder_durations = [1, 3, 17, 999, 65_536, 123_456_789]
        tool = SyscallLatencyHist(kernel, proc.pid, Sys.NANOSLEEP).attach()

        def sleeper(task):
            for duration in recorder_durations:
                yield from task.sys_nanosleep(duration)

        proc.spawn_thread(sleeper)
        env.run()
        buckets = tool.buckets()
        expected = [0] * HIST_BUCKETS
        for duration in recorder_durations:
            expected[duration.bit_length() - 1] += 1
        assert buckets == expected

    def test_other_syscalls_ignored(self):
        kernel = _kernel()
        proc = _echo(kernel, n=4)
        tool = SyscallLatencyHist(kernel, proc.pid, Sys.SELECT).attach()
        kernel.env.run()
        assert tool.total() == 0


class TestRenderHistogram:
    def test_empty(self):
        assert render_histogram([0, 0, 0]) == "(empty histogram)"

    def test_rendering(self):
        buckets = [0] * 8
        buckets[2] = 4
        buckets[4] = 8
        text = render_histogram(buckets, width=8)
        assert "4 -> 7" in text
        assert "16 -> 31" in text
        assert "|********" in text  # peak bucket gets a full bar
        # Rows outside [first, last] are not rendered.
        assert "1 -> 1" not in text
