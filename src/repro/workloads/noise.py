"""Background system noise: other processes doing unrelated syscalls.

A real server is never quiet — the paper's collectors filter by
``pid_tgid`` precisely because dozens of other processes hammer the same
tracepoints.  :func:`spawn_noise_process` creates such a neighbour: a
process burning a configurable rate of mixed syscalls (including
send/recv/poll-family ones, the worst case for a leaky filter), so tests
and experiments can verify isolation end to end.
"""

from __future__ import annotations

from typing import Optional

from ..kernel.kernel import Kernel
from ..kernel.threads import KProcess
from ..net.packet import Message
from ..sim.timebase import SEC

__all__ = ["spawn_noise_process"]


def spawn_noise_process(
    kernel: Kernel,
    syscalls_per_second: float = 1000.0,
    name: str = "noise",
    threads: int = 2,
) -> KProcess:
    """Start a neighbour process emitting mixed syscall chatter forever.

    The mix deliberately includes recv/send/poll-family syscalls (a daemon
    shoveling its own sockets), so any tgid-filter bug in a collector shows
    up as corrupted statistics rather than passing silently.
    """
    if syscalls_per_second <= 0:
        raise ValueError("syscalls_per_second must be positive")
    if threads < 1:
        raise ValueError("need at least one noise thread")
    process = kernel.create_process(name)
    stream = kernel.seeds.stream(f"{name}:gaps")
    mean_gap = int(SEC / syscalls_per_second) * threads

    def chatter(task):
        # A private connection pair this process talks to itself over.
        ours, peer = kernel.open_connection(name=f"{name}:{task.tid}")
        ep = yield from task.sys_epoll_create1()
        yield from task.sys_epoll_ctl(ep, peer)
        while True:
            yield from task.sys_nanosleep(stream.exponential_ns(max(1, mean_gap)))
            choice = stream.randint(0, 3)
            if choice == 0:
                ours.send(Message(payload="noise", size=32))
                yield from task.sys_epoll_wait(ep)
                yield from task.sys_read(peer)
            elif choice == 1:
                yield from task.sys_sendmsg(peer, Message(payload="noise", size=32))
            elif choice == 2:
                yield from task.sys_openat()
            else:
                yield from task.sys_socket()

    for index in range(threads):
        process.spawn_thread(chatter, name=f"{name}/t{index}")
    return process
