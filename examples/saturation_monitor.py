#!/usr/bin/env python3
"""Live saturation detection during a load ramp (Fig. 3 in action).

A management runtime samples the monitor in fixed windows while the client
ramps Xapian from comfortable load into overload.  The online detector
watches the dispersion of send-deltas (var/mean², the rate-independent
Eq. 2 form) and raises its flag when contention signatures appear — which
should line up with the load crossing the QoS failure region.

Run:  python examples/saturation_monitor.py
"""

from repro import (
    AMD_EPYC_7302,
    Environment,
    Kernel,
    OpenLoopClient,
    RequestMetricsMonitor,
    SeedSequence,
    get_workload,
)
from repro.core import OnlineSaturationDetector
from repro.sim import MSEC

SEED = 21
WINDOW_MS = 400


def main() -> None:
    definition = get_workload("xapian")
    config = definition.config
    fail = definition.paper_fail_rps

    env = Environment()
    seeds = SeedSequence(SEED)
    kernel = Kernel(env, AMD_EPYC_7302.with_cores(config.cores), seeds)
    app = definition.build(kernel)
    monitor = RequestMetricsMonitor(kernel, app.tgid, spec=config.syscalls).attach()
    detector = OnlineSaturationDetector(
        threshold_factor=4.0, warmup_windows=3, hysteresis=2
    )

    # Ramp: 40% -> 70% -> 95% -> 115% of the paper's failure RPS.
    phases = [
        (0.40 * fail, 1200),
        (0.70 * fail, 2000),
        (0.95 * fail, 2500),
        (1.15 * fail, 3000),
    ]
    client = OpenLoopClient(
        env, app.client_sockets, seeds.stream("client"),
        rate_rps=phases[0][0], total_requests=1,  # overridden by phases
        phases=phases, arrival="uniform",
        qos_latency_ns=config.qos_latency_ns,
    )
    client.start()

    print(f"{'time s':>8} {'rps_obsv':>10} {'dispersion':>12} {'poll ms':>9} "
          f"{'saturated?':>11}")

    flagged_at = None

    def sampler():
        nonlocal flagged_at
        while client.completed < client.total_requests:
            yield env.timeout(WINDOW_MS * MSEC)
            snap = monitor.snapshot(reset=True)
            if snap.send.count < 8:
                continue
            dispersion = snap.send_delta_cov2
            saturated = detector.observe(dispersion)
            if saturated and flagged_at is None:
                flagged_at = env.now
            print(f"{env.now / 1e9:8.2f} {snap.rps_obsv:10.0f} "
                  f"{dispersion:12.3f} {snap.poll_mean_duration_ns / 1e6:9.2f} "
                  f"{'** YES **' if saturated else 'no':>11}")

    env.process(sampler())
    report = env.run(until=client.done)

    print(f"\nclient-side ground truth: p99 = {report.p99_ns / 1e6:.1f} ms "
          f"(QoS threshold {config.qos_latency_ns / 1e6:.0f} ms, "
          f"violated: {report.qos_violated})")
    if flagged_at is None:
        raise SystemExit("detector never fired — unexpected for this ramp")
    print(f"detector first flagged saturation at t = {flagged_at / 1e9:.2f} s "
          f"(ramp enters overload in the final phases)")


if __name__ == "__main__":
    main()
