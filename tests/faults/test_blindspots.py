"""The adversarial blind-spot scenario pack, end to end.

Two properties anchor the correlator's credibility:

* **Detection**: every scenario produces its annotated taxonomy label on
  every workload architecture (EXP-CORR measures the full grid; here each
  scenario runs against one representative of each threading model).
* **Zero false positives**: every *clean* cell — all nine workloads, all
  eBPF VM tiers, both workload-sim tiers — yields only AGREE_HEALTHY
  windows.  The taxonomy is worthless if healthy runs trip it.
"""

import pytest

from repro.analysis.correlate import (
    AGREE_DEGRADED,
    AGREE_HEALTHY,
    APP_SILENT,
    KERNEL_SILENT,
    correlation_of,
)
from repro.analysis.executor import ExperimentSpec, execute_cell
from repro.analysis.executor.spec import VM_TIERS
from repro.core.config import CorrelateConfig
from repro.faults import SCENARIOS, BlindSpotScenario, run_blind_spot_cell, scenario
from repro.faults.blindspots import _KINDS
from repro.sim.timebase import SEC
from repro.workloads.registry import WORKLOADS


def _spec(workload="data-caching", load=0.5, max_requests=600, **overrides):
    config = WORKLOADS[workload].config
    rate = config.paper_fail_rps * load
    requests = min(max_requests, max(240, int(rate * 0.3)))
    return ExperimentSpec(workload=workload, offered_rps=rate,
                          requests=requests, **overrides)


def _clean_window_ns(spec):
    nominal = int(spec.requests / spec.offered_rps * SEC)
    return max(1, nominal // 10)


class TestScenarioRegistry:
    def test_registry_covers_the_taxonomy(self):
        expected = {s.expected_label for s in SCENARIOS}
        assert expected == {AGREE_HEALTHY, AGREE_DEGRADED,
                            KERNEL_SILENT, APP_SILENT}

    def test_lookup(self):
        assert scenario("hol-stall").kind == "hol-stall"
        with pytest.raises(KeyError, match="unknown blind-spot scenario"):
            scenario("nope")

    def test_keys_are_unique(self):
        keys = [s.key for s in SCENARIOS]
        assert len(keys) == len(set(keys))

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            BlindSpotScenario(key="x", summary="", expected_label=APP_SILENT,
                              kind="bogus")
        with pytest.raises(ValueError, match="start_frac"):
            BlindSpotScenario(key="x", summary="", expected_label=APP_SILENT,
                              kind="fragment", start_frac=0.7, stop_frac=0.4)

    def test_only_slow_drain_needs_stream(self):
        for entry in SCENARIOS:
            assert entry.needs_stream == (entry.kind == "slow-drain")
        assert set(s.kind for s in SCENARIOS) <= set(_KINDS)


# One representative per threading architecture (§IV-A): epoll poll-loop,
# select poll-loop, dispatch pool, two-tier.  EXP-CORR covers all nine.
ARCHETYPES = ("data-caching", "xapian", "triton-grpc", "web-search")


class TestScenarioDetection:
    @pytest.mark.parametrize("workload", ARCHETYPES)
    @pytest.mark.parametrize("key", [s.key for s in SCENARIOS])
    def test_scenario_produces_expected_label(self, workload, key):
        entry = scenario(key)
        result, report, fault_report = run_blind_spot_cell(_spec(workload), entry)
        if entry.kind == "none":
            assert report.clean
            assert not fault_report.applied
        else:
            assert entry.expected_label in report.labels, report.counts
            if entry.kind != "slow-drain":
                # slow-drain degrades the *collection path* (a consumer
                # schedule), not the server: no orchestrator fault fires.
                assert fault_report.applied

    def test_slow_drain_actually_drops_records(self):
        result, report, _ = run_blind_spot_cell(
            _spec(), scenario("slow-drain")
        )
        assert result.lost_records > 0
        assert result.confidence < 1.0
        degraded = [w for w in report.windows if w.lost_records]
        assert degraded
        assert all("confidence" in w.kernel_signals for w in degraded)

    def test_hol_stall_has_a_fully_silent_window(self):
        _result, report, _ = run_blind_spot_cell(_spec(), scenario("hol-stall"))
        starved = [w for w in report.windows if "starved" in w.app_signals]
        assert starved
        assert all(w.label == KERNEL_SILENT for w in starved)

    def test_fragmentation_is_invisible_to_the_app(self):
        spec = _spec()
        clean, _, _ = run_blind_spot_cell(spec, scenario("clean"))
        frag, report, _ = run_blind_spot_cell(spec, scenario("fragmented-writes"))
        # The app-side ground truth stays healthy (no QoS violation)...
        assert not frag.qos_violated
        assert frag.completed == clean.completed
        # ...while the kernel side knees.
        kneed = [w for w in report.windows
                 if "dispersion-knee" in w.kernel_signals]
        assert kneed
        assert all(w.label == APP_SILENT for w in kneed)


class TestZeroDiscrepancyMatrix:
    """Clean cells across the full workload x tier grid stay clean."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_clean_cells_agree_healthy(self, workload):
        base = _spec(workload)
        correlate = CorrelateConfig(window_ns=_clean_window_ns(base))
        for vm_tier in VM_TIERS:
            for sim_tier in ("reference", "compiled"):
                spec = base.replace(correlate=correlate, vm_tier=vm_tier,
                                    sim_tier=sim_tier)
                report = correlation_of(execute_cell(spec))
                assert report.clean, (
                    workload, vm_tier, sim_tier,
                    {k: v for k, v in report.counts.items() if v},
                    [(w.label, w.app_signals, w.kernel_signals)
                     for w in report.discrepancies],
                )
