"""EXP-OVH — §VI "Low overhead estimation": probe cost on tail latency.

Runs every workload at moderate load twice — untraced, and with the full
VM-interpreted collector suite attached with per-instruction cost charged
to the traced syscalls — and reports the p99 inflation.  The paper states
the median and upper-quartile overhead stay well below 1 % (typically
below 0.5 %).
"""

from __future__ import annotations

from conftest import emit, scaled

from repro.analysis import save_record, series_table
from repro.workloads import get_workload, workload_keys

LOAD_FRACTION = 0.7


def overhead_for(key: str) -> dict:
    from repro.analysis import ExperimentSpec, run_level

    definition = get_workload(key)
    spec = ExperimentSpec(
        workload=key,
        offered_rps=definition.paper_fail_rps * LOAD_FRACTION,
        requests=scaled(2500, minimum=600),
        monitor_mode="native", charge_cost=False,
    )
    base = run_level(spec)
    traced = run_level(spec.replace(monitor_mode="vm", charge_cost=True))
    p99_overhead = (traced.p99_ns - base.p99_ns) / base.p99_ns
    p50_overhead = (traced.p50_ns - base.p50_ns) / base.p50_ns
    return {
        "workload": key,
        "p99_base_ms": base.p99_ns / 1e6,
        "p99_traced_ms": traced.p99_ns / 1e6,
        "p99_overhead": p99_overhead,
        "p50_overhead": p50_overhead,
    }


def run_overhead() -> list:
    return [overhead_for(key) for key in workload_keys()]


def test_probe_overhead(benchmark):
    rows = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    save_record({"experiment": "overhead", "rows": rows}, "overhead")

    emit("PROBE OVERHEAD — p99 inflation with VM collectors charged to syscalls")
    emit(series_table({
        "workload": [r["workload"] for r in rows],
        "p99 base ms": [r["p99_base_ms"] for r in rows],
        "p99 traced ms": [r["p99_traced_ms"] for r in rows],
        "p99 ovh %": [100 * r["p99_overhead"] for r in rows],
        "p50 ovh %": [100 * r["p50_overhead"] for r in rows],
    }))

    overheads = sorted(r["p99_overhead"] for r in rows)
    median = overheads[len(overheads) // 2]
    upper_quartile = overheads[(3 * len(overheads)) // 4]
    emit(f"median p99 overhead: {100 * median:.3f}%   "
         f"upper quartile: {100 * upper_quartile:.3f}%")

    # Paper: median and upper quartile "significantly below 1%".
    assert median < 0.01, f"median overhead {median:.2%} exceeds 1%"
    assert upper_quartile < 0.01, f"upper-quartile overhead {upper_quartile:.2%}"
    # No workload should blow up catastrophically either.
    assert overheads[-1] < 0.05
