"""Unit and integration tests for the cross-layer blind-spot correlator."""

import pytest

from repro.analysis.correlate import (
    AGREE_DEGRADED,
    AGREE_HEALTHY,
    APP_SILENT,
    KERNEL_SILENT,
    TAXONOMY,
    CorrelationReport,
    correlate_windows,
    correlation_of,
)
from repro.analysis.executor import ExperimentSpec, execute_cell
from repro.analysis.executor.spec import LevelResult
from repro.core.collectors import DurationStats
from repro.core.config import CorrelateConfig, ExportConfig
from repro.core.deltas import DeltaStats
from repro.core.monitor import MetricsSnapshot
from repro.sim.timebase import MSEC

WINDOW = 50 * MSEC
QOS = 10 * MSEC
CFG = CorrelateConfig(window_ns=WINDOW)


def _send_stats(start_ns, *, knee=False, quiet=False) -> DeltaStats:
    stats = DeltaStats()
    if quiet:
        return stats
    if knee:
        # Nine tiny gaps then one huge one: cov2 ~ 8.6, far past the run's
        # healthy baseline of ~0 (uniform gaps).
        for k in range(10):
            stats.add_timestamp(start_ns + k * 100_000)
        stats.add_timestamp(start_ns + WINDOW - MSEC)
    else:
        for k in range(25):
            stats.add_timestamp(start_ns + k * 2 * MSEC)
    return stats


def _window(index, *, knee=False, quiet=False, send_lost=0, recv_lost=0,
            poll_mean_ns=10 * MSEC) -> MetricsSnapshot:
    start = index * WINDOW
    return MetricsSnapshot(
        window_start_ns=start,
        window_end_ns=start + WINDOW,
        send=_send_stats(start, knee=knee, quiet=quiet),
        recv=_send_stats(start, quiet=quiet),
        poll=DurationStats(count=4, sum=4 * poll_mean_ns,
                           sumsq=4 * poll_mean_ns * poll_mean_ns),
        send_lost=send_lost,
        recv_lost=recv_lost,
    )


def _healthy_outcomes(index, count=10, latency_ns=MSEC):
    """Offers answered within the same window, in-flight balanced."""
    start = index * WINDOW
    events = []
    for k in range(count):
        t = start + k * 4 * MSEC
        events.append((t, "offer", k))
        events.append((t + latency_ns, "complete", latency_ns))
    return sorted(events)


class TestConfig:
    def test_defaults_round_trip(self):
        cfg = CorrelateConfig()
        assert CorrelateConfig.from_dict(cfg.to_dict()) == cfg

    def test_replace(self):
        cfg = CorrelateConfig().replace(knee_multiplier=4.0)
        assert cfg.knee_multiplier == 4.0

    @pytest.mark.parametrize("kwargs", [
        {"window_ns": 0},
        {"confidence_floor": 0.0},
        {"confidence_floor": 1.5},
        {"knee_multiplier": 1.0},
        {"cov2_floor": -0.1},
        {"slack_ratio": 1.0},
        {"min_events": 1},
        {"starve_inflight": 0},
        {"qos_multiplier": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CorrelateConfig(**kwargs)


class TestSpecIntegration:
    def test_mapping_coerces_to_config(self):
        spec = ExperimentSpec(workload="data-caching", offered_rps=1000,
                              requests=100, correlate={"window_ns": WINDOW})
        assert isinstance(spec.correlate, CorrelateConfig)
        assert spec.correlate.window_ns == WINDOW

    def test_round_trips_through_dict(self):
        spec = ExperimentSpec(workload="data-caching", offered_rps=1000,
                              requests=100, correlate=CFG)
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt.correlate == CFG
        assert rebuilt == spec

    def test_correlate_and_export_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="correlate and export"):
            ExperimentSpec(workload="data-caching", offered_rps=1000,
                           requests=100, correlate=CFG,
                           export=ExportConfig())

    def test_correlate_participates_in_cache_key(self):
        base = ExperimentSpec(workload="data-caching", offered_rps=1000,
                              requests=100)
        assert base.cache_key() != base.replace(correlate=CFG).cache_key()


class TestClassification:
    def test_all_healthy(self):
        snaps = [_window(i) for i in range(6)]
        outcomes = sorted(sum((_healthy_outcomes(i) for i in range(6)), []))
        report = correlate_windows(snaps, outcomes, CFG, QOS, workload="x")
        assert report.clean
        assert report.counts[AGREE_HEALTHY] == 6
        assert report.labels == (AGREE_HEALTHY,)
        assert not report.discrepancies

    def test_recv_only_drop_is_app_silent(self):
        # Ties the confidence-accounting fix to the correlator: a recv-only
        # outage must degrade the window (send-only confidence says 1.0).
        snaps = [_window(i, recv_lost=10 if i == 3 else 0) for i in range(6)]
        outcomes = sorted(sum((_healthy_outcomes(i) for i in range(6)), []))
        report = correlate_windows(snaps, outcomes, CFG, QOS)
        assert report.windows[3].label == APP_SILENT
        assert report.windows[3].kernel_signals == ("confidence",)
        assert report.windows[3].confidence < 1.0

    def test_isolated_knee_is_suppressed(self):
        # A single-window dispersion spike with a silent app (a log-flush
        # burst) must not claim a discrepancy: persistence required.
        snaps = [_window(i, knee=(i == 3)) for i in range(6)]
        outcomes = sorted(sum((_healthy_outcomes(i) for i in range(6)), []))
        report = correlate_windows(snaps, outcomes, CFG, QOS)
        assert report.windows[3].label == AGREE_HEALTHY
        assert report.windows[3].kernel_signals == ()
        assert report.clean

    def test_persistent_knee_is_app_silent(self):
        snaps = [_window(i, knee=i in (2, 3)) for i in range(6)]
        outcomes = sorted(sum((_healthy_outcomes(i) for i in range(6)), []))
        report = correlate_windows(snaps, outcomes, CFG, QOS)
        for index in (2, 3):
            assert report.windows[index].label == APP_SILENT
            assert "dispersion-knee" in report.windows[index].kernel_signals
        assert report.counts[APP_SILENT] == 2

    def test_corroborated_knee_needs_no_persistence(self):
        # Same isolated knee, but the app corroborates (a QoS breach lands
        # in the window): AGREE_DEGRADED without a persistence requirement.
        snaps = [_window(i, knee=(i == 2)) for i in range(6)]
        outcomes = sum((_healthy_outcomes(i) for i in range(6)), [])
        offer_t = 2 * WINDOW - 20 * MSEC
        outcomes += [(offer_t, "offer", 99),
                     (offer_t + 60 * MSEC, "complete", 60 * MSEC)]
        report = correlate_windows(snaps, sorted(outcomes), CFG, QOS)
        assert report.windows[2].label == AGREE_DEGRADED
        assert "qos" in report.windows[2].app_signals
        assert "dispersion-knee" in report.windows[2].kernel_signals

    def test_qos_breach_alone_is_kernel_silent(self):
        snaps = [_window(i) for i in range(6)]
        outcomes = sum((_healthy_outcomes(i) for i in range(6)), [])
        offer_t = 3 * WINDOW + MSEC
        outcomes += [(offer_t, "offer", 99),
                     (offer_t + 20 * MSEC, "complete", 20 * MSEC)]
        report = correlate_windows(snaps, sorted(outcomes), CFG, QOS)
        assert report.windows[3].label == KERNEL_SILENT
        assert report.windows[3].app_signals == ("qos",)

    def test_starved_window_is_kernel_silent(self):
        snaps = [_window(i, quiet=(i == 3)) for i in range(6)]
        outcomes = sum(
            (_healthy_outcomes(i) for i in range(6) if i != 3), []
        )
        start = 3 * WINDOW
        outcomes += [(start + k * MSEC, "offer", 100 + k) for k in range(10)]
        report = correlate_windows(snaps, sorted(outcomes), CFG, QOS)
        assert report.windows[3].label == KERNEL_SILENT
        assert report.windows[3].app_signals == ("starved",)
        assert report.windows[3].inflight_end == 10

    def test_no_starvation_before_first_completion(self):
        # Offers but no completion anywhere: that's warmup/setup, not a
        # starved server mid-run.
        snaps = [_window(i) for i in range(6)]
        outcomes = [(i * WINDOW + k * MSEC, "offer", i * 100 + k)
                    for i in range(6) for k in range(10)]
        report = correlate_windows(snaps, outcomes, CFG, QOS)
        assert report.clean

    def test_retry_and_abandon_are_app_signals(self):
        snaps = [_window(i) for i in range(6)]
        outcomes = sum((_healthy_outcomes(i) for i in range(6)), [])
        outcomes += [(2 * WINDOW + MSEC, "retry", 7),
                     (4 * WINDOW + MSEC, "abandon", 8)]
        report = correlate_windows(snaps, sorted(outcomes), CFG, QOS)
        assert "retry" in report.windows[2].app_signals
        assert "abandon" in report.windows[4].app_signals
        assert report.windows[2].label == KERNEL_SILENT
        assert report.windows[4].label == KERNEL_SILENT

    def test_slack_collapse_persistent(self):
        snaps = [
            _window(i, poll_mean_ns=MSEC if i in (2, 3) else 10 * MSEC)
            for i in range(6)
        ]
        outcomes = sorted(sum((_healthy_outcomes(i) for i in range(6)), []))
        report = correlate_windows(snaps, outcomes, CFG, QOS)
        for index in (2, 3):
            assert "slack-collapse" in report.windows[index].kernel_signals
            assert report.windows[index].label == APP_SILENT

    def test_event_at_run_end_clamps_into_last_window(self):
        snaps = [_window(i) for i in range(3)]
        outcomes = sorted(sum((_healthy_outcomes(i) for i in range(3)), []))
        outcomes += [(3 * WINDOW, "complete", MSEC)]
        report = correlate_windows(snaps, outcomes, CFG, QOS)
        assert report.windows[2].completions == 11

    def test_empty_inputs(self):
        report = correlate_windows([], [], CFG, QOS)
        assert report.clean
        assert report.windows == []
        assert set(report.counts) == set(TAXONOMY)


class TestReport:
    def _report(self):
        snaps = [_window(i, recv_lost=10 if i == 2 else 0) for i in range(4)]
        outcomes = sorted(sum((_healthy_outcomes(i) for i in range(4)), []))
        return correlate_windows(snaps, outcomes, CFG, QOS, workload="w")

    def test_round_trips_through_dict(self):
        report = self._report()
        rebuilt = CorrelationReport.from_dict(report.to_dict())
        assert rebuilt.workload == report.workload
        assert rebuilt.counts == report.counts
        assert rebuilt.windows == report.windows
        assert rebuilt.baseline_cov2 == report.baseline_cov2

    def test_summary_mentions_labels_and_discrepancies(self):
        text = self._report().summary()
        for label in TAXONOMY:
            assert label in text
        assert "confidence" in text

    def test_correlation_of_reads_level_result(self):
        report = self._report()

        def result(**kwargs):
            return LevelResult(
                workload="w", offered_rps=1.0, achieved_rps=1.0, p99_ns=0.0,
                p50_ns=0.0, mean_latency_ns=0.0, completed=1,
                qos_violated=False, rps_obsv=1.0, rps_obsv_recv=1.0,
                send_delta_variance=0.0, send_delta_cov2=0.0,
                recv_delta_variance=0.0, poll_mean_duration_ns=0.0,
                poll_count=0, **kwargs,
            )

        rebuilt = correlation_of(
            result(extra={"correlation": report.to_dict()})
        )
        assert rebuilt is not None
        assert rebuilt.counts == report.counts
        assert correlation_of(result()) is None


class TestRecorderIntegration:
    def test_headline_metrics_bit_identical_with_correlation(self):
        base = ExperimentSpec(workload="data-caching", offered_rps=2000,
                              requests=300)
        plain = execute_cell(base)
        correlated = execute_cell(base.replace(correlate=CFG))
        for field in ("rps_obsv", "send_delta_variance", "send_delta_cov2",
                      "poll_mean_duration_ns", "poll_count", "confidence",
                      "rps_obsv_corrected", "recv_rate_corrected",
                      "achieved_rps", "p99_ns", "lost_records"):
            assert getattr(plain, field) == getattr(correlated, field), field
        assert plain.extra is None
        assert correlation_of(correlated) is not None

    def test_windows_are_contiguous_and_cover_the_run(self):
        spec = ExperimentSpec(workload="data-caching", offered_rps=2000,
                              requests=300, correlate=CFG)
        result = execute_cell(spec)
        report = correlation_of(result)
        windows = report.windows
        assert windows[0].window_start_ns == 0
        assert windows[-1].window_end_ns == result.sim_duration_ns
        for left, right in zip(windows, windows[1:]):
            assert left.window_end_ns == right.window_start_ns

    def test_result_round_trips_like_the_process_pool(self):
        spec = ExperimentSpec(workload="data-caching", offered_rps=2000,
                              requests=300, correlate=CFG)
        result = execute_cell(spec)
        rebuilt = LevelResult(**result.to_dict())
        assert correlation_of(rebuilt).counts == correlation_of(result).counts
