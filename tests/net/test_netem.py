"""Tests for the netem impairment model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import NetemConfig, NetemPath, TCP_MIN_RTO_NS
from repro.sim import MSEC, SeedSequence


def _path(config, seed=1):
    return NetemPath(config, SeedSequence(seed).stream("netem"))


class TestNetemConfig:
    def test_ideal(self):
        cfg = NetemConfig.ideal()
        assert cfg.delay_ns == 0 and cfg.loss == 0.0

    def test_paper_impaired(self):
        cfg = NetemConfig.paper_impaired()
        assert cfg.delay_ns == 10 * MSEC
        assert cfg.loss == 0.01

    def test_label(self):
        assert NetemConfig.paper_impaired().label() == "10ms delay / 1% loss"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"delay_ns": -1},
            {"jitter_ns": -1},
            {"loss": 1.0},
            {"loss": -0.1},
            {"rto_ns": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            NetemConfig(**kwargs)

    def test_jitter_may_exceed_delay(self):
        # Real tc-netem accepts jitter > delay (the sampled delay clamps at
        # zero, which transit_ns already does); the config must not reject it.
        cfg = NetemConfig(delay_ns=1 * MSEC, jitter_ns=3 * MSEC)
        path = _path(cfg)
        draws = [path.transit_ns() for _ in range(1000)]
        assert min(draws) == 0  # clamped, never negative
        assert max(draws) <= 4 * MSEC


class TestNetemPath:
    def test_no_impairment_zero_transit(self):
        path = _path(NetemConfig.ideal())
        assert all(path.transit_ns() == 0 for _ in range(100))

    def test_fixed_delay(self):
        path = _path(NetemConfig(delay_ns=3 * MSEC))
        assert all(path.transit_ns() == 3 * MSEC for _ in range(100))

    def test_jitter_bounds(self):
        cfg = NetemConfig(delay_ns=10 * MSEC, jitter_ns=2 * MSEC)
        path = _path(cfg)
        draws = [path.transit_ns() for _ in range(2000)]
        assert min(draws) >= 8 * MSEC
        assert max(draws) <= 12 * MSEC
        assert len(set(draws)) > 100  # actually jittered

    def test_loss_adds_rto(self):
        # With loss ~1, every message pays at least one RTO; our cap stops
        # the worst case. Use 0.9 to terminate quickly.
        path = _path(NetemConfig(loss=0.9))
        draws = [path.transit_ns() for _ in range(200)]
        assert all(d == 0 or d >= TCP_MIN_RTO_NS for d in draws)
        assert sum(d >= TCP_MIN_RTO_NS for d in draws) > 150

    def test_loss_rate_statistics(self):
        path = _path(NetemConfig(loss=0.01))
        n = 50000
        hit = sum(path.transit_ns() >= TCP_MIN_RTO_NS for _ in range(n))
        assert hit / n == pytest.approx(0.01, abs=0.004)

    def test_backoff_doubles(self):
        # loss=0.97 gives frequent multi-loss streaks; delays must be sums of
        # doubling RTOs: 200, 200+400, 200+400+800 ...
        path = _path(NetemConfig(loss=0.97), seed=3)
        valid = set()
        total, rto = 0, TCP_MIN_RTO_NS
        for _ in range(16):
            valid.add(total)
            total += rto
            rto *= 2
        for _ in range(500):
            assert path.transit_ns() in valid

    def test_loss_counter(self):
        path = _path(NetemConfig(loss=0.5))
        for _ in range(1000):
            path.transit_ns()
        assert path.carried == 1000
        assert path.loss_fraction == pytest.approx(0.5, abs=0.06)

    @given(
        delay=st.integers(min_value=0, max_value=50 * MSEC),
        loss=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=50)
    def test_transit_never_negative(self, delay, loss):
        path = _path(NetemConfig(delay_ns=delay, loss=loss))
        assert all(path.transit_ns() >= 0 for _ in range(20))


class TestReorder:
    def test_reorder_skips_delay(self):
        # ~25% of packets jump the delay queue (transit 0); the rest pay
        # the configured delay.
        path = _path(NetemConfig(delay_ns=10 * MSEC, reorder=0.25))
        draws = [path.transit_ns() for _ in range(2000)]
        immediate = sum(1 for d in draws if d == 0)
        assert immediate / len(draws) == pytest.approx(0.25, abs=0.04)
        assert all(d in (0, 10 * MSEC) for d in draws)
        assert path.reordered == immediate

    def test_reorder_gap_limits_candidates(self):
        # gap=4: only every 4th packet may reorder; the rest always pay
        # the delay even at reorder=1.0.
        path = _path(NetemConfig(delay_ns=10 * MSEC, reorder=1.0, reorder_gap=4))
        draws = [path.transit_ns() for _ in range(400)]
        for index, transit in enumerate(draws, start=1):
            if index % 4 == 0:
                assert transit == 0
            else:
                assert transit == 10 * MSEC

    def test_reorder_requires_delay(self):
        with pytest.raises(ValueError):
            NetemConfig(reorder=0.1)


class TestCorrupt:
    def test_corruption_behaves_as_loss(self):
        # A corrupted segment fails its checksum: the transport retransmits
        # after a recovery interval, exactly like a loss.
        path = _path(NetemConfig(corrupt=0.5))
        draws = [path.transit_ns() for _ in range(1000)]
        assert sum(1 for d in draws if d >= TCP_MIN_RTO_NS) / 1000 == pytest.approx(
            0.5, abs=0.06)
        assert path.losses == 0
        assert path.corrupted > 300
        assert path.loss_fraction == pytest.approx(0.5, abs=0.06)

    def test_corruption_per_segment(self):
        # A 5-segment message is exposed to corruption once per segment.
        path = _path(NetemConfig(corrupt=0.1))
        n = 2000
        hit = sum(
            1 for _ in range(n)
            if path.transit_ns(size_bytes=5 * NetemPath.MSS_BYTES) > 0
        )
        expected = 1 - (1 - 0.1) ** 5
        assert hit / n == pytest.approx(expected, abs=0.05)

    def test_mixed_loss_and_corruption_attribution(self):
        path = _path(NetemConfig(loss=0.2, corrupt=0.2))
        for _ in range(2000):
            path.transit_ns()
        dropped = path.losses + path.corrupted
        assert path.loss_fraction == pytest.approx(1 - 0.8 * 0.8, abs=0.05)
        # proportional attribution: roughly half each
        assert path.losses / dropped == pytest.approx(0.5, abs=0.1)


class TestGilbertElliott:
    def test_stationary_loss_rate(self):
        # pi_bad = p / (p + r); with loss_bad=1, loss_good=0 the long-run
        # attempt loss rate equals pi_bad.
        cfg = NetemConfig(ge_p=0.02, ge_r=0.18)
        path = _path(cfg, seed=7)
        for _ in range(4000):
            path.transit_ns()
        assert path.loss_fraction == pytest.approx(0.02 / 0.20, abs=0.04)

    def test_losses_are_bursty(self):
        # Same stationary rate as iid 10% loss, but mean burst length
        # 1/r = 5 attempts: consecutive-loss runs must be far longer.
        # Attempt outcomes are sampled directly (a transit retries until
        # success, swallowing an entire burst per call).
        def mean_run(path):
            runs, run = [], 0
            for _ in range(20000):
                lost = path._attempt_lost(1) is not None
                if lost:
                    run += 1
                elif run:
                    runs.append(run)
                    run = 0
            return sum(runs) / len(runs) if runs else 0.0

        ge = mean_run(_path(NetemConfig(ge_p=0.0222, ge_r=0.2), seed=11))
        iid = mean_run(_path(NetemConfig(loss=0.1), seed=11))
        assert ge == pytest.approx(5.0, rel=0.25)  # geometric, mean 1/r
        assert iid == pytest.approx(1.11, rel=0.15)
        assert ge > 2.5 * iid

    def test_exclusive_with_iid_loss(self):
        with pytest.raises(ValueError):
            NetemConfig(loss=0.1, ge_p=0.1, ge_r=0.5)
        with pytest.raises(ValueError):
            NetemConfig(ge_p=0.1)  # bad state must be escapable

    def test_label_mentions_gemodel(self):
        cfg = NetemConfig(ge_p=0.01, ge_r=0.3)
        assert "GE(p=0.01, r=0.3)" in cfg.label()


class TestDuplicate:
    def test_duplicate_draw_counts(self):
        path = _path(NetemConfig(duplicate=0.3))
        hits = sum(path.duplicate_draw() for _ in range(2000))
        assert hits / 2000 == pytest.approx(0.3, abs=0.04)
        assert path.duplicated == hits

    def test_duplicate_disabled_draws_nothing(self):
        # No RNG consumption when the knob is off: legacy streams unchanged.
        path = _path(NetemConfig.ideal())
        assert not path.duplicate_draw()
        assert path.duplicated == 0
