"""The paper's delta methodology written in BPF-C, cross-validated.

This is the strongest compiler validation we have: the send-delta collector
(Eq. 1 + Eq. 2 state machine) implemented in the C dialect must produce
bit-identical statistics to both the hand-assembled eBPF collector and the
native Python twin, on a real workload.
"""

import pytest

from repro.core import DeltaCollector
from repro.ebpf.bpfc import load_c
from repro.kernel import Kernel, MachineSpec, Sys
from repro.loadgen import OpenLoopClient
from repro.sim import Environment, SeedSequence
from repro.workloads import get_workload

# State lives in one u64->u64 hash, keyed by field id:
#   0 = last_ts, 1 = count, 2 = sum, 3 = sumsq, 4 = first_ts, 5 = events
DELTA_COLLECTOR_C = """
BPF_HASH(state, u64, u64);

TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
    u64 pid_tgid = bpf_get_current_pid_tgid();
    if (pid_tgid >> 32 != TGID) return 0;
    if (args->id != SEND_NR) return 0;
    u64 now = bpf_ktime_get_ns();

    u64 events_key = 5;
    u64 *events = state.lookup(&events_key);
    if (!events) {
        // First event: first = now, events = 1, zero accumulators.
        u64 first_key = 4;
        state.update(&first_key, &now);
        u64 one = 1;
        state.update(&events_key, &one);
        u64 last_key = 0;
        state.update(&last_key, &now);
        u64 zero = 0;
        u64 count_key = 1;
        state.update(&count_key, &zero);
        u64 sum_key = 2;
        state.update(&sum_key, &zero);
        u64 sumsq_key = 3;
        state.update(&sumsq_key, &zero);
        return 0;
    }
    *events += 1;

    u64 delta = 0;
    {
        u64 last_key = 0;
        u64 *last = state.lookup(&last_key);
        if (!last) return 0;
        delta = now - *last;
        *last = now;
    }

    u64 count_key = 1;
    state.increment(count_key);
    {
        u64 sum_key = 2;
        u64 *sum = state.lookup(&sum_key);
        if (sum) *sum += delta;
    }
    {
        u64 sumsq_key = 3;
        u64 *sumsq_p = state.lookup(&sumsq_key);
        if (sumsq_p) *sumsq_p += delta * delta;
    }
    return 0;
}
"""


def _drive(kernel, app, requests=800):
    client = OpenLoopClient(
        kernel.env, app.client_sockets, kernel.seeds.stream("client"),
        rate_rps=get_workload("data-caching").paper_fail_rps * 0.5,
        total_requests=requests, arrival="uniform",
    )
    client.start()
    kernel.env.run(until=client.done)


def _fresh_stack():
    definition = get_workload("data-caching")
    config = definition.config
    env = Environment()
    kernel = Kernel(env, MachineSpec(name="t", cores=config.cores),
                    SeedSequence(55), interference=False)
    app = definition.build(kernel)
    return kernel, app, config


def test_c_collector_matches_asm_and_native():
    pointer_limit_note = "uses only 1-2 live pointers per path"
    assert pointer_limit_note  # documentation breadcrumb

    results = {}
    for flavor in ("c", "vm", "native"):
        kernel, app, config = _fresh_stack()
        if flavor == "c":
            bpf = load_c(kernel, DELTA_COLLECTOR_C,
                         constants={"TGID": app.tgid,
                                    "SEND_NR": config.syscalls.send_nr})
            _drive(kernel, app)
            state = bpf["state"]
            results[flavor] = (
                state.lookup_int(1), state.lookup_int(2), state.lookup_int(3),
                state.lookup_int(4), state.lookup_int(0), state.lookup_int(5),
            )
        else:
            collector = DeltaCollector(
                kernel, app.tgid, (config.syscalls.send_nr,), flavor
            ).attach()
            _drive(kernel, app)
            snap = collector.snapshot()
            results[flavor] = (snap.count, snap.sum, snap.sumsq,
                               snap.first_ns, snap.last_ns, snap.events)

    assert results["c"] == results["vm"] == results["native"]
    count, total, _sumsq, first, last, events = results["c"]
    assert events == 800
    assert count == 799
    assert total == last - first


def test_c_collector_rps_obsv():
    kernel, app, config = _fresh_stack()
    bpf = load_c(kernel, DELTA_COLLECTOR_C,
                 constants={"TGID": app.tgid,
                            "SEND_NR": config.syscalls.send_nr})
    _drive(kernel, app, requests=1000)
    state = bpf["state"]
    count, total = state.lookup_int(1), state.lookup_int(2)
    rps_obsv = 1e9 / (total / count)
    expected = get_workload("data-caching").paper_fail_rps * 0.5
    assert rps_obsv == pytest.approx(expected, rel=0.02)
