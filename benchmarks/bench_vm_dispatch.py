"""BENCH-VM-DISPATCH — the three VM tiers head to head.

Executes the delta-collector program (the hot probe behind every EXP-OVH
configuration) through all three tiers — reference interpreter,
pre-decoded fast path, whole-program compilation — over the same firing
sequence, asserting bit-identical ``(r0, steps, cost_ns)`` per firing and
identical final map state, then reports the dispatch speedups.  The fast
path must win by >= 2x and the compiled tier by >= 3x; any divergence is
a hard failure, because the cost model they produce is the simulated
probe overhead the paper's experiments charge to syscalls.

Runs two ways:

* under pytest-benchmark with the rest of the suite
  (``pytest benchmarks/bench_vm_dispatch.py --benchmark-only``);
* standalone for CI smoke (``python benchmarks/bench_vm_dispatch.py
  --smoke``), which needs neither pytest-benchmark nor hypothesis and
  fails only on divergence — tiny-parameter wall clocks on shared
  runners are too noisy to gate on a speedup ratio.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.collectors import _DELTA_VALUE_SIZE, build_delta_program
from repro.ebpf import (
    ArrayMap,
    CompiledVm,
    FastVm,
    HelperRuntime,
    TranslationCache,
    Vm,
    pack_sys_enter,
)
from repro.kernel.tracepoints import SysEnterCtx

#: Fresh VM per tier (private caches: runs never share translations).
TIER_FACTORIES = {
    "reference": lambda: Vm(),
    "fast": lambda: FastVm(cache=TranslationCache()),
    "compiled": lambda: CompiledVm(cache=TranslationCache()),
}

TGID = 7
PID_TGID = (TGID << 32) | TGID


def _fresh_program():
    state = ArrayMap(value_size=_DELTA_VALUE_SIZE, max_entries=1, name="state")
    program = (build_delta_program("state", TGID, [0, 1, 44])
               .resolve_maps({"state": state}).verify())
    return program, state


def _firings(count: int):
    """Pre-packed (ctx, runtime) pairs: 3/4 hit the filter, 1/4 miss."""
    pairs = []
    t = 1_000
    for i in range(count):
        nr = (0, 1, 44, 232)[i % 4]  # 232 fails the syscall filter
        ctx = SysEnterCtx(pid_tgid=PID_TGID, syscall_nr=nr, ktime_ns=t)
        pairs.append((pack_sys_enter(ctx),
                      HelperRuntime(ktime_ns=t, pid_tgid=PID_TGID, cpu_id=0)))
        t += 1_000 + (i * 37) % 5_000
    return pairs


def _run_tier(vm, count: int):
    program, state = _fresh_program()
    pairs = _firings(count)
    vm.execute(program.insns, pairs[0][0], pairs[0][1])  # warm up / translate
    program, state = _fresh_program()

    results = []
    execute = vm.execute
    insns = program.insns
    start = time.perf_counter()
    for blob, runtime in pairs:
        r = execute(insns, blob, runtime)
        results.append((r.r0, r.steps, r.cost_ns))
    wall = time.perf_counter() - start
    return wall, results, bytes(state.lookup(state.key_of(0)))


def run_comparison(count: int, reps: int = 3) -> dict:
    """Time every tier (min of ``reps`` to shed scheduler noise) and
    cross-check each firing and the final map state against reference."""
    walls, results, states = {}, {}, {}
    for tier, factory in TIER_FACTORIES.items():
        vm = factory()
        best = None
        for _ in range(reps):
            wall, tier_results, tier_state = _run_tier(vm, count)
            best = wall if best is None else min(best, wall)
        walls[tier] = best
        results[tier] = tier_results
        states[tier] = tier_state

    diverged = None
    for tier in ("fast", "compiled"):
        for i, (a, b) in enumerate(zip(results["reference"], results[tier])):
            if a != b:
                diverged = f"firing {i}: reference {a} != {tier} {b}"
                break
        if diverged is None and states["reference"] != states[tier]:
            diverged = (f"map state: reference {states['reference']!r} "
                        f"!= {tier} {states[tier]!r}")
        if diverged:
            break

    ref_wall = walls["reference"]
    return {
        "executions": count,
        "reference_us_per_exec": ref_wall / count * 1e6,
        "fast_us_per_exec": walls["fast"] / count * 1e6,
        "compiled_us_per_exec": walls["compiled"] / count * 1e6,
        "speedup": ref_wall / walls["fast"] if walls["fast"] else float("inf"),
        "compiled_speedup": (ref_wall / walls["compiled"]
                             if walls["compiled"] else float("inf")),
        "diverged": diverged,
    }


def test_fast_dispatch_speedup(benchmark):
    from conftest import emit, scaled

    from repro.analysis import save_record

    data = benchmark.pedantic(
        lambda: run_comparison(scaled(4000, minimum=1000)), rounds=1, iterations=1)
    save_record({"ablation": "vm_dispatch", **data}, "bench_vm_dispatch")

    emit("BENCH-VM-DISPATCH — the three VM tiers head to head")
    emit(f"  reference: {data['reference_us_per_exec']:.1f} us/exec")
    emit(f"  fast path: {data['fast_us_per_exec']:.1f} us/exec")
    emit(f"  compiled:  {data['compiled_us_per_exec']:.1f} us/exec")
    emit(f"  speedups:  fast {data['speedup']:.2f}x, compiled "
         f"{data['compiled_speedup']:.2f}x over {data['executions']} firings")

    assert data["diverged"] is None, data["diverged"]
    assert data["speedup"] >= 2.0, f"fast path only {data['speedup']:.2f}x"
    assert data["compiled_speedup"] >= 3.0, \
        f"compiled tier only {data['compiled_speedup']:.2f}x"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny run; fail on divergence only, not speedup")
    parser.add_argument("--executions", type=int, default=None,
                        help="firings per tier (default: 400 smoke / 4000 full)")
    args = parser.parse_args(argv)
    count = args.executions or (400 if args.smoke else 4000)

    data = run_comparison(count)
    print(f"reference: {data['reference_us_per_exec']:.1f} us/exec")
    print(f"fast path: {data['fast_us_per_exec']:.1f} us/exec")
    print(f"compiled:  {data['compiled_us_per_exec']:.1f} us/exec")
    print(f"speedups:  fast {data['speedup']:.2f}x, compiled "
          f"{data['compiled_speedup']:.2f}x over {count} firings")

    if data["diverged"] is not None:
        print(f"DIVERGENCE: {data['diverged']}", file=sys.stderr)
        return 1
    if not args.smoke and data["speedup"] < 2.0:
        print(f"speedup {data['speedup']:.2f}x below the 2x floor", file=sys.stderr)
        return 1
    if not args.smoke and data["compiled_speedup"] < 3.0:
        print(f"compiled speedup {data['compiled_speedup']:.2f}x below the "
              "3x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
