"""The load-sweep experiment runner.

One cell = one (workload, offered-RPS, netem, machine) experiment; the
canonical description of a cell is an :class:`ExperimentSpec` and the
machinery that runs batches of them lives in :mod:`repro.analysis.executor`.
This module keeps the high-level entry points on top of it:

* :func:`run_level` — run one cell from its typed spec;
* :func:`sweep` — a full load sweep, optionally parallel (``jobs=N``) and
  cached (``cache=...``), returning a :class:`SweepResult`.

The legacy ``run_level(definition, rate, ...)`` keyword form completed its
deprecation cycle and was removed; every old keyword has a same-named
:class:`ExperimentSpec` field.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..workloads.registry import WorkloadDefinition, get_workload
from .executor import (
    DEFAULT_SEED,
    ExperimentSpec,
    LevelResult,
    ProgressCallback,
    ResultCache,
    SweepResult,
    execute_cell,
    run_cells,
)
from .executor.pool import _SendTimestampProbe  # noqa: F401  (bench compat)

__all__ = [
    "ExperimentSpec",
    "LevelResult",
    "SweepResult",
    "run_level",
    "sweep",
    "default_levels",
    "DEFAULT_SEED",
]


def run_level(spec: ExperimentSpec) -> LevelResult:
    """Run one load level to completion and collect all signals."""
    if not isinstance(spec, ExperimentSpec):
        raise TypeError(
            "run_level takes a single ExperimentSpec; the legacy "
            "run_level(definition, rate, ...) form has been removed — build "
            "an ExperimentSpec(workload=..., offered_rps=..., ...) instead "
            "(every old keyword has a same-named spec field)"
        )
    return execute_cell(spec)


def default_levels(definition: WorkloadDefinition, count: int = 10,
                   low_frac: float = 0.3, high_frac: float = 1.1) -> List[float]:
    """Evenly spaced offered-RPS levels up to past the paper's failure RPS."""
    if count < 2:
        raise ValueError("need at least two levels")
    fail = definition.paper_fail_rps
    if fail <= 0:
        raise ValueError(f"workload {definition.key} has no calibrated failure RPS")
    step = (high_frac - low_frac) / (count - 1)
    return [fail * (low_frac + i * step) for i in range(count)]


def _resolve_cache(cache) -> Optional[ResultCache]:
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(Path(cache))


def sweep(
    definition: Union[WorkloadDefinition, str],
    levels: Optional[Sequence[float]] = None,
    requests: int = 3000,
    *,
    jobs: int = 1,
    cache: Union[None, bool, str, Path, ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    shard: Optional[str] = None,
    code_cache: Union[None, bool, str, Path] = None,
    **level_kwargs,
) -> SweepResult:
    """Run a full load sweep (Figs. 2/3/4 trajectories).

    ``jobs`` fans the levels out across a process pool (results stay
    bit-identical to ``jobs=1``).  ``cache`` enables the on-disk result
    cache: ``True`` for the default ``results/.cache/`` directory, a path,
    or a :class:`ResultCache`.  ``progress`` receives one
    :class:`~repro.analysis.executor.CellProgress` event per finished cell.
    ``shard="i/N"`` computes only shard ``i``'s levels (the others stay
    ``None`` in ``SweepResult.levels``; N shard runs union positionally
    into the unsharded sweep).  ``code_cache`` controls the cross-process
    compiled-program cache (see :func:`~repro.analysis.executor.run_cells`).
    Remaining keywords (``seed``, ``monitor_mode``, netem configs, ...) are
    :class:`ExperimentSpec` fields applied to every level.
    """
    if isinstance(definition, str):
        definition = get_workload(definition)
    levels = list(levels) if levels is not None else default_levels(definition)
    specs = [
        ExperimentSpec(
            workload=definition.key,
            offered_rps=rate,
            requests=requests,
            **level_kwargs,
        )
        for rate in levels
    ]
    results, stats = run_cells(
        specs, jobs=jobs, cache=_resolve_cache(cache), progress=progress,
        shard=shard, code_cache=code_cache,
    )
    return SweepResult(
        workload=definition.key, levels=results, telemetry=stats.to_dict()
    )
