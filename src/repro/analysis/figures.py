"""Text renderers for the paper's figures.

Benchmarks print the same series the figures plot — normalized axes, QoS
markers — as aligned tables plus unicode sparklines, so a terminal run of
``pytest benchmarks/`` shows every figure's shape directly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.regression import normalize

__all__ = ["sparkline", "series_table", "figure_header"]

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline of a series (normalized to its own max)."""
    if not values:
        return ""
    scaled = normalize([float(v) for v in values])
    return "".join(_BARS[min(len(_BARS) - 1, int(v * (len(_BARS) - 1) + 0.5))] for v in scaled)


def figure_header(title: str, caption: str = "") -> str:
    line = "=" * max(len(title), 60)
    parts = [line, title, line]
    if caption:
        parts.append(caption)
    return "\n".join(parts)


def series_table(
    columns: dict,
    qos_marker: Optional[Sequence[bool]] = None,
    float_format: str = "{:>12.4g}",
) -> str:
    """Render named, equal-length series as an aligned table.

    ``qos_marker`` appends a column flagging QoS-violated rows (the paper's
    vertical failure line).
    """
    names = list(columns)
    if not names:
        return ""
    length = len(columns[names[0]])
    for name in names:
        if len(columns[name]) != length:
            raise ValueError(f"column {name!r} has mismatched length")
    header = "".join(f"{name:>14}" for name in names)
    if qos_marker is not None:
        header += "   QoS"
    lines = [header, "-" * len(header)]
    for row in range(length):
        cells = []
        for name in names:
            value = columns[name][row]
            if isinstance(value, float):
                cells.append(float_format.format(value).rjust(14))
            else:
                cells.append(f"{value:>14}")
        line = "".join(cells)
        if qos_marker is not None:
            line += "   " + ("<-- FAIL" if qos_marker[row] else "")
        lines.append(line.rstrip())
    return "\n".join(lines)
