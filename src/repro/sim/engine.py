"""The discrete-event environment: clock + event queue + stepper."""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Generator, Iterable, Optional

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Environment", "EmptySchedule"]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


#: Canceled-set compaction trigger: below this many dead entries, lazy
#: deletion is always cheaper than a rebuild.
_COMPACT_MIN = 64


class Environment:
    """A simulation environment with an integer-nanosecond clock.

    Events are processed in (time, priority, insertion-order) order, making
    runs fully deterministic: two events scheduled for the same instant fire
    in the order they were scheduled unless priorities differ.

    Internally the schedule is two structures sharing one insertion
    counter: a heap for future (or non-default-priority) events, and a
    plain FIFO deque for events scheduled *at the current instant* with
    default priority — the trigger paths (``succeed``/``fail``, resource
    grants, process resume), which are the bulk of all scheduling.  A
    same-instant default-priority event can never sort before anything
    already due, so appending it to the deque is order-equivalent to
    pushing it on the heap while skipping the heap's sift entirely.  The
    dispatch loops merge the two by comparing the heap head's
    (time, priority, eid) against the deque head's eid at the current
    instant, which preserves the exact total order.
    """

    def __init__(self, initial_time: int = 0) -> None:
        self._now = int(initial_time)
        self._queue: list = []
        #: Same-instant batch lane: (eid, event) pairs scheduled for *now*
        #: at default priority, in insertion order.  Always drained before
        #: the clock can advance.
        self._immediate: deque = deque()
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Lazily-canceled events: still sitting in the schedule, but
        #: discarded (callbacks never run, clock not advanced) when popped.
        #: Lazy deletion keeps :meth:`cancel` O(1) instead of rebuilding
        #: the heap; a threshold-based compaction (see :meth:`cancel`)
        #: keeps the dead entries from accumulating without bound when
        #: canceled events are never popped.
        self._canceled: set = set()

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- scheduling ------------------------------------------------------
    def schedule(self, event: Event, delay: int = 0, priority: int = 1) -> None:
        """Queue ``event`` to have its callbacks run after ``delay`` ns."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._eid += 1
        if delay == 0 and priority == 1:
            self._immediate.append((self._eid, event))
        else:
            heappush(self._queue, (self._now + int(delay), priority, self._eid, event))

    def _schedule(self, event: Event, when: int, priority: int = 1) -> None:
        """Internal schedule path: absolute time, no validation.

        The trigger paths (:meth:`Event.succeed`/``fail``, process resume)
        always schedule for *now*, so the public method's delay validation
        and ``int()`` coercion are pure overhead on the hottest call site
        in the simulator; those calls land in the same-instant batch lane.
        """
        self._eid += 1
        if when == self._now and priority == 1:
            self._immediate.append((self._eid, event))
        else:
            heappush(self._queue, (when, priority, self._eid, event))

    def cancel(self, event: Event) -> None:
        """Lazily cancel a scheduled event.

        The event stays in the schedule but is silently discarded when it
        reaches the front: its callbacks never run and the clock does not
        advance to its deadline.  This is O(1) per cancel (no heap
        rebuild) — the right trade for watchdog timers that are almost
        always canceled before they fire.

        Dead entries would otherwise linger until popped, which is never
        when a run stops before their deadlines (e.g. repeated
        ``run(until=horizon)`` windows canceling watchdogs each window),
        so once the dead entries outnumber the live ones — and there are
        enough of them for a rebuild to beat lazy deletion — the schedule
        is compacted: canceled entries are filtered out and only the
        cancellations that were actually consumed are forgotten (an event
        canceled before it was ever scheduled keeps its suppression).
        """
        if event.callbacks is None:
            raise RuntimeError(f"cannot cancel {event!r}: already processed")
        canceled = self._canceled
        canceled.add(event)
        if (
            len(canceled) > _COMPACT_MIN
            and len(canceled) * 2 > len(self._queue) + len(self._immediate)
        ):
            self._compact()

    def _compact(self) -> None:
        """Physically remove canceled entries from the schedule.

        Both containers are filtered *in place*: the dispatch loops hoist
        them into locals, so rebinding ``self._queue``/``self._immediate``
        here would silently detach a running ``run()`` from the schedule.
        """
        queue = self._queue
        canceled = self._canceled
        kept = [entry for entry in queue if entry[3] not in canceled]
        if len(kept) != len(queue):
            canceled.difference_update(
                entry[3] for entry in queue if entry[3] in canceled
            )
            queue[:] = kept
            heapify(queue)
        immediate = self._immediate
        if immediate:
            kept_now = [e for e in immediate if e[1] not in canceled]
            if len(kept_now) != len(immediate):
                canceled.difference_update(
                    e[1] for e in immediate if e[1] in canceled
                )
                immediate.clear()
                immediate.extend(kept_now)

    def fast_forward(self, until: int) -> int:
        """Jump the clock straight to ``until`` (ns), skipping an idle span.

        This is the O(1) counterpart of ``run(until=...)`` for spans known
        to contain no live events — e.g. the gap to the next arrival burst
        after a window's work drained.  Canceled entries inside the span
        are purged in bulk instead of being popped one by one.  Raises
        ``RuntimeError`` if any live event is scheduled at or before
        ``until`` (fast-forwarding over it would corrupt causality), and
        ``ValueError`` for a target in the past.  Returns the new clock.
        """
        horizon = int(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} lies in the past (now={self._now})")
        queue = self._queue
        canceled = self._canceled
        immediate = self._immediate
        while immediate and canceled and immediate[0][1] in canceled:
            canceled.discard(immediate.popleft()[1])
        if immediate:
            raise RuntimeError(
                f"cannot fast-forward to {horizon}: live event scheduled at {self._now}"
            )
        while queue and queue[0][0] <= horizon:
            if canceled and queue[0][3] in canceled:
                canceled.discard(heappop(queue)[3])
            else:
                raise RuntimeError(
                    f"cannot fast-forward to {horizon}: live event scheduled "
                    f"at {queue[0][0]}"
                )
        self._now = horizon
        return horizon

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or ``None`` if queue is empty.

        Canceled events are purged from the front first, so the reported
        time is one that :meth:`step` would actually advance the clock to.
        """
        canceled = self._canceled
        immediate = self._immediate
        while immediate and canceled and immediate[0][1] in canceled:
            canceled.discard(immediate.popleft()[1])
        if immediate:
            return self._now
        queue = self._queue
        while queue and canceled and queue[0][3] in canceled:
            canceled.discard(heappop(queue)[3])
        return queue[0][0] if queue else None

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, un-triggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Spawn a process from a generator coroutine."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- execution ---------------------------------------------------------
    def _pop_next(self):
        """Pop the next live event honoring the heap/deque merge order.

        Returns ``(when, event)``; raises :class:`EmptySchedule` when no
        live events remain.  The dispatch loops in :meth:`run` inline this
        logic — keep them in lockstep.
        """
        queue = self._queue
        immediate = self._immediate
        canceled = self._canceled
        while True:
            if immediate:
                if queue:
                    head = queue[0]
                    if head[0] == self._now and (
                        head[1] < 1 or (head[1] == 1 and head[2] < immediate[0][0])
                    ):
                        when, _prio, _eid, event = heappop(queue)
                    else:
                        event = immediate.popleft()[1]
                        when = self._now
                else:
                    event = immediate.popleft()[1]
                    when = self._now
            elif queue:
                when, _prio, _eid, event = heappop(queue)
            else:
                raise EmptySchedule()
            if canceled and event in canceled:
                canceled.discard(event)
                continue
            return when, event

    def step(self) -> None:
        """Process the single next event."""
        when, event = self._pop_next()
        self._now = when

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure: surface it instead of silently dropping.
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * an ``int`` — run until the clock reaches that time (ns);
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its exception).

        Each mode has its own inlined drain loop: event dispatch is the
        simulator's hottest path, and hoisting the queue/canceled-set
        lookups plus the per-event ``step()`` call out of the loop is
        worth ~15% of end-to-end cell time.  All three loops dispatch
        bit-identically to :meth:`step`.
        """
        queue = self._queue
        immediate = self._immediate
        canceled = self._canceled
        pop = heappop
        imm_pop = immediate.popleft

        if until is None:
            while True:
                if immediate:
                    if queue:
                        head = queue[0]
                        if head[0] == self._now and (
                            head[1] < 1 or (head[1] == 1 and head[2] < immediate[0][0])
                        ):
                            when, _prio, _eid, event = pop(queue)
                            self._now = when
                        else:
                            event = imm_pop()[1]
                    else:
                        event = imm_pop()[1]
                elif queue:
                    when, _prio, _eid, event = pop(queue)
                    if canceled and event in canceled:
                        canceled.discard(event)
                        continue
                    self._now = when
                else:
                    return None
                if canceled and event in canceled:
                    canceled.discard(event)
                    continue
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value

        if isinstance(until, Event):
            stop = until
            while stop.callbacks is not None:
                if immediate:
                    if queue:
                        head = queue[0]
                        if head[0] == self._now and (
                            head[1] < 1 or (head[1] == 1 and head[2] < immediate[0][0])
                        ):
                            when, _prio, _eid, event = pop(queue)
                            self._now = when
                        else:
                            event = imm_pop()[1]
                    else:
                        event = imm_pop()[1]
                elif queue:
                    when, _prio, _eid, event = pop(queue)
                    if canceled and event in canceled:
                        canceled.discard(event)
                        continue
                    self._now = when
                else:
                    raise RuntimeError(
                        f"simulation ran out of events before {stop!r} triggered"
                    )
                if canceled and event in canceled:
                    canceled.discard(event)
                    continue
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            if stop._ok:
                return stop._value
            stop.defuse()
            raise stop._value

        horizon = int(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} lies in the past (now={self._now})")
        # The immediate lane always holds events at the current instant,
        # which is <= horizon by the check above and only advances through
        # heap pops that the horizon bound already limits.
        while immediate or (queue and queue[0][0] <= horizon):
            if immediate:
                if queue:
                    head = queue[0]
                    if head[0] == self._now and (
                        head[1] < 1 or (head[1] == 1 and head[2] < immediate[0][0])
                    ):
                        when, _prio, _eid, event = pop(queue)
                        self._now = when
                    else:
                        event = imm_pop()[1]
                else:
                    event = imm_pop()[1]
            else:
                when, _prio, _eid, event = pop(queue)
                if canceled and event in canceled:
                    canceled.discard(event)
                    continue
                self._now = when
            if canceled and event in canceled:
                canceled.discard(event)
                continue
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
        self._now = horizon
        return None

    def __repr__(self) -> str:
        pending = len(self._queue) + len(self._immediate)
        return f"<Environment now={self._now} pending={pending}>"
