"""ABL-BATCH — Triton's dynamic batching vs the observability signals.

Triton ships a dynamic batcher (the paper runs the server stock, but the
feature shapes its syscall stream): batching raises the throughput ceiling
while clustering response sends.  This ablation checks the methodology
survives it:

* RPS_obsv still tracks real throughput (Eq. 1 counts sends either way);
* the send-delta dispersion *baseline* is higher under batching (sends
  cluster by design), yet the saturation knee remains detectable.
"""

from __future__ import annotations

from conftest import emit, scaled

from repro.analysis import ExperimentSpec, run_level, save_record, series_table
from repro.core import fit_linear
from repro.sim import MSEC
from repro.workloads import WorkloadDefinition, get_workload, register_workload


def _batched_definition() -> WorkloadDefinition:
    base = get_workload("triton-grpc")
    config = base.config.with_overrides(
        name="triton-grpc-batched",
        batch_max=4,
        batch_window_ns=30 * MSEC,
        # Batching raises capacity ~4/(1+3*0.35) = 1.95x.
        paper_fail_rps=base.paper_fail_rps * 1.95,
    )
    return register_workload(WorkloadDefinition(
        key="triton-grpc-batched",
        label="Triton (gRPC, batched)",
        suite="triton",
        app_class=base.app_class,
        config=config,
    ))


def sweep_one(definition) -> dict:
    fractions = (0.3, 0.5, 0.7, 0.9, 1.05)
    obs, real, dispersion, p99 = [], [], [], []
    for fraction in fractions:
        rate = definition.paper_fail_rps * fraction
        level = run_level(ExperimentSpec(
            workload=definition.key, offered_rps=rate,
            requests=scaled(1500, minimum=500),
        ))
        obs.append(level.rps_obsv)
        real.append(level.achieved_rps)
        dispersion.append(level.send_delta_cov2)
        p99.append(level.p99_ns / 1e6)
    fit = fit_linear(obs, real)
    return {
        "workload": definition.key,
        "fractions": list(fractions),
        "rps_obsv": obs,
        "achieved": real,
        "dispersion": dispersion,
        "p99_ms": p99,
        "r2": fit.r_squared,
        "peak_achieved": max(real),
    }


def run_ablation() -> dict:
    return {
        "plain": sweep_one(get_workload("triton-grpc")),
        "batched": sweep_one(_batched_definition()),
    }


def test_batching_ablation(benchmark):
    data = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_record({"ablation": "batching", **data}, "abl_batching")

    plain, batched = data["plain"], data["batched"]
    emit("ABL-BATCH — dynamic batching vs the observability signals")
    for label, row in (("plain", plain), ("batched", batched)):
        emit(f"\n[{label}]  R^2={row['r2']:.4f}  peak achieved="
             f"{row['peak_achieved']:.1f} rps")
        emit(series_table({
            "load frac": row["fractions"],
            "RPS_obsv": row["rps_obsv"],
            "achieved": row["achieved"],
            "dispersion": row["dispersion"],
            "p99 ms": row["p99_ms"],
        }))

    # Batching nearly doubles the ceiling...
    assert batched["peak_achieved"] > 1.5 * plain["peak_achieved"]
    # ...and Eq. 1 keeps tracking throughput in both configurations.
    assert plain["r2"] > 0.97
    assert batched["r2"] > 0.97
    # Send clustering raises the dispersion baseline under batching.
    assert batched["dispersion"][0] > plain["dispersion"][0]
    # The saturation rise is still present in the batched dispersion curve.
    assert batched["dispersion"][-1] > 1.5 * min(batched["dispersion"])
