"""ABL-RECV — estimating RPS from recv-family vs send-family deltas (§III).

The paper standardizes on the send family for Eq. 1.  This ablation shows
why per-workload structure matters: for moses (chunked responses) the recv
side is the cleaner estimator, while for Web Search both sides carry
non-request traffic on the front-end.
"""

from __future__ import annotations

from conftest import emit, scaled

from repro.analysis import (
    ExperimentSpec,
    default_levels,
    run_level,
    save_record,
    series_table,
)
from repro.core import fit_linear
from repro.workloads import get_workload


def correlations(key: str) -> dict:
    definition = get_workload(key)
    levels = default_levels(definition, count=8, low_frac=0.3, high_frac=1.0)
    send_xs, recv_xs, ys = [], [], []
    for rate in levels:
        level = run_level(ExperimentSpec(
            workload=key, offered_rps=rate, requests=scaled(6000, minimum=1500),
        ))
        send_xs.append(level.rps_obsv)
        recv_xs.append(level.rps_obsv_recv)
        ys.append(level.achieved_rps)
    return {
        "workload": key,
        "send_r2": fit_linear(send_xs, ys).r_squared,
        "recv_r2": fit_linear(recv_xs, ys).r_squared,
        "send_ratio": sum(x / y for x, y in zip(send_xs, ys)) / len(ys),
        "recv_ratio": sum(x / y for x, y in zip(recv_xs, ys)) / len(ys),
    }


def run_ablation() -> list:
    return [correlations(key) for key in ("data-caching", "moses", "web-search")]


def test_recv_vs_send_ablation(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_record({"ablation": "recv_vs_send", "rows": rows}, "abl_recv_vs_send")

    emit("ABL-RECV — RPS correlation from send vs recv family")
    emit(series_table({
        "workload": [r["workload"] for r in rows],
        "send R^2": [r["send_r2"] for r in rows],
        "recv R^2": [r["recv_r2"] for r in rows],
        "send/real": [r["send_ratio"] for r in rows],
        "recv/real": [r["recv_ratio"] for r in rows],
    }))

    by_key = {r["workload"]: r for r in rows}
    # Clean workload: both estimators are excellent and calibrated ~1:1.
    caching = by_key["data-caching"]
    assert caching["send_r2"] > 0.98 and caching["recv_r2"] > 0.98
    assert abs(caching["send_ratio"] - 1.0) < 0.05
    assert abs(caching["recv_ratio"] - 1.0) < 0.05
    # moses: chunked responses inflate the send-side count (ratio >> 1),
    # while the recv side stays ~1 request per syscall.
    moses = by_key["moses"]
    assert moses["send_ratio"] > 1.3
    assert abs(moses["recv_ratio"] - 1.0) < 0.1
    # web-search front-end: both sides count forwarding traffic (ratio > 1).
    websearch = by_key["web-search"]
    assert websearch["send_ratio"] > 1.5
    assert websearch["recv_ratio"] > 1.5
