"""Per-request service-time models.

Each workload's request cost is a draw from a distribution; the mean sets
the saturation point (capacity ≈ workers / mean_service) and the CV shapes
latency dispersion below saturation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.rng import Stream

__all__ = ["ServiceModel"]

_DISTRIBUTIONS = ("deterministic", "exponential", "lognormal")


@dataclass(frozen=True)
class ServiceModel:
    """A service-time distribution in integer nanoseconds."""

    mean_ns: int
    cv: float = 0.0
    distribution: str = "lognormal"

    def __post_init__(self) -> None:
        if self.mean_ns <= 0:
            raise ValueError(f"mean_ns must be positive, got {self.mean_ns}")
        if self.cv < 0:
            raise ValueError(f"cv must be non-negative, got {self.cv}")
        if self.distribution not in _DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {self.distribution!r}; pick from {_DISTRIBUTIONS}"
            )

    def draw(self, stream: Stream) -> int:
        """One service-time sample (>= 1 ns)."""
        if self.distribution == "deterministic" or self.cv == 0.0:
            return max(1, self.mean_ns)
        if self.distribution == "exponential":
            return stream.exponential_ns(self.mean_ns)
        return max(1, int(round(stream.lognormal_mean_cv(self.mean_ns, self.cv))))

    def __repr__(self) -> str:
        return f"<ServiceModel {self.distribution} mean={self.mean_ns}ns cv={self.cv}>"
