"""ControlConfig validation, serialization and spec integration."""

import pytest

from repro.analysis.executor.spec import ExperimentSpec
from repro.core import CONTROL_POLICIES, ControlConfig, CorrelateConfig, ExportConfig


def _spec(**overrides):
    return ExperimentSpec(workload="silo", offered_rps=500.0, requests=100, **overrides)


def test_defaults_round_trip():
    config = ControlConfig()
    assert config.policy == "none"
    assert CONTROL_POLICIES == ("none", "shed", "scale")
    assert ControlConfig.from_dict(config.to_dict()) == config


def test_coercion_and_replace():
    config = ControlConfig(policy="shed", trigger_windows="3", window_ns=5_000_000.0)
    assert config.trigger_windows == 3
    assert config.window_ns == 5_000_000
    scaled = config.replace(policy="scale", scale_step=2)
    assert scaled.policy == "scale"
    assert scaled.scale_step == 2
    assert config.policy == "shed"


@pytest.mark.parametrize(
    "kwargs",
    [
        {"policy": "bogus"},
        {"window_ns": 0},
        {"calibrate_windows": 2},
        {"confidence_floor": 0.0},
        {"confidence_floor": 1.5},
        {"knee_multiplier": 1.0},
        {"cov2_floor": -0.1},
        {"slack_ratio": 1.0},
        {"rps_drop_ratio": 1.0},
        {"min_events": 1},
        {"trigger_windows": 0},
        {"clear_windows": 0},
        {"cooldown_windows": -1},
        {"shed_fraction": 0.0},
        {"shed_fraction": 1.5},
    ],
)
def test_validation_rejects(kwargs):
    with pytest.raises(ValueError):
        ControlConfig(**kwargs)


def test_spec_coerces_mapping_and_round_trips():
    spec = _spec(control={"policy": "shed", "shed_fraction": 0.25})
    assert isinstance(spec.control, ControlConfig)
    assert spec.control.shed_fraction == 0.25
    rebuilt = ExperimentSpec.from_dict(spec.to_dict())
    assert rebuilt == spec


def test_spec_phases_coercion_and_round_trip():
    spec = _spec(phases=[[100, 50], (200.0, 50)])
    assert spec.phases == ((100.0, 50), (200.0, 50))
    assert ExperimentSpec.from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize("phases", [[], [(0.0, 10)], [(100.0, 0)]])
def test_spec_phases_validation(phases):
    with pytest.raises(ValueError, match="phases"):
        _spec(phases=phases)


def test_control_and_phases_are_cache_key_relevant():
    base = _spec()
    assert _spec(control=ControlConfig(policy="shed")).cache_key() != base.cache_key()
    assert _spec(phases=[(100.0, 50), (200.0, 50)]).cache_key() != base.cache_key()


def test_window_loop_owners_are_mutually_exclusive():
    active = ControlConfig(policy="shed")
    with pytest.raises(ValueError, match="window loop"):
        _spec(control=active, correlate=CorrelateConfig())
    with pytest.raises(ValueError, match="window loop"):
        _spec(control=active, export=ExportConfig())
    # policy="none" wires nothing, so it owns nothing.
    assert _spec(control=ControlConfig(), correlate=CorrelateConfig()).correlate is not None
