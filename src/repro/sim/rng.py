"""Deterministic random-number streams.

Every stochastic component of the simulation (arrival process, service
times, netem loss, interference stalls, ...) draws from its **own named
stream**, derived from the experiment's master seed with a SplitMix64 hash.
Adding a new consumer therefore never perturbs the draws seen by existing
ones, which keeps experiments comparable across code versions.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Optional

__all__ = ["SeedSequence", "Stream", "splitmix64"]

_MASK64 = (1 << 64) - 1


def splitmix64(state: int) -> int:
    """One SplitMix64 output step (also used as a seed-mixing hash)."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _mix_name(seed: int, name: str) -> int:
    state = seed & _MASK64
    for byte in name.encode("utf-8"):
        state = splitmix64(state ^ byte)
    return splitmix64(state)


class Stream:
    """A named random stream with the distribution helpers the sim needs."""

    def __init__(self, seed: int, name: str) -> None:
        self.name = name
        self._random = random.Random(_mix_name(seed, name))

    # -- raw draws -------------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def choice(self, items):
        return self._random.choice(items)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    # -- distributions -----------------------------------------------------
    def bernoulli(self, probability: float) -> bool:
        """True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def exponential(self, mean: float) -> float:
        """Exponential with the given mean (not rate)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def lognormal_mean_cv(self, mean: float, cv: float) -> float:
        """Lognormal parameterized by mean and coefficient of variation.

        ``cv = std / mean`` of the resulting distribution.
        """
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if cv <= 0:
            return mean
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        return self._random.lognormvariate(mu, math.sqrt(sigma2))

    def pareto(self, scale: float, alpha: float) -> float:
        """Pareto (Lomax-free, classic) with minimum ``scale``."""
        if scale <= 0 or alpha <= 0:
            raise ValueError("scale and alpha must be positive")
        return scale * (self._random.paretovariate(alpha))

    def normal(self, mean: float, std: float) -> float:
        return self._random.gauss(mean, std)

    def exponential_ns(self, mean_ns: int) -> int:
        """Exponential draw rounded to integer nanoseconds (min 1 ns)."""
        return max(1, int(round(self.exponential(mean_ns))))

    def __repr__(self) -> str:
        return f"<Stream {self.name!r}>"


class SeedSequence:
    """Factory for named, independent :class:`Stream` objects."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed) & _MASK64
        self._issued: dict = {}

    def stream(self, name: str) -> Stream:
        """Return the stream for ``name`` (one instance per name)."""
        if name not in self._issued:
            self._issued[name] = Stream(self.seed, name)
        return self._issued[name]

    def child(self, name: str) -> "SeedSequence":
        """Derive an independent child sequence (for sub-components)."""
        return SeedSequence(_mix_name(self.seed, "child:" + name))

    def issued_names(self) -> Iterable[str]:
        return tuple(self._issued)

    def __repr__(self) -> str:
        return f"<SeedSequence seed={self.seed:#x} streams={len(self._issued)}>"
