"""CLI coverage: the ``control`` command and cell-failure surfacing."""

import json
from types import SimpleNamespace

import repro.__main__ as cli


def test_control_command_json(capsys):
    assert cli.main(["control", "silo", "--scenario", "crash-scale", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 1
    assert rows[0]["scenario"] == "crash-scale"
    assert rows[0]["control"]["engagements"] >= 1
    assert rows[0]["violation_ratio"] < 1.0


def test_control_command_text(capsys):
    assert cli.main(["control", "silo", "--scenario", "surge-shed", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "surge-shed" in out
    assert "engage" in out


def test_control_command_rejects_unknown_scenario(capsys):
    assert cli.main(["control", "silo", "--scenario", "bogus"]) == 2
    assert "unknown control scenario" in capsys.readouterr().err


def test_sweep_json_surfaces_cell_failures(monkeypatch, capsys):
    telemetry = {
        "total": 1,
        "computed": 1,
        "cache_hits": 0,
        "failed": 1,
        "errors": [{"index": 0, "label": "silo@500", "error": "boom"}],
        "wall_s": 0.0,
    }
    fake = SimpleNamespace(workload="silo", levels=[None], telemetry=telemetry)
    monkeypatch.setattr(cli, "sweep", lambda *args, **kwargs: fake)
    assert cli.main(["sweep", "silo", "--levels", "2", "--json"]) == 1
    captured = capsys.readouterr()
    payload = json.loads(captured.out)
    assert payload["failed"] == 1
    assert payload["errors"][0]["error"] == "boom"
    assert payload["levels"] == [None]
    assert "1 cell(s) failed" in captured.err


def test_run_reports_failed_cell(monkeypatch, capsys):
    stats = SimpleNamespace(errors=[{"index": 0, "label": "silo@500", "error": "boom"}])
    monkeypatch.setattr(cli, "run_cells", lambda *args, **kwargs: ([None], stats))
    assert cli.main(["run", "silo", "--no-cache"]) == 1
    assert "boom" in capsys.readouterr().err
