"""Syscall-timeline rendering (Fig. 1's visual, in text).

Turns a recorded syscall trace into the paper's three-panel story:
the raw stream with its setup/processing phases, the request-oriented
subset, and (when pairing succeeds) per-request reconstruction lines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..kernel.syscalls import SETUP_SYSCALLS, SyscallFamily
from ..kernel.tracelog import SyscallRecord
from ..core.pairing import reconstruct_timelines

__all__ = ["phase_summary", "render_stream", "render_timeline"]

_FAMILY_GLYPH = {
    SyscallFamily.RECV: "r",
    SyscallFamily.SEND: "s",
    SyscallFamily.POLL: ".",
    SyscallFamily.OTHER: "+",
}


def phase_summary(records: Sequence[SyscallRecord]) -> Dict[str, int]:
    """Counts per lifecycle phase: setup vs request-oriented vs other."""
    setup = sum(1 for r in records if r.syscall_nr in SETUP_SYSCALLS)
    request = sum(1 for r in records if r.family != SyscallFamily.OTHER)
    return {
        "total": len(records),
        "setup": setup,
        "request_oriented": request,
        "other": len(records) - setup - request,
    }


def render_stream(records: Sequence[SyscallRecord], width: int = 72,
                  request_only: bool = False) -> str:
    """A glyph-per-syscall strip in time order (Fig. 1(b)/(c)).

    ``r`` recv-family, ``s`` send-family, ``.`` poll-family, ``+`` other
    (setup/teardown).  ``request_only`` drops the ``+`` glyphs — the
    paper's "extracted subset".
    """
    ordered = sorted(records, key=lambda r: r.enter_ns)
    glyphs = []
    for record in ordered:
        if request_only and record.family == SyscallFamily.OTHER:
            continue
        glyphs.append(_FAMILY_GLYPH[record.family])
    lines = []
    for start in range(0, len(glyphs), width):
        lines.append("".join(glyphs[start : start + width]))
    return "\n".join(lines) if lines else "(no syscalls)"


def render_timeline(records: Sequence[SyscallRecord], limit: int = 10) -> str:
    """Per-request reconstruction lines (Fig. 1(c)) for paired traces."""
    result = reconstruct_timelines(list(records))
    lines = [
        f"reconstructed {result.paired} requests "
        f"(pairing rate {result.pairing_rate:.0%}, "
        f"mean service {result.mean_service_ns() / 1e6:.3f} ms)"
    ]
    for timeline in result.timelines[:limit]:
        lines.append(
            f"  tid {timeline.tid}: recv@{timeline.recv.enter_ns / 1e6:10.3f}ms "
            f"--service {timeline.service_ns / 1e6:7.3f}ms--> "
            f"send@{timeline.send.enter_ns / 1e6:10.3f}ms"
        )
    if result.paired > limit:
        lines.append(f"  ... {result.paired - limit} more")
    return "\n".join(lines)
