"""BENCH-E2E-CELL — end-to-end cell cost across the three VM tiers.

The dispatch micro-benchmark (``bench_vm_dispatch.py``) isolates the VM;
this one times what actually matters: complete experiment cells — kernel,
workload, monitor, open-loop client — through ``execute_cell`` /
``run_faulted_cell``, once per VM tier.  The cell matrix crosses the two
paper workload families (memcached-style ``data-caching`` and the
``triton-grpc`` inference server) with both collection methodologies
(in-kernel batch aggregation, ``monitor_mode="vm"``, and per-event perf
streaming, ``monitor_mode="stream"``) and with a faulted variant (worker
stall under the retry watchdog), so the speedup is measured on every
shape of cell the paper's experiments run.

Two hard gates:

* every tier must produce a bit-identical ``LevelResult`` per cell — the
  tiers are interchangeable or they are broken;
* the compiled tier must beat the reference interpreter by >= 3x
  end-to-end (process CPU time, min of reps) on the headline
  delta-collector cell — full runs only; tiny smoke runs assert
  identity, not speed.

The raw numbers are written to ``BENCH_e2e.json`` at the repo root — the
perf baseline the optimisation work is judged against — and to
``results/`` like every other benchmark.

Runs two ways:

* under pytest-benchmark (``pytest benchmarks/bench_e2e_cell.py``);
* standalone for CI smoke (``python benchmarks/bench_e2e_cell.py
  --smoke``), failing on any cross-tier divergence.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis import ExperimentSpec, execute_cell
from repro.ebpf import VM_TIERS
from repro.faults import WorkerStall, run_faulted_cell
from repro.sim.timebase import SEC

#: Repo root — BENCH_e2e.json lives next to README.md by design: it is
#: the headline artifact, not one results file among many.
REPO_ROOT = Path(__file__).resolve().parent.parent
HEADLINE_CELL = "data-caching/vm/clean"

#: (cell name, workload, monitor mode, faulted) — the cell matrix.
CELL_MATRIX = (
    ("data-caching/vm/clean", "data-caching", "vm", False),
    ("data-caching/stream/clean", "data-caching", "stream", False),
    ("data-caching/vm/faulted", "data-caching", "vm", True),
    ("triton-grpc/vm/clean", "triton-grpc", "vm", False),
    ("triton-grpc/stream/clean", "triton-grpc", "stream", False),
    ("triton-grpc/vm/faulted", "triton-grpc", "vm", True),
)


def _spec_for(workload: str, mode: str, requests: int) -> ExperimentSpec:
    rates = {"data-caching": 4000.0, "triton-grpc": 1500.0}
    return ExperimentSpec(workload=workload, offered_rps=rates[workload],
                          requests=requests, monitor_mode=mode)


def _run_cell(spec: ExperimentSpec, faulted: bool) -> dict:
    """One cell execution; returns the LevelResult dict (the identity
    oracle — every field, including the eBPF-side statistics)."""
    if not faulted:
        return execute_cell(spec).to_dict()
    run_ns = int(spec.requests * SEC / spec.offered_rps)
    level, _report = run_faulted_cell(
        spec,
        faults=[WorkerStall(at_ns=run_ns // 4, duration_ns=int(0.3 * run_ns))],
        retry_timeout_ns=run_ns // 2,
    )
    return level.to_dict()


def run_benchmark(requests: int, reps: int = 3, smoke: bool = False) -> dict:
    """Time the full cell matrix across the three tiers.

    Each tier is timed as the min over ``reps`` repetitions (after one
    warm-up execution that also populates the translation caches).  The
    gated metric is **process CPU time**: the cells are single-threaded
    pure computation, so CPU time is the cost being optimised, and unlike
    wall clock it is immune to other processes stealing the core — on the
    single-core CI runner a 0.3 s cell's wall clock can swing 50 % run to
    run.  Wall clock is recorded alongside for reference.
    """
    cells = {}
    for name, workload, mode, faulted in CELL_MATRIX:
        spec = _spec_for(workload, mode, requests)
        walls, cpus, outputs = {}, {}, {}
        for tier in VM_TIERS:
            tier_spec = spec.replace(vm_tier=tier)
            outputs[tier] = _run_cell(tier_spec, faulted)  # warm-up + oracle
            best_wall = best_cpu = None
            for _ in range(reps):
                wall0 = time.perf_counter()
                cpu0 = time.process_time()
                _run_cell(tier_spec, faulted)
                cpu = time.process_time() - cpu0
                wall = time.perf_counter() - wall0
                best_wall = wall if best_wall is None else min(best_wall, wall)
                best_cpu = cpu if best_cpu is None else min(best_cpu, cpu)
            walls[tier] = best_wall
            cpus[tier] = best_cpu

        diverged = [tier for tier in VM_TIERS
                    if outputs[tier] != outputs["reference"]]
        cells[name] = {
            "workload": workload,
            "monitor_mode": mode,
            "faulted": faulted,
            "offered_rps": spec.offered_rps,
            "requests": requests,
            "wall_s": {tier: round(walls[tier], 4) for tier in VM_TIERS},
            "cpu_s": {tier: round(cpus[tier], 4) for tier in VM_TIERS},
            "speedup_vs_reference": {
                tier: round(cpus["reference"] / cpus[tier], 2)
                if cpus[tier] else None
                for tier in VM_TIERS
            },
            "identical_metrics": not diverged,
            "diverged_tiers": diverged,
        }

    headline = cells[HEADLINE_CELL]
    return {
        "benchmark": "bench_e2e_cell",
        "smoke": smoke,
        "requests_per_cell": requests,
        "reps": reps,
        "tiers": list(VM_TIERS),
        "cells": cells,
        "headline": {
            "cell": HEADLINE_CELL,
            "reference_s": headline["cpu_s"]["reference"],
            "compiled_s": headline["cpu_s"]["compiled"],
            "speedup": headline["speedup_vs_reference"]["compiled"],
        },
        "all_identical": all(c["identical_metrics"] for c in cells.values()),
    }


def write_baseline(data: dict) -> Path:
    """Write the run's numbers to their canonical location.

    Only full-size runs refresh the committed repo-root baseline; smoke
    runs (tiny request counts, CI) land in ``results/`` so they can be
    diffed against the baseline (``check_bench_regression.py``) without
    ever clobbering it.
    """
    if data.get("smoke"):
        path = REPO_ROOT / "results" / "bench_e2e_smoke.json"
        path.parent.mkdir(exist_ok=True)
    else:
        path = REPO_ROOT / "BENCH_e2e.json"
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def profile_headline_cell(requests: int, path: Path) -> Path:
    """Profile one compiled-tier execution of the headline cell.

    The dump is the optimisation work's primary artifact: ``tottime`` on
    the flat service loops, the engine drain loop, and the compiled probe
    bodies shows exactly where the remaining cycles go.  Written in the
    binary ``pstats`` format (``python -m pstats <path>``).
    """
    import cProfile

    name, workload, mode, faulted = next(
        row for row in CELL_MATRIX if row[0] == HEADLINE_CELL
    )
    spec = _spec_for(workload, mode, requests).replace(vm_tier="compiled")
    profiler = cProfile.Profile()
    profiler.enable()
    _run_cell(spec, faulted)
    profiler.disable()
    path.parent.mkdir(parents=True, exist_ok=True)
    profiler.dump_stats(path)
    print(f"cProfile stats for {name} (compiled tier) written to {path}")
    return path


def _report(data: dict, println) -> None:
    println("BENCH-E2E-CELL — end-to-end cell CPU time, three VM tiers")
    for name, cell in data["cells"].items():
        cpu = cell["cpu_s"]
        speed = cell["speedup_vs_reference"]
        flag = "ok" if cell["identical_metrics"] else "DIVERGED"
        println(
            f"  {name:<28} ref {cpu['reference']:6.2f}s  "
            f"fast {cpu['fast']:6.2f}s ({speed['fast']:.2f}x)  "
            f"compiled {cpu['compiled']:6.2f}s ({speed['compiled']:.2f}x)  "
            f"[{flag}]"
        )
    headline = data["headline"]
    println(f"  headline ({headline['cell']}): "
            f"{headline['speedup']:.2f}x compiled over reference")


def test_e2e_cell_tiers(benchmark):
    from conftest import bench_scale, emit, scaled

    from repro.analysis import save_record

    # Scaled-down runs are smoke runs: they assert identity but must not
    # refresh the committed full-size baseline.
    data = benchmark.pedantic(
        lambda: run_benchmark(scaled(1200, minimum=400),
                              smoke=bench_scale() < 1.0),
        rounds=1, iterations=1)
    save_record(data, "bench_e2e_cell")
    baseline = write_baseline(data)

    _report(data, emit)
    emit(f"  baseline written to {baseline}")

    assert data["all_identical"], {
        name: cell["diverged_tiers"]
        for name, cell in data["cells"].items() if not cell["identical_metrics"]
    }
    # The speedup gate needs full-size cells: scaled-down runs spend
    # their time in per-cell fixed costs, not the probe hot loop.
    if bench_scale() >= 1.0:
        assert data["headline"]["speedup"] >= 3.0, \
            f"compiled tier only {data['headline']['speedup']:.2f}x end-to-end"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny run; fail on divergence only, not speedup")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per cell (default: 250 smoke / 1200 full)")
    parser.add_argument("--reps", type=int, default=None,
                        help="timed repetitions per tier (default: 1 smoke / 3 full)")
    parser.add_argument("--profile", metavar="PATH", default=None,
                        help="also run the headline cell's compiled tier "
                             "under cProfile and dump the stats to PATH "
                             "(binary pstats; inspect with python -m pstats)")
    args = parser.parse_args(argv)
    requests = args.requests or (250 if args.smoke else 1200)
    reps = args.reps or (1 if args.smoke else 3)

    data = run_benchmark(requests, reps=reps, smoke=args.smoke)
    if args.profile:
        profile_headline_cell(requests, Path(args.profile))
    baseline = write_baseline(data)
    _report(data, print)
    print(f"baseline written to {baseline}")

    if not data["all_identical"]:
        for name, cell in data["cells"].items():
            if not cell["identical_metrics"]:
                print(f"DIVERGENCE in {name}: tiers {cell['diverged_tiers']}",
                      file=sys.stderr)
        return 1
    if not args.smoke and data["headline"]["speedup"] < 3.0:
        print(f"compiled speedup {data['headline']['speedup']:.2f}x below the "
              "3x end-to-end floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
