"""Parallel experiment executor with deterministic result caching.

The subsystem behind every figure regeneration:

* :mod:`.spec` — :class:`ExperimentSpec`, the canonical typed description
  of one (workload, offered-RPS, netem, machine) cell, plus the
  :class:`LevelResult`/:class:`SweepResult` containers;
* :mod:`.cache` — :class:`ResultCache`, an on-disk store under
  ``results/.cache/`` keyed by the spec's content hash;
* :mod:`.pool` — :func:`execute_cell` (one cell, pure function of its
  spec) and :func:`run_cells` (process-pool fan-out with cache consultation
  and progress telemetry).

Because each cell derives its own seed sequence from its spec, parallel
execution and cache replay are both bit-identical to a serial run.
"""

from .cache import ResultCache, default_cache_dir
from .pool import (
    CellProgress,
    ExecutorStats,
    ProgressCallback,
    execute_cell,
    parse_shard,
    run_cells,
)
from .spec import DEFAULT_SEED, ExperimentSpec, LevelResult, SweepResult
from .spill import ResultSpill

__all__ = [
    "DEFAULT_SEED",
    "ExperimentSpec",
    "LevelResult",
    "SweepResult",
    "ResultCache",
    "ResultSpill",
    "default_cache_dir",
    "CellProgress",
    "ExecutorStats",
    "ProgressCallback",
    "execute_cell",
    "parse_shard",
    "run_cells",
]
