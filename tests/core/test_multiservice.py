"""Tests for multi-stage observability (§V-B)."""

import pytest

from repro.core import MultiServiceMonitor, ServiceSpec
from repro.kernel import Kernel, MachineSpec
from repro.loadgen import OpenLoopClient
from repro.sim import Environment, SeedSequence
from repro.workloads import get_workload


def _web_search_stack(rate_frac, requests=300, seed=3):
    definition = get_workload("web-search")
    config = definition.config
    env = Environment()
    seeds = SeedSequence(seed)
    kernel = Kernel(env, MachineSpec(name="t", cores=config.cores), seeds)
    app = definition.build(kernel)
    monitor = MultiServiceMonitor.for_two_tier_app(kernel, app).attach()
    client = OpenLoopClient(
        env, app.client_sockets, seeds.stream("client"),
        rate_rps=definition.paper_fail_rps * rate_frac,
        total_requests=requests, arrival="uniform",
    )
    client.start()
    report = env.run(until=client.done)
    return report, monitor.snapshot()


def test_validation():
    kernel = Kernel(Environment(), MachineSpec(name="t", cores=2), SeedSequence(1))
    with pytest.raises(ValueError):
        MultiServiceMonitor(kernel, [])
    spec = ServiceSpec(name="a", tgid=1, workers=1)
    with pytest.raises(ValueError, match="duplicate"):
        MultiServiceMonitor(kernel, [spec, spec])


def test_monitors_both_tiers():
    _report, combined = _web_search_stack(0.5)
    assert {t.name for t in combined.tiers} == {"front-end", "index-search"}
    front = combined.tier("front-end")
    back = combined.tier("index-search")
    # Both tiers show request activity.
    assert front.snapshot.send.events > 0
    assert back.snapshot.send.events > 0
    # The backend does the heavy lifting: one response write per request.
    assert back.snapshot.send.events == 300


def test_unknown_tier_lookup():
    _report, combined = _web_search_stack(0.4, requests=100)
    with pytest.raises(KeyError):
        combined.tier("cache")


def test_backend_is_the_bottleneck_tier():
    """The index tier carries the 18ms service; it must show less idleness
    than the front-end and be attributed as the bottleneck under load."""
    _report, combined = _web_search_stack(0.8)
    front = combined.tier("front-end")
    back = combined.tier("index-search")
    assert back.idleness < front.idleness
    assert combined.bottleneck.name == "index-search"


def test_entry_rps_tracks_throughput():
    report, combined = _web_search_stack(0.5)
    # Entry tier counts forwarding+response+log writes (~2.x per request),
    # so it over-counts in absolute terms but scales with real throughput.
    assert combined.entry_rps >= report.achieved_rps


def test_idleness_by_tier_shape():
    _report, combined = _web_search_stack(0.5, requests=150)
    by_tier = combined.idleness_by_tier()
    assert set(by_tier) == {"front-end", "index-search"}
    for value in by_tier.values():
        assert 0.0 <= value <= 1.0


def test_snapshot_requires_attach():
    kernel = Kernel(Environment(), MachineSpec(name="t", cores=2), SeedSequence(1))
    monitor = MultiServiceMonitor(kernel, [ServiceSpec("a", 1, 1)])
    with pytest.raises(RuntimeError):
        monitor.snapshot()


def test_context_manager_detaches():
    definition = get_workload("web-search")
    env = Environment()
    kernel = Kernel(env, MachineSpec(name="t", cores=4), SeedSequence(2))
    app = definition.build(kernel)
    with MultiServiceMonitor.for_two_tier_app(kernel, app):
        pass
    assert not kernel.tracepoints.any_probes
