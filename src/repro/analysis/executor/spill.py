"""Incremental on-disk spill of completed experiment results.

A thousand-cell sweep does not need its thousand :class:`LevelResult`\\ s
resident in parent RAM: each finished cell is appended to a JSONL file
under ``results/`` the moment it completes, and only its byte offset plus
a small scalar summary stay in memory.  That keeps the executor's memory
footprint flat in batch size (the CI-gated RSS ceiling in
``BENCH_sweep.json``) while still letting small batches rebuild the full
in-memory result list with :meth:`ResultSpill.materialize`.

File format (see DESIGN.md §11): one JSON object per line,
``{"index": <position in the submitted batch>, "result": <LevelResult
dict>}``, written in **completion** order.  Record order therefore varies
with scheduling, but the index makes reassembly positional:
``materialize()`` orders by index and leaves ``None`` holes for cells
that never completed (failed, or owned by another shard), which is
exactly what makes shard outputs union bit-identically.
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .spec import LevelResult

__all__ = ["ResultSpill"]

#: Scalar fields kept in RAM per spilled result (progress lines, sanity
#: checks) — everything else lives only on disk until materialized.
SUMMARY_FIELDS = (
    "workload",
    "offered_rps",
    "achieved_rps",
    "p99_ns",
    "qos_violated",
    "confidence",
)

_spill_seq = itertools.count()


def _default_path() -> Path:
    directory = Path(__file__).resolve().parents[4] / "results"
    return directory / f"spill-{os.getpid()}-{next(_spill_seq)}.jsonl"


class ResultSpill:
    """Append-only JSONL sink for :class:`LevelResult`\\ s, indexed in RAM.

    Pass an instance to :func:`~repro.analysis.executor.pool.run_cells`
    via ``spill=`` (or let it build one with ``spill=True``); the
    executor streams every completed cell here instead of accumulating
    the results list.
    """

    def __init__(
        self,
        path: Union[None, str, Path] = None,
        *,
        total: Optional[int] = None,
    ) -> None:
        self.path = Path(path) if path is not None else _default_path()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Batch size (set by the executor); bounds :meth:`materialize`.
        self.total = total
        self._offsets: Dict[int, int] = {}
        self.summaries: Dict[int, dict] = {}
        self._fh = open(self.path, "wb")
        self._pos = 0

    # -- writing ---------------------------------------------------------
    def add(self, index: int, result: LevelResult) -> None:
        """Append one completed cell (flushed immediately: a crash later
        in the batch loses nothing already spilled)."""
        if self._fh is None:
            raise ValueError(f"spill {self.path} is closed")
        line = json.dumps(
            {"index": index, "result": result.to_dict()},
            separators=(",", ":"),
            sort_keys=True,
        ).encode("utf-8") + b"\n"
        self._fh.write(line)
        self._fh.flush()
        self._offsets[index] = self._pos
        self._pos += len(line)
        payload = result.to_dict()
        self.summaries[index] = {k: payload[k] for k in SUMMARY_FIELDS}

    # -- reading ---------------------------------------------------------
    def indices(self) -> List[int]:
        """Positions that have a spilled result, ascending."""
        return sorted(self._offsets)

    def get(self, index: int) -> Optional[LevelResult]:
        """One spilled result by batch position (``None`` if absent)."""
        offset = self._offsets.get(index)
        if offset is None:
            return None
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            record = json.loads(fh.readline())
        return LevelResult(**record["result"])

    def iter_results(self) -> Iterator[Tuple[int, LevelResult]]:
        """Stream ``(index, result)`` pairs in completion order — constant
        memory, the read path for batches too large to materialize."""
        with open(self.path, "rb") as fh:
            for line in fh:
                if not line.strip():
                    continue
                record = json.loads(line)
                yield record["index"], LevelResult(**record["result"])

    def materialize(self) -> List[Optional[LevelResult]]:
        """The full results list, ordered by batch position, with ``None``
        holes for cells that never completed (failed or out-of-shard).

        Convenience for small batches; for large ones iterate
        :meth:`iter_results` instead.
        """
        size = self.total
        if size is None:
            size = (max(self._offsets) + 1) if self._offsets else 0
        results: List[Optional[LevelResult]] = [None] * size
        for index, result in self.iter_results():
            if index < size:
                results[index] = result
        return results

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def unlink(self) -> None:
        """Close and delete the spill file."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "ResultSpill":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._offsets)

    def __repr__(self) -> str:
        return (
            f"<ResultSpill path={str(self.path)!r} spilled={len(self._offsets)}"
            f" total={self.total}>"
        )
