"""Tests for regression/normalization and trace windowing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    RECOMMENDED_WINDOW_EVENTS,
    chunk_by_count,
    fit_linear,
    normalize,
    residual_summary,
    window_estimates,
)
from repro.sim import MSEC


class TestFitLinear:
    def test_perfect_line(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        ys = [3.0, 5.0, 7.0, 9.0]
        fit = fit_linear(xs, ys)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_line_r2_below_one(self):
        xs = list(range(10))
        ys = [2 * x + (1 if x % 2 else -1) for x in xs]
        fit = fit_linear(xs, ys)
        assert 0.9 < fit.r_squared < 1.0

    def test_uncorrelated_r2_near_zero(self):
        xs = [0, 1, 2, 3] * 5
        ys = [5, -5, 5, -5, -5, 5, -5, 5] * 2 + [5, -5, 5, -5]
        fit = fit_linear(xs, ys)
        assert fit.r_squared < 0.3

    def test_constant_y_r2_one(self):
        fit = fit_linear([1, 2, 3], [4, 4, 4])
        assert fit.r_squared == 1.0
        assert fit.slope == 0.0

    def test_degenerate_inputs(self):
        with pytest.raises(ValueError):
            fit_linear([1], [1])
        with pytest.raises(ValueError):
            fit_linear([1, 1], [1, 2])
        with pytest.raises(ValueError):
            fit_linear([1, 2], [1, 2, 3])

    def test_predict_and_residuals(self):
        fit = fit_linear([0.0, 1.0], [1.0, 3.0])
        assert fit.predict(2.0) == pytest.approx(5.0)
        assert fit.residuals([0.0, 1.0], [1.0, 3.0]) == pytest.approx([0.0, 0.0])

    @given(
        slope=st.floats(min_value=-100, max_value=100, allow_nan=False),
        intercept=st.floats(min_value=-100, max_value=100, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_recovers_exact_line_property(self, slope, intercept):
        xs = [0.0, 1.0, 2.0, 5.0]
        ys = [slope * x + intercept for x in xs]
        fit = fit_linear(xs, ys)
        assert fit.slope == pytest.approx(slope, abs=1e-6)
        assert fit.intercept == pytest.approx(intercept, abs=1e-6)


class TestNormalize:
    def test_scales_by_max(self):
        assert normalize([1.0, 2.0, 4.0]) == [0.25, 0.5, 1.0]

    def test_empty(self):
        assert normalize([]) == []

    def test_all_zero(self):
        assert normalize([0.0, 0.0]) == [0.0, 0.0]


class TestResidualSummary:
    def test_balanced_residuals(self):
        mean, std, balance = residual_summary([-1.0, 1.0, -2.0, 2.0])
        assert mean == 0.0
        assert std > 0
        assert balance == 0.5

    def test_biased_residuals(self):
        _mean, _std, balance = residual_summary([1.0, 2.0, 3.0])
        assert balance == 1.0

    def test_empty(self):
        assert residual_summary([]) == (0.0, 0.0, 0.5)


class TestWindows:
    def test_recommended_window_is_paper_value(self):
        assert RECOMMENDED_WINDOW_EVENTS == 2048

    def test_chunk_by_count(self):
        chunks = chunk_by_count(list(range(10)), 3)
        assert chunks == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]  # trailing dropped

    def test_chunk_validation(self):
        with pytest.raises(ValueError):
            chunk_by_count([1, 2, 3], 1)

    def test_window_estimates_uniform_trace(self):
        timestamps = [i * MSEC for i in range(100)]
        estimates = window_estimates(timestamps, windows=10)
        assert len(estimates) == 10
        for est in estimates:
            assert est == pytest.approx(1000.0)

    def test_window_estimates_too_few_events(self):
        assert window_estimates([1], windows=10) == []

    def test_window_estimates_validation(self):
        with pytest.raises(ValueError):
            window_estimates([1, 2, 3], windows=0)

    def test_larger_windows_are_more_stable(self):
        """The §IV-B claim: estimates stabilize with window size."""
        import random

        rng = random.Random(7)
        timestamps = []
        now = 0
        for _ in range(4096):
            now += max(1, int(rng.expovariate(1.0 / MSEC)))
            timestamps.append(now)

        small = window_estimates(timestamps, windows=64)  # 64 events each
        large = window_estimates(timestamps, windows=4)  # 1024 events each

        def spread(values):
            mean = sum(values) / len(values)
            return (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5 / mean

        assert spread(large) < spread(small)
