"""§V-C reproduced as a negative test: io_uring blinds syscall tracing.

A workload flavour that moves its receive/send/poll activity off the
syscall path (completion-queue style) keeps serving requests correctly,
but the monitor sees nothing — "our method may not yield useful insights
as the receiving and sending of the request may not be observable".
"""

import pytest

from repro.core import RequestMetricsMonitor
from repro.kernel import Kernel, MachineSpec
from repro.loadgen import OpenLoopClient
from repro.sim import Environment, SeedSequence
from repro.workloads import get_workload


def _run(io_uring: bool):
    definition = get_workload("data-caching")
    config = definition.config.with_overrides(
        io_uring=io_uring, connections=8, workers=4
    )
    env = Environment()
    kernel = Kernel(env, MachineSpec(name="t", cores=4), SeedSequence(13),
                    interference=False)
    app = definition.app_class(kernel, config).start()
    monitor = RequestMetricsMonitor(kernel, app.tgid).attach()
    client = OpenLoopClient(
        env, app.client_sockets, kernel.seeds.stream("client"),
        rate_rps=2000, total_requests=300,
    )
    client.start()
    report = env.run(until=client.done)
    return report, monitor.snapshot()


def test_io_uring_serves_but_is_unobservable():
    report, snap = _run(io_uring=True)
    # The application performs identically...
    assert report.completed == 300
    assert report.achieved_rps > 0
    # ...but syscall-based observability is blind.
    assert snap.send.events == 0
    assert snap.recv.events == 0
    assert snap.poll.count == 0
    assert snap.rps_obsv == 0.0


def test_syscall_path_control_group():
    """Same app without io_uring: fully observable (the control)."""
    report, snap = _run(io_uring=False)
    assert report.completed == 300
    assert snap.send.events == 300
    assert snap.rps_obsv == pytest.approx(report.achieved_rps, rel=0.05)
