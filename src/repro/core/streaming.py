"""Stream-to-userspace collection — the paper's *first* methodology.

§III: "Initially, we streamed all available eBPF trace data to user space
to explore potential correlations with request-level metrics.
Subsequently, we leveraged eBPF capabilities to compute these metrics
directly within the eBPF space."

This module implements that first stage faithfully: a sys_enter program
that emits one ``(timestamp, syscall_nr)`` record per matching event
through a ``PERF_EVENT_ARRAY`` (bcc's ``perf_buffer`` path), with the
statistics computed in userspace from the drained records.  The ABL-STREAM
benchmark quantifies why the paper moved on: per-event streaming costs
bytes and probe time linear in the event rate, while the in-kernel
collector's state is 48 bytes flat.
"""

from __future__ import annotations

import heapq
import struct
from typing import Iterable, List, Optional, Tuple, Union

from ..ebpf.asm import Asm
from ..ebpf.bcc import BPF
from ..ebpf.context import ProgType
from ..ebpf.helpers import Helper
from ..ebpf.maps import PerfEventArray
from ..ebpf.opcodes import MemSize, Reg
from ..ebpf.program import Program
from ..kernel.kernel import Kernel
from .collectors import _emit_epilogue, _emit_prologue
from .config import CollectorConfig, resolve_collector_config
from .deltas import DeltaStats
from .histograms import DeltaHistogram

__all__ = ["StreamingDeltaCollector", "RECORD_SIZE"]

#: One streamed record: u64 timestamp + u64 syscall nr (padding-free).
RECORD_SIZE = 16
_RECORD = struct.Struct("<QQ")


def build_streaming_program(
    map_name: str, tgid: int, syscall_nrs: Iterable[int],
    prog_name: str = "stream_enter",
) -> Program:
    """sys_enter program emitting one perf record per matching syscall."""
    nrs = tuple(syscall_nrs)
    if not nrs:
        raise ValueError("need at least one syscall number")
    asm = Asm()
    _emit_prologue(asm, tgid, nrs)  # saves ctx in r9, leaves args->id in r8
    # record = { ktime, syscall_nr } on the stack
    asm.call(Helper.KTIME_GET_NS)
    asm.stx(MemSize.DW, Reg.R10, -16, Reg.R0)
    asm.stx(MemSize.DW, Reg.R10, -8, Reg.R8)
    # bpf_perf_event_output(ctx, &events, flags=0, &record, sizeof(record))
    asm.mov_reg(Reg.R1, Reg.R9)
    asm.ld_map_fd(Reg.R2, map_name)
    asm.mov_imm(Reg.R3, 0)
    asm.mov_reg(Reg.R4, Reg.R10)
    asm.add_imm(Reg.R4, -16)
    asm.mov_imm(Reg.R5, RECORD_SIZE)
    asm.call(Helper.PERF_EVENT_OUTPUT)
    _emit_epilogue(asm)
    return Program(prog_name, asm.build(), ProgType.tracepoint_sys_enter())


class StreamingDeltaCollector:
    """DeltaCollector-compatible API over per-event perf streaming.

    The statistics are identical to the in-kernel collector's *provided the
    userspace consumer drains fast enough*; a full perf buffer drops
    records (``lost_records``), which is precisely the operational hazard
    the in-kernel computation avoids.
    """

    def __init__(
        self,
        kernel: Kernel,
        tgid: int,
        syscall_nrs: Iterable[int],
        config: Union[None, str, CollectorConfig] = None,
        *,
        name: str = "stream",
        per_cpu_capacity: Optional[int] = None,
        charge_cost: Optional[bool] = None,
        cpus: Optional[int] = None,
        vm_tier: Optional[str] = None,
    ) -> None:
        config = resolve_collector_config(
            config, "StreamingDeltaCollector",
            per_cpu_capacity=per_cpu_capacity, charge_cost=charge_cost,
            cpus=cpus, vm_tier=vm_tier,
        )
        if isinstance(config, CollectorConfig) and config.mode == "native":
            # The default CollectorConfig mode; a streaming collector is
            # stream-mode by construction, so don't force callers to say so.
            config = config.replace(mode="stream")
        if config.mode != "stream":
            raise ValueError(f"unknown mode {config.mode!r}")
        self.config = config
        self.kernel = kernel
        self.tgid = tgid
        self.syscall_nrs = tuple(syscall_nrs)
        self.name = name
        self.cpus = config.cpus
        self.events = PerfEventArray(cpus=config.cpus,
                                     per_cpu_capacity=config.capacity,
                                     name=f"{name}_events")
        program = build_streaming_program(
            f"{name}_events", tgid, self.syscall_nrs, prog_name=f"{name}_enter"
        )
        # Model CPU placement by pinning each thread to one of ``cpus``
        # buffers, so perf records spread across per-CPU streams the way
        # a multi-core host spreads them.
        self._bpf = BPF(kernel, maps={f"{name}_events": self.events},
                        programs=[program], config=config,
                        cpu_of=lambda ctx: ctx.tid % self.cpus)
        self._stats = DeltaStats()
        self._hist: Optional[DeltaHistogram] = (
            DeltaHistogram() if config.export is not None else None)
        self._attached = False
        #: Total record bytes shipped to userspace (the ablation's metric).
        self.bytes_streamed = 0
        #: ``events.lost`` at the last window boundary, so per-window loss
        #: can be attributed to the window it degraded.
        self._window_lost_base = 0

    # -- lifecycle ---------------------------------------------------------
    def attach(self) -> "StreamingDeltaCollector":
        if self._attached:
            raise RuntimeError("collector already attached")
        self._bpf.attach_tracepoint("raw_syscalls:sys_enter", f"{self.name}_enter")
        self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self._bpf.detach_all()
            self._attached = False

    # -- userspace consumption ----------------------------------------------
    def drain(self) -> List[Tuple[int, int]]:
        """Drain the per-CPU perf rings; returns decoded (timestamp, nr)
        records in arrival order and folds them into the running statistics.

        The batched path: each CPU's ring arrives as one contiguous byte
        block (:meth:`~repro.ebpf.maps.PerfEventArray.drain_batches`) and
        is decoded with a single ``struct.iter_unpack`` call; with more
        than one CPU active, a k-way merge on the arrival sequence numbers
        restores the global emission order — exactly the order
        record-at-a-time ``poll()`` would have produced (pinned by
        ``tests/ebpf/test_perf_batch.py``).
        """
        batches = self.events.drain_batches()
        if not batches:
            return []
        if len(batches) == 1:
            batch = batches[0]
            records = (list(_RECORD.iter_unpack(batch.data))
                       if batch.record_size == RECORD_SIZE
                       else [_RECORD.unpack(blob) for blob in batch.records()])
        else:
            keyed = []
            for batch in batches:
                decoded = (_RECORD.iter_unpack(batch.data)
                           if batch.record_size == RECORD_SIZE
                           else map(_RECORD.unpack, batch.records()))
                keyed.append(zip(batch.seqs, decoded))
            records = [record for _seq, record in heapq.merge(*keyed)]
        timestamps = [timestamp for timestamp, _nr in records]
        if self._hist is not None and timestamps:
            # Bucket the same deltas the statistics accumulate: chain from
            # the last timestamp of the previous drain (or the carried
            # window anchor) exactly as add_timestamps does.
            last = self._stats.last_ns
            for ts_ns in timestamps:
                if last is not None:
                    self._hist.observe(ts_ns - last)
                last = ts_ns
        self._stats.add_timestamps(timestamps)
        self.bytes_streamed += sum(len(batch.data) for batch in batches)
        return records

    @property
    def lost_records(self) -> int:
        """Records dropped because userspace drained too slowly."""
        return self.events.lost

    @property
    def lost_in_window(self) -> int:
        """Records dropped since the current window opened."""
        return self.events.lost - self._window_lost_base

    def snapshot(self) -> DeltaStats:
        """Drain, then return a copy of the accumulated statistics."""
        self.drain()
        s = self._stats
        return DeltaStats(count=s.count, sum=s.sum, sumsq=s.sumsq,
                          first_ns=s.first_ns, last_ns=s.last_ns,
                          carried=s.carried, events=s.events)

    def hist_snapshot(self) -> Optional[DeltaHistogram]:
        """Current window's log2 delta histogram (a copy), after a drain.

        ``None`` unless the collector was built with ``export`` enabled.
        Buckets exactly the deltas :meth:`snapshot` has accumulated, so
        ``hist_snapshot().total == snapshot().count`` holds at every drain
        point (lost records are missing from both sides alike).
        """
        if self._hist is None:
            return None
        self.drain()
        return self._hist.copy()

    def reset_window(self) -> List[Tuple[int, int]]:
        """Close the current window at the drain point.

        Records still sitting in the perf buffer fired *before* the
        boundary, so they are drained into the closing window first — and
        returned, so a caller that already snapshotted the window can
        account for the late-arriving tail instead of it being silently
        folded into a window that is then immediately zeroed.  An empty
        return means the last snapshot told the whole story, i.e. the
        windowed stream agrees with the in-kernel collector.
        """
        tail = self.drain()
        self._stats.reset_window()
        if self._hist is not None:
            self._hist.reset()
        self._window_lost_base = self.events.lost
        return tail
