"""Exposition-format primitives: escaping, value rendering, dialect rules.

The property tests drive arbitrary label values and HELP text through
render -> bundled strict parser and require a lossless round trip — the
escaping contract the exporter relies on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.export.metrics import (
    Exemplar,
    MetricFamily,
    escape_help,
    escape_label_value,
    format_value,
    render_exposition,
)
from repro.export.parser import ParseError, parse_text

# Any unicode text (no surrogates); newlines, quotes and backslashes are
# exactly the characters the escaping rules exist for.
_label_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=40
)
_label_names = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_]{0,15}", fullmatch=True
                             ).filter(lambda s: not s.startswith("__"))


class TestFormatValue:
    def test_integers_render_exactly(self):
        big = (1 << 63) + 12345  # past float precision
        assert format_value(big) == str(big)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            format_value(True)

    def test_special_floats(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"

    def test_float_repr_round_trips(self):
        assert float(format_value(0.1)) == 0.1


class TestEscaping:
    def test_label_value_escapes(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_help_escapes_keep_quotes(self):
        assert escape_help('say "hi"\n') == 'say "hi"\\n'


@given(value=_label_values)
@settings(max_examples=200)
def test_label_value_round_trips_through_parser(value):
    family = MetricFamily("m", "gauge", "h")
    family.add(1, (("l", value),))
    families = parse_text(render_exposition([family]))
    assert families["m"].samples[0].labels == {"l": value}


@given(name=_label_names, value=_label_values)
@settings(max_examples=100)
def test_label_name_and_value_round_trip(name, value):
    family = MetricFamily("m", "counter", "h")
    family.add(3, ((name, value),))
    families = parse_text(render_exposition([family]))
    sample = families["m"].samples[0]
    assert sample.name == "m_total"
    assert sample.labels == {name: value}
    assert sample.value == 3


@given(text=_label_values)
@settings(max_examples=100)
def test_help_text_round_trips(text):
    family = MetricFamily("m", "gauge", text)
    families = parse_text(render_exposition([family]))
    assert families["m"].help == text


@given(name=st.text(max_size=10))
@settings(max_examples=100)
def test_invalid_metric_names_rejected(name):
    import re

    valid = re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", name)
    if valid:
        MetricFamily(name, "gauge", "h")
    else:
        with pytest.raises(ValueError):
            MetricFamily(name, "gauge", "h")


class TestLabelValidation:
    def test_invalid_label_name_rejected(self):
        family = MetricFamily("m", "gauge", "h")
        with pytest.raises(ValueError):
            family.add(1, (("9bad", "v"),))
        with pytest.raises(ValueError):
            family.add(1, (("__reserved", "v"),))


class TestDialects:
    def _counter(self):
        family = MetricFamily("m", "counter", "h")
        family.add(7, (("k", "v"),),
                   exemplar=Exemplar((("trace", "t1"),), 5, timestamp=1.5))
        return family

    def test_classic_counter_named_with_total(self):
        text = render_exposition([self._counter()])
        assert "# TYPE m_total counter" in text
        assert 'm_total{k="v"} 7' in text
        assert "# EOF" not in text
        assert " # " not in text  # exemplars are OpenMetrics-only

    def test_openmetrics_counter_named_bare(self):
        text = render_exposition([self._counter()], openmetrics=True)
        assert "# TYPE m counter" in text
        assert 'm_total{k="v"} 7 # {trace="t1"} 5 1.500' in text
        assert text.rstrip("\n").endswith("# EOF")

    def test_both_dialects_parse(self):
        for openmetrics in (False, True):
            families = parse_text(
                render_exposition([self._counter()], openmetrics=openmetrics))
            assert families["m"].samples[0].value == 7

    def test_exemplar_decoded(self):
        families = parse_text(
            render_exposition([self._counter()], openmetrics=True))
        sample = families["m"].samples[0]
        assert sample.exemplar_labels == {"trace": "t1"}
        assert sample.exemplar_value == 5
        assert sample.exemplar_timestamp == 1.5


class TestParserStrictness:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ParseError, match="no preceding TYPE"):
            parse_text("orphan 1\n")

    def test_exemplar_outside_openmetrics_rejected(self):
        with pytest.raises(ParseError, match="exemplar"):
            parse_text('# TYPE m counter\nm_total 1 # {a="b"} 1\n')

    def test_content_after_eof_rejected(self):
        with pytest.raises(ParseError, match="EOF"):
            parse_text("# TYPE m gauge\nm 1\n# EOF\nm 2\n")

    def test_bad_escape_rejected(self):
        with pytest.raises(ParseError, match="escape"):
            parse_text('# TYPE m gauge\nm{l="a\\tb"} 1\n')

    def test_missing_comma_between_labels_rejected(self):
        with pytest.raises(ParseError):
            parse_text('# TYPE m gauge\nm{a="1"b="2"} 1\n')

    def test_duplicate_label_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_text('# TYPE m gauge\nm{a="1",a="2"} 1\n')

    def test_gauge_with_suffix_rejected(self):
        with pytest.raises(ParseError):
            parse_text("# TYPE m gauge\nm_total 1\n")
