"""End-to-end integration: every workload, full stack, core invariants.

These are the paper's claims at miniature scale: Eq. 1 tracks real
throughput below saturation, overload degrades tail latency, and the
idleness signal shrinks with load.
"""

import pytest

from repro.analysis import ExperimentSpec, run_level
from repro.workloads import get_workload, workload_keys

REQUESTS = 400


@pytest.fixture(scope="module")
def levels():
    """One sub-saturation and one overload run per workload (cached)."""
    cache = {}
    for key in workload_keys():
        definition = get_workload(key)
        cache[key] = {
            "low": run_level(ExperimentSpec(
                workload=key, offered_rps=definition.paper_fail_rps * 0.5,
                requests=REQUESTS)),
            "over": run_level(ExperimentSpec(
                workload=key, offered_rps=definition.paper_fail_rps * 1.2,
                requests=REQUESTS)),
        }
    return cache


@pytest.mark.parametrize("key", workload_keys())
class TestPerWorkload:
    def test_all_requests_served(self, levels, key):
        assert levels[key]["low"].completed == REQUESTS
        assert levels[key]["over"].completed == REQUESTS

    def test_rps_obsv_tracks_truth_below_saturation(self, levels, key):
        low = levels[key]["low"]
        definition = get_workload(key)
        sends_low, sends_high = definition.config.sends_per_request
        if sends_high == 1 and definition.config.log_write_prob == 0.0 \
                and definition.app_class.__name__ != "TwoTierApp":
            # Clean workloads: 1 send syscall per request.
            assert low.rps_obsv == pytest.approx(low.achieved_rps, rel=0.05)
        else:
            # Noisy senders still correlate but overcount.
            assert low.rps_obsv >= low.achieved_rps * 0.9

    def test_overload_degrades_tail_latency(self, levels, key):
        assert levels[key]["over"].p99_ns > 2 * levels[key]["low"].p99_ns

    def test_overload_violates_qos(self, levels, key):
        assert not levels[key]["low"].qos_violated
        assert levels[key]["over"].qos_violated

    def test_idleness_shrinks_with_load(self, levels, key):
        low = levels[key]["low"]
        over = levels[key]["over"]
        assert over.poll_mean_duration_ns < low.poll_mean_duration_ns

    def test_utilization_rises_with_load(self, levels, key):
        assert levels[key]["over"].utilization > levels[key]["low"].utilization

    def test_achieved_capped_at_overload(self, levels, key):
        over = levels[key]["over"]
        assert over.achieved_rps < over.offered_rps * 0.98


class TestCrossWorkload:
    def test_throughput_ordering_matches_paper(self, levels):
        """Data Caching is the throughput monster; Triton the heaviest."""
        achieved = {key: levels[key]["over"].achieved_rps for key in levels}
        assert achieved["data-caching"] == max(achieved.values())
        assert min(achieved, key=achieved.get) in ("triton-http", "triton-grpc")

    def test_failure_points_near_paper_values(self, levels):
        """At 1.2x the paper's failure RPS every workload is saturated, and
        at 0.5x none is — the calibration brackets the paper's numbers."""
        for key in levels:
            assert levels[key]["over"].qos_violated, key
            assert not levels[key]["low"].qos_violated, key
