"""Discrete-event simulation core (integer-nanosecond clock).

This package is self-contained and application-agnostic: the kernel, network
and workload layers are all built on these primitives.
"""

from .compiled import FlatProcess
from .engine import EmptySchedule, Environment
from .events import AllOf, AnyOf, Condition, Event, Interrupt, Timeout
from .process import Process
from .resources import Request, Resource, Store
from .rng import SeedSequence, Stream, splitmix64
from .timebase import MSEC, NSEC, SEC, USEC, fmt_ns, ns, per_second, seconds

__all__ = [
    "Environment",
    "EmptySchedule",
    "Event",
    "Timeout",
    "Condition",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Process",
    "FlatProcess",
    "Resource",
    "Request",
    "Store",
    "SeedSequence",
    "Stream",
    "splitmix64",
    "NSEC",
    "USEC",
    "MSEC",
    "SEC",
    "ns",
    "seconds",
    "per_second",
    "fmt_ns",
]
