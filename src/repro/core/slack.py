"""Saturation slack from poll-syscall durations (Fig. 4).

§IV-C-2: no syscall pattern signals *approaching* saturation directly, so
the paper inverts the problem — measure **idleness** via the duration of
``epoll``-family syscalls.  Long polls mean the application waits for work
(large slack); durations shrink as load rises and **stabilize** at
saturation.  :func:`stabilization_point` finds where the decline flattens,
and :class:`SlackEstimator` turns a calibrated duration→load relationship
into a [0, 1] slack figure a management runtime can act on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = ["stabilization_point", "SlackEstimator", "idleness_fraction"]


def idleness_fraction(poll_total_ns: int, window_ns: int, workers: int = 1) -> float:
    """Fraction of worker time spent blocked in poll syscalls.

    A direct idleness metric: total poll-family duration in the window over
    total worker-time available.  Clamped to [0, 1].
    """
    if window_ns <= 0 or workers < 1:
        return 0.0
    return min(1.0, poll_total_ns / (window_ns * workers))


def stabilization_point(
    xs: Sequence[float],
    durations: Sequence[float],
    flat_tolerance: float = 0.05,
    consecutive: int = 2,
) -> Optional[float]:
    """Find where a declining duration curve flattens out.

    Scans the x-sorted curve for the first point from which ``consecutive``
    successive relative drops all stay within ``flat_tolerance`` of the
    curve's total range — the paper's "duration typically stabilizes" at
    saturation.  Returns the x of that point, or None if the curve never
    flattens.
    """
    if len(xs) != len(durations):
        raise ValueError("xs and durations must have equal length")
    n = len(xs)
    if n < consecutive + 1:
        return None
    order = sorted(range(n), key=lambda i: xs[i])
    ys = [durations[i] for i in order]
    span = max(ys) - min(ys)
    if span <= 0:
        return xs[order[0]]
    for start in range(n - consecutive):
        flat = all(
            abs(ys[start + k] - ys[start + k + 1]) <= flat_tolerance * span
            for k in range(consecutive)
        )
        if flat:
            return xs[order[start]]
    return None


@dataclass(frozen=True)
class CalibrationPoint:
    load: float  # offered or observed RPS
    poll_duration_ns: float


class SlackEstimator:
    """Maps a live poll duration onto calibrated saturation slack.

    Calibrate with (load, poll-duration) pairs from a ramp (they need not be
    uniformly spaced); ``slack(duration)`` then interpolates the implied
    load and reports ``1 - load/saturation_load``, clamped to [0, 1].
    """

    def __init__(self, calibration: Sequence[Tuple[float, float]]) -> None:
        points = sorted(
            (CalibrationPoint(load, dur) for load, dur in calibration),
            key=lambda p: p.load,
        )
        if len(points) < 2:
            raise ValueError("need at least two calibration points")
        # Durations must decline with load for bracket interpolation to be
        # well-defined; a noisy tail rising again would make in-range
        # queries miss every bracket and fall through to the saturation
        # load (slack 0).  Monotonize with a running minimum.
        monotone: List[CalibrationPoint] = []
        ceiling = float("inf")
        for point in points:
            ceiling = min(ceiling, point.poll_duration_ns)
            monotone.append(CalibrationPoint(point.load, ceiling))
        self._points = monotone
        self._saturation_load = monotone[-1].load

    @property
    def saturation_load(self) -> float:
        return self._saturation_load

    def implied_load(self, poll_duration_ns: float) -> float:
        """Interpolate the load level implied by a poll duration.

        Durations decrease with load; out-of-range durations clamp to the
        calibration extremes.
        """
        points = self._points
        if poll_duration_ns >= points[0].poll_duration_ns:
            return points[0].load
        if poll_duration_ns <= points[-1].poll_duration_ns:
            return points[-1].load
        for low, high in zip(points, points[1:]):
            # durations decline from low.load to high.load
            if high.poll_duration_ns <= poll_duration_ns <= low.poll_duration_ns:
                span = low.poll_duration_ns - high.poll_duration_ns
                if span <= 0:
                    return high.load
                fraction = (low.poll_duration_ns - poll_duration_ns) / span
                return low.load + fraction * (high.load - low.load)
        return points[-1].load

    def slack(self, poll_duration_ns: float) -> float:
        """Remaining headroom in [0, 1]: 1 = idle, 0 = at saturation."""
        load = self.implied_load(poll_duration_ns)
        if self._saturation_load <= 0:
            return 0.0
        return max(0.0, min(1.0, 1.0 - load / self._saturation_load))
