"""The streaming Prometheus export stage.

:class:`PrometheusExporter` is the consumer end of the unified collector
pipeline: the monitor's export loop closes a :class:`MetricsSnapshot`
window every ``ExportConfig.window_ns`` of simulated time and feeds it
here; a *scrape* renders the accumulated state as Prometheus exposition
text (classic 0.0.4 or OpenMetrics).  The design follows ebpf_exporter's
split: the probes aggregate in-kernel (counters, sums, log2 histogram
buckets), userspace only merges windows and formats text — so the
exporter's marginal cost is windowing + rendering, which is exactly what
``bench_export_overhead.py`` characterizes.

Degraded collection is first-class: every window's ``lost_records`` feed a
counter, and (in the OpenMetrics dialect) the live delta counter and the
``+Inf`` histogram bucket carry an exemplar whose labels encode the last
window's confidence — a scraper can tell *how much* to trust a sample, not
just its value.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.config import ExportConfig
from ..core.monitor import MetricsSnapshot
from .metrics import (
    Exemplar,
    LabelPairs,
    MetricFamily,
    render_exposition,
)
from ..core.histograms import NBUCKETS, bucket_upper_bound

__all__ = ["PrometheusExporter"]

#: Nanoseconds per second (timestamp rendering).
_NS_PER_S = 1_000_000_000


class PrometheusExporter:
    """Accumulates observation windows and renders Prometheus text.

    The exported counters are *cumulative over the windows observed so
    far* (Prometheus counter semantics), computed by merging the window
    snapshots — so every counter equals the corresponding field of the
    merged :class:`~repro.core.monitor.MetricsSnapshot` exactly, in the
    collectors' own integer arithmetic.  Per-window views (rates,
    confidence) are exported as gauges of the most recent window.
    """

    def __init__(self, config: Optional[ExportConfig] = None) -> None:
        self.config = config if config is not None else ExportConfig()
        #: Every window observed, in arrival order.
        self.windows: List[MetricsSnapshot] = []
        #: Number of scrapes rendered.
        self.render_count = 0
        #: Total exposition bytes rendered (the overhead study's metric).
        self.bytes_rendered = 0

    # -- ingestion -------------------------------------------------------
    def observe_window(self, snapshot: MetricsSnapshot) -> None:
        """Ingest one closed observation window."""
        self.windows.append(snapshot)

    def aggregate(self) -> Optional[MetricsSnapshot]:
        """All observed windows merged into one snapshot (None when empty)."""
        if not self.windows:
            return None
        return MetricsSnapshot.merge_all(self.windows)

    @property
    def last_window(self) -> Optional[MetricsSnapshot]:
        return self.windows[-1] if self.windows else None

    # -- rendering -------------------------------------------------------
    def _name(self, suffix: str) -> str:
        return f"{self.config.namespace}_{suffix}"

    def _labels(self, *extra: tuple) -> LabelPairs:
        return tuple(self.config.labels) + tuple(extra)

    def _exemplar(self) -> Optional[Exemplar]:
        """Confidence exemplar from the most recent window."""
        if not self.config.exemplars:
            return None
        last = self.last_window
        if last is None:
            return None
        return Exemplar(
            labels=(
                ("confidence", f"{last.confidence:.6f}"),
                ("lost_records", str(last.lost_records)),
            ),
            value=last.send.count,
            timestamp=last.window_end_ns / _NS_PER_S,
        )

    def families(self) -> List[MetricFamily]:
        """Build the family model for the current state."""
        ns = self._name
        agg = self.aggregate()
        last = self.last_window
        exemplar = self._exemplar()
        families: List[MetricFamily] = []

        windows = MetricFamily(
            ns("windows"), "counter", "Observation windows exported.")
        windows.add(len(self.windows), self._labels())
        families.append(windows)

        scrapes = MetricFamily(
            ns("scrapes"), "counter", "Scrapes rendered by this exporter.")
        scrapes.add(self.render_count, self._labels())
        families.append(scrapes)

        observed = MetricFamily(
            ns("observed_syscalls"), "counter",
            "Syscall events observed by the collection path.")
        deltas = MetricFamily(
            ns("deltas"), "counter",
            "Inter-syscall deltas accumulated (Eq. 1/2 population).")
        delta_sum = MetricFamily(
            ns("delta_sum_ns"), "counter",
            "Sum of inter-syscall deltas, integer nanoseconds.")
        delta_sumsq = MetricFamily(
            ns("delta_sumsq_ns2"), "counter",
            "Sum of squared inter-syscall deltas, integer ns^2.")
        lost = MetricFamily(
            ns("lost_records"), "counter",
            "Collection-path records dropped (degraded windows).")
        for family_name, stats, lost_count in (
            ("send", agg.send if agg else None,
             agg.send_lost if agg else 0),
            ("recv", agg.recv if agg else None,
             agg.recv_lost if agg else 0),
        ):
            labels = self._labels(("family", family_name))
            observed.add(stats.events if stats else 0, labels)
            deltas.add(
                stats.count if stats else 0, labels,
                exemplar=exemplar if family_name == "send" else None,
            )
            delta_sum.add(stats.sum if stats else 0, labels)
            delta_sumsq.add(stats.sumsq if stats else 0, labels)
            lost.add(lost_count, labels)
        families.extend([observed, deltas, delta_sum, delta_sumsq, lost])

        hist = MetricFamily(
            ns("delta_ns"), "histogram",
            "Inter-syscall delta distribution, log2 buckets (in-probe).")
        for family_name, stats, histogram in (
            ("send", agg.send if agg else None, agg.send_hist if agg else None),
            ("recv", agg.recv if agg else None, agg.recv_hist if agg else None),
        ):
            if histogram is None:
                continue
            labels = self._labels(("family", family_name))
            cumulative = histogram.cumulative()
            for bucket in range(NBUCKETS):
                hist.add(
                    cumulative[bucket],
                    labels + (("le", str(bucket_upper_bound(bucket))),),
                    suffix="_bucket",
                )
            hist.add(
                histogram.total, labels + (("le", "+Inf"),),
                suffix="_bucket",
                exemplar=exemplar if family_name == "send" else None,
            )
            hist.add(stats.sum if stats else 0, labels, suffix="_sum")
            hist.add(histogram.total, labels, suffix="_count")
        if hist.samples:
            families.append(hist)

        poll = MetricFamily(
            ns("poll_duration_ns"), "summary",
            "Poll-family syscall durations, integer nanoseconds.")
        poll.add(agg.poll.count if agg else 0, self._labels(), suffix="_count")
        poll.add(agg.poll.sum if agg else 0, self._labels(), suffix="_sum")
        families.append(poll)

        rps = MetricFamily(
            ns("rps_obsv"), "gauge",
            "Eq. 1 observed request rate over all exported windows.")
        corrected = MetricFamily(
            ns("rps_obsv_corrected"), "gauge",
            "Eq. 1 rate re-credited for known lost records.")
        variance = MetricFamily(
            ns("delta_variance_ns2"), "gauge",
            "Eq. 2 integer delta variance over all exported windows.")
        confidence = MetricFamily(
            ns("confidence"), "gauge",
            "Fraction of events that reached the statistics (1.0 = clean).")
        last_rps = MetricFamily(
            ns("last_window_rps"), "gauge",
            "Eq. 1 rate of the most recent window alone.")
        for family_name, rate, var, conf, last_rate in (
            ("send",
             agg.rps_obsv if agg else 0.0,
             agg.send_delta_variance if agg else 0,
             agg.confidence if agg else 1.0,
             last.rps_obsv if last else 0.0),
            ("recv",
             agg.rps_obsv_recv if agg else 0.0,
             agg.recv_delta_variance if agg else 0,
             agg.recv_confidence if agg else 1.0,
             last.rps_obsv_recv if last else 0.0),
        ):
            labels = self._labels(("family", family_name))
            rps.add(rate, labels)
            variance.add(var, labels)
            confidence.add(conf, labels)
            last_rps.add(last_rate, labels)
        corrected.add(
            agg.rps_obsv_corrected if agg else 0.0,
            self._labels(("family", "send")))
        families.extend([rps, corrected, variance, confidence, last_rps])
        return families

    def render(self, openmetrics: bool = False) -> str:
        """Render one scrape body (counts toward the exporter's own cost)."""
        text = render_exposition(self.families(), openmetrics=openmetrics)
        self.render_count += 1
        self.bytes_rendered += len(text)
        return text

    def scrape(self, openmetrics: bool = False) -> str:
        """Alias of :meth:`render` — the name HTTP handlers use."""
        return self.render(openmetrics=openmetrics)
