"""Tests for the ``python -m repro`` CLI."""

import json

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "data-caching" in out
    assert "triton-grpc" in out
    assert "62000" in out


def test_run(capsys):
    assert main(["run", "silo", "--load", "0.5", "--requests", "300",
                 "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "RPS_obsv" in out
    assert "QoS ok" in out


def test_run_explicit_rps(capsys):
    assert main(["run", "silo", "--rps", "700", "--requests", "200",
                 "--no-cache"]) == 0
    assert "700" in capsys.readouterr().out


def test_run_vm_monitor(capsys):
    assert main(["run", "silo", "--load", "0.4", "--requests", "150",
                 "--monitor", "vm", "--no-cache"]) == 0
    assert "var(dt_send)" in capsys.readouterr().out


def test_run_json(capsys):
    assert main(["run", "silo", "--rps", "600", "--requests", "150",
                 "--no-cache", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["workload"] == "silo"
    assert payload["offered_rps"] == 600.0
    assert payload["completed"] == 150


def test_run_cache_round_trip(tmp_path, capsys):
    args = ["run", "silo", "--rps", "600", "--requests", "150",
            "--cache-dir", str(tmp_path), "--json"]
    assert main(args) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(args) == 0
    second = json.loads(capsys.readouterr().out)
    assert first == second
    assert list(tmp_path.glob("*.json"))  # entry actually written


def test_run_stream_json_reports_degraded_accounting(capsys):
    """CLI JSON, LevelResult and the exporter must agree on lost-record
    accounting: the stream-mode dump carries the same fields the exporter
    renders."""
    assert main(["run", "silo", "--rps", "600", "--requests", "150",
                 "--monitor", "stream", "--stream-capacity", "4",
                 "--no-cache", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["lost_records"] > 0
    assert 0.0 < payload["confidence"] < 1.0
    assert payload["rps_obsv_corrected"] >= payload["rps_obsv"]


def test_run_stream_text_prints_lost_records(capsys):
    assert main(["run", "silo", "--rps", "600", "--requests", "150",
                 "--monitor", "stream", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "lost records" in out
    assert "confidence" in out


def test_run_export_window_emits_payload(capsys):
    assert main(["run", "silo", "--rps", "600", "--requests", "200",
                 "--export-window-ms", "20", "--monitor", "vm",
                 "--no-cache", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    export = payload["export"]
    assert export["windows"] >= 2
    assert export["window_ns"] == 20_000_000
    assert len(export["window_rps"]) == export["windows"]
    assert len(export["window_lost"]) == export["windows"]
    assert len(export["window_confidence"]) == export["windows"]
    assert export["text"].startswith("# HELP")
    assert export["openmetrics"].rstrip("\n").endswith("# EOF")
    # Exporter and LevelResult agree on the degraded accounting.
    assert sum(export["window_lost"]) == payload["lost_records"]


def test_run_export_cache_round_trip(tmp_path, capsys):
    args = ["run", "silo", "--rps", "600", "--requests", "150",
            "--export-window-ms", "25", "--cache-dir", str(tmp_path),
            "--json"]
    assert main(args) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(args) == 0
    second = json.loads(capsys.readouterr().out)
    assert first == second
    assert first["export"]["windows"] >= 2


def test_serve_oneshot_prints_parseable_exposition(capsys):
    from repro.export.parser import parse_text

    assert main(["serve", "silo", "--rps", "600", "--requests", "150",
                 "--window-ms", "20", "--oneshot"]) == 0
    families = parse_text(capsys.readouterr().out)
    assert "repro_deltas" in families
    assert "repro_delta_ns" in families


def test_serve_oneshot_openmetrics(capsys):
    assert main(["serve", "silo", "--rps", "600", "--requests", "150",
                 "--window-ms", "20", "--oneshot", "--openmetrics"]) == 0
    assert capsys.readouterr().out.rstrip("\n").endswith("# EOF")


def test_serve_scrape_once_round_trips_over_http(capsys):
    assert main(["serve", "silo", "--rps", "600", "--requests", "150",
                 "--window-ms", "20", "--scrape-once"]) == 0
    out = capsys.readouterr().out
    assert "scraped" in out
    assert "families" in out
    assert "windows exported" in out


def test_sweep(capsys):
    assert main(["sweep", "silo", "--levels", "4", "--requests", "200",
                 "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "dispersion" in out
    assert "QoS failure at offered" in out or "never violated" in out
    assert "executor:" in out  # telemetry summary line


def test_sweep_jobs_matches_serial(tmp_path, capsys):
    base = ["sweep", "silo", "--levels", "3", "--requests", "150", "--json"]
    assert main(base + ["--no-cache"]) == 0
    serial = json.loads(capsys.readouterr().out)
    assert main(base + ["--jobs", "2", "--cache-dir", str(tmp_path)]) == 0
    parallel = json.loads(capsys.readouterr().out)
    assert serial["levels"] == parallel["levels"]
    assert parallel["telemetry"]["computed"] == 3
    # warm re-run: every cell served from cache
    assert main(base + ["--jobs", "2", "--cache-dir", str(tmp_path)]) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["levels"] == serial["levels"]
    assert warm["telemetry"]["cache_hits"] == 3
    assert warm["telemetry"]["computed"] == 0


def test_jobs_must_be_positive(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "silo", "--jobs", "0"])
    assert "must be >= 1" in capsys.readouterr().err


def test_sweep_save_then_report(tmp_path, capsys, monkeypatch):
    import repro.analysis.results as results_module

    monkeypatch.setattr(
        results_module, "results_dir", lambda base=None: tmp_path
    )
    assert main(["sweep", "silo", "--levels", "3", "--requests", "150",
                 "--no-cache", "--save", "smoke_sweep"]) == 0
    capsys.readouterr()
    assert (tmp_path / "smoke_sweep.json").exists()
    assert main(["report", "--results", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Sweep `smoke_sweep` — silo" in out
    assert "computed in" in out  # telemetry rendered


def test_report_empty(tmp_path, capsys):
    directory = tmp_path / "results"
    directory.mkdir()
    assert main(["report", "--results", str(directory)]) == 0
    assert "No renderable results" in capsys.readouterr().out


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nginx"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
