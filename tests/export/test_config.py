"""The unified CollectorConfig/ExportConfig contract and its migration
path: validation, serialization, and the removed legacy keywords (which
served their one-release deprecation cycle and now raise TypeError)."""

import pytest

from repro.core import (
    CollectorConfig,
    DeltaCollector,
    DurationCollector,
    ExportConfig,
    RequestMetricsMonitor,
    StreamingDeltaCollector,
)
from repro.core.config import resolve_collector_config
from repro.kernel import Kernel, MachineSpec, Sys
from repro.sim import MSEC, Environment, SeedSequence


def _kernel():
    spec = MachineSpec(name="t", cores=4, ctx_switch_ns=0, syscall_overhead_ns=0)
    return Kernel(Environment(), spec, SeedSequence(1), interference=False)


class TestExportConfig:
    def test_defaults(self):
        config = ExportConfig()
        assert config.window_ns == 100 * MSEC
        assert config.namespace == "repro"
        assert config.exemplars
        assert config.labels == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            ExportConfig(window_ns=0)
        with pytest.raises(ValueError):
            ExportConfig(namespace="9bad")
        with pytest.raises(ValueError):
            ExportConfig(labels=(("9bad", "v"),))
        with pytest.raises(ValueError):
            ExportConfig(labels=(("__reserved", "v"),))

    def test_round_trip(self):
        config = ExportConfig(window_ns=5 * MSEC, namespace="x",
                              exemplars=False, labels=(("host", "a"),))
        assert ExportConfig.from_dict(config.to_dict()) == config

    def test_replace(self):
        assert ExportConfig().replace(window_ns=7).window_ns == 7


class TestCollectorConfig:
    def test_defaults(self):
        config = CollectorConfig()
        assert config.mode == "native"
        assert config.vm_tier is None
        assert config.cpus == 1
        assert config.capacity == 65536
        assert not config.charge_cost
        assert config.export is None

    def test_validation(self):
        with pytest.raises(ValueError):
            CollectorConfig(mode="jit")
        with pytest.raises(ValueError):
            CollectorConfig(vm_tier="bogus")
        with pytest.raises(ValueError):
            CollectorConfig(cpus=0)
        with pytest.raises(ValueError):
            CollectorConfig(capacity=0)

    def test_export_mapping_coerced(self):
        config = CollectorConfig(export={"window_ns": 5 * MSEC})
        assert isinstance(config.export, ExportConfig)
        assert config.export.window_ns == 5 * MSEC

    def test_round_trip(self):
        config = CollectorConfig(mode="stream", vm_tier="fast", cpus=2,
                                 capacity=128, charge_cost=True,
                                 export=ExportConfig(window_ns=5 * MSEC))
        assert CollectorConfig.from_dict(config.to_dict()) == config


class TestResolve:
    def test_none_gives_defaults(self):
        assert resolve_collector_config(None, "X") == CollectorConfig()

    def test_mode_string_shorthand(self):
        assert resolve_collector_config("vm", "X").mode == "vm"

    def test_config_passed_through(self):
        config = CollectorConfig(mode="stream", capacity=8)
        assert resolve_collector_config(config, "X") is config

    def test_config_plus_legacy_is_type_error(self):
        with pytest.raises(TypeError, match="removed"):
            resolve_collector_config(CollectorConfig(), "X", mode="vm")

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="CollectorConfig"):
            resolve_collector_config(42, "X")

    def test_legacy_keywords_raise_with_migration_hint(self):
        with pytest.raises(TypeError, match=r"X: .*removed.*CollectorConfig\(cpus=\.\.\., mode=\.\.\.\)"):
            resolve_collector_config(None, "X", mode="vm", cpus=2)

    def test_capacity_aliases_named_in_hint(self):
        with pytest.raises(TypeError, match=r"CollectorConfig\(capacity=\.\.\.\)"):
            resolve_collector_config(None, "X", per_cpu_capacity=7)
        with pytest.raises(TypeError, match=r"CollectorConfig\(capacity=\.\.\.\)"):
            resolve_collector_config(None, "X", stream_capacity=7)


class TestRemovedConstructorKeywords:
    """The legacy per-knob keywords stayed in the constructor signatures
    after their deprecation cycle so that supplying one raises the
    targeted migration TypeError, not a bare unexpected-keyword error."""

    def test_delta_collector(self):
        with pytest.raises(TypeError, match="DeltaCollector.*removed"):
            DeltaCollector(_kernel(), 1, [Sys.SENDMSG], mode="vm")
        modern = DeltaCollector(_kernel(), 1, [Sys.SENDMSG], "vm")
        assert modern.config.mode == "vm"

    def test_duration_collector(self):
        with pytest.raises(TypeError, match="DurationCollector.*removed"):
            DurationCollector(_kernel(), 1, [Sys.EPOLL_WAIT], charge_cost=True)
        modern = DurationCollector(
            _kernel(), 1, [Sys.EPOLL_WAIT],
            CollectorConfig(charge_cost=True))
        assert modern.config.charge_cost

    def test_streaming_collector(self):
        with pytest.raises(TypeError,
                           match="StreamingDeltaCollector.*removed"):
            StreamingDeltaCollector(
                _kernel(), 1, [Sys.SENDMSG], per_cpu_capacity=4)
        modern = StreamingDeltaCollector(
            _kernel(), 1, [Sys.SENDMSG], CollectorConfig(capacity=4))
        assert modern.config.capacity == 4
        assert modern.config.mode == "stream"

    def test_monitor(self):
        with pytest.raises(TypeError, match="RequestMetricsMonitor.*removed"):
            RequestMetricsMonitor(_kernel(), 1, mode="stream",
                                  stream_capacity=4)
        modern = RequestMetricsMonitor(
            _kernel(), 1, config=CollectorConfig(mode="stream", capacity=4))
        assert modern.config.mode == "stream"
        assert modern.config.capacity == 4

    def test_config_plus_legacy_rejected(self):
        with pytest.raises(TypeError, match="removed"):
            DeltaCollector(_kernel(), 1, [Sys.SENDMSG],
                           CollectorConfig(), mode="vm")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode|mode must be"):
            DeltaCollector(_kernel(), 1, [Sys.SENDMSG], "stream")
        with pytest.raises(ValueError):
            StreamingDeltaCollector(_kernel(), 1, [Sys.SENDMSG],
                                    CollectorConfig(mode="vm"))
