"""ABL-WIN — §IV-B's windowing guidance: "at least 2048 syscalls".

At a fixed load, slice the send-timestamp trace into windows of growing
size and measure the relative spread of per-window RPS_obsv estimates.
The paper's 2048-event guidance should land where estimates stabilize.
"""

from __future__ import annotations

from conftest import emit, scaled

from repro.analysis import save_record, series_table
from repro.analysis.executor.pool import _SendTimestampProbe
from repro.core import DeltaStats, chunk_by_count
from repro.kernel import Kernel
from repro.kernel.machine import AMD_EPYC_7302
from repro.loadgen import OpenLoopClient
from repro.sim import Environment, SeedSequence
from repro.workloads import get_workload

WINDOW_SIZES = (64, 128, 256, 512, 1024, 2048)


def _collect_send_trace(key: str, total_events: int) -> list:
    definition = get_workload(key)
    config = definition.config
    env = Environment()
    kernel = Kernel(env, AMD_EPYC_7302.with_cores(config.cores), SeedSequence(7))
    app = definition.build(kernel)
    probe = _SendTimestampProbe(kernel, app.tgid, (config.syscalls.send_nr,)).attach()
    client = OpenLoopClient(
        env, app.client_sockets, kernel.seeds.stream("ablwin"),
        rate_rps=definition.paper_fail_rps * 0.6,
        total_requests=total_events,
        arrival="uniform",
    )
    client.start()
    env.run(until=client.done)
    return probe.timestamps


def spread_of(timestamps, events_per_window) -> float:
    estimates = []
    for window in chunk_by_count(timestamps, events_per_window):
        estimates.append(DeltaStats.from_timestamps(window).rps_obsv())
    if len(estimates) < 2:
        return 0.0
    mean = sum(estimates) / len(estimates)
    var = sum((e - mean) ** 2 for e in estimates) / len(estimates)
    return (var ** 0.5) / mean


def run_ablation() -> list:
    rows = []
    for key in ("data-caching", "xapian"):
        trace = _collect_send_trace(key, scaled(16_384, minimum=4_096))
        usable = [w for w in WINDOW_SIZES if len(trace) // w >= 2]
        rows.append({
            "workload": key,
            "events": len(trace),
            "window_sizes": usable,
            "spread": [spread_of(trace, w) for w in usable],
        })
    return rows


def test_window_size_ablation(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_record({"ablation": "window", "rows": rows}, "abl_window")

    emit("ABL-WIN — RPS_obsv estimate spread vs observation-window size")
    for row in rows:
        emit(f"\n[{row['workload']}]  ({row['events']} send events)")
        emit(series_table({
            "window events": row["window_sizes"],
            "rel. spread": row["spread"],
        }))

    for row in rows:
        spreads = row["spread"]
        # Larger windows are uniformly more stable...
        assert spreads[-1] < spreads[0], row["workload"]
        # ...and paper-sized windows are comfortably stable (<5% spread).
        assert spreads[-1] < 0.05, row["workload"]
