"""Fleet-scale sweep benchmark: disk code cache + streaming sharded executor.

Measures the two resources the fleet-scale executor work targets and
asserts both stayed won:

* **Translation amortization** — a 1000-cell sweep is run twice against
  the same on-disk compiled-program cache.  The cold fleet translates
  and writes; the warm fleet (fresh worker processes, same directory)
  must serve >= 99% of its compiled-tier lookups from disk and translate
  **nothing**.  Wall-clock for both runs is recorded; the gated quantity
  is the translation counters, which are deterministic where wall time
  on a loaded CI box is not.

* **Parent-memory flatness** — results stream to a JSONL spill instead
  of accumulating in the parent.  The benchmark runs a 50-cell batch
  first, snapshots the parent's ``ru_maxrss`` watermark, then runs the
  1000-cell fleet twice; the final watermark must stay within 1.3x of
  the 50-cell watermark.  (``ru_maxrss`` is monotone, so ordering the
  small batch first is what makes the ratio meaningful.)  Parent heap
  peaks via ``tracemalloc`` are recorded alongside for diagnosis.

A shard identity check rides along: ``--shard 1/2`` union ``--shard
2/2`` of the base grid must be bit-identical to the unsharded run.

``--smoke`` shrinks the grid for CI and writes
``results/bench_sweep_smoke.json``; the full run writes the committed
baseline ``BENCH_sweep.json`` at the repo root.  Exit code is non-zero
when any gate fails, so CI can run this directly.
"""

import argparse
import json
import resource
import shutil
import sys
import time
import tracemalloc
from pathlib import Path

from repro import __version__
from repro.analysis import ExperimentSpec, run_cells

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Cheap workloads so the benchmark times the executor, not the apps.
WORKLOADS = ("silo", "xapian")

HIT_RATE_FLOOR = 0.99
RSS_CEILING = 1.3


def _grid(cells: int, requests: int):
    """``cells`` distinct specs: WORKLOADS x distinct offered-RPS levels.

    ``monitor_mode="vm"`` so every cell actually loads, translates, and
    runs eBPF programs — the native monitor would never touch the
    translation path this benchmark exists to measure.
    """
    levels = [600.0 + 4.0 * i for i in range(cells // len(WORKLOADS))]
    return ExperimentSpec.grid(WORKLOADS, levels, requests=requests,
                               monitor_mode="vm")


def _dicts(results):
    return [r.to_dict() if r is not None else None for r in results]


def _rss_kb() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _run(specs, *, jobs, work_dir, tag, code_cache, spill=True):
    spill_path = work_dir / f"spill-{tag}.jsonl" if spill else None
    t0 = time.perf_counter()
    sink, stats = run_cells(specs, jobs=jobs, spill=spill_path,
                            code_cache=code_cache)
    wall = time.perf_counter() - t0
    return sink, stats, wall


def _hit_rate(translation: dict) -> float:
    """Disk hit rate over cacheable (compiled-tier) lookups only."""
    looked_up = translation["disk_hits"] + translation["disk_misses"]
    return translation["disk_hits"] / looked_up if looked_up else 0.0


def _shard_identity(specs, baseline, *, jobs, work_dir) -> dict:
    union = [None] * len(specs)
    for i in (1, 2):
        sink, _, _ = _run(specs, jobs=jobs, work_dir=work_dir,
                          tag=f"shard{i}", code_cache=False)
        for pos, result in sink.iter_results():
            union[pos] = result
    return {"cells": len(specs), "identical": _dicts(union) == baseline}


def run_benchmark(cells: int, base_cells: int, requests: int, jobs: int,
                  smoke: bool) -> dict:
    work_dir = REPO_ROOT / "results" / ".bench-sweep"
    shutil.rmtree(work_dir, ignore_errors=True)
    work_dir.mkdir(parents=True)
    code_dir = work_dir / "codecache"

    try:
        tracemalloc.start()

        # Phase 1 — the small batch, FIRST (ru_maxrss is monotone).
        print(f"base:  {base_cells} cells x {requests} requests "
              f"(jobs={jobs}, spill on)")
        base_specs = _grid(base_cells, requests)
        base_sink, base_stats, base_wall = _run(
            base_specs, jobs=jobs, work_dir=work_dir, tag="base",
            code_cache=False)
        base_rss_kb = _rss_kb()
        base_heap_kb = tracemalloc.get_traced_memory()[1] // 1024
        tracemalloc.reset_peak()
        baseline = _dicts(base_sink.materialize())

        # Phase 2 — cold fleet: empty disk cache, everything translates.
        specs = _grid(cells, requests)
        print(f"cold:  {len(specs)} cells, fresh code cache at {code_dir}")
        _, cold_stats, cold_wall = _run(specs, jobs=jobs, work_dir=work_dir,
                                        tag="cold", code_cache=code_dir)

        # Phase 3 — warm fleet: fresh worker processes, same directory.
        print("warm:  same grid, second fleet against the populated cache")
        _, warm_stats, warm_wall = _run(specs, jobs=jobs, work_dir=work_dir,
                                        tag="warm", code_cache=code_dir)
        full_rss_kb = _rss_kb()
        full_heap_kb = tracemalloc.get_traced_memory()[1] // 1024
        tracemalloc.stop()

        # Phase 4 — shard identity on the base grid.
        print("shard: 1/2 union 2/2 vs the unsharded base run")
        shard = _shard_identity(base_specs, baseline, jobs=jobs,
                                work_dir=work_dir)
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)

    return {
        "benchmark": "bench_sweep_scale",
        "version": __version__,
        "smoke": smoke,
        "cells": cells,
        "base_cells": base_cells,
        "requests": requests,
        "jobs": jobs,
        "base": {"wall_s": round(base_wall, 3),
                 "spilled": base_stats.spilled},
        "cold": {"wall_s": round(cold_wall, 3),
                 "spilled": cold_stats.spilled,
                 "translation": cold_stats.translation},
        "warm": {"wall_s": round(warm_wall, 3),
                 "spilled": warm_stats.spilled,
                 "translation": warm_stats.translation,
                 "disk_hit_rate": round(_hit_rate(warm_stats.translation), 4)},
        "shard": shard,
        "rss": {"base_kb": base_rss_kb, "full_kb": full_rss_kb,
                "ratio": round(full_rss_kb / base_rss_kb, 4)},
        "heap": {"base_peak_kb": base_heap_kb, "full_peak_kb": full_heap_kb},
        "limits": {"hit_rate_floor": HIT_RATE_FLOOR,
                   "rss_ceiling": RSS_CEILING},
    }


def gate(record: dict, println=print) -> int:
    """Judge the record against its gates; returns the failure count."""
    failures = 0
    warm = record["warm"]

    hit_rate = warm["disk_hit_rate"]
    verdict = "FAIL" if hit_rate < HIT_RATE_FLOOR else "ok"
    println(f"{verdict:>4} warm disk hit rate {hit_rate:.2%} "
            f"(floor {HIT_RATE_FLOOR:.0%})")
    failures += hit_rate < HIT_RATE_FLOOR

    translations = warm["translation"]["translations"]
    verdict = "FAIL" if translations else "ok"
    println(f"{verdict:>4} warm fleet translations: {translations} "
            "(must be 0 — every program served from disk)")
    failures += translations != 0

    cold_ns = record["cold"]["translation"]["translate_ns"]
    warm_ns = warm["translation"]["translate_ns"]
    verdict = "FAIL" if warm_ns > cold_ns else "ok"
    println(f"{verdict:>4} translate time amortized: "
            f"{warm_ns}ns warm vs {cold_ns}ns cold")
    failures += warm_ns > cold_ns

    ratio = record["rss"]["ratio"]
    verdict = "FAIL" if ratio > RSS_CEILING else "ok"
    println(f"{verdict:>4} peak RSS {record['rss']['full_kb']}KB after "
            f"{record['cells']}-cell fleet = {ratio:.3f}x the "
            f"{record['base_cells']}-cell watermark "
            f"(ceiling {RSS_CEILING}x)")
    failures += ratio > RSS_CEILING

    identical = record["shard"]["identical"]
    verdict = "ok" if identical else "FAIL"
    println(f"{verdict:>4} shard 1/2 union 2/2 bit-identical to unsharded "
            f"({record['shard']['cells']} cells)")
    failures += not identical

    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small grid for CI; writes results/bench_sweep_smoke.json")
    parser.add_argument("--cells", type=int, default=None,
                        help="fleet size (default 1000, smoke 120)")
    parser.add_argument("--base-cells", type=int, default=None,
                        help="RSS-watermark batch size (default 50, smoke 20)")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per cell (default 60, smoke 30)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes (default 2)")
    args = parser.parse_args(argv)

    cells = args.cells or (120 if args.smoke else 1000)
    base_cells = args.base_cells or (20 if args.smoke else 50)
    requests = args.requests or (30 if args.smoke else 60)

    record = run_benchmark(cells, base_cells, requests, args.jobs, args.smoke)

    if args.smoke:
        out = REPO_ROOT / "results" / "bench_sweep_smoke.json"
        out.parent.mkdir(exist_ok=True)
    else:
        out = REPO_ROOT / "BENCH_sweep.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")

    failures = gate(record)
    if failures:
        print(f"{failures} sweep-scale gate(s) failed", file=sys.stderr)
        return 1
    print("sweep-scale gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
