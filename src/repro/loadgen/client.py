"""The open-loop client: tagged requests over a persistent connection pool.

The client is intentionally *not* a kernel task: the paper filters tracing
to the server's tgid, so client syscalls never enter the analysis, and
keeping the client out of the simulated scheduler halves the event count.
Its observable behaviour — request arrival times on the server's sockets
and response latencies — is identical.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..kernel.sockets import SocketEndpoint
from ..net.packet import Message
from ..sim.engine import Environment
from ..sim.rng import Stream
from ..sim.timebase import SEC
from .arrivals import poisson_interarrivals, uniform_interarrivals
from .latency import LatencyTracker

__all__ = ["OpenLoopClient", "ClientReport"]


@dataclass
class ClientReport:
    """What the benchmark harness reports for one run (the ground truth)."""

    offered: int
    completed: int
    duration_ns: int
    latency: LatencyTracker
    qos_latency_ns: Optional[int] = None
    #: Steady-state measurement (trimmed at the last offered arrival, so the
    #: post-arrival drain of retransmission stragglers is excluded).
    steady_completions: int = 0
    steady_span_ns: int = 0
    #: Application-level retransmissions issued by the retry watchdog.
    retried: int = 0
    #: Requests given up on after exhausting retries (fault runs only).
    abandoned: int = 0
    #: Requests refused at the socket layer by an admission gate
    #: (closed-loop shedding runs only).  Rejected requests count toward
    #: run completion but contribute no latency sample.
    rejected: int = 0

    @property
    def achieved_rps(self) -> float:
        """RPS_real: steady-state completions per second.

        Falls back to the full span when the steady window is degenerate.
        """
        if self.steady_span_ns > 0 and self.steady_completions >= 50:
            return self.steady_completions * SEC / self.steady_span_ns
        if self.duration_ns <= 0:
            return 0.0
        return self.completed * SEC / self.duration_ns

    @property
    def p99_ns(self) -> float:
        return self.latency.p99_ns()

    @property
    def qos_violated(self) -> bool:
        if self.qos_latency_ns is None:
            return False
        return self.latency.p99_ns() > self.qos_latency_ns


class OpenLoopClient:
    """Drives tagged requests at a fixed offered rate over a socket pool."""

    def __init__(
        self,
        env: Environment,
        sockets: Sequence[SocketEndpoint],
        stream: Stream,
        rate_rps: float,
        total_requests: int,
        request_size: int = 64,
        qos_latency_ns: Optional[int] = None,
        arrival: str = "poisson",
        arrival_spread: float = 0.1,
        phases: Optional[Sequence] = None,
        retry_timeout_ns: Optional[int] = None,
        max_retries: int = 3,
    ) -> None:
        """``phases`` (optional): a sequence of ``(rate_rps, n_requests)``
        tuples for ramp experiments; overrides ``rate_rps``/``total_requests``.

        ``retry_timeout_ns`` (optional) arms an application-level retry
        watchdog: a request unanswered for that long is re-sent on its
        original connection (latency keeps counting from the *original*
        send, like a real timeout-and-retry client library), and abandoned
        after ``max_retries`` re-sends so ``done`` still fires when a fault
        swallows requests outright (worker crash, connection reset)."""
        if phases is not None:
            phases = [(float(rate), int(count)) for rate, count in phases]
            if not phases or any(r <= 0 or c < 1 for r, c in phases):
                raise ValueError("phases must be non-empty (rate>0, count>=1) pairs")
            total_requests = sum(count for _rate, count in phases)
            rate_rps = phases[0][0]
        self.phases = phases
        if not sockets:
            raise ValueError("client needs at least one connection")
        if total_requests < 1:
            raise ValueError("need at least one request")
        if arrival not in ("poisson", "uniform"):
            raise ValueError(f"unknown arrival process {arrival!r}")
        self.env = env
        self.sockets = list(sockets)
        self.stream = stream
        self.rate_rps = rate_rps
        self.total_requests = total_requests
        self.request_size = request_size
        self.qos_latency_ns = qos_latency_ns
        self.arrival = arrival
        self.arrival_spread = arrival_spread
        if retry_timeout_ns is not None and retry_timeout_ns <= 0:
            raise ValueError("retry_timeout_ns must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.retry_timeout_ns = retry_timeout_ns
        self.max_retries = max_retries

        self.latency = LatencyTracker()
        self.offered = 0
        self.completed = 0
        #: Time the final request was offered (steady-state trim boundary).
        self.last_offered_ns: Optional[int] = None
        #: Completion timestamps (for steady-state trimming at report time).
        self._completion_times: List[int] = []
        self._send_times: Dict[int, int] = {}
        #: Last (re)transmission time per outstanding tag (watchdog state;
        #: kept separate so latency always measures from the original send).
        self._last_attempt: Dict[int, int] = {}
        self._retries_of: Dict[int, int] = {}
        self.retried = 0
        self.abandoned = 0
        self.rejected = 0
        self._tags = itertools.count(1)
        #: Timestamped request-outcome events for cross-layer correlation:
        #: ``(t_ns, kind, value)`` with kind in {"offer", "complete",
        #: "retry", "abandon", "reject"} and value = latency_ns for
        #: completions, the request tag otherwise.  ``None`` (off) unless
        #: :meth:`enable_outcome_log` was called — the clean hot path pays
        #: only a ``None`` check per event.
        self.outcome_log: Optional[List[tuple]] = None
        self._first_completion: Optional[int] = None
        self._last_completion: Optional[int] = None
        #: Fires when every offered request has been answered.
        self.done = env.event()
        #: The watchdog's pending sleep, canceled when ``done`` fires so a
        #: finished run does not keep a dead timer in the event queue.
        self._watchdog_sleep = None
        self._started = False

    # -- lifecycle ---------------------------------------------------------
    def enable_outcome_log(self) -> List[tuple]:
        """Turn on the timestamped outcome log (idempotent); returns it.

        Must be called before :meth:`start` so the log covers every event.
        """
        if self._started:
            raise RuntimeError("enable_outcome_log must precede start()")
        if self.outcome_log is None:
            self.outcome_log = []
        return self.outcome_log

    def start(self) -> None:
        """Spawn the generator and one reader per connection."""
        if self._started:
            raise RuntimeError("client already started")
        self._started = True
        self.env.process(self._generator(), name="client:gen")
        for index, sock in enumerate(self.sockets):
            self.env.process(self._reader(sock), name=f"client:rd{index}")
        if self.retry_timeout_ns is not None:
            self.env.process(self._watchdog(), name="client:watchdog")

    # -- processes ---------------------------------------------------------
    def _gaps_for(self, rate_rps: float):
        if self.arrival == "poisson":
            return poisson_interarrivals(self.stream, rate_rps)
        # Fixed-rate issue with mild jitter: how TailBench's harness and
        # Triton's perf_analyzer actually pace requests.
        return uniform_interarrivals(self.stream, rate_rps, self.arrival_spread)

    def _generator(self):
        phases = self.phases or [(self.rate_rps, self.total_requests)]
        index = 0
        for rate, count in phases:
            gaps = self._gaps_for(rate)
            for _ in range(count):
                yield self.env.timeout(next(gaps))
                tag = next(self._tags)
                self._send_times[tag] = self.env.now
                self._last_attempt[tag] = self.env.now
                self.offered += 1
                self.last_offered_ns = self.env.now
                if self.outcome_log is not None:
                    self.outcome_log.append((self.env.now, "offer", tag))
                sock = self.sockets[index % len(self.sockets)]
                index += 1
                sock.send(Message(payload="request", size=self.request_size, tag=tag))

    def _reader(self, sock: SocketEndpoint):
        while True:
            if not sock.readable:
                yield sock.wait_readable()
            response = sock.pop()
            sent_at = self._send_times.pop(response.tag, None)
            if sent_at is None:
                continue  # duplicate or unknown tag; ignore
            self._last_attempt.pop(response.tag, None)
            self._retries_of.pop(response.tag, None)
            now = self.env.now
            if response.payload == "rejected":
                # Shed at the socket layer: treat as a final refusal (no
                # retry, no latency sample) so the run still completes.
                self.rejected += 1
                if self.outcome_log is not None:
                    self.outcome_log.append((now, "reject", response.tag))
                self._maybe_finish()
                continue
            self.latency.record(now - sent_at)
            if self.outcome_log is not None:
                self.outcome_log.append((now, "complete", now - sent_at))
            self.completed += 1
            self._completion_times.append(now)
            if self._first_completion is None:
                self._first_completion = now
            self._last_completion = now
            self._maybe_finish()

    def _watchdog(self):
        """Re-send stale requests; abandon them after ``max_retries``."""
        timeout = self.retry_timeout_ns
        while not self.done.triggered:
            self._watchdog_sleep = self.env.timeout(timeout)
            yield self._watchdog_sleep
            self._watchdog_sleep = None
            if self.done.triggered:
                return
            now = self.env.now
            stale = [tag for tag, last in self._last_attempt.items()
                     if now - last >= timeout]
            for tag in stale:
                attempts = self._retries_of.get(tag, 0)
                if attempts >= self.max_retries:
                    # Give up: the request is lost to the fault.  Counting
                    # it lets ``done`` fire even when responses never come.
                    self._send_times.pop(tag, None)
                    self._last_attempt.pop(tag, None)
                    self._retries_of.pop(tag, None)
                    self.abandoned += 1
                    if self.outcome_log is not None:
                        self.outcome_log.append((now, "abandon", tag))
                    continue
                self._retries_of[tag] = attempts + 1
                self._last_attempt[tag] = now
                self.retried += 1
                if self.outcome_log is not None:
                    self.outcome_log.append((now, "retry", tag))
                sock = self.sockets[(tag - 1) % len(self.sockets)]
                sock.send(Message(payload="request", size=self.request_size,
                                  tag=tag))
            self._maybe_finish()

    def _maybe_finish(self) -> None:
        if (self.completed + self.abandoned + self.rejected >= self.total_requests
                and not self.done.triggered):
            self.done.succeed(self.report())
            sleep = self._watchdog_sleep
            if sleep is not None and sleep.callbacks is not None:
                # Lazy-cancel the watchdog's pending timer: the run is
                # over, so letting it fire would only pad the event queue.
                self.env.cancel(sleep)
                self._watchdog_sleep = None

    # -- results ---------------------------------------------------------
    def report(self) -> ClientReport:
        if self._first_completion is None or self._last_completion is None:
            duration = 0
        else:
            duration = self._last_completion - self._first_completion
        if self._first_completion is not None and self.last_offered_ns is not None:
            steady_span = max(0, self.last_offered_ns - self._first_completion)
            steady_completions = sum(
                1 for t in self._completion_times if t <= self.last_offered_ns
            )
        else:
            steady_span = 0
            steady_completions = 0
        return ClientReport(
            offered=self.offered,
            completed=self.completed,
            duration_ns=duration,
            latency=self.latency,
            qos_latency_ns=self.qos_latency_ns,
            steady_completions=steady_completions,
            steady_span_ns=steady_span,
            retried=self.retried,
            abandoned=self.abandoned,
            rejected=self.rejected,
        )
