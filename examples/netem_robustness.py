#!/usr/bin/env python3
"""Network impairments vs observability (Fig. 5 / Table II in miniature).

Injects the paper's tc-netem configurations on the client<->server path of
Triton/gRPC and shows the asymmetry that motivates server-side metrics:

* client-observed p99 latency inflates by hundreds of ms under 1 % loss
  (TCP's 200 ms minimum RTO on sparse flows, head-of-line blocking);
* the kernel-side signals — RPS_obsv and epoll_wait duration — barely move,
  because the server's syscall timing never sees retransmissions.

Run:  python examples/netem_robustness.py
"""

from repro import (
    AMD_EPYC_7302,
    Environment,
    Kernel,
    NetemConfig,
    OpenLoopClient,
    RequestMetricsMonitor,
    SeedSequence,
    get_workload,
)

RATE_FRACTION = 0.6
REQUESTS = 800


def run_under(netem: NetemConfig) -> dict:
    definition = get_workload("triton-grpc")
    config = definition.config
    env = Environment()
    seeds = SeedSequence(17)
    kernel = Kernel(env, AMD_EPYC_7302.with_cores(config.cores), seeds)
    app = definition.app_class(kernel, config, netem, netem).start()
    monitor = RequestMetricsMonitor(kernel, app.tgid, spec=config.syscalls).attach()
    client = OpenLoopClient(
        env, app.client_sockets, seeds.stream("client"),
        rate_rps=definition.paper_fail_rps * RATE_FRACTION,
        total_requests=REQUESTS, arrival="uniform",
    )
    client.start()
    report = env.run(until=client.done)
    snap = monitor.snapshot()
    return {
        "p99_ms": report.p99_ns / 1e6,
        "rps_obsv": snap.rps_obsv,
        "achieved": report.achieved_rps,
        "poll_ms": snap.poll_mean_duration_ns / 1e6,
    }


def main() -> None:
    configs = [
        ("clean loopback", NetemConfig.ideal()),
        ("10ms delay", NetemConfig(delay_ns=10_000_000)),
        ("1% loss", NetemConfig(loss=0.01)),
        ("10ms delay + 1% loss", NetemConfig.paper_impaired()),
    ]
    print(f"{'network config':<24} {'client p99 ms':>14} {'RPS_obsv':>10} "
          f"{'achieved':>10} {'poll ms':>9}")
    results = {}
    for label, netem in configs:
        row = run_under(netem)
        results[label] = row
        print(f"{label:<24} {row['p99_ms']:>14.1f} {row['rps_obsv']:>10.2f} "
              f"{row['achieved']:>10.2f} {row['poll_ms']:>9.1f}")

    clean = results["clean loopback"]
    lossy = results["10ms delay + 1% loss"]
    # Client-side tail is wrecked...
    assert lossy["p99_ms"] > clean["p99_ms"] + 100
    # ...while the kernel-side metrics barely notice.
    assert abs(lossy["rps_obsv"] - clean["rps_obsv"]) / clean["rps_obsv"] < 0.05
    assert abs(lossy["poll_ms"] - clean["poll_ms"]) / clean["poll_ms"] < 0.15
    print("\nOK — loss wrecked the client's tail latency but left the "
          "in-kernel observability signals intact (the paper's §V-A).")


if __name__ == "__main__":
    main()
