"""BENCH-EXPORT — cost and fidelity of the Prometheus export pipeline.

EXP-EXPORT's question: what does live export *cost*, and what does the
scrape interval buy?  The export window doubles as the scrape interval
(the monitor renders one scrape per closed window), so one knob sweeps the
whole trade: short windows give fine-grained rate curves but render often;
long windows amortize rendering but smear the signal.

The benchmark runs the headline cell (``data-caching/vm/clean`` at 4000
offered rps — the same cell the e2e benchmark gates) once without export
and once per window setting, measuring:

* **overhead_frac** — (export cpu - base cpu) / base cpu, min-of-reps
  process CPU time, the gated quantity;
* **fidelity** — mean relative deviation of the interior per-window rates
  from the whole-run ``rps_obsv`` (how noisy the per-scrape signal is at
  that interval);
* **bytes_rendered / windows** — the exposition volume actually produced.

Two hard gates:

* export on/off must be measurement-identical: every ``LevelResult`` field
  outside the ``export`` payload must match the no-export run exactly;
* at the default scrape interval (100 ms) the overhead must stay <= 10 %
  of the base cell runtime — full runs only; smoke runs assert identity.

Full runs write the committed baseline ``BENCH_export.json`` at the repo
root; ``--smoke`` runs land in ``results/bench_export_smoke.json`` for the
CI gate (``check_bench_regression.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis import ExperimentSpec, execute_cell
from repro.core.config import ExportConfig
from repro.sim.timebase import MSEC

REPO_ROOT = Path(__file__).resolve().parent.parent

HEADLINE_CELL = "data-caching/vm/clean"
OFFERED_RPS = 4000.0

#: Swept export windows / scrape intervals (sim milliseconds).
WINDOWS_MS = (5, 20, 100, 300)
#: The gated interval — ExportConfig's default.
DEFAULT_WINDOW_MS = 100
#: Overhead ceiling at the default interval (fraction of base runtime).
OVERHEAD_LIMIT = 0.10


def _spec(requests: int, window_ms=None) -> ExperimentSpec:
    export = None
    if window_ms is not None:
        export = ExportConfig(window_ns=int(window_ms * MSEC))
    return ExperimentSpec(workload="data-caching", offered_rps=OFFERED_RPS,
                          requests=requests, monitor_mode="vm", export=export)


def _timed_cell(spec: ExperimentSpec, reps: int):
    """Warm-up + oracle run, then min-of-reps process CPU time."""
    result = execute_cell(spec).to_dict()
    best = None
    for _ in range(reps):
        start = time.process_time()
        execute_cell(spec)
        elapsed = time.process_time() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def _fidelity(export: dict, rps_obsv: float) -> dict:
    """Per-window rate spread vs the whole-run Eq. 1 estimate."""
    interior = export["window_rps"][:-1]  # the tail window is partial
    if not interior or not rps_obsv:
        return {"windows_interior": len(interior), "mean_abs_rel_dev": None}
    mean_dev = sum(abs(w - rps_obsv) for w in interior) / len(interior)
    return {
        "windows_interior": len(interior),
        "mean_abs_rel_dev": round(mean_dev / rps_obsv, 4),
        "min_window_rps": round(min(interior), 1),
        "max_window_rps": round(max(interior), 1),
    }


def run_benchmark(requests: int, reps: int = 3, smoke: bool = False) -> dict:
    base_result, base_cpu = _timed_cell(_spec(requests), reps)
    base_fields = {k: v for k, v in base_result.items() if k != "export"}

    points = {}
    for window_ms in WINDOWS_MS:
        result, cpu = _timed_cell(_spec(requests, window_ms), reps)
        export = result["export"]
        fields = {k: v for k, v in result.items() if k != "export"}
        points[str(window_ms)] = {
            "window_ms": window_ms,
            "cpu_s": round(cpu, 4),
            "overhead_frac": round((cpu - base_cpu) / base_cpu, 4),
            "windows": export["windows"],
            "scrapes": export["scrapes"],
            "bytes_rendered": export["bytes_rendered"],
            "fidelity": _fidelity(export, result["rps_obsv"]),
            "identical_metrics": fields == base_fields,
        }

    default_point = points[str(DEFAULT_WINDOW_MS)]
    return {
        "benchmark": "bench_export_overhead",
        "smoke": smoke,
        "cell": HEADLINE_CELL,
        "offered_rps": OFFERED_RPS,
        "requests": requests,
        "reps": reps,
        "base_cpu_s": round(base_cpu, 4),
        "default_window_ms": DEFAULT_WINDOW_MS,
        "overhead_limit": OVERHEAD_LIMIT,
        "points": points,
        "headline": {
            "window_ms": DEFAULT_WINDOW_MS,
            "overhead_frac": default_point["overhead_frac"],
            "windows": default_point["windows"],
        },
        "all_identical": all(p["identical_metrics"] for p in points.values()),
    }


def write_baseline(data: dict) -> Path:
    """Smoke output to results/ (gate input), full runs to the committed
    repo-root baseline — same split as the e2e benchmark."""
    if data.get("smoke"):
        path = REPO_ROOT / "results" / "bench_export_smoke.json"
        path.parent.mkdir(exist_ok=True)
    else:
        path = REPO_ROOT / "BENCH_export.json"
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def _report(data: dict, println) -> None:
    println("BENCH-EXPORT — exporter overhead vs scrape interval "
            f"({data['cell']}, base {data['base_cpu_s']:.2f}s cpu)")
    for key in sorted(data["points"], key=int):
        point = data["points"][key]
        fidelity = point["fidelity"].get("mean_abs_rel_dev")
        fid = f"{fidelity:.3f}" if fidelity is not None else "  n/a"
        flag = "ok" if point["identical_metrics"] else "DIVERGED"
        println(
            f"  window {point['window_ms']:>4}ms  cpu {point['cpu_s']:6.2f}s "
            f"({point['overhead_frac']:+7.1%})  {point['windows']:>4} windows  "
            f"{point['bytes_rendered']:>8} B  rate-dev {fid}  [{flag}]"
        )
    headline = data["headline"]
    println(f"  headline: {headline['overhead_frac']:+.1%} at the default "
            f"{headline['window_ms']}ms interval "
            f"(limit {data['overhead_limit']:.0%})")


def test_export_overhead(benchmark):
    from conftest import bench_scale, emit, scaled

    from repro.analysis import save_record

    data = benchmark.pedantic(
        lambda: run_benchmark(scaled(4000, minimum=800),
                              reps=1 if bench_scale() < 1.0 else 3,
                              smoke=bench_scale() < 1.0),
        rounds=1, iterations=1)
    save_record(data, "bench_export_overhead")
    baseline = write_baseline(data)

    _report(data, emit)
    emit(f"  baseline written to {baseline}")

    assert data["all_identical"], "export pipeline perturbed the measurement"
    # Overhead is gated on full-size cells only: scaled-down runs close too
    # few default-interval windows for the ratio to mean anything.
    if bench_scale() >= 1.0:
        assert data["headline"]["overhead_frac"] <= OVERHEAD_LIMIT, (
            f"exporter costs {data['headline']['overhead_frac']:.1%} at the "
            f"default interval (limit {OVERHEAD_LIMIT:.0%})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny run; assert identity only, not overhead")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per cell (default: 800 smoke / 4000 full)")
    parser.add_argument("--reps", type=int, default=None,
                        help="timed repetitions (default: 1 smoke / 3 full)")
    args = parser.parse_args(argv)
    requests = args.requests or (800 if args.smoke else 4000)
    reps = args.reps or (1 if args.smoke else 3)

    data = run_benchmark(requests, reps=reps, smoke=args.smoke)
    baseline = write_baseline(data)
    _report(data, print)
    print(f"baseline written to {baseline}")

    if not data["all_identical"]:
        print("export pipeline perturbed the measurement", file=sys.stderr)
        return 1
    if not args.smoke and data["headline"]["overhead_frac"] > OVERHEAD_LIMIT:
        print(f"exporter overhead {data['headline']['overhead_frac']:.1%} "
              f"exceeds the {OVERHEAD_LIMIT:.0%} ceiling", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
