"""The typed experiment specification and result containers.

An :class:`ExperimentSpec` is the canonical description of one
(workload, offered-RPS, netem, machine) cell: a frozen, hashable value
object that can be serialized (``to_dict``/``from_dict``), compared, and
content-addressed (``cache_key``).  Everything the cell's simulation
consumes is a field here, which is what makes parallel execution and
on-disk caching sound: a cell is a pure function of its spec.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace as _dc_replace
from typing import List, Mapping, Optional, Sequence, Union

from ...core.config import (
    CollectorConfig,
    ControlConfig,
    CorrelateConfig,
    ExportConfig,
)
from ...kernel.machine import AMD_EPYC_7302, MACHINES, InterferenceSpec, MachineSpec
from ...net.netem import NetemConfig
from ...sim.rng import SeedSequence
from ...workloads.registry import WorkloadDefinition, get_workload

__all__ = ["DEFAULT_SEED", "ExperimentSpec", "LevelResult", "SweepResult"]

#: Stable default seed so figures are reproducible run to run.
DEFAULT_SEED = 1317

#: Monitor implementations understood by :class:`~repro.core.RequestMetricsMonitor`.
MONITOR_MODES = ("native", "vm", "stream")

#: eBPF VM tiers (see :mod:`repro.ebpf.compiled`); all bit-for-bit equal.
VM_TIERS = ("reference", "fast", "compiled")

#: Arrival processes understood by :class:`~repro.loadgen.OpenLoopClient`.
ARRIVAL_PROCESSES = ("uniform", "poisson")

#: Workload-sim tiers (see :mod:`repro.workloads.compiled`): ``"auto"``
#: follows the eBPF ``vm_tier`` (compiled probes -> compiled sim).
SIM_TIERS = ("auto", "reference", "compiled")


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports this module (indirectly) while
    # it is still initializing, but ``__version__`` is bound before that.
    from ... import __version__

    return __version__


def _machine_from(value: Union[str, Mapping, MachineSpec]) -> MachineSpec:
    if isinstance(value, MachineSpec):
        return value
    if isinstance(value, str):
        try:
            return MACHINES[value]
        except KeyError:
            raise KeyError(
                f"unknown machine {value!r}; available: {sorted(MACHINES)}"
            ) from None
    payload = dict(value)
    interference = payload.pop("interference", None)
    if isinstance(interference, Mapping):
        interference = InterferenceSpec(**interference)
    if interference is not None:
        payload["interference"] = interference
    return MachineSpec(**payload)


def _netem_from(value: Union[None, Mapping, NetemConfig]) -> Optional[NetemConfig]:
    if value is None or isinstance(value, NetemConfig):
        return value
    return NetemConfig(**dict(value))


@dataclass(frozen=True)
class ExperimentSpec:
    """Complete, typed description of one experiment cell.

    Replaces ``run_level``'s keyword sprawl: every knob that shapes the
    cell's outcome is a named, validated field.  Instances are frozen and
    hashable, so they can key in-memory dictionaries directly, and
    :meth:`cache_key` gives a stable content hash for the on-disk result
    cache.
    """

    #: Workload registry key (e.g. ``"silo"``).
    workload: str
    #: Offered load in requests per second.
    offered_rps: float
    #: Open-loop request budget for the cell.
    requests: int = 3000
    #: Master seed; the cell derives its own child sequence from it.
    seed: int = DEFAULT_SEED
    #: Machine profile the kernel boots on (a name from ``MACHINES`` or a
    #: full :class:`MachineSpec`).
    machine: MachineSpec = AMD_EPYC_7302
    #: Impairment on the client -> server direction (``None`` = ideal).
    client_to_server: Optional[NetemConfig] = None
    #: Impairment on the server -> client direction (``None`` = ideal).
    server_to_client: Optional[NetemConfig] = None
    #: Monitor implementation: ``"native"`` twin, the eBPF ``"vm"``, or
    #: per-event perf ``"stream"`` (the only mode that can drop records).
    monitor_mode: str = "native"
    #: Per-CPU perf buffer capacity for ``monitor_mode="stream"``.
    stream_capacity: int = 65536
    #: eBPF VM tier for vm/stream monitor modes (``"reference"``,
    #: ``"fast"``, or ``"compiled"``).  Every tier produces bit-for-bit
    #: identical metrics; the field is part of the cache key so cached
    #: results record which tier computed them.
    vm_tier: str = "compiled"
    #: Workload-sim tier: ``"reference"`` runs the generator service
    #: loops, ``"compiled"`` the trace-specialized flat loops (both
    #: bit-identical, see :mod:`repro.workloads.compiled`), ``"auto"``
    #: picks compiled exactly when ``vm_tier`` is compiled.  Part of the
    #: cache key so cached results record how they were simulated.
    sim_tier: str = "auto"
    #: Charge the probe's execution cost to the traced syscalls.
    charge_cost: bool = False
    #: Number of per-window Eq. 1 estimates to compute.
    estimate_windows: int = 10
    #: Enable the contention-convoy interference substrate.
    interference: bool = True
    #: Client arrival process.
    arrival: str = "uniform"
    #: Simulated CPUs the collection state / perf rings shard over.
    cpus: int = 1
    #: Streaming Prometheus export stage (``None`` = off).  Participates
    #: in the cache key: export-enabled cells run an extra simulated
    #: window loop, so their results must never be served for plain runs.
    export: Optional[ExportConfig] = None
    #: Cross-layer blind-spot correlation (``None`` = off).  When set, the
    #: cell closes a metrics window every ``correlate.window_ns``, logs
    #: client-side request outcomes, and attaches the post-hoc
    #: :class:`~repro.analysis.correlate.CorrelationReport` to
    #: ``LevelResult.extra["correlation"]``.  Participates in the cache
    #: key for the same reason ``export`` does.
    correlate: Optional[CorrelateConfig] = None
    #: Feedback-free closed-loop controller (``None`` = off, and
    #: ``policy="none"`` behaves exactly like ``None``).  When active, the
    #: cell closes a metrics window every ``control.window_ns``, feeds it
    #: to a :class:`~repro.control.QoSController`, and attaches the action
    #: log / QoS accounting to ``LevelResult.extra["control"]``.
    #: Participates in the cache key for the same reason ``correlate``
    #: does: an actuated cell's results must never be served for plain
    #: runs (or vice versa).
    control: Optional[ControlConfig] = None
    #: Optional multi-phase offered-load schedule: ``((rate_rps, count),
    #: ...)`` pairs driven in order by the client, overriding
    #: ``offered_rps``/``requests`` (surge/ramp experiments, EXP-CTL).
    #: ``offered_rps`` still names the cell (labels, seed derivation).
    phases: Optional[tuple] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "machine", _machine_from(self.machine))
        object.__setattr__(self, "offered_rps", float(self.offered_rps))
        object.__setattr__(self, "requests", int(self.requests))
        object.__setattr__(self, "seed", int(self.seed))
        get_workload(self.workload)  # raises KeyError for unknown workloads
        if self.offered_rps <= 0:
            raise ValueError(f"offered_rps must be positive, got {self.offered_rps}")
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.monitor_mode not in MONITOR_MODES:
            raise ValueError(
                f"monitor_mode must be one of {MONITOR_MODES}, got {self.monitor_mode!r}"
            )
        if self.stream_capacity < 1:
            raise ValueError("stream_capacity must be >= 1")
        if self.vm_tier not in VM_TIERS:
            raise ValueError(
                f"vm_tier must be one of {VM_TIERS}, got {self.vm_tier!r}"
            )
        if self.sim_tier not in SIM_TIERS:
            raise ValueError(
                f"sim_tier must be one of {SIM_TIERS}, got {self.sim_tier!r}"
            )
        if self.estimate_windows < 1:
            raise ValueError("estimate_windows must be >= 1")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"arrival must be one of {ARRIVAL_PROCESSES}, got {self.arrival!r}"
            )
        if self.cpus < 1:
            raise ValueError(f"cpus must be >= 1, got {self.cpus}")
        if isinstance(self.export, Mapping):
            object.__setattr__(self, "export", ExportConfig.from_dict(self.export))
        if isinstance(self.correlate, Mapping):
            object.__setattr__(
                self, "correlate", CorrelateConfig.from_dict(self.correlate)
            )
        if isinstance(self.control, Mapping):
            object.__setattr__(
                self, "control", ControlConfig.from_dict(self.control)
            )
        if self.phases is not None:
            phases = tuple(
                (float(rate), int(count)) for rate, count in self.phases
            )
            if not phases or any(r <= 0 or c < 1 for r, c in phases):
                raise ValueError(
                    "phases must be non-empty (rate>0, count>=1) pairs"
                )
            object.__setattr__(self, "phases", phases)
        active_control = self.control is not None and self.control.policy != "none"
        window_owners = [
            name
            for name, active in (
                ("correlate", self.correlate is not None),
                ("export", self.export is not None),
                ("control", active_control),
            )
            if active
        ]
        if len(window_owners) > 1:
            # Each stage drives its own snapshot(reset=True) window loop;
            # two cadences resetting the same collectors would corrupt each
            # other's windows.
            raise ValueError(
                f"{' and '.join(window_owners)} cannot be combined in one "
                "cell: each owns the monitor's window loop (run separate "
                "cells instead)"
            )

    # -- derived views ---------------------------------------------------
    @property
    def definition(self) -> WorkloadDefinition:
        """The workload definition this spec names."""
        return get_workload(self.workload)

    @property
    def resolved_sim_tier(self) -> str:
        """The workload-sim tier this spec actually requests of the app:
        ``"auto"`` resolves to compiled iff the eBPF tier is compiled."""
        if self.sim_tier == "auto":
            return "compiled" if self.vm_tier == "compiled" else "reference"
        return self.sim_tier

    def seed_sequence(self) -> SeedSequence:
        """The cell's own seed sequence.

        Derived per cell (seed x workload x offered RPS), so every cell's
        random streams are independent of execution order: parallel results
        are bit-identical to serial ones.  The derivation string matches the
        original serial runner's, keeping results comparable across versions.
        """
        return SeedSequence(self.seed).child(f"{self.workload}@{self.offered_rps:g}")

    def label(self) -> str:
        """Short human-readable cell label (progress lines, filenames)."""
        return f"{self.workload}@{self.offered_rps:g}"

    def collector_config(self) -> CollectorConfig:
        """The spec's collection knobs as one :class:`CollectorConfig`.

        This is the single seam between the experiment layer and the
        collection stack: ``execute_cell`` hands the result straight to
        :class:`~repro.core.RequestMetricsMonitor`.
        """
        return CollectorConfig(
            mode=self.monitor_mode,
            vm_tier=self.vm_tier,
            cpus=self.cpus,
            capacity=self.stream_capacity,
            charge_cost=self.charge_cost,
            export=self.export,
        )

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via :meth:`from_dict`)."""
        return {
            "workload": self.workload,
            "offered_rps": self.offered_rps,
            "requests": self.requests,
            "seed": self.seed,
            "machine": asdict(self.machine),
            "client_to_server": (
                asdict(self.client_to_server) if self.client_to_server else None
            ),
            "server_to_client": (
                asdict(self.server_to_client) if self.server_to_client else None
            ),
            "monitor_mode": self.monitor_mode,
            "stream_capacity": self.stream_capacity,
            "vm_tier": self.vm_tier,
            "sim_tier": self.sim_tier,
            "charge_cost": self.charge_cost,
            "estimate_windows": self.estimate_windows,
            "interference": self.interference,
            "arrival": self.arrival,
            "cpus": self.cpus,
            "export": self.export.to_dict() if self.export else None,
            "correlate": self.correlate.to_dict() if self.correlate else None,
            "control": self.control.to_dict() if self.control else None,
            "phases": (
                [list(pair) for pair in self.phases] if self.phases else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        data = dict(payload)
        data["machine"] = _machine_from(data.get("machine", AMD_EPYC_7302))
        data["client_to_server"] = _netem_from(data.get("client_to_server"))
        data["server_to_client"] = _netem_from(data.get("server_to_client"))
        export = data.get("export")
        if export is not None and not isinstance(export, ExportConfig):
            data["export"] = ExportConfig.from_dict(export)
        correlate = data.get("correlate")
        if correlate is not None and not isinstance(correlate, CorrelateConfig):
            data["correlate"] = CorrelateConfig.from_dict(correlate)
        control = data.get("control")
        if control is not None and not isinstance(control, ControlConfig):
            data["control"] = ControlConfig.from_dict(control)
        return cls(**data)

    def cache_key(self) -> str:
        """Stable content hash of the spec (plus the package version).

        Two specs share a key iff every field that can influence the cell's
        outcome is identical and the package version matches, so a cache
        entry can never be served for a semantically different cell.  The
        resolved workload's full configuration is hashed in too, so a
        recalibrated or custom-registered workload under the same key can
        never collide with stale entries.
        """
        definition = self.definition
        canonical = json.dumps(
            {
                "spec": self.to_dict(),
                "version": _package_version(),
                "workload_config": {
                    "app_class": definition.app_class.__name__,
                    "suite": definition.suite,
                    "config": asdict(definition.config),
                },
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]

    # -- construction helpers --------------------------------------------
    def replace(self, **changes) -> "ExperimentSpec":
        """A copy of this spec with the given fields changed."""
        return _dc_replace(self, **changes)

    @staticmethod
    def grid(
        workloads: Sequence[Union[str, WorkloadDefinition]],
        levels: Sequence[float],
        **common,
    ) -> List["ExperimentSpec"]:
        """The cross product of workloads x offered-RPS levels.

        ``common`` keywords apply to every cell (seed, netem, ...).
        """
        keys = [w.key if isinstance(w, WorkloadDefinition) else w for w in workloads]
        return [
            ExperimentSpec(workload=key, offered_rps=rate, **common)
            for key in keys
            for rate in levels
        ]


@dataclass
class LevelResult:
    """Everything measured at one load level."""

    workload: str
    offered_rps: float
    # ground truth (client side)
    achieved_rps: float
    p99_ns: float
    p50_ns: float
    mean_latency_ns: float
    completed: int
    qos_violated: bool
    # eBPF-side observations
    rps_obsv: float
    rps_obsv_recv: float
    send_delta_variance: float
    send_delta_cov2: float
    recv_delta_variance: float
    poll_mean_duration_ns: float
    poll_count: int
    # per-window Eq.1 estimates (Fig. 2 green dots)
    window_rps: List[float] = field(default_factory=list)
    # request-outcome accounting beyond completions (fault / control runs;
    # all zero on clean uncontrolled cells).
    abandoned: int = 0
    rejected: int = 0
    #: Completions whose latency exceeded the workload's QoS threshold
    #: (the per-request QoS-violation count EXP-CTL scores against).
    late_completions: int = 0
    # degraded-collection accounting (stream mode; 0 / 1.0 otherwise).
    # ``confidence`` is the event-weighted combined (send+recv) fraction;
    # a recv-only outage degrades it too.
    lost_records: int = 0
    confidence: float = 1.0
    rps_obsv_corrected: float = 0.0
    recv_rate_corrected: float = 0.0
    # run metadata
    machine: str = ""
    netem_label: str = ""
    utilization: float = 0.0
    sim_duration_ns: int = 0
    #: Export-pipeline summary when the cell ran with ``spec.export`` set
    #: (window count, per-window rates/losses/confidence, scrape stats and
    #: the final rendered exposition text); ``None`` otherwise.
    export: Optional[dict] = None
    #: Open extension point for per-cell analysis artifacts.  The
    #: cross-layer correlator stores its report here under
    #: ``extra["correlation"]`` when ``spec.correlate`` is set.
    extra: Optional[dict] = None

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class SweepResult:
    """A full load sweep for one workload.

    A sharded run (``sweep(..., shard="i/N")``) leaves ``None`` holes in
    ``levels`` at positions other shards own; the convenience accessors
    below skip the holes, so they describe whatever this invocation
    actually computed.
    """

    workload: str
    levels: List[Optional[LevelResult]]
    #: Executor telemetry for the run that produced this sweep (cells done,
    #: cache hits, wall-clock), when it came through the executor.
    telemetry: Optional[dict] = None

    @property
    def completed_levels(self) -> List[LevelResult]:
        """The levels this run actually produced (no shard/failure holes)."""
        return [l for l in self.levels if l is not None]

    @property
    def offered(self) -> List[float]:
        return [l.offered_rps for l in self.completed_levels]

    @property
    def achieved(self) -> List[float]:
        return [l.achieved_rps for l in self.completed_levels]

    @property
    def observed(self) -> List[float]:
        return [l.rps_obsv for l in self.completed_levels]

    @property
    def variances(self) -> List[float]:
        return [float(l.send_delta_variance) for l in self.completed_levels]

    @property
    def dispersion(self) -> List[float]:
        return [l.send_delta_cov2 for l in self.completed_levels]

    @property
    def poll_durations(self) -> List[float]:
        return [float(l.poll_mean_duration_ns) for l in self.completed_levels]

    def qos_failure_rps(self) -> Optional[float]:
        """First offered RPS whose p99 crossed the QoS threshold."""
        for level in self.completed_levels:
            if level.qos_violated:
                return level.offered_rps
        return None
