"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import EmptySchedule, Environment, Event, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0


def test_clock_initial_time():
    env = Environment(initial_time=42)
    assert env.now == 42


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(1000)
    env.run()
    assert env.now == 1000


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    env.timeout(500)
    env.timeout(1500)
    env.run(until=1000)
    assert env.now == 1000


def test_run_until_past_raises():
    env = Environment()
    env.timeout(2000)
    env.run(until=2000)
    with pytest.raises(ValueError):
        env.run(until=1000)


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_step_on_empty_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_events_fire_in_time_order():
    env = Environment()
    fired = []
    for delay in (300, 100, 200):
        env.timeout(delay).callbacks.append(lambda ev, d=delay: fired.append(d))
    env.run()
    assert fired == [100, 200, 300]


def test_same_time_fifo_order():
    env = Environment()
    fired = []
    for tag in "abc":
        env.timeout(100).callbacks.append(lambda ev, t=tag: fired.append(t))
    env.run()
    assert fired == ["a", "b", "c"]


def test_priority_overrides_fifo():
    env = Environment()
    fired = []
    low = Event(env)
    low.callbacks.append(lambda ev: fired.append("low"))
    high = Event(env)
    high.callbacks.append(lambda ev: fired.append("high"))
    low._ok = True
    low._value = None
    high._ok = True
    high._value = None
    env.schedule(low, priority=5)
    env.schedule(high, priority=0)
    env.run()
    assert fired == ["high", "low"]


def test_process_waits_on_timeout():
    env = Environment()
    trace = []

    def proc():
        trace.append(env.now)
        yield env.timeout(10)
        trace.append(env.now)
        yield env.timeout(5)
        trace.append(env.now)

    env.process(proc())
    env.run()
    assert trace == [0, 10, 15]


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return "done"

    p = env.process(proc())
    assert env.run(until=p) == "done"


def test_process_exception_propagates():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise RuntimeError("boom")

    p = env.process(proc())
    with pytest.raises(RuntimeError, match="boom"):
        env.run(until=p)


def test_unhandled_event_failure_crashes_run():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("nobody caught me"))
    with pytest.raises(ValueError, match="nobody caught me"):
        env.run()


def test_processes_wait_on_each_other():
    env = Environment()

    def child():
        yield env.timeout(20)
        return 7

    def parent():
        value = yield env.process(child())
        return value * 2

    p = env.process(parent())
    assert env.run(until=p) == 14
    assert env.now == 20


def test_event_succeed_delivers_value():
    env = Environment()
    gate = env.event()
    got = []

    def waiter():
        value = yield gate
        got.append(value)

    def opener():
        yield env.timeout(5)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert got == ["open"]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_yield_non_event_is_error():
    env = Environment()

    def proc():
        yield 42

    env.process(proc())
    with pytest.raises(RuntimeError, match="not an Event"):
        env.run()


def test_wait_on_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed("early")
    env.run()  # processes ev
    got = []

    def late():
        value = yield ev
        got.append((env.now, value))

    env.process(late())
    env.run()
    assert got == [(0, "early")]


def test_any_of_returns_first():
    env = Environment()

    def proc():
        t_fast = env.timeout(10, value="fast")
        t_slow = env.timeout(100, value="slow")
        result = yield env.any_of([t_fast, t_slow])
        return (env.now, list(result.values()))

    p = env.process(proc())
    when, values = env.run(until=p)
    assert when == 10
    assert values == ["fast"]


def test_all_of_waits_for_all():
    env = Environment()

    def proc():
        events = [env.timeout(d, value=d) for d in (30, 10, 20)]
        result = yield env.all_of(events)
        return (env.now, sorted(result.values()))

    p = env.process(proc())
    when, values = env.run(until=p)
    assert when == 30
    assert values == [10, 20, 30]


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc():
        result = yield env.all_of([])
        return result

    p = env.process(proc())
    assert env.run(until=p) == {}


def test_interrupt_delivers_cause():
    env = Environment()
    caught = []

    def sleeper():
        try:
            yield env.timeout(1000)
        except Interrupt as intr:
            caught.append((env.now, intr.cause))

    def poker(target):
        yield env.timeout(50)
        target.interrupt("wake up")

    p = env.process(sleeper())
    env.process(poker(p))
    env.run()
    assert caught == [(50, "wake up")]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_interrupted_process_stops_listening_to_old_target():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
            log.append("timeout fired in process")
        except Interrupt:
            log.append("interrupted")
        yield env.timeout(500)
        log.append("second sleep done")

    def poker(target):
        yield env.timeout(10)
        target.interrupt()

    p = env.process(sleeper())
    env.process(poker(p))
    env.run()
    # The original 100ns timeout still fires at t=100 but must not resume the
    # process a second time.
    assert log == ["interrupted", "second sleep done"]


def test_determinism_across_runs():
    def build_and_run():
        env = Environment()
        trace = []

        def worker(tag, period):
            for _ in range(5):
                yield env.timeout(period)
                trace.append((env.now, tag))

        env.process(worker("a", 7))
        env.process(worker("b", 11))
        env.run()
        return trace

    assert build_and_run() == build_and_run()
