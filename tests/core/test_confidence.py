"""Confidence accounting across both monitored families.

Regression suite for the send-only confidence bug: ``confidence`` counts
only send-family drops, so a recv-only collection outage reported a
perfect 1.0 while ``lost_records`` said otherwise.  ``overall_confidence``
(the number LevelResult now carries) weights both families by events.
"""

from repro.core.collectors import DurationStats
from repro.core.deltas import DeltaStats
from repro.core.monitor import MetricsSnapshot


def _stats(timestamps) -> DeltaStats:
    stats = DeltaStats()
    for ts in timestamps:
        stats.add_timestamp(ts)
    return stats


def _snapshot(send_lost=0, recv_lost=0) -> MetricsSnapshot:
    ts = [i * 1_000_000 for i in range(1, 11)]
    return MetricsSnapshot(
        window_start_ns=0,
        window_end_ns=10_000_000,
        send=_stats(ts),
        recv=_stats(ts),
        poll=DurationStats(),
        send_lost=send_lost,
        recv_lost=recv_lost,
    )


class TestOverallConfidence:
    def test_clean_window_is_fully_confident(self):
        snap = _snapshot()
        assert snap.confidence == 1.0
        assert snap.overall_confidence == 1.0

    def test_recv_only_outage_degrades_overall_confidence(self):
        # The regression: send-only ``confidence`` stays 1.0 while recv
        # records were dropped — overall_confidence must not.
        snap = _snapshot(recv_lost=10)
        assert snap.confidence == 1.0  # the narrow send-only view
        assert snap.lost_records == 10
        assert snap.overall_confidence < 1.0
        assert snap.overall_confidence == 20 / 30

    def test_send_only_outage_matches_event_weighting(self):
        snap = _snapshot(send_lost=5)
        assert snap.confidence == 10 / 15
        assert snap.overall_confidence == 20 / 25

    def test_empty_window_defaults_to_full_confidence(self):
        snap = MetricsSnapshot(
            window_start_ns=0, window_end_ns=1,
            send=DeltaStats(), recv=DeltaStats(), poll=DurationStats(),
        )
        assert snap.overall_confidence == 1.0


class TestRecvRateCorrected:
    def test_symmetric_to_send_correction(self):
        snap = _snapshot(send_lost=3, recv_lost=3)
        assert snap.recv_rate_corrected == snap.rps_obsv_corrected

    def test_recredits_lost_records(self):
        snap = _snapshot(recv_lost=9)
        # 9 deltas over 9ms plus 9 re-credited drops: 18 per 9ms window.
        assert snap.recv_rate_corrected == 2 * snap.rps_obsv_recv
        # The send side is untouched by recv drops.
        assert snap.rps_obsv_corrected == snap.rps_obsv

    def test_empty_recv_falls_back_to_raw_rate(self):
        snap = MetricsSnapshot(
            window_start_ns=0, window_end_ns=1,
            send=DeltaStats(), recv=DeltaStats(), poll=DurationStats(),
            recv_lost=4,
        )
        assert snap.recv_rate_corrected == snap.rps_obsv_recv == 0.0
