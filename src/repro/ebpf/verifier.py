"""The eBPF verifier: static safety analysis before a program may load.

This reproduces the checks that shape how the paper's collectors must be
written (§III-A: "fixed stack size, reduced instruction set, prohibition of
floating-point arithmetic and loops"):

* bounded program size; all jump targets inside the program;
* **no back-edges** — loops are rejected outright (pre-5.3 semantics, which
  the paper's BCC-era programs target);
* registers must be initialized before use; ``r10`` is a read-only frame
  pointer;
* stack access stays within the 512-byte frame and reads require previously
  written bytes;
* context loads stay inside the tracepoint record; context is read-only;
* a map lookup result **must be null-checked** before dereference;
* helper calls are checked against their signatures (map args, key/value
  pointers of the right size, constant buffer lengths);
* ``exit`` requires an initialized scalar ``r0``.

There is — structurally — no floating point: the ISA has no float ops, so
all collector arithmetic (including Eq. 2's variance) is integer-only.

The analysis walks every control-flow path with abstract register states
(no loops → termination), deduplicating visited states, and raises
:class:`~repro.ebpf.errors.VerifierError` with a kernel-style message on
the first violation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .context import ProgType
from .errors import VerifierError
from .helpers import HELPER_SIGS, ArgKind, RetKind
from .insn import Insn
from .maps import BpfMap, PerfEventArray, RingBuf
from .opcodes import AluOp, InsnClass, JmpOp, Reg

__all__ = ["verify", "MAX_INSNS"]

MAX_INSNS = 4096
MAX_STATES = 200_000
STACK_SIZE = 512

# Abstract values are tuples; first element is the kind tag.
UNINIT = ("uninit",)


def _scalar(const: Optional[int] = None) -> tuple:
    return ("scalar", const)


def _is_scalar(value: tuple) -> bool:
    return value[0] == "scalar"


def _is_pointer(value: tuple) -> bool:
    return value[0] in ("ptr_stack", "ptr_ctx", "ptr_map_value")


class _State:
    """Abstract machine state along one path."""

    __slots__ = ("regs", "stack_init")

    def __init__(self, regs: Tuple[tuple, ...], stack_init: int) -> None:
        self.regs = regs
        self.stack_init = stack_init  # 512-bit bitmask of initialized bytes

    def key(self, pc: int) -> tuple:
        return (pc, self.regs, self.stack_init)

    def with_reg(self, index: int, value: tuple) -> "_State":
        regs = list(self.regs)
        regs[index] = value
        return _State(tuple(regs), self.stack_init)

    def with_stack(self, stack_init: int) -> "_State":
        return _State(self.regs, stack_init)


def verify(insns: List[Insn], prog_type: ProgType) -> None:
    """Verify a program; raises :class:`VerifierError` when rejected."""
    n = len(insns)
    if n == 0:
        raise VerifierError("empty program")
    if n > MAX_INSNS:
        raise VerifierError(f"program too large: {n} > {MAX_INSNS} insns")

    _check_structure(insns)

    initial_regs = [UNINIT] * 11
    initial_regs[Reg.R1] = ("ptr_ctx", 0)
    initial_regs[Reg.R10] = ("ptr_stack", STACK_SIZE)
    worklist: List[Tuple[int, _State]] = [(0, _State(tuple(initial_regs), 0))]
    visited: Set[tuple] = set()
    reached: Set[int] = set()
    processed = 0

    while worklist:
        pc, state = worklist.pop()
        key = state.key(pc)
        if key in visited:
            continue
        visited.add(key)
        processed += 1
        if processed > MAX_STATES:
            raise VerifierError("verification state budget exhausted")
        if pc >= n:
            raise VerifierError("control flow falls off the end of the program", pc)
        reached.add(pc)

        insn = insns[pc]
        klass = insn.opcode & 0x07

        if klass in (InsnClass.ALU, InsnClass.ALU64):
            worklist.append((pc + 1, _alu(insn, state, pc)))
        elif klass == InsnClass.LDX:
            worklist.append((pc + 1, _load(insn, state, pc, prog_type)))
        elif klass in (InsnClass.ST, InsnClass.STX):
            worklist.append((pc + 1, _store(insn, state, pc, klass)))
        elif klass == InsnClass.LD:
            worklist.append(_ld_imm64(insn, insns, state, pc))
        elif klass in (InsnClass.JMP, InsnClass.JMP32):
            op = insn.opcode & 0xF0
            if op == JmpOp.EXIT:
                r0 = state.regs[Reg.R0]
                if not _is_scalar(r0):
                    raise VerifierError(f"R0 !read_ok at exit (r0 is {r0[0]})", pc)
                continue
            if op == JmpOp.CALL:
                worklist.append((pc + 1, _call(insn, state, pc)))
                continue
            for edge in _branch(insn, state, pc, n):
                worklist.append(edge)
        else:  # pragma: no cover — classes are exhaustive
            raise VerifierError(f"unknown instruction class {klass}", pc)

    # The kernel rejects dead code ("unreachable insn"); LD_IMM64 second
    # slots are data, reached implicitly with their first slot.
    index = 0
    while index < n:
        if index not in reached:
            raise VerifierError("unreachable insn", index)
        index += 2 if insns[index].is_ld_imm64 else 1


# ----------------------------------------------------------------------
# structural checks
# ----------------------------------------------------------------------
def _check_structure(insns: List[Insn]) -> None:
    n = len(insns)
    index = 0
    while index < n:
        insn = insns[index]
        if insn.is_ld_imm64:
            if index + 1 >= n:
                raise VerifierError("LD_IMM64 missing second slot", index)
            index += 2
            continue
        if insn.is_jump:
            op = insn.opcode & 0xF0
            if op not in (JmpOp.CALL, JmpOp.EXIT):
                target = index + 1 + insn.off
                if not 0 <= target < n:
                    raise VerifierError(f"jump out of range to {target}", index)
                if target <= index:
                    raise VerifierError(
                        f"back-edge from insn {index} to insn {target} (loops are not allowed)",
                        index,
                    )
        index += 1


# ----------------------------------------------------------------------
# transfer functions
# ----------------------------------------------------------------------
def _alu(insn: Insn, state: _State, pc: int) -> _State:
    if insn.dst == Reg.R10:
        raise VerifierError("frame pointer R10 is read-only", pc)
    op = insn.opcode & 0xF0
    is64 = (insn.opcode & 0x07) == InsnClass.ALU64
    dst = state.regs[insn.dst]
    if insn.uses_reg_source:
        operand = state.regs[insn.src]
        if operand == UNINIT:
            raise VerifierError(f"R{insn.src} !read_ok", pc)
        operand_const = operand[1] if _is_scalar(operand) else None
    else:
        operand = _scalar(insn.imm)
        operand_const = insn.imm

    if op == AluOp.MOV:
        return state.with_reg(insn.dst, operand)

    if dst == UNINIT:
        raise VerifierError(f"R{insn.dst} !read_ok", pc)

    if _is_pointer(dst):
        if not is64:
            raise VerifierError("32-bit arithmetic on pointer", pc)
        if op in (AluOp.ADD, AluOp.SUB) and _is_scalar(operand):
            if operand_const is None:
                raise VerifierError("pointer arithmetic with unbounded scalar", pc)
            delta = operand_const if op == AluOp.ADD else -operand_const
            kind, *rest = dst
            if kind == "ptr_map_value":
                return state.with_reg(insn.dst, (kind, rest[0], rest[1] + delta))
            return state.with_reg(insn.dst, (kind, rest[0] + delta))
        if op == AluOp.SUB and _is_pointer(operand) and operand[0] == dst[0]:
            return state.with_reg(insn.dst, _scalar(None))
        raise VerifierError(f"invalid operation {AluOp(op).name} on pointer", pc)

    if not _is_scalar(dst):
        raise VerifierError(f"ALU on non-scalar R{insn.dst} ({dst[0]})", pc)
    if _is_pointer(operand):
        raise VerifierError("scalar ALU with pointer operand", pc)
    # Constant folding is only needed for buffer-length args; keep ADD/SUB.
    const: Optional[int] = None
    if dst[1] is not None and operand_const is not None:
        if op == AluOp.ADD:
            const = dst[1] + operand_const
        elif op == AluOp.SUB:
            const = dst[1] - operand_const
        elif op == AluOp.MUL:
            const = dst[1] * operand_const
    return state.with_reg(insn.dst, _scalar(const))


def _stack_bounds(offset: int, size: int, pc: int, access: str) -> range:
    start = offset
    if start < 0 or start + size > STACK_SIZE:
        raise VerifierError(
            f"invalid stack {access} off={start - STACK_SIZE} size={size}", pc
        )
    return range(start, start + size)


def _load(insn: Insn, state: _State, pc: int, prog_type: ProgType) -> _State:
    if insn.dst == Reg.R10:
        raise VerifierError("frame pointer R10 is read-only", pc)
    src = state.regs[insn.src]
    size = insn.mem_size.nbytes
    kind = src[0]
    if kind == "ptr_stack":
        span = _stack_bounds(src[1] + insn.off, size, pc, "read")
        for byte in span:
            if not (state.stack_init >> byte) & 1:
                raise VerifierError(
                    f"invalid read from uninitialized stack byte {byte - STACK_SIZE}", pc
                )
    elif kind == "ptr_ctx":
        start = src[1] + insn.off
        if start < 0 or start + size > prog_type.ctx_size:
            raise VerifierError(
                f"invalid ctx read off={start} size={size} (ctx is {prog_type.ctx_size}B)", pc
            )
    elif kind == "ptr_map_value":
        start = src[2] + insn.off
        if start < 0 or start + size > src[1].value_size:
            raise VerifierError(f"map value read out of bounds off={start} size={size}", pc)
    elif kind == "map_or_null":
        raise VerifierError("R%d invalid mem access 'map_value_or_null'" % insn.src, pc)
    else:
        raise VerifierError(f"memory load through non-pointer R{insn.src} ({kind})", pc)
    return state.with_reg(insn.dst, _scalar(None))


def _store(insn: Insn, state: _State, pc: int, klass: int) -> _State:
    dst = state.regs[insn.dst]
    size = insn.mem_size.nbytes
    if klass == InsnClass.STX:
        src = state.regs[insn.src]
        if src == UNINIT:
            raise VerifierError(f"R{insn.src} !read_ok", pc)
        if not _is_scalar(src):
            raise VerifierError("pointer spill to memory is not supported here", pc)
    kind = dst[0]
    if kind == "ptr_stack":
        span = _stack_bounds(dst[1] + insn.off, size, pc, "write")
        stack_init = state.stack_init
        for byte in span:
            stack_init |= 1 << byte
        return state.with_stack(stack_init)
    if kind == "ptr_map_value":
        start = dst[2] + insn.off
        if start < 0 or start + size > dst[1].value_size:
            raise VerifierError(f"map value write out of bounds off={start} size={size}", pc)
        return state
    if kind == "ptr_ctx":
        raise VerifierError("context is read-only", pc)
    if kind == "map_or_null":
        raise VerifierError(f"R{insn.dst} invalid mem access 'map_value_or_null'", pc)
    raise VerifierError(f"memory store through non-pointer R{insn.dst} ({kind})", pc)


def _ld_imm64(insn: Insn, insns: List[Insn], state: _State, pc: int) -> Tuple[int, _State]:
    if not insn.is_ld_imm64:
        raise VerifierError("unsupported LD-class instruction", pc)
    if insn.dst == Reg.R10:
        raise VerifierError("frame pointer R10 is read-only", pc)
    if insn.is_map_load:
        ref = insn.map_ref
        if not isinstance(ref, (BpfMap, RingBuf, PerfEventArray)):
            raise VerifierError(f"unresolved map reference {ref!r}", pc)
        return (pc + 2, state.with_reg(insn.dst, ("map_ref", id(ref), ref)))
    low = insn.imm & 0xFFFFFFFF
    high = insns[pc + 1].imm & 0xFFFFFFFF
    return (pc + 2, state.with_reg(insn.dst, _scalar((high << 32) | low)))


def _branch(insn: Insn, state: _State, pc: int, n: int) -> List[Tuple[int, _State]]:
    op = insn.opcode & 0xF0
    target = pc + 1 + insn.off
    if op == JmpOp.JA:
        return [(target, state)]

    dst = state.regs[insn.dst]
    if dst == UNINIT:
        raise VerifierError(f"R{insn.dst} !read_ok", pc)
    if insn.uses_reg_source:
        operand = state.regs[insn.src]
        if operand == UNINIT:
            raise VerifierError(f"R{insn.src} !read_ok", pc)
    else:
        operand = _scalar(insn.imm)

    # NULL-check refinement for map lookup results.
    if dst[0] == "map_or_null" and _is_scalar(operand) and operand[1] == 0:
        bpf_map = dst[1]
        null_state = state.with_reg(insn.dst, _scalar(0))
        ptr_state = state.with_reg(insn.dst, ("ptr_map_value", bpf_map, 0))
        if op == JmpOp.JEQ:
            return [(target, null_state), (pc + 1, ptr_state)]
        if op == JmpOp.JNE:
            return [(target, ptr_state), (pc + 1, null_state)]
        raise VerifierError("map_value_or_null may only be compared ==/!= 0", pc)

    if dst[0] == "map_or_null":
        raise VerifierError("map_value_or_null may only be compared ==/!= 0", pc)
    if not _is_scalar(dst):
        # Pointers may only be null-checked: ==/!= against constant 0
        # (anything else would leak or misuse a kernel address).
        if op not in (JmpOp.JEQ, JmpOp.JNE):
            raise VerifierError("pointer may only be compared with ==/!=", pc)
        if not (_is_scalar(operand) and operand[1] == 0):
            raise VerifierError("pointer comparison only allowed against 0", pc)
    if _is_pointer(operand) or operand[0] in ("map_or_null", "map_ref"):
        raise VerifierError("comparison with pointer operand", pc)

    return [(target, state), (pc + 1, state)]


def _call(insn: Insn, state: _State, pc: int) -> _State:
    helper_id = insn.imm
    sig = HELPER_SIGS.get(helper_id)
    if sig is None:
        raise VerifierError(f"invalid func id {helper_id}", pc)

    arg_regs = (Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5)
    const_map = None
    pending_mem: Optional[tuple] = None
    for position, kind in enumerate(sig.args):
        value = state.regs[arg_regs[position]]
        reg_name = f"R{arg_regs[position]}"
        if value == UNINIT:
            raise VerifierError(f"{reg_name} !read_ok in call to {sig.helper.name}", pc)
        if kind == ArgKind.SCALAR:
            if not _is_scalar(value):
                raise VerifierError(f"{reg_name} must be a scalar", pc)
        elif kind == ArgKind.CONST_MAP:
            if value[0] != "map_ref":
                raise VerifierError(f"{reg_name} must be a map", pc)
            const_map = value[2]
        elif kind in (ArgKind.PTR_TO_MAP_KEY, ArgKind.PTR_TO_MAP_VALUE):
            if const_map is None:
                raise VerifierError("map argument must precede key/value pointer", pc)
            needed = const_map.key_size if kind == ArgKind.PTR_TO_MAP_KEY else const_map.value_size
            _check_mem_arg(state, value, needed, reg_name, pc)
        elif kind == ArgKind.PTR_TO_CTX:
            if value[0] != "ptr_ctx":
                raise VerifierError(f"{reg_name} must point to ctx", pc)
        elif kind == ArgKind.PTR_TO_MEM:
            pending_mem = (value, reg_name)
        elif kind == ArgKind.SIZE:
            if not _is_scalar(value) or value[1] is None:
                raise VerifierError(f"{reg_name} must be a known-constant size", pc)
            if pending_mem is None:
                raise VerifierError("SIZE argument without a preceding memory pointer", pc)
            mem_value, mem_reg = pending_mem
            _check_mem_arg(state, mem_value, value[1], mem_reg, pc)
            pending_mem = None

    new_state = state
    for reg in arg_regs:
        new_state = new_state.with_reg(reg, UNINIT)
    if sig.ret == RetKind.MAP_VALUE_OR_NULL:
        new_state = new_state.with_reg(Reg.R0, ("map_or_null", const_map))
    else:
        new_state = new_state.with_reg(Reg.R0, _scalar(None))
    return new_state


def _check_mem_arg(state: _State, value: tuple, size: int, reg_name: str, pc: int) -> None:
    if size <= 0:
        raise VerifierError(f"{reg_name}: zero-size memory argument", pc)
    if value[0] == "ptr_stack":
        span = _stack_bounds(value[1], size, pc, "helper access")
        for byte in span:
            if not (state.stack_init >> byte) & 1:
                raise VerifierError(
                    f"{reg_name}: helper reads uninitialized stack byte "
                    f"{byte - STACK_SIZE}",
                    pc,
                )
    elif value[0] == "ptr_map_value":
        start = value[2]
        if start < 0 or start + size > value[1].value_size:
            raise VerifierError(f"{reg_name}: map value access out of bounds", pc)
    elif value[0] == "ptr_ctx":
        raise VerifierError(f"{reg_name}: ctx cannot be passed as raw memory", pc)
    else:
        raise VerifierError(f"{reg_name} must point to initialized memory", pc)
