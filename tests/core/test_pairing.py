"""Tests for per-request timeline reconstruction (Fig. 1(c))."""

import pytest

from repro.core import reconstruct_timelines
from repro.kernel import Sys
from repro.kernel.tracelog import SyscallRecord


def _rec(nr, enter, exit_, tid=1, tgid=10, ret=64):
    return SyscallRecord(
        pid_tgid=(tgid << 32) | tid, syscall_nr=nr, enter_ns=enter, exit_ns=exit_, ret=ret
    )


def test_single_thread_pairs_in_order():
    records = [
        _rec(Sys.RECVFROM, 0, 10),
        _rec(Sys.SENDTO, 110, 120),
        _rec(Sys.RECVFROM, 200, 210),
        _rec(Sys.SENDTO, 260, 270),
    ]
    result = reconstruct_timelines(records)
    assert result.paired == 2
    assert result.unmatched_recvs == 0
    assert result.unmatched_sends == 0
    assert result.pairing_rate == 1.0
    assert [t.service_ns for t in result.timelines] == [100, 50]
    assert result.timelines[0].total_ns == 120
    assert result.mean_service_ns() == 75.0


def test_send_without_recv_is_unmatched():
    result = reconstruct_timelines([_rec(Sys.SENDTO, 0, 10)])
    assert result.paired == 0
    assert result.unmatched_sends == 1
    assert result.pairing_rate == 0.0


def test_recv_without_send_is_unmatched():
    result = reconstruct_timelines([_rec(Sys.RECVFROM, 0, 10)])
    assert result.unmatched_recvs == 1


def test_cross_thread_handoff_fails_to_pair():
    """The paper's multi-thread case: recv on one thread, send on another."""
    records = [
        _rec(Sys.RECVFROM, 0, 10, tid=1),
        _rec(Sys.SENDTO, 50, 60, tid=2),
    ]
    result = reconstruct_timelines(records)
    assert result.paired == 0
    assert result.unmatched_recvs == 1
    assert result.unmatched_sends == 1


def test_threads_pair_independently():
    records = [
        _rec(Sys.RECVFROM, 0, 10, tid=1),
        _rec(Sys.RECVFROM, 5, 15, tid=2),
        _rec(Sys.SENDTO, 100, 110, tid=2),
        _rec(Sys.SENDTO, 120, 130, tid=1),
    ]
    result = reconstruct_timelines(records)
    assert result.paired == 2
    assert {t.tid for t in result.timelines} == {1, 2}


def test_fifo_matching_for_pipelined_requests():
    """Two outstanding recvs on one thread: oldest pairs first."""
    records = [
        _rec(Sys.RECVFROM, 0, 10),
        _rec(Sys.RECVFROM, 20, 30),
        _rec(Sys.SENDTO, 100, 110),
        _rec(Sys.SENDTO, 200, 210),
    ]
    result = reconstruct_timelines(records)
    assert result.paired == 2
    assert result.timelines[0].recv.enter_ns == 0
    assert result.timelines[1].recv.enter_ns == 20


def test_non_request_syscalls_ignored():
    records = [
        _rec(Sys.RECVFROM, 0, 10),
        _rec(Sys.EPOLL_WAIT, 10, 40),
        _rec(Sys.FUTEX, 42, 44),
        _rec(Sys.SENDTO, 50, 60),
    ]
    result = reconstruct_timelines(records)
    assert result.paired == 1


def test_unsorted_input_handled():
    records = [
        _rec(Sys.SENDTO, 110, 120),
        _rec(Sys.RECVFROM, 0, 10),
    ]
    result = reconstruct_timelines(records)
    assert result.paired == 1
    assert result.timelines[0].service_ns == 100


def test_empty_trace():
    result = reconstruct_timelines([])
    assert result.paired == 0
    assert result.pairing_rate == 0.0
    assert result.mean_service_ns() == 0.0
