"""Consolidated CI smoke harness: every smoke step, one driver.

CI used to carry each smoke invocation as its own inline workflow step;
this driver owns the ordered step registry instead, so ``ci.yml`` shrinks
to lint / tests / ``run_ci_smoke.py`` / regression gate / artifact upload
and adding a smoke step is a code change reviewed next to the benchmark
it exercises.

Guarantees the driver adds over the old inline steps:

* **per-step cache isolation** — every step runs with its own
  ``REPRO_CODE_CACHE`` subdirectory (under the inherited root, or a
  fresh temp directory when unset) and any result caches live in
  per-step temp directories, so no step can be served by another step's
  — or a previous CI run's — on-disk state.  The sweep-scale step
  asserts the isolation holds: its cold fleet must actually translate
  programs, not inherit them;
* **per-step timing** — the summary table shows where the CI minutes go;
* **keep-going by default** — a failing step does not mask later
  failures; ``--fail-fast`` restores the old stop-at-first behavior.

Usage::

    python benchmarks/run_ci_smoke.py             # run every step
    python benchmarks/run_ci_smoke.py --list      # show the registry
    python benchmarks/run_ci_smoke.py --only sweep-scale --only closed-loop

Exit codes: 0 all selected steps passed, 1 any step failed, 2 usage
errors (unknown ``--only`` name).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent


class StepFailure(Exception):
    """A smoke step's own assertion failed (vs a child exit code)."""


@dataclass
class StepContext:
    """Per-step execution environment: isolated caches, temp space."""

    name: str
    code_cache_root: Path
    tmpdir: Path

    def env(self) -> dict:
        env = os.environ.copy()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = "src" + (os.pathsep + existing if existing else "")
        env["REPRO_CODE_CACHE"] = str(self.code_cache_root / self.name)
        return env

    def python(
        self,
        *argv: str,
        stdin_data: Optional[str] = None,
        capture: bool = False,
    ) -> Optional[str]:
        """Run ``python <argv...>`` from the repo root; raise on failure."""
        command = [sys.executable, *argv]
        result = subprocess.run(
            command,
            cwd=REPO_ROOT,
            env=self.env(),
            input=stdin_data,
            stdout=subprocess.PIPE if capture else None,
            text=True,
        )
        if result.returncode != 0:
            raise StepFailure(f"{' '.join(argv)} exited {result.returncode}")
        return result.stdout if capture else None


@dataclass
class Step:
    name: str
    description: str
    run: Callable[[StepContext], None]


def step_vm_dispatch(ctx: StepContext) -> None:
    ctx.python("benchmarks/bench_vm_dispatch.py", "--smoke")


def step_e2e_cell(ctx: StepContext) -> None:
    # The full request count (one rep) keeps the per-cell tier ratios at
    # the same scale as the committed baseline so the regression gate
    # compares like with like.  --profile dumps the headline cell's
    # compiled tier for the artifact upload.
    ctx.python(
        "benchmarks/bench_e2e_cell.py",
        "--smoke",
        "--requests",
        "1200",
        "--profile",
        "results/bench_e2e_profile.pstats",
    )


def step_export_overhead(ctx: StepContext) -> None:
    ctx.python("benchmarks/bench_export_overhead.py", "--smoke")


def step_exporter_roundtrip(ctx: StepContext) -> None:
    """One scrape over real HTTP, then oneshot expositions through the
    bundled strict parser (both dialects)."""
    serve = (
        "-m",
        "repro",
        "serve",
        "silo",
        "--requests",
        "300",
        "--rps",
        "500",
        "--window-ms",
        "20",
    )
    ctx.python(*serve, "--scrape-once")
    text = ctx.python(*serve, "--oneshot", capture=True)
    ctx.python("-m", "repro.export.parser", stdin_data=text, capture=True)
    openmetrics = ctx.python(*serve, "--oneshot", "--openmetrics", capture=True)
    ctx.python("-m", "repro.export.parser", stdin_data=openmetrics, capture=True)


def step_sweep_scale(ctx: StepContext) -> None:
    ctx.python("benchmarks/bench_sweep_scale.py", "--smoke")
    # Cache-isolation canary: this step got a private REPRO_CODE_CACHE
    # subdirectory, so its cold fleet must really have translated —
    # translations served from some other step's (or run's) disk cache
    # would silently turn the "cold" measurement warm.
    record = json.loads((REPO_ROOT / "results" / "bench_sweep_smoke.json").read_text())
    translations = record["cold"]["translation"]["translations"]
    if translations <= 0:
        raise StepFailure(
            f"cold fleet translated nothing (translations={translations}); "
            "the per-step code-cache isolation is broken"
        )


def step_robustness_faults(ctx: StepContext) -> None:
    ctx.python("benchmarks/bench_robustness_faults.py", "--smoke")


def step_blind_spots(ctx: StepContext) -> None:
    ctx.python("benchmarks/bench_blind_spots.py", "--smoke")
    # The CLI pack run doubles as the JSON round-trip check.
    out = ctx.python("-m", "repro", "correlate", "data-caching", "--json", capture=True)
    rows = json.loads(out)
    missed = [row["scenario"] for row in rows if not row["detected"]]
    if missed:
        raise StepFailure(f"correlate CLI missed scenarios: {missed}")


def step_closed_loop(ctx: StepContext) -> None:
    ctx.python("benchmarks/bench_closed_loop.py", "--smoke")


def step_executor_cache(ctx: StepContext) -> None:
    """Parallel executor smoke sweep: warm re-run fully cache-served."""
    cache_dir = ctx.tmpdir / "repro-cache"
    sweep = (
        "-m",
        "repro",
        "sweep",
        "silo",
        "--levels",
        "4",
        "--requests",
        "300",
        "--jobs",
        "2",
        "--cache-dir",
        str(cache_dir),
        "--json",
    )
    ctx.python(*sweep, capture=True)
    warm = json.loads(ctx.python(*sweep, capture=True))
    telemetry = warm["telemetry"]
    if telemetry["computed"] != 0 or telemetry["cache_hits"] != 4:
        raise StepFailure(f"warm sweep not fully cache-served: {telemetry}")


def step_sharded_sweep(ctx: StepContext) -> None:
    """Shard determinism at the CLI layer: --shard 1/2 union 2/2 must
    reproduce the unsharded payload bit-for-bit, each shard owning its
    positions and leaving the others as null holes."""
    cache_dir = ctx.tmpdir / "repro-cache"
    base = [
        "-m",
        "repro",
        "sweep",
        "xapian",
        "--levels",
        "4",
        "--requests",
        "300",
        "--jobs",
        "2",
        "--cache-dir",
        str(cache_dir),
        "--json",
    ]
    full = json.loads(ctx.python(*base, capture=True))["levels"]
    shard1 = json.loads(ctx.python(*base, "--shard", "1/2", capture=True))["levels"]
    shard2 = json.loads(ctx.python(*base, "--shard", "2/2", capture=True))["levels"]
    if not (len(full) == len(shard1) == len(shard2) == 4):
        raise StepFailure(f"level counts diverged: {len(full)}/{len(shard1)}/{len(shard2)}")
    for pos, (a, b) in enumerate(zip(shard1, shard2)):
        owner = a if pos % 2 == 0 else b
        other = b if pos % 2 == 0 else a
        if other is not None:
            raise StepFailure(f"position {pos} computed by both shards")
        if owner != full[pos]:
            raise StepFailure(f"position {pos} diverged from the unsharded sweep")


#: The ordered registry: same coverage as the old inline ci.yml steps,
#: plus the closed-loop controller smoke.  The perf-regression gate is
#: *not* a step here — it stays its own workflow step so a red gate is
#: distinguishable from a red smoke at a glance.
STEPS = (
    Step("vm-dispatch", "VM dispatch tiers bit-identical", step_vm_dispatch),
    Step("e2e-cell", "end-to-end cells across VM tiers (+ profile)", step_e2e_cell),
    Step("export-overhead", "export pipeline identity", step_export_overhead),
    Step(
        "exporter-roundtrip",
        "serve + scrape + strict parser round-trip",
        step_exporter_roundtrip,
    ),
    Step(
        "sweep-scale",
        "fleet-scale sweep (cold/warm code cache, shards, RSS)",
        step_sweep_scale,
    ),
    Step(
        "robustness-faults",
        "EXP-RF robustness bounds under faults",
        step_robustness_faults,
    ),
    Step(
        "blind-spots",
        "EXP-CORR blind-spot labels + correlate CLI",
        step_blind_spots,
    ),
    Step(
        "closed-loop",
        "EXP-CTL feedback-free controller bounds",
        step_closed_loop,
    ),
    Step(
        "executor-cache",
        "parallel executor warm-cache identity",
        step_executor_cache,
    ),
    Step("sharded-sweep", "CLI shard union bit-identity", step_sharded_sweep),
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="STEP",
        help="run only this step (repeatable, keeps registry order)",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="stop at the first failing step (default: keep going)",
    )
    parser.add_argument("--list", action="store_true", help="list the registered steps and exit")
    args = parser.parse_args(argv)

    if args.list:
        for step in STEPS:
            print(f"{step.name:<20} {step.description}")
        return 0

    names = {step.name for step in STEPS}
    if args.only:
        unknown = [name for name in args.only if name not in names]
        if unknown:
            print(
                f"error: unknown step(s) {unknown}; "
                f"available: {[s.name for s in STEPS]}",
                file=sys.stderr,
            )
            return 2
        selected = [step for step in STEPS if step.name in set(args.only)]
    else:
        selected = list(STEPS)

    # One cache root for the whole run, one subdirectory per step.  CI
    # exports REPRO_CODE_CACHE=$RUNNER_TEMP/codecache; local runs get a
    # throwaway temp root so they never touch results/.codecache.
    inherited = os.environ.get("REPRO_CODE_CACHE")
    if inherited:
        code_cache_root = Path(inherited)
    else:
        code_cache_root = Path(tempfile.mkdtemp(prefix="repro-ci-codecache-"))

    results: List[tuple] = []
    failures = 0
    for step in selected:
        print(f"=== {step.name}: {step.description}", flush=True)
        started = time.monotonic()
        with tempfile.TemporaryDirectory(prefix=f"repro-ci-{step.name}-") as tmp:
            ctx = StepContext(
                name=step.name,
                code_cache_root=code_cache_root,
                tmpdir=Path(tmp),
            )
            try:
                step.run(ctx)
            except StepFailure as exc:
                elapsed = time.monotonic() - started
                results.append((step.name, "FAIL", elapsed, str(exc)))
                failures += 1
                print(f"=== {step.name} FAILED: {exc}", file=sys.stderr, flush=True)
                if args.fail_fast:
                    break
                continue
        elapsed = time.monotonic() - started
        results.append((step.name, "ok", elapsed, ""))
        print(f"=== {step.name} ok ({elapsed:.1f}s)", flush=True)

    print()
    print(f"{'step':<20} {'verdict':<8} seconds")
    for name, verdict, elapsed, detail in results:
        suffix = f"  {detail}" if detail else ""
        print(f"{name:<20} {verdict:<8} {elapsed:7.1f}{suffix}")
    ran = len(results)
    print(f"{ran} step(s) ran, {failures} failed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
