"""Instruction model and wire-encoding tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebpf import Asm, Insn, Reg, decode, encode
from repro.ebpf.errors import AssemblerError
from repro.ebpf.insn import LD_IMM64_OPCODE
from repro.ebpf.opcodes import AluOp, InsnClass, JmpOp, MemSize, Src


def test_insn_size_is_8_bytes():
    blob = encode([Insn(opcode=0xB7, dst=0, imm=1)])
    assert len(blob) == 8


def test_known_encoding_mov64_imm():
    # mov r0, 1  ->  b7 00 00 00 01 00 00 00
    blob = encode([Insn(opcode=InsnClass.ALU64 | AluOp.MOV | Src.K, dst=0, imm=1)])
    assert blob == bytes.fromhex("b700000001000000")


def test_known_encoding_exit():
    blob = encode([Insn(opcode=InsnClass.JMP | JmpOp.EXIT)])
    assert blob == bytes.fromhex("9500000000000000")


def test_register_nibble_packing():
    # mov r3, r7: dst=3 in low nibble, src=7 in high nibble of byte 1.
    insn = Insn(opcode=InsnClass.ALU64 | AluOp.MOV | Src.X, dst=3, src=7)
    blob = encode([insn])
    assert blob[1] == (7 << 4) | 3


def test_decode_round_trip():
    asm = Asm()
    asm.mov_imm(Reg.R6, 42)
    asm.ldx(MemSize.DW, Reg.R0, Reg.R1, 8)
    asm.jne_imm(Reg.R0, 232, "out")
    asm.add_reg(Reg.R6, Reg.R0)
    asm.label("out")
    asm.mov_imm(Reg.R0, 0)
    asm.exit_()
    insns = asm.build()
    assert decode(encode(insns)) == insns


def test_decode_truncated_rejected():
    with pytest.raises(AssemblerError, match="truncated"):
        decode(b"\x00" * 7)


def test_insn_validation():
    with pytest.raises(AssemblerError):
        Insn(opcode=0x100)
    with pytest.raises(AssemblerError):
        Insn(opcode=0xB7, dst=11)
    with pytest.raises(AssemblerError):
        Insn(opcode=0xB7, off=1 << 15)
    with pytest.raises(AssemblerError):
        Insn(opcode=0xB7, imm=1 << 31)


def test_negative_fields_encode():
    insn = Insn(opcode=0xB7, dst=0, off=-4, imm=-1)
    decoded = decode(encode([insn]))[0]
    assert decoded.off == -4
    assert decoded.imm == -1


def test_ld_imm64_classification():
    asm = Asm()
    asm.ld_imm64(Reg.R1, 0xDEADBEEFCAFEF00D)
    insns = asm.build()
    assert insns[0].is_ld_imm64
    assert insns[0].opcode == LD_IMM64_OPCODE
    assert not insns[0].is_map_load
    assert len(insns) == 2


@given(
    opcode=st.integers(min_value=0, max_value=0xFF),
    dst=st.integers(min_value=0, max_value=10),
    src=st.integers(min_value=0, max_value=10),
    off=st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1),
    imm=st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
)
@settings(max_examples=200)
def test_encode_decode_round_trip_property(opcode, dst, src, off, imm):
    insn = Insn(opcode=opcode, dst=dst, src=src, off=off, imm=imm)
    assert decode(encode([insn])) == [insn]


class TestAsm:
    def test_labels_resolve_forward(self):
        asm = Asm()
        asm.jeq_imm(Reg.R1, 0, "end")  # slot 0 -> needs off = 1
        asm.mov_imm(Reg.R0, 1)  # slot 1
        asm.label("end")
        asm.exit_()  # slot 2
        insns = asm.build()
        assert insns[0].off == 1

    def test_ld_imm64_slot_counting(self):
        """Jumps across an LD_IMM64 must count both slots."""
        asm = Asm()
        asm.jeq_imm(Reg.R1, 0, "end")  # slot 0
        asm.ld_imm64(Reg.R2, 1)  # slots 1,2
        asm.label("end")
        asm.exit_()  # slot 3
        insns = asm.build()
        assert insns[0].off == 2

    def test_undefined_label(self):
        asm = Asm()
        asm.ja("nowhere")
        with pytest.raises(AssemblerError, match="undefined label"):
            asm.build()

    def test_duplicate_label(self):
        asm = Asm()
        asm.label("x")
        with pytest.raises(AssemblerError, match="duplicate"):
            asm.label("x")

    def test_ld_imm64_splits_words(self):
        asm = Asm()
        asm.ld_imm64(Reg.R0, 0x1122334455667788)
        low, high = asm.build()
        assert low.imm & 0xFFFFFFFF == 0x55667788
        assert high.imm & 0xFFFFFFFF == 0x11223344

    def test_map_load_keeps_name(self):
        asm = Asm()
        asm.ld_map_fd(Reg.R1, "my_map")
        insns = asm.build()
        assert insns[0].is_map_load
        assert insns[0].map_ref == "my_map"
