"""The paper's contribution: in-kernel request-level observability.

Public API tour::

    config = CollectorConfig(mode="vm")
    monitor = RequestMetricsMonitor(kernel, tgid, spec, config=config).attach()
    ...run load...
    snap = monitor.snapshot(reset=True)
    snap.rps_obsv                # Eq. 1
    snap.send_delta_variance     # Eq. 2 (saturation signal)
    snap.poll_mean_duration_ns   # idleness / saturation slack signal

Attach an :class:`ExportConfig` to the collector config to bolt on the
streaming Prometheus stage (:mod:`repro.export`).
"""

from .collectors import (
    DeltaCollector,
    DurationCollector,
    DurationStats,
    build_delta_program,
    build_duration_programs,
)
from .config import (
    COLLECTOR_MODES,
    CONTROL_POLICIES,
    CollectorConfig,
    ControlConfig,
    CorrelateConfig,
    ExportConfig,
    resolve_collector_config,
)
from .deltas import DeltaStats, deltas_of, variance_int
from .histograms import NBUCKETS, DeltaHistogram, bucket_index, bucket_upper_bound
from .governor import GovernorDecision, SlackDvfsGovernor
from .monitor import MetricsSnapshot, RequestMetricsMonitor
from .multiservice import (
    CombinedSnapshot,
    MultiServiceMonitor,
    ServiceSpec,
    TierReading,
)
from .pairing import PairingResult, RequestTimeline, reconstruct_timelines
from .regression import LinearFit, fit_linear, normalize, residual_summary
from .saturation import OnlineSaturationDetector, VarianceKneeDetector, detect_knee
from .slack import SlackEstimator, idleness_fraction, stabilization_point
from .streaming import RECORD_SIZE, StreamingDeltaCollector
from .windows import RECOMMENDED_WINDOW_EVENTS, chunk_by_count, window_estimates

__all__ = [
    "RequestMetricsMonitor",
    "MetricsSnapshot",
    "CollectorConfig",
    "ControlConfig",
    "CorrelateConfig",
    "ExportConfig",
    "COLLECTOR_MODES",
    "CONTROL_POLICIES",
    "resolve_collector_config",
    "DeltaHistogram",
    "NBUCKETS",
    "bucket_index",
    "bucket_upper_bound",
    "MultiServiceMonitor",
    "ServiceSpec",
    "CombinedSnapshot",
    "TierReading",
    "DeltaCollector",
    "DurationCollector",
    "DurationStats",
    "DeltaStats",
    "deltas_of",
    "variance_int",
    "SlackDvfsGovernor",
    "GovernorDecision",
    "build_delta_program",
    "build_duration_programs",
    "LinearFit",
    "fit_linear",
    "normalize",
    "residual_summary",
    "VarianceKneeDetector",
    "OnlineSaturationDetector",
    "detect_knee",
    "SlackEstimator",
    "idleness_fraction",
    "stabilization_point",
    "StreamingDeltaCollector",
    "RECORD_SIZE",
    "PairingResult",
    "RequestTimeline",
    "reconstruct_timelines",
    "RECOMMENDED_WINDOW_EVENTS",
    "chunk_by_count",
    "window_estimates",
]
