"""Cross-process on-disk cache of compiled eBPF translations.

The in-process :class:`~repro.ebpf.fastvm.TranslationCache` amortizes
translation *within* a process, but every pool worker of a sweep used to
start cold and retranslate every program it attaches.  This module
persists compiled-tier translations under ``results/.codecache/`` so a
forked or spawned worker's first attach is a disk read, not a
codegen + ``compile()`` pass — the piece that makes thousand-cell sweep
batches pay translation cost approximately once per *fleet*, not once
per process.

Key contract (see DESIGN.md §11).  Entries are content-addressed like
``TranslationCache._content_key`` — the instruction **wire encoding**
plus the tier — but deliberately *map-identity-free*: the in-memory key
includes ``id()``\\ s of the referenced maps because translations bind
live map objects, and an ``id`` is meaningless in another process.  The
generated source never embeds a map (map loads compile to ``rN = M<pc>``
with the map object living in the exec namespace), so the disk entry
stores only the source and its compiled code object; on load,
:func:`~repro.ebpf.compiled.rebind_namespace` re-binds every per-pc name
— including the map *roles* ``M<pc>`` — against the caller's live maps.
The key is additionally salted with the interpreter's bytecode magic
number, the package version, and :data:`~repro.ebpf.compiled.CODEGEN_TAG`,
so a Python upgrade, a release, or a generator change each invalidate
the cache wholesale rather than ever executing a stale translation.

Negative verdicts are cached too: a program the generator rejects is
stored as an ``unsupported`` entry, so workers skip the (cheap but not
free) unsupported-construct scan as well.

Writes are atomic (unique temp file + ``os.replace``), reads treat any
corrupt, truncated, or foreign file as a miss — a cache directory can
always be deleted or shipped between machines safely.  Fast-tier
translations (micro-op closures) are not representable on disk and are
reported as uncacheable.
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
import os
from pathlib import Path
from typing import Optional, Sequence, Union

from .insn import Insn, encode

__all__ = [
    "CODEC_VERSION",
    "DiskCodeCache",
    "default_codecache_dir",
    "disable_disk_cache",
    "disk_cache_stats",
    "enable_disk_cache",
    "resolve_codecache_dir",
]

#: Entry container format version (bump on any payload shape change).
CODEC_VERSION = 1

#: Truthy-but-off spellings accepted in ``REPRO_CODE_CACHE``.
_OFF_VALUES = frozenset(("0", "off", "no", "false", "disabled"))


def default_codecache_dir() -> Path:
    """``results/.codecache`` under the repository root."""
    return Path(__file__).resolve().parents[3] / "results" / ".codecache"


def resolve_codecache_dir(setting: Union[None, bool, str, Path]) -> Optional[Path]:
    """Resolve a code-cache knob to a directory (or ``None`` = disabled).

    ``False`` disables; a path selects that directory; ``None``/``True``
    defer to the ``REPRO_CODE_CACHE`` environment variable (``0``/``off``
    disables, a path overrides the location) and fall back to
    :func:`default_codecache_dir`.
    """
    if setting is False:
        return None
    if setting not in (None, True):
        return Path(setting)
    env = os.environ.get("REPRO_CODE_CACHE", "").strip()
    if env.lower() in _OFF_VALUES and env:
        return None
    if env:
        return Path(env)
    return default_codecache_dir()


def _version_salt() -> bytes:
    from .. import __version__
    from .compiled import CODEGEN_TAG

    return b"|".join((
        importlib.util.MAGIC_NUMBER,
        str(CODEC_VERSION).encode(),
        __version__.encode(),
        CODEGEN_TAG.encode(),
    ))


class DiskCodeCache:
    """Persistent (program wire encoding, tier) → compiled translation.

    Duck-typed backend for :class:`~repro.ebpf.fastvm.TranslationCache`:
    ``load`` returns a ready-to-execute entry (or ``None`` on a miss),
    ``store`` persists a freshly translated one.  Only the compiled tier
    has an on-disk representation; other tiers report uncacheable
    without touching the hit/miss counters.
    """

    def __init__(self, directory: Union[None, str, Path] = None) -> None:
        self.directory = (
            Path(directory) if directory is not None else default_codecache_dir()
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        self._salt = _version_salt()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.errors = 0
        self.uncacheable = 0

    # -- keying ----------------------------------------------------------
    def key_for(self, insns: Sequence[Insn], tier: str) -> str:
        digest = hashlib.sha256(
            self._salt + b"|" + tier.encode() + b"|" + encode(insns)
        )
        return digest.hexdigest()[:40]

    def path_for(self, insns: Sequence[Insn], tier: str) -> Path:
        return self.directory / f"{self.key_for(insns, tier)}.cbc"

    # -- load / store ----------------------------------------------------
    def load(self, insns: Sequence[Insn], tier: str):
        """A rebound translation for ``insns``, or ``None`` on a miss."""
        if tier != "compiled":
            self.uncacheable += 1
            return None
        try:
            blob = self.path_for(insns, tier).read_bytes()
        except OSError:
            self.misses += 1
            return None
        entry = self._decode(blob, insns)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, insns: Sequence[Insn], tier: str, entry) -> bool:
        """Persist ``entry``; returns True when it hit the disk."""
        payload = self._encode(tier, entry)
        if payload is None:
            self.uncacheable += 1
            return False
        path = self.path_for(insns, tier)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            # Unique temp name + atomic replace: concurrent workers racing
            # on the same key are last-writer-wins with no torn entry ever
            # visible to a reader.
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        except OSError:
            self.errors += 1
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.writes += 1
        return True

    # -- codecs ----------------------------------------------------------
    def _encode(self, tier: str, entry) -> Optional[bytes]:
        if tier != "compiled":
            return None
        from .compiled import CompiledProgram
        from .fastvm import _UNSUPPORTED

        if entry is _UNSUPPORTED:
            return marshal.dumps((CODEC_VERSION, "unsupported"))
        if isinstance(entry, CompiledProgram) and entry.code is not None:
            return marshal.dumps(
                (CODEC_VERSION, "ok", entry.source, entry.code, entry.n)
            )
        return None

    def _decode(self, blob: bytes, insns: Sequence[Insn]):
        from .compiled import CompiledProgram, rebind_namespace
        from .fastvm import _UNSUPPORTED

        try:
            payload = marshal.loads(blob)
        except (ValueError, EOFError, TypeError):
            self.errors += 1
            return None
        if not isinstance(payload, tuple) or not payload:
            self.errors += 1
            return None
        if payload[0] != CODEC_VERSION:
            self.errors += 1
            return None
        kind = payload[1] if len(payload) > 1 else None
        if kind == "unsupported":
            return _UNSUPPORTED
        if kind != "ok" or len(payload) != 5:
            self.errors += 1
            return None
        _version, _kind, source, code, n = payload
        if n != len(insns):
            self.errors += 1
            return None
        namespace = rebind_namespace(insns)
        if namespace is None:
            # The caller's insns cannot satisfy the entry's bindings
            # (unresolved maps, unknown helper); translating from scratch
            # reproduces the generator's own verdict.
            return None
        try:
            exec(code, namespace)  # noqa: S102 - cache holds our own codegen output
        except Exception:
            self.errors += 1
            return None
        return CompiledProgram(namespace["_prog"], source, n, code)

    # -- maintenance -----------------------------------------------------
    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.cbc"):
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                pass
        return removed

    def stats(self) -> dict:
        return {
            "entries": sum(1 for _ in self.directory.glob("*.cbc")),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "errors": self.errors,
            "uncacheable": self.uncacheable,
        }

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.cbc"))

    def __repr__(self) -> str:
        return f"<DiskCodeCache dir={str(self.directory)!r} entries={len(self)}>"


# ----------------------------------------------------------------------
# process-wide wiring
# ----------------------------------------------------------------------

def enable_disk_cache(
    directory: Union[None, str, Path] = None,
) -> DiskCodeCache:
    """Attach a :class:`DiskCodeCache` to the process-wide translation
    cache (every ``BPF`` attach site consults it from then on).  Re-enabling
    with the same directory keeps the existing backend and its counters."""
    from .fastvm import _GLOBAL_CACHE

    resolved = Path(directory) if directory is not None else default_codecache_dir()
    current = _GLOBAL_CACHE.disk
    if isinstance(current, DiskCodeCache) and current.directory == resolved:
        return current
    cache = DiskCodeCache(resolved)
    _GLOBAL_CACHE.disk = cache
    return cache


def disable_disk_cache():
    """Detach (and return) the process-wide disk backend, if any."""
    from .fastvm import _GLOBAL_CACHE

    current = _GLOBAL_CACHE.disk
    _GLOBAL_CACHE.disk = None
    return current


def disk_cache_stats() -> Optional[dict]:
    """Counters of the process-wide disk backend (``None`` when detached)."""
    from .fastvm import _GLOBAL_CACHE

    return None if _GLOBAL_CACHE.disk is None else _GLOBAL_CACHE.disk.stats()
