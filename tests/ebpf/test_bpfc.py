"""Tests for the bpfc mini-compiler (restricted C → verified eBPF).

The headline test compiles the paper's Listing 1 — the epoll_wait duration
probe — from C source, verifies it, attaches it, and checks it measures
the same durations as the hand-assembled equivalent.
"""

import pytest

from repro.ebpf import VerifierError
from repro.ebpf.bpfc import CompileError, compile_source, load_c
from repro.kernel import Kernel, MachineSpec, Sys
from repro.net import Message
from repro.sim import MSEC, Environment, SeedSequence


def _kernel():
    spec = MachineSpec(name="t", cores=4, ctx_switch_ns=0, syscall_overhead_ns=0)
    return Kernel(Environment(), spec, SeedSequence(1), interference=False)


def _epoll_workload(kernel, delays_ms=(3, 5, 9)):
    env = kernel.env
    proc = kernel.create_process("srv")
    client, server = kernel.open_connection()

    def worker(task):
        ep = yield from task.sys_epoll_create1()
        yield from task.sys_epoll_ctl(ep, server)
        for _ in delays_ms:
            yield from task.sys_epoll_wait(ep)
            yield from task.sys_read(server)

    thread = proc.spawn_thread(worker)

    def driver():
        last = 0
        for at_ms in delays_ms:
            yield env.timeout(at_ms * MSEC - last)
            last = at_ms * MSEC
            client.send(Message())

    env.process(driver())
    return thread


# The paper's Listing 1, with the exit-side pointer handling written the
# way BCC actually requires it (the paper elides the NULL check).
LISTING_1 = """
// Hash map for looking up entry timestamp of each pid-tgid
BPF_HASH(start, u64, u64);
BPF_HASH(stats, u64, u64);

// Executed at the start of every syscall
TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
    // Get pid_tgid of the application calling this syscall
    u64 pid_tgid = bpf_get_current_pid_tgid();
    if (pid_tgid != PID_TGID) return 0;  // Filter application
    if (args->id != 232) return 0;       // Filter epoll_wait
    u64 t = bpf_ktime_get_ns();          // Entry timestamp
    start.update(&pid_tgid, &t);         // Store start
    return 0;
}

// Executed at the exit of every syscall
TRACEPOINT_PROBE(raw_syscalls, sys_exit) {
    u64 pid_tgid = bpf_get_current_pid_tgid();
    if (pid_tgid != PID_TGID) return 0;
    if (args->id != 232) return 0;
    u64 *start_ns = start.lookup(&pid_tgid);  // Retrieve entry
    if (!start_ns) return 0;
    u64 end_ns = bpf_ktime_get_ns();          // Exit timestamp
    u64 duration = end_ns - *start_ns;        // Latest duration
    /* Update metrics or stream data */
    u64 key = 0;
    u64 *total = stats.lookup(&key);
    if (!total) {
        stats.update(&key, &duration);
        u64 one = 1;
        u64 count_key = 1;
        stats.update(&count_key, &one);
        return 0;
    }
    *total += duration;
    stats.increment(1);
    return 0;
}
"""


class TestListing1:
    def test_compiles_and_verifies(self):
        unit = compile_source(LISTING_1, constants={"PID_TGID": 42})
        assert set(unit.maps) == {"start", "stats"}
        assert len(unit.programs) == 2
        for program in unit.programs:
            program.resolve_maps(unit.maps).verify()

    def test_measures_epoll_durations_end_to_end(self):
        kernel = _kernel()
        thread = _epoll_workload(kernel, delays_ms=(3, 5, 9))
        bpf = load_c(kernel, LISTING_1,
                     constants={"PID_TGID": thread.pid_tgid})
        kernel.env.run()
        # Waits: 3ms + 2ms + 4ms = 9ms over 3 epoll_wait calls.
        assert bpf["stats"].lookup_int(0) == 9 * MSEC
        assert bpf["stats"].lookup_int(1) == 3

    def test_pid_filter_blocks_other_processes(self):
        kernel = _kernel()
        thread = _epoll_workload(kernel)
        bpf = load_c(kernel, LISTING_1, constants={"PID_TGID": 0xDEAD})
        kernel.env.run()
        assert bpf["stats"].lookup_int(0) is None


class TestLanguageFeatures:
    def _run_probe(self, body, kernel=None, constants=None, syscall="sys_enter"):
        """Compile a one-probe program, run one matching syscall, return maps."""
        source = f"""
        BPF_HASH(out, u64, u64);
        TRACEPOINT_PROBE(raw_syscalls, {syscall}) {{
            {body}
        }}
        """
        kernel = kernel or _kernel()
        bpf = load_c(kernel, source, constants=constants)
        proc = kernel.create_process("p")

        def worker(task):
            yield from task.sys_socket()

        proc.spawn_thread(worker)
        kernel.env.run()
        return bpf["out"]

    def test_arithmetic_and_precedence(self):
        out = self._run_probe("""
            u64 k = 0;
            u64 v = 2 + 3 * 4 - 10 / 2;   // 9
            out.update(&k, &v);
            return 0;
        """)
        assert out.lookup_int(0) == 9

    def test_bitwise_and_shifts(self):
        out = self._run_probe("""
            u64 k = 0;
            u64 v = ((0xF0 & 0x3C) | 1) ^ 2;  // (0x30|1)^2 = 0x33
            u64 s = v << 4 >> 2;
            out.update(&k, &s);
            return 0;
        """)
        assert out.lookup_int(0) == (0x33 << 4) >> 2

    def test_comparisons_yield_01(self):
        out = self._run_probe("""
            u64 k = 0;
            u64 v = (3 < 5) + (5 <= 5) + (7 > 9) + (2 >= 2) + (1 == 1) + (1 != 1);
            out.update(&k, &v);
            return 0;
        """)
        assert out.lookup_int(0) == 4

    def test_logical_operators_short_circuit(self):
        out = self._run_probe("""
            u64 k = 0;
            u64 v = (1 && 7) + (0 && 1) + (0 || 3) + (0 || 0);
            out.update(&k, &v);
            return 0;
        """)
        assert out.lookup_int(0) == 2

    def test_unary_operators(self):
        out = self._run_probe("""
            u64 k = 0;
            u64 v = !0 + !5;      // 1 + 0
            u64 w = 0 - (-3);     // 3
            out.update(&k, &v);
            u64 k2 = 1;
            out.update(&k2, &w);
            return 0;
        """)
        assert out.lookup_int(0) == 1
        assert out.lookup_int(1) == 3

    def test_if_else(self):
        out = self._run_probe("""
            u64 k = 0;
            u64 v = 0;
            if (k == 0) { v = 10; } else { v = 20; }
            if (k != 0) v = 99;
            out.update(&k, &v);
            return 0;
        """)
        assert out.lookup_int(0) == 10

    def test_compound_assignment_and_increment(self):
        out = self._run_probe("""
            u64 k = 0;
            u64 v = 5;
            v += 10;
            v -= 3;
            v *= 2;
            v++;
            out.update(&k, &v);
            return 0;
        """)
        assert out.lookup_int(0) == 25

    def test_constants_substitution(self):
        out = self._run_probe("""
            u64 k = 0;
            u64 v = THRESHOLD * 2;
            out.update(&k, &v);
            return 0;
        """, constants={"THRESHOLD": 21})
        assert out.lookup_int(0) == 42

    def test_large_constant_uses_ld_imm64(self):
        out = self._run_probe("""
            u64 k = 0;
            u64 v = BIGVAL + 1;
            out.update(&k, &v);
            return 0;
        """, constants={"BIGVAL": 0xDEADBEEFCAFE})
        assert out.lookup_int(0) == 0xDEADBEEFCAFE + 1

    def test_ctx_ret_in_sys_exit(self):
        out = self._run_probe("""
            u64 k = 0;
            u64 v = args->ret + 100;
            out.update(&k, &v);
            return 0;
        """, syscall="sys_exit")
        assert out.lookup_int(0) == 100  # socket() returns 0 here

    def test_args_array_access(self):
        kernel = _kernel()
        source = """
        BPF_HASH(out, u64, u64);
        TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
            if (args->id != 35) return 0;   // nanosleep
            u64 k = 0;
            u64 v = args->args[0];          // requested duration
            out.update(&k, &v);
            return 0;
        }
        """
        bpf = load_c(kernel, source)
        proc = kernel.create_process("p")

        def worker(task):
            yield from task.sys_nanosleep(123456)

        proc.spawn_thread(worker)
        kernel.env.run()
        assert bpf["out"].lookup_int(0) == 123456

    def test_map_increment_seeds_and_counts(self):
        out = self._run_probe("""
            out.increment(7);
            out.increment(7);
            out.increment(7);
            return 0;
        """)
        assert out.lookup_int(7) == 3

    def test_map_delete(self):
        out = self._run_probe("""
            u64 k = 3;
            u64 v = 1;
            out.update(&k, &v);
            out.delete(&k);
            return 0;
        """)
        assert out.lookup_int(3) is None


class TestCompileErrors:
    def _compile(self, source, **kwargs):
        return compile_source(source, **kwargs)

    def test_undeclared_identifier(self):
        with pytest.raises(CompileError, match="undeclared identifier"):
            self._compile("""
            TRACEPOINT_PROBE(raw_syscalls, sys_enter) { return nope; }
            """)

    def test_unknown_map(self):
        with pytest.raises(CompileError, match="unknown map"):
            self._compile("""
            TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
                u64 k = 0;
                ghost.increment(k);
                return 0;
            }
            """)

    def test_pointer_without_lookup(self):
        with pytest.raises(CompileError, match="map.lookup"):
            self._compile("""
            TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
                u64 *p;
                return 0;
            }
            """)

    def test_pointer_used_as_scalar(self):
        with pytest.raises(CompileError, match="used as a scalar"):
            self._compile("""
            BPF_HASH(m, u64, u64);
            TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
                u64 k = 0;
                u64 *p = m.lookup(&k);
                if (!p) return 0;
                return p;
            }
            """)

    def test_ret_not_available_in_sys_enter(self):
        with pytest.raises(CompileError, match="not available"):
            self._compile("""
            TRACEPOINT_PROBE(raw_syscalls, sys_enter) { return args->ret; }
            """)

    def test_no_probes(self):
        with pytest.raises(CompileError, match="no TRACEPOINT_PROBE"):
            self._compile("BPF_HASH(x, u64, u64);")

    def test_unsupported_probe_target(self):
        with pytest.raises(CompileError, match="unsupported probe"):
            self._compile("""
            TRACEPOINT_PROBE(sched, sched_switch) { return 0; }
            """)

    def test_too_many_pointers(self):
        with pytest.raises(CompileError, match="too many live pointer"):
            self._compile("""
            BPF_HASH(m, u64, u64);
            TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
                u64 k = 0;
                u64 *a = m.lookup(&k);
                u64 *b = m.lookup(&k);
                u64 *c = m.lookup(&k);
                return 0;
            }
            """)

    def test_loops_do_not_exist(self):
        """'while' is just an identifier here; using it like C fails."""
        with pytest.raises(CompileError):
            self._compile("""
            TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
                while (1) { }
                return 0;
            }
            """)

    def test_redeclaration(self):
        with pytest.raises(CompileError, match="redeclaration"):
            self._compile("""
            TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
                u64 x = 1;
                u64 x = 2;
                return 0;
            }
            """)

    def test_shadowing_map_rejected(self):
        with pytest.raises(CompileError, match="shadows"):
            self._compile("""
            BPF_HASH(m, u64, u64);
            TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
                u64 m = 1;
                return 0;
            }
            """)

    def test_bad_assignment_target(self):
        with pytest.raises(CompileError, match="assignment target"):
            self._compile("""
            TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
                1 = 2;
                return 0;
            }
            """)

    def test_unterminated_comment(self):
        with pytest.raises(CompileError, match="unterminated"):
            self._compile("/* forever")

    def test_compiled_output_passes_verifier(self):
        """Every compiled program must be verifier-clean by construction."""
        unit = self._compile(LISTING_1, constants={"PID_TGID": 1})
        for program in unit.programs:
            # resolve + verify raises on any codegen bug
            program.resolve_maps(unit.maps).verify()


class TestPerfOutput:
    SOURCE = """
    BPF_PERF_OUTPUT(events);
    TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
        if (args->id != 41) return 0;   // socket
        u64 stamp = bpf_ktime_get_ns();
        events.perf_submit(args, &stamp, 8);
        return 0;
    }
    """

    def test_streams_records(self):
        kernel = _kernel()
        bpf = load_c(kernel, self.SOURCE)
        proc = kernel.create_process("p")

        def worker(task):
            yield from task.sys_nanosleep(2 * MSEC)
            yield from task.sys_socket()
            yield from task.sys_nanosleep(3 * MSEC)
            yield from task.sys_socket()

        proc.spawn_thread(worker)
        kernel.env.run()
        records = bpf.perf_events("events")
        stamps = [int.from_bytes(r, "little") for r in records]
        assert stamps == [2 * MSEC, 5 * MSEC]

    def test_perf_submit_requires_perf_map(self):
        with pytest.raises(CompileError, match="BPF_PERF_OUTPUT"):
            compile_source("""
            BPF_HASH(events, u64, u64);
            TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
                u64 x = 1;
                events.perf_submit(args, &x, 8);
                return 0;
            }
            """)

    def test_perf_submit_arg_validation(self):
        with pytest.raises(CompileError, match="first argument"):
            compile_source("""
            BPF_PERF_OUTPUT(events);
            TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
                u64 x = 1;
                events.perf_submit(x, &x, 8);
                return 0;
            }
            """)
        with pytest.raises(CompileError, match="size must be"):
            compile_source("""
            BPF_PERF_OUTPUT(events);
            TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
                u64 x = 1;
                events.perf_submit(args, &x, 64);
                return 0;
            }
            """)
