"""EXP-CTL: the evaluated closed-loop scenario matrix.

Three scenarios per workload, each run twice — uncontrolled baseline vs
controlled — from the *same* spec (same seed, same arrival stream, same
fault schedule), so the controller's contribution is the only difference:

- ``surge-shed`` (clean cell): a three-phase offered-load schedule —
  calibrate at 0.55x the paper's failure RPS, surge to 1.7x, return to
  0.55x.  The ``shed`` policy must catch the saturation signals
  (slack-collapse / dispersion-knee) and reject enough of the surge to
  keep admitted requests inside QoS.
- ``stall-shed`` (fault matrix): a mid-run stop-the-world
  :class:`~repro.faults.WorkerStall`.  RPS_obsv goes quiet during the
  stall (``rps-drop``); shedding during the stall and the drain converts
  would-be-late completions into cheap refusals and shortens the backlog.
- ``crash-scale`` (fault matrix): a permanent
  :class:`~repro.faults.WorkerCrash` of a large slice of the serving
  pool (half for partitioned pools, three quarters for shared dispatch
  queues).  The ``scale`` policy must notice the capacity loss from the
  windowed signals alone and revive the dead workers.

All knobs scale with the workload's calibrated failure RPS and the run
length, so one scenario definition spans data-caching's 100 ms runs and
triton's 100 s runs.  ``benchmarks/bench_closed_loop.py`` asserts the
documented per-scenario bounds over these records and
``python -m repro control`` runs a single (workload, scenario) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..analysis.executor.pool import execute_cell
from ..analysis.executor.spec import DEFAULT_SEED, ExperimentSpec, LevelResult
from ..core.config import ControlConfig
from ..sim.timebase import SEC
from ..workloads.base import DispatchPoolApp, TwoTierApp
from ..workloads.registry import WorkloadDefinition, get_workload

__all__ = [
    "SCENARIO_KEYS",
    "ControlScenario",
    "build_scenario",
    "qos_accounting",
    "run_scenario",
    "scenario_of",
]


@dataclass(frozen=True)
class ControlScenario:
    """One evaluated scenario: its policy and shape."""

    key: str
    policy: str
    description: str


SCENARIOS = {
    "surge-shed": ControlScenario(
        key="surge-shed",
        policy="shed",
        description=(
            "clean cell, offered load surges to 1.7x the failure RPS; "
            "admission control sheds the surge"
        ),
    ),
    "stall-shed": ControlScenario(
        key="stall-shed",
        policy="shed",
        description=(
            "stop-the-world worker stall mid-run; shedding bounds the "
            "backlog during the stall and its drain"
        ),
    ),
    "crash-scale": ControlScenario(
        key="crash-scale",
        policy="scale",
        description=(
            "a large slice of the serving pool crashes permanently; the "
            "scale policy revives the dead workers"
        ),
    ),
}

SCENARIO_KEYS: Tuple[str, ...] = tuple(SCENARIOS)


def scenario_of(key: str) -> ControlScenario:
    try:
        return SCENARIOS[key]
    except KeyError:
        raise KeyError(f"unknown control scenario {key!r}; available: {sorted(SCENARIOS)}") from None


def _crash_target(definition: WorkloadDefinition) -> Tuple[str, int]:
    """Task-name needle + victim count for the crash-scale scenario."""
    config = definition.config
    app_class = definition.app_class
    if issubclass(app_class, TwoTierApp):
        frontends = min(config.frontend_threads, config.connections)
        return f"{config.name}/fe", max(1, frontends // 2)
    if issubclass(app_class, DispatchPoolApp):
        # A shared dispatch queue degrades gracefully: half the executors
        # still clear 0.7x the failure RPS.  Kill three quarters so the
        # capacity loss is actually QoS-visible.
        return f"{config.name}/exec", max(1, config.workers * 3 // 4)
    suffix = "/io" if config.io_uring else "/w"
    return f"{config.name}{suffix}", max(1, config.workers // 2)


def build_scenario(
    workload: str,
    scenario_key: str,
    requests: int,
    seed: int = DEFAULT_SEED,
) -> dict:
    """Construct one scenario instance for ``workload``.

    Returns ``{"spec", "control", "faults", "retry_timeout_ns"}`` — the
    uncontrolled baseline spec, the :class:`~repro.core.ControlConfig` the
    controlled arm adds (via ``spec.replace(control=...)``), the fault
    schedule, and the client watchdog setting both arms share.
    """
    definition = get_workload(workload)
    scenario = scenario_of(scenario_key)
    fail = definition.paper_fail_rps
    if fail <= 0:
        raise ValueError(f"workload {workload} has no calibrated failure RPS")
    n = int(requests)
    if n < 40:
        raise ValueError(f"need at least 40 requests per scenario run, got {n}")

    hysteresis = dict(
        calibrate_windows=8,
        trigger_windows=2,
        clear_windows=4,
        cooldown_windows=2,
    )
    if scenario_key == "surge-shed":
        base, surge = 0.55 * fail, 1.7 * fail
        n1 = max(1, int(n * 0.3))
        n2 = max(1, int(n * 0.5))
        n3 = max(1, n - n1 - n2)
        run_ns = int((n1 / base + n2 / surge + n3 / base) * SEC)
        spec = ExperimentSpec(
            workload=definition.key,
            offered_rps=base,
            requests=n,
            seed=seed,
            phases=((base, n1), (surge, n2), (base, n3)),
        )
        control = ControlConfig(
            policy="shed",
            window_ns=max(1, run_ns // 40),
            shed_fraction=0.5,
            # Dispatch-pool net threads poll at the arrival cadence, so a
            # 1.7x/0.55x surge only compresses their slack ~3x; the default
            # 6x ratio would miss it while 2.5x still clears healthy noise.
            slack_ratio=2.5,
            **hysteresis,
        )
        faults: tuple = ()
        retry_timeout_ns: Optional[int] = None
    elif scenario_key == "stall-shed":
        from ..faults import WorkerStall

        rate = 0.6 * fail
        run_ns = int(n / rate * SEC)
        spec = ExperimentSpec(
            workload=definition.key,
            offered_rps=rate,
            requests=n,
            seed=seed,
        )
        control = ControlConfig(
            policy="shed",
            window_ns=max(1, run_ns // 40),
            shed_fraction=0.5,
            **hysteresis,
        )
        faults = (
            WorkerStall(at_ns=int(run_ns * 0.45), duration_ns=max(1, int(run_ns * 0.25))),
        )
        retry_timeout_ns = None
    elif scenario_key == "crash-scale":
        from ..faults import WorkerCrash

        rate = 0.7 * fail
        run_ns = int(n / rate * SEC)
        needle, count = _crash_target(definition)
        spec = ExperimentSpec(
            workload=definition.key,
            offered_rps=rate,
            requests=n,
            seed=seed,
        )
        control = ControlConfig(
            policy="scale",
            window_ns=max(1, run_ns // 40),
            rps_drop_ratio=1.3,
            **hysteresis,
        )
        faults = (
            WorkerCrash(
                at_ns=int(run_ns * 0.3),
                restart_after_ns=0,
                count=count,
                match=needle,
            ),
        )
        retry_timeout_ns = max(int(definition.config.qos_latency_ns), run_ns // 12, 1)
    else:  # pragma: no cover - scenario_of already validated
        raise KeyError(scenario_key)
    return {
        "scenario": scenario,
        "spec": spec,
        "control": control,
        "faults": faults,
        "retry_timeout_ns": retry_timeout_ns,
    }


def qos_accounting(level: LevelResult) -> dict:
    """EXP-CTL's per-arm score: violations, goodput, refusals.

    A *QoS violation* is a completion later than the workload's QoS
    threshold or an abandoned request; *goodput* is completions within the
    threshold.  Rejected requests are neither: the client got a definitive
    cheap refusal instead of a broken promise.
    """
    return {
        "completed": level.completed,
        "abandoned": level.abandoned,
        "rejected": level.rejected,
        "late_completions": level.late_completions,
        "qos_violations": level.late_completions + level.abandoned,
        "goodput": level.completed - level.late_completions,
        "p99_ms": level.p99_ns / 1e6,
    }


def run_scenario(
    workload: str,
    scenario_key: str,
    requests: int = 1800,
    seed: int = DEFAULT_SEED,
) -> dict:
    """Run one (workload, scenario) pair: uncontrolled arm, controlled arm.

    Both arms share every input except ``spec.control``; faulted arms run
    through :func:`repro.faults.run_faulted_cell` (uncached, reference sim
    tier), clean arms through ``execute_cell`` directly.
    """
    built = build_scenario(workload, scenario_key, requests, seed=seed)
    base_spec: ExperimentSpec = built["spec"]
    ctl_spec = base_spec.replace(control=built["control"])
    if built["faults"]:
        from ..faults import run_faulted_cell

        base_level, _ = run_faulted_cell(
            base_spec,
            faults=built["faults"],
            retry_timeout_ns=built["retry_timeout_ns"],
        )
        ctl_level, _ = run_faulted_cell(
            ctl_spec,
            faults=built["faults"],
            retry_timeout_ns=built["retry_timeout_ns"],
        )
    else:
        base_level = execute_cell(base_spec)
        ctl_level = execute_cell(ctl_spec)
    uncontrolled = qos_accounting(base_level)
    controlled = qos_accounting(ctl_level)
    control_summary = (ctl_level.extra or {}).get("control")
    record = {
        "workload": workload,
        "scenario": scenario_key,
        "policy": built["scenario"].policy,
        "requests": int(requests),
        "uncontrolled": uncontrolled,
        "controlled": controlled,
        "control": control_summary,
    }
    u = uncontrolled["qos_violations"]
    c = controlled["qos_violations"]
    record["violation_ratio"] = (c / u) if u else None
    gu = uncontrolled["goodput"]
    record["goodput_ratio"] = (controlled["goodput"] / gu) if gu else None
    return record
