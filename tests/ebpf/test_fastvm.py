"""Differential suite: the pre-decoded fast path vs. the reference Vm.

The contract is bit-for-bit equality: identical ``(r0, steps, cost_ns)``
per firing, identical map mutations, identical fault messages — over the
full shipped program corpus (collectors, streaming, tools, bpfc output)
and over randomized verifier-valid programs.  The cost model feeding
EXP-OVH must not move by a single nanosecond between tiers.
"""

import random

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.collectors import (
    _DELTA_VALUE_SIZE,
    _DUR_VALUE_SIZE,
    build_delta_program,
    build_duration_programs,
)
from repro.core.streaming import build_streaming_program
from repro.ebpf import (
    DEFAULT_INSN_COST_NS,
    HELPER_SIGS,
    ArrayMap,
    Asm,
    FastVm,
    HashMap,
    Helper,
    HelperRuntime,
    Insn,
    MemSize,
    PerfEventArray,
    ProgType,
    Reg,
    TranslationCache,
    VerifierError,
    Vm,
    VmFault,
    pack_sys_enter,
    pack_sys_exit,
    verify,
)
from repro.ebpf.bpfc import compile_source
from repro.kernel.tracepoints import SysEnterCtx, SysExitCtx

TGID = 7
PID_TGID = (TGID << 32) | TGID

_FUZZ_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)


def _results(vm, program, firings):
    """Run ``program`` over a firing sequence; returns per-firing tuples."""
    out = []
    for ctx in firings:
        blob = pack_sys_enter(ctx) if isinstance(ctx, SysEnterCtx) else pack_sys_exit(ctx)
        runtime = HelperRuntime(ktime_ns=ctx.ktime_ns, pid_tgid=ctx.pid_tgid, cpu_id=0)
        result = vm.execute(program.insns, blob, runtime)
        out.append((result.r0, result.steps, result.cost_ns))
    return out


def _map_state(bpf_map):
    if isinstance(bpf_map, HashMap):
        return dict(bpf_map.items_int())
    if isinstance(bpf_map, ArrayMap):
        return [bytes(bpf_map.lookup(bpf_map.key_of(i)))
                for i in range(bpf_map.max_entries)]
    if isinstance(bpf_map, PerfEventArray):
        return bpf_map.poll()
    return bpf_map.drain()  # RingBuf


def _enter_seq(count=40, seed=0):
    """sys_enter contexts mixing matching/other tgids and syscall numbers."""
    rng = random.Random(seed)
    t = 1_000
    firings = []
    for i in range(count):
        pid_tgid = PID_TGID if rng.random() < 0.8 else (99 << 32) | 99
        firings.append(SysEnterCtx(pid_tgid=pid_tgid, syscall_nr=rng.choice([0, 1, 44, 232]),
                                   ktime_ns=t))
        t += rng.randint(1, 50_000)
    return firings


def _enter_exit_seq(count=40, seed=1, nr=232):
    rng = random.Random(seed)
    t = 5_000
    firings = []
    for i in range(count):
        pid_tgid = PID_TGID if rng.random() < 0.85 else (99 << 32) | 99
        firings.append(SysEnterCtx(pid_tgid=pid_tgid, syscall_nr=nr, ktime_ns=t))
        t += rng.randint(10, 80_000)
        firings.append(SysExitCtx(pid_tgid=pid_tgid, syscall_nr=nr, ret=0, ktime_ns=t))
        t += rng.randint(10, 20_000)
    return firings


# The paper's Listing 1, as compiled by tests/ebpf/test_bpfc.py — both
# interpreter tiers must agree on bpfc output, not just hand assembly.
LISTING_1 = """
BPF_HASH(start, u64, u64);
BPF_HASH(stats, u64, u64);

TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
    u64 pid_tgid = bpf_get_current_pid_tgid();
    if (pid_tgid != PID_TGID) return 0;
    if (args->id != 232) return 0;
    u64 t = bpf_ktime_get_ns();
    start.update(&pid_tgid, &t);
    return 0;
}

TRACEPOINT_PROBE(raw_syscalls, sys_exit) {
    u64 pid_tgid = bpf_get_current_pid_tgid();
    if (pid_tgid != PID_TGID) return 0;
    if (args->id != 232) return 0;
    u64 *start_ns = start.lookup(&pid_tgid);
    if (!start_ns) return 0;
    u64 end_ns = bpf_ktime_get_ns();
    u64 duration = end_ns - *start_ns;
    u64 key = 0;
    u64 *total = stats.lookup(&key);
    if (!total) {
        stats.update(&key, &duration);
        u64 one = 1;
        u64 count_key = 1;
        stats.update(&count_key, &one);
        return 0;
    }
    *total += duration;
    stats.increment(1);
    return 0;
}
"""


def _corpus_cases():
    """(name, build) pairs; build() -> (programs, maps, firings).

    Fresh map instances per call so the reference and fast runs never
    share state.
    """

    def delta():
        state = ArrayMap(value_size=_DELTA_VALUE_SIZE, max_entries=1, name="state")
        program = (build_delta_program("state", TGID, [0, 1])
                   .resolve_maps({"state": state}).verify())
        return [program], {"state": state}, _enter_seq()

    def duration():
        start = HashMap(key_size=8, value_size=8, max_entries=64, name="start")
        state = ArrayMap(value_size=_DUR_VALUE_SIZE, max_entries=1, name="state")
        maps = {"start": start, "state": state}
        enter, exit_ = build_duration_programs("start", "state", TGID, [232])
        programs = [p.resolve_maps(maps).verify() for p in (enter, exit_)]
        return programs, maps, _enter_exit_seq()

    def streaming():
        events = PerfEventArray(cpus=2, name="events")
        program = (build_streaming_program("events", TGID, [0, 44])
                   .resolve_maps({"events": events}).verify())
        return [program], {"events": events}, _enter_seq(seed=3)

    def listing1():
        unit = compile_source(LISTING_1, constants={"PID_TGID": PID_TGID})
        programs = [p.resolve_maps(unit.maps).verify() for p in unit.programs]
        return programs, dict(unit.maps), _enter_exit_seq(seed=4)

    return [("delta", delta), ("duration", duration),
            ("streaming", streaming), ("listing1", listing1)]


def _dispatch(programs, ctx):
    enter = isinstance(ctx, SysEnterCtx)
    wanted = (ProgType.tracepoint_sys_enter() if enter
              else ProgType.tracepoint_sys_exit()).name
    return [p for p in programs if p.prog_type.name == wanted]


@pytest.mark.parametrize("name,build", _corpus_cases(), ids=lambda c: c if isinstance(c, str) else "")
def test_corpus_programs_identical(name, build):
    """Full corpus: every firing's (r0, steps, cost_ns) and the final map
    contents must match between the tiers."""
    outcomes = {}
    for vm in (Vm(), FastVm(cache=TranslationCache())):
        programs, maps, firings = build()
        per_firing = []
        for ctx in firings:
            for program in _dispatch(programs, ctx):
                per_firing.extend(_results(vm, program, [ctx]))
        outcomes[type(vm).__name__] = (
            per_firing, {name_: _map_state(m) for name_, m in maps.items()})
    assert outcomes["Vm"] == outcomes["FastVm"]


def test_cost_and_steps_unchanged_on_delta_program():
    """Explicit cost-model pin: the fast path charges exactly
    steps * DEFAULT_INSN_COST_NS plus the helpers' signature costs."""
    state = ArrayMap(value_size=_DELTA_VALUE_SIZE, max_entries=1, name="state")
    program = (build_delta_program("state", TGID, [0])
               .resolve_maps({"state": state}).verify())
    ctx = SysEnterCtx(pid_tgid=PID_TGID, syscall_nr=0, ktime_ns=123_456)
    runtime_args = dict(ktime_ns=ctx.ktime_ns, pid_tgid=ctx.pid_tgid, cpu_id=0)

    reference = Vm().execute(program.insns, pack_sys_enter(ctx),
                             HelperRuntime(**runtime_args))
    state2 = ArrayMap(value_size=_DELTA_VALUE_SIZE, max_entries=1, name="state")
    program2 = (build_delta_program("state", TGID, [0])
                .resolve_maps({"state": state2}).verify())
    fast = FastVm(cache=TranslationCache()).execute(
        program2.insns, pack_sys_enter(ctx), HelperRuntime(**runtime_args))

    assert (fast.r0, fast.steps, fast.cost_ns) == \
        (reference.r0, reference.steps, reference.cost_ns)
    helper_cost = (HELPER_SIGS[Helper.GET_CURRENT_PID_TGID].cost_ns
                   + HELPER_SIGS[Helper.KTIME_GET_NS].cost_ns
                   + HELPER_SIGS[Helper.MAP_LOOKUP_ELEM].cost_ns)
    assert fast.cost_ns == fast.steps * DEFAULT_INSN_COST_NS + helper_cost


# ----------------------------------------------------------------------
# randomized differential fuzz (same vocabulary as test_differential.py)
# ----------------------------------------------------------------------

CTX_SIZE = ProgType.tracepoint_sys_enter().ctx_size

_ALU_IMM = ("add_imm", "sub_imm", "mul_imm", "div_imm", "mod_imm",
            "and_imm", "or_imm", "lsh_imm", "rsh_imm", "arsh_imm")
_ALU_REG = ("add_reg", "sub_reg", "mul_reg", "div_reg", "mod_reg", "xor_reg")
_JMP_IMM = ("jeq_imm", "jne_imm", "jgt_imm", "jge_imm", "jlt_imm",
            "jle_imm", "jsgt_imm", "jslt_imm", "jset_imm")

_reg = st.integers(min_value=0, max_value=9)
_imm = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
_slot = st.integers(min_value=1, max_value=8)

_op = st.one_of(
    st.tuples(st.just("mov_imm"), _reg, _imm),
    st.tuples(st.just("mov_reg"), _reg, _reg),
    st.tuples(st.sampled_from(_ALU_IMM), _reg, _imm),
    st.tuples(st.sampled_from(_ALU_REG), _reg, _reg),
    st.tuples(st.just("neg"), _reg),
    st.tuples(st.just("wmov_imm"), _reg, _imm),
    st.tuples(st.just("wadd_imm"), _reg, _imm),
    st.tuples(st.just("store"), _reg, _slot),
    st.tuples(st.just("load"), _reg, _slot),
    st.tuples(st.just("ctx_load"), _reg, st.integers(min_value=0, max_value=CTX_SIZE - 8)),
    st.tuples(st.sampled_from(_JMP_IMM), _reg, _imm, st.just("mov_imm"), _reg, _imm),
)


def _build(ops):
    asm = Asm()
    label_counter = 0
    for op in ops:
        name = op[0]
        if name in ("mov_imm", "wmov_imm", "wadd_imm"):
            getattr(asm, name)(op[1], op[2])
        elif name in _ALU_IMM:
            imm = op[2] & 63 if name in ("lsh_imm", "rsh_imm", "arsh_imm") else op[2]
            getattr(asm, name)(op[1], imm)
        elif name in _ALU_REG or name == "mov_reg":
            getattr(asm, name)(op[1], op[2])
        elif name == "neg":
            asm.neg(op[1])
        elif name == "store":
            asm.stx(MemSize.DW, Reg.R10, -8 * op[2], op[1])
        elif name == "load":
            asm.ldx(MemSize.DW, op[1], Reg.R10, -8 * op[2])
        elif name == "ctx_load":
            asm.ldx(MemSize.DW, op[1], Reg.R1, op[2])
        else:
            jmp_name, jreg, jimm, _mname, mreg, mimm = op
            label = f"fuzz_{label_counter}"
            label_counter += 1
            getattr(asm, jmp_name)(jreg, jimm, label)
            asm.mov_imm(mreg, mimm)
            asm.label(label)
    asm.mov_imm(Reg.R0, 0)
    asm.exit_()
    return asm.build()


@given(ops=st.lists(_op, min_size=0, max_size=25),
       ctx=st.binary(min_size=CTX_SIZE, max_size=CTX_SIZE))
@settings(max_examples=300, **_FUZZ_SETTINGS)
def test_fuzz_fast_path_matches_reference(ops, ctx):
    insns = _build(ops)
    try:
        verify(insns, ProgType.tracepoint_sys_enter())
    except VerifierError:
        assume(False)
    reference = Vm().execute(insns, ctx)
    fast = FastVm(cache=TranslationCache()).execute(insns, ctx)
    assert (fast.r0, fast.steps, fast.cost_ns) == \
        (reference.r0, reference.steps, reference.cost_ns)


# ----------------------------------------------------------------------
# fault-for-fault equality (unverified programs, exercised deliberately)
# ----------------------------------------------------------------------

def _both_fault(insns, ctx=b"\x00" * CTX_SIZE):
    with pytest.raises(VmFault) as reference:
        Vm().execute(insns, ctx)
    with pytest.raises(VmFault) as fast:
        FastVm(cache=TranslationCache()).execute(insns, ctx)
    assert str(fast.value) == str(reference.value)
    return str(fast.value)


class TestFaultParity:
    def test_mov_from_uninitialized(self):
        asm = Asm()
        asm.mov_reg(Reg.R0, Reg.R5)
        asm.exit_()
        assert "uninitialized" in _both_fault(asm.build())

    def test_alu_on_uninitialized(self):
        asm = Asm()
        asm.add_imm(Reg.R3, 4)
        asm.exit_()
        assert "uninitialized" in _both_fault(asm.build())

    def test_out_of_bounds_store(self):
        asm = Asm()
        asm.mov_imm(Reg.R2, 1)
        asm.stx(MemSize.DW, Reg.R10, 8, Reg.R2)  # above the stack top
        asm.exit_()
        assert "out-of-bounds" in _both_fault(asm.build())

    def test_write_to_read_only_ctx(self):
        asm = Asm()
        asm.mov_imm(Reg.R2, 1)
        asm.stx(MemSize.DW, Reg.R1, 0, Reg.R2)
        asm.exit_()
        assert "read-only" in _both_fault(asm.build())

    def test_store_of_non_scalar(self):
        asm = Asm()
        asm.stx(MemSize.DW, Reg.R10, -8, Reg.R1)  # R1 is the ctx pointer
        asm.exit_()
        assert "non-scalar" in _both_fault(asm.build())

    def test_load_through_non_pointer(self):
        asm = Asm()
        asm.mov_imm(Reg.R2, 5)
        asm.ldx(MemSize.DW, Reg.R0, Reg.R2, 0)
        asm.exit_()
        assert "non-pointer" in _both_fault(asm.build())

    def test_jump_out_of_bounds(self):
        insns = [Insn(opcode=0x05, off=40)]  # ja +40, far past the end
        assert "pc 41 out of program bounds" in _both_fault(insns)

    def test_unknown_helper_id(self):
        asm = Asm()
        asm.call(9999)
        asm.exit_()
        assert _both_fault(asm.build()) == "unknown helper id 9999"

    def test_exit_with_non_scalar_r0(self):
        asm = Asm()
        asm.mov_reg(Reg.R0, Reg.R1)
        asm.exit_()
        assert "non-scalar r0" in _both_fault(asm.build())

    def test_unresolved_map_reference(self):
        asm = Asm()
        asm.ld_map_fd(Reg.R1, "nowhere")
        asm.mov_imm(Reg.R0, 0)
        asm.exit_()
        assert "unresolved map reference" in _both_fault(asm.build())

    def test_jump_into_ld_imm64_second_slot(self):
        insns = [
            Insn(opcode=0x05, off=1),  # ja +1 -> lands mid-pair
            Insn(opcode=0x18, dst=0, imm=7),
            Insn(opcode=0x00, imm=0),
            Insn(opcode=0x95),
        ]
        assert "unsupported LD insn" in _both_fault(insns)

    def test_instruction_budget_exhausted(self, monkeypatch):
        import repro.ebpf.fastvm as fastvm_mod
        import repro.ebpf.vm as vm_mod
        monkeypatch.setattr(vm_mod, "MAX_STEPS", 64)
        monkeypatch.setattr(fastvm_mod, "MAX_STEPS", 64)
        insns = [Insn(opcode=0x05, off=-1)]  # ja -1: infinite loop
        assert "budget exhausted" in _both_fault(insns)

    def test_empty_program(self):
        assert "pc 0 out of program bounds" in _both_fault([])


# ----------------------------------------------------------------------
# translation cache behaviour
# ----------------------------------------------------------------------

class TestTranslationCache:
    def _program_insns(self):
        asm = Asm()
        asm.mov_imm(Reg.R0, 3)
        asm.add_imm(Reg.R0, 4)
        asm.exit_()
        return asm.build()

    def test_identity_memo_hits(self):
        cache = TranslationCache()
        insns = self._program_insns()
        first = cache.get(insns)
        second = cache.get(insns)
        assert first is second
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["translations"] == 1
        assert stats["translate_ns"] > 0

    def test_equal_blobs_share_translation(self):
        cache = TranslationCache()
        a = self._program_insns()
        b = self._program_insns()
        assert a is not b
        assert cache.get(a) is cache.get(b)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_same_blob_different_maps_not_shared(self):
        cache = TranslationCache()

        def with_map(bpf_map):
            asm = Asm()
            asm.ld_map_fd(Reg.R1, bpf_map)
            asm.mov_imm(Reg.R0, 0)
            asm.exit_()
            return asm.build()

        a = with_map(HashMap(8, 8, name="m"))
        b = with_map(HashMap(8, 8, name="m"))
        assert cache.get(a) is not cache.get(b)
        assert cache.misses == 2

    def test_eviction_bound(self):
        cache = TranslationCache(max_entries=4)
        for value in range(10):
            asm = Asm()
            asm.mov_imm(Reg.R0, value)
            asm.exit_()
            cache.get(asm.build())
        assert len(cache) == 4

    def test_purge_keeps_hot_attach_site_memoized(self):
        """Regression: the identity-memo purge at ``4 * max_entries`` used
        to be a wholesale ``clear()``, evicting the hot attach site's memo
        along with the cold ones mid-run.  Now only memos whose blob left
        ``_by_blob`` (plus cold second-chance victims) are shed — the
        steadily-firing site keeps its *original* memo object across every
        purge, while the churn stays bounded."""
        cache = TranslationCache(max_entries=8)
        hot = self._program_insns()
        cache.get(hot)
        hot_memo = cache._by_seq[id(hot)]

        def rebuild_cold():
            asm = Asm()
            asm.mov_imm(Reg.R0, 99)
            asm.sub_imm(Reg.R0, 1)
            asm.exit_()
            return asm.build()

        churn = []  # keep identities alive so ids are never recycled
        for _ in range(20 * cache.max_entries):
            cold = rebuild_cold()
            churn.append(cold)
            cache.get(cold)
            cache.get(hot)

        # Purges definitely ran (160 memos created, budget is 32) and
        # bounded the table, yet the hot site still holds the exact memo
        # object from before the churn: every one of its lookups stayed
        # on the identity fast path.
        assert len(cache._by_seq) <= 4 * cache.max_entries + 1
        assert cache._by_seq.get(id(hot)) is hot_memo
        hits = cache.hits
        assert cache.get(hot) is hot_memo[1]["fast"]
        assert cache.hits == hits + 1
        assert cache.misses == 2  # hot + the one shared cold content

    def test_purge_drops_memos_of_evicted_blobs(self):
        """Memos whose translation aged out of the blob LRU are dead
        weight (a lookup through them can't be served) and are dropped at
        purge time; memos whose blob is still resident survive."""
        cache = TranslationCache(max_entries=2)

        def distinct(value):
            asm = Asm()
            asm.mov_imm(Reg.R0, value)
            asm.exit_()
            return asm.build()

        keep_alive = [distinct(v) for v in range(10)]
        for insns in keep_alive:
            cache.get(insns)
        # The 10th identity crossed the 4 * max_entries budget: a purge
        # ran, and everything whose blob had aged out of the 2-entry LRU
        # was shed — the table holds at most the resident survivors plus
        # the memo added after the purge.
        assert len(cache._by_seq) <= cache.max_entries + 1
        assert len(cache._by_seq) < len(keep_alive)

    def test_attached_bpf_reuses_one_translation(self):
        """The BPF frontend's millions-of-firings path: one miss, then hits."""
        cache = TranslationCache()
        vm = FastVm(cache=cache)
        state = ArrayMap(value_size=_DELTA_VALUE_SIZE, max_entries=1, name="state")
        program = (build_delta_program("state", TGID, [0])
                   .resolve_maps({"state": state}).verify())
        for ctx in _enter_seq(count=25, seed=9):
            runtime = HelperRuntime(ktime_ns=ctx.ktime_ns, pid_tgid=ctx.pid_tgid, cpu_id=0)
            vm.execute(program.insns, pack_sys_enter(ctx), runtime)
        assert cache.misses == 1
        assert cache.hits == 24


def test_program_decoded_uses_global_cache():
    from repro.ebpf import clear_translation_cache, translation_cache_stats

    clear_translation_cache()
    state = ArrayMap(value_size=_DELTA_VALUE_SIZE, max_entries=1, name="state")
    program = (build_delta_program("state", TGID, [0])
               .resolve_maps({"state": state}).verify())
    decoded = program.decoded()
    assert len(decoded) == len(program.insns)
    assert program.decoded() is decoded
    stats = translation_cache_stats()
    assert stats["misses"] == 1 and stats["hits"] == 1
