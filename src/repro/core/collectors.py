"""In-kernel metric collectors.

Two collector shapes cover everything the paper measures:

* :class:`DeltaCollector` — for ``send``/``recv`` families: accumulates
  {count, sum, sumsq} of **inter-syscall deltas** across *all threads of the
  target process, aggregated into a single trace* (§IV-C-1's "most effective
  strategy").  Feeds Eq. 1 (``RPS_obsv``) and Eq. 2 (variance).
* :class:`DurationCollector` — for the ``poll`` family: Listing 1's
  enter-timestamp hash keyed by ``pid_tgid`` plus duration accumulation.
  Feeds the saturation-slack signal (Fig. 4).

Each collector runs in one of two modes:

* ``mode="vm"`` — a genuine eBPF program, assembled here, verified, and
  interpreted per tracepoint firing (the honest reproduction);
* ``mode="native"`` — a Python probe performing the **identical integer
  arithmetic** (a fast path for large parameter sweeps).

Equivalence of the two modes on identical traces is asserted by
``tests/core/test_collector_equivalence.py`` and benchmarked by ABL-VM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..ebpf.asm import Asm
from ..ebpf.bcc import BPF
from ..ebpf.context import ProgType
from ..ebpf.maps import ArrayMap, HashMap
from ..ebpf.opcodes import MemSize, Reg
from ..ebpf.helpers import Helper
from ..ebpf.program import Program
from ..kernel.kernel import Kernel
from .config import CollectorConfig, resolve_collector_config
from .deltas import DeltaStats
from .histograms import NBUCKETS, DeltaHistogram

__all__ = ["DeltaCollector", "DurationCollector", "DurationStats",
           "build_delta_program", "build_duration_programs"]

# Slot offsets (bytes) in the delta collector's single array entry.
_LAST = 0
_COUNT = 8
_SUM = 16
_SUMSQ = 24
_FIRST = 32
_EVENTS = 40
_DELTA_VALUE_SIZE = 48

# Slot offsets in the duration collector's entry.
_D_COUNT = 0
_D_SUM = 8
_D_SUMSQ = 16
_DUR_VALUE_SIZE = 24

_U64 = (1 << 64) - 1


def _emit_prologue(asm: Asm, tgid: int, syscall_nrs: Sequence[int]) -> None:
    """Common filter: bail unless current tgid and syscall id match."""
    asm.mov_reg(Reg.R9, Reg.R1)  # save ctx across helper calls
    asm.call(Helper.GET_CURRENT_PID_TGID)
    asm.rsh_imm(Reg.R0, 32)
    asm.jne_imm(Reg.R0, tgid, "out")
    asm.ldx(MemSize.DW, Reg.R8, Reg.R9, 8)  # args->id
    for nr in syscall_nrs:
        asm.jeq_imm(Reg.R8, nr, "matched")
    asm.ja("out")
    asm.label("matched")


def _emit_epilogue(asm: Asm) -> None:
    asm.label("out")
    asm.mov_imm(Reg.R0, 0)
    asm.exit_()


def _emit_hist_update(asm: Asm, hist_map: str, cpus: int) -> None:
    """In-probe log2 bucketing: count the delta in R3 into ``hist_map``.

    Emitted inside the ``have_last`` branch with R0 = the delta state
    pointer and R3 = the just-accumulated delta.  The bucket index is the
    delta's bit length, computed by an unrolled binary search (shifts and
    compares only — no loops, verifier-clean); the hist array is keyed
    ``cpu * NBUCKETS + bucket`` so the per-CPU sharding discipline matches
    the delta state's.  R0 is saved in callee-saved R6 across the lookup
    and restored, so the surrounding program is undisturbed.  Note the
    64-bit delta cannot be compared against a 32-bit jump immediate
    directly; the top half is tested via ``rsh 32``.
    """
    asm.mov_reg(Reg.R6, Reg.R0)          # save state pointer
    asm.mov_imm(Reg.R5, 0)               # R5 = bit length accumulator
    asm.mov_reg(Reg.R4, Reg.R3)          # R4 = working copy of delta
    asm.mov_reg(Reg.R1, Reg.R4)
    asm.rsh_imm(Reg.R1, 32)
    asm.jeq_imm(Reg.R1, 0, "bl32")
    asm.rsh_imm(Reg.R4, 32)
    asm.add_imm(Reg.R5, 32)
    asm.label("bl32")
    for shift, bound in ((16, 0xFFFF), (8, 0xFF), (4, 0xF), (2, 0x3), (1, 0x1)):
        asm.jle_imm(Reg.R4, bound, f"bl{shift}")
        asm.rsh_imm(Reg.R4, shift)
        asm.add_imm(Reg.R5, shift)
        asm.label(f"bl{shift}")
    asm.jeq_imm(Reg.R4, 0, "bl0")
    asm.add_imm(Reg.R5, 1)
    asm.label("bl0")
    if cpus > 1:
        # CPU id was stashed at fp-4 by the state lookup above.
        asm.ldx(MemSize.W, Reg.R4, Reg.R10, -4)
        asm.mul_imm(Reg.R4, NBUCKETS)
        asm.add_reg(Reg.R5, Reg.R4)
    asm.stx(MemSize.W, Reg.R10, -8, Reg.R5)
    asm.ld_map_fd(Reg.R1, hist_map)
    asm.mov_reg(Reg.R2, Reg.R10)
    asm.add_imm(Reg.R2, -8)
    asm.call(Helper.MAP_LOOKUP_ELEM)
    asm.jeq_imm(Reg.R0, 0, "hist_done")
    asm.ldx(MemSize.DW, Reg.R1, Reg.R0, 0)
    asm.add_imm(Reg.R1, 1)
    asm.stx(MemSize.DW, Reg.R0, 0, Reg.R1)
    asm.label("hist_done")
    asm.mov_reg(Reg.R0, Reg.R6)          # restore state pointer


def build_delta_program(map_name: str, tgid: int, syscall_nrs: Sequence[int],
                        prog_name: str = "delta_enter", cpus: int = 1,
                        hist_map: Optional[str] = None) -> Program:
    """sys_enter program accumulating inter-call delta statistics.

    With ``cpus == 1`` the state lives in a single array slot (key 0).
    With ``cpus > 1`` the program keys the array by
    ``bpf_get_smp_processor_id()`` — the real per-CPU-map discipline:
    each CPU accumulates into its own slot with no cross-CPU write
    sharing, and userspace merges the shards at window close.  A CPU id
    outside ``[0, cpus)`` finds no slot (NULL lookup) and the event is
    dropped, exactly as a per-CPU array sized below ``nr_cpus`` would.

    ``hist_map`` names an optional ``cpus * NBUCKETS``-slot array map; when
    given, the same program also buckets each delta into an in-probe log2
    histogram (the export pipeline's distribution signal) — one combined
    program, so enabling export costs a bucket computation on the existing
    probe rather than a second prologue + clock read + state lookup.
    """
    if not syscall_nrs:
        raise ValueError("need at least one syscall number")
    if cpus < 1:
        raise ValueError("need at least one CPU shard")
    asm = Asm()
    _emit_prologue(asm, tgid, syscall_nrs)
    asm.call(Helper.KTIME_GET_NS)
    asm.mov_reg(Reg.R7, Reg.R0)  # now
    # state = lookup(map, key = cpu shard)
    if cpus == 1:
        asm.st_imm(MemSize.W, Reg.R10, -4, 0)
    else:
        asm.call(Helper.GET_SMP_PROCESSOR_ID)
        asm.stx(MemSize.W, Reg.R10, -4, Reg.R0)
    asm.ld_map_fd(Reg.R1, map_name)
    asm.mov_reg(Reg.R2, Reg.R10)
    asm.add_imm(Reg.R2, -4)
    asm.call(Helper.MAP_LOOKUP_ELEM)
    asm.jeq_imm(Reg.R0, 0, "out")
    # if (events == 0) { first = now; } else { accumulate delta }
    asm.ldx(MemSize.DW, Reg.R1, Reg.R0, _EVENTS)
    asm.jne_imm(Reg.R1, 0, "have_last")
    asm.stx(MemSize.DW, Reg.R0, _FIRST, Reg.R7)
    asm.ja("finish")
    asm.label("have_last")
    asm.ldx(MemSize.DW, Reg.R2, Reg.R0, _LAST)
    asm.mov_reg(Reg.R3, Reg.R7)
    asm.sub_reg(Reg.R3, Reg.R2)  # delta = now - last
    asm.ldx(MemSize.DW, Reg.R4, Reg.R0, _COUNT)
    asm.add_imm(Reg.R4, 1)
    asm.stx(MemSize.DW, Reg.R0, _COUNT, Reg.R4)
    asm.ldx(MemSize.DW, Reg.R4, Reg.R0, _SUM)
    asm.add_reg(Reg.R4, Reg.R3)
    asm.stx(MemSize.DW, Reg.R0, _SUM, Reg.R4)
    asm.mov_reg(Reg.R5, Reg.R3)
    asm.mul_reg(Reg.R5, Reg.R3)  # delta^2
    asm.ldx(MemSize.DW, Reg.R4, Reg.R0, _SUMSQ)
    asm.add_reg(Reg.R4, Reg.R5)
    asm.stx(MemSize.DW, Reg.R0, _SUMSQ, Reg.R4)
    if hist_map is not None:
        _emit_hist_update(asm, hist_map, cpus)
    asm.label("finish")
    asm.stx(MemSize.DW, Reg.R0, _LAST, Reg.R7)
    asm.ldx(MemSize.DW, Reg.R1, Reg.R0, _EVENTS)
    asm.add_imm(Reg.R1, 1)
    asm.stx(MemSize.DW, Reg.R0, _EVENTS, Reg.R1)
    _emit_epilogue(asm)
    return Program(prog_name, asm.build(), ProgType.tracepoint_sys_enter())


def build_duration_programs(
    start_map: str,
    state_map: str,
    tgid: int,
    syscall_nrs: Sequence[int],
    prog_prefix: str = "dur",
) -> Tuple[Program, Program]:
    """Listing-1-style (enter, exit) programs measuring syscall duration."""
    if not syscall_nrs:
        raise ValueError("need at least one syscall number")

    enter = Asm()
    _emit_prologue(enter, tgid, syscall_nrs)
    # start[pid_tgid] = ktime
    enter.call(Helper.GET_CURRENT_PID_TGID)
    enter.stx(MemSize.DW, Reg.R10, -8, Reg.R0)
    enter.call(Helper.KTIME_GET_NS)
    enter.stx(MemSize.DW, Reg.R10, -16, Reg.R0)
    enter.ld_map_fd(Reg.R1, start_map)
    enter.mov_reg(Reg.R2, Reg.R10)
    enter.add_imm(Reg.R2, -8)
    enter.mov_reg(Reg.R3, Reg.R10)
    enter.add_imm(Reg.R3, -16)
    enter.mov_imm(Reg.R4, 0)
    enter.call(Helper.MAP_UPDATE_ELEM)
    _emit_epilogue(enter)

    exit_ = Asm()
    _emit_prologue(exit_, tgid, syscall_nrs)
    # start_ns = start[pid_tgid]; if missing, skip
    exit_.call(Helper.GET_CURRENT_PID_TGID)
    exit_.stx(MemSize.DW, Reg.R10, -8, Reg.R0)
    exit_.ld_map_fd(Reg.R1, start_map)
    exit_.mov_reg(Reg.R2, Reg.R10)
    exit_.add_imm(Reg.R2, -8)
    exit_.call(Helper.MAP_LOOKUP_ELEM)
    exit_.jeq_imm(Reg.R0, 0, "out")
    exit_.ldx(MemSize.DW, Reg.R6, Reg.R0, 0)
    # duration = ktime - start_ns
    exit_.call(Helper.KTIME_GET_NS)
    exit_.sub_reg(Reg.R0, Reg.R6)
    exit_.mov_reg(Reg.R7, Reg.R0)
    # state = lookup(state_map, 0); accumulate
    exit_.st_imm(MemSize.W, Reg.R10, -4, 0)
    exit_.ld_map_fd(Reg.R1, state_map)
    exit_.mov_reg(Reg.R2, Reg.R10)
    exit_.add_imm(Reg.R2, -4)
    exit_.call(Helper.MAP_LOOKUP_ELEM)
    exit_.jeq_imm(Reg.R0, 0, "out")
    exit_.ldx(MemSize.DW, Reg.R1, Reg.R0, _D_COUNT)
    exit_.add_imm(Reg.R1, 1)
    exit_.stx(MemSize.DW, Reg.R0, _D_COUNT, Reg.R1)
    exit_.ldx(MemSize.DW, Reg.R1, Reg.R0, _D_SUM)
    exit_.add_reg(Reg.R1, Reg.R7)
    exit_.stx(MemSize.DW, Reg.R0, _D_SUM, Reg.R1)
    exit_.mov_reg(Reg.R5, Reg.R7)
    exit_.mul_reg(Reg.R5, Reg.R7)
    exit_.ldx(MemSize.DW, Reg.R1, Reg.R0, _D_SUMSQ)
    exit_.add_reg(Reg.R1, Reg.R5)
    exit_.stx(MemSize.DW, Reg.R0, _D_SUMSQ, Reg.R1)
    _emit_epilogue(exit_)

    return (
        Program(f"{prog_prefix}_enter", enter.build(), ProgType.tracepoint_sys_enter()),
        Program(f"{prog_prefix}_exit", exit_.build(), ProgType.tracepoint_sys_exit()),
    )


def _read_u64(entry: bytearray, offset: int) -> int:
    return int.from_bytes(entry[offset : offset + 8], "little")


def _write_u64(entry: bytearray, offset: int, value: int) -> None:
    entry[offset : offset + 8] = (value & _U64).to_bytes(8, "little")


class DeltaCollector:
    """Inter-syscall delta statistics for one syscall set of one process.

    ``cpus`` shards the delta state per simulated CPU, mirroring real
    per-CPU maps: each shard accumulates its own {count, sum, sumsq,
    last} with no cross-CPU write sharing, and :meth:`snapshot` merges
    the shards in CPU order at the window boundary.  ``cpu_of`` maps a
    tracepoint context to its CPU (default: ``tid % cpus``, the same
    thread-pinning model the streaming collector uses).  With the
    default ``cpus=1`` the behaviour — program bytes, steps, cost —
    is exactly the unsharded collector's.

    Construction is driven by a :class:`~repro.core.config.CollectorConfig`
    (or a bare mode string); a config with ``export`` set additionally
    maintains the in-probe log2 delta histogram the export pipeline
    consumes (:meth:`hist_snapshot`).  The per-knob keywords (``mode``,
    ``charge_cost``, ``vm_tier``, ``cpus``) are removed: supplying any of
    them raises :class:`TypeError` with the migration hint.
    """

    def __init__(
        self,
        kernel: Kernel,
        tgid: int,
        syscall_nrs: Iterable[int],
        config: Union[None, str, CollectorConfig] = None,
        *,
        name: str = "delta",
        cpu_of: Optional[Callable[[object], int]] = None,
        mode: Optional[str] = None,
        charge_cost: Optional[bool] = None,
        vm_tier: Optional[str] = None,
        cpus: Optional[int] = None,
    ) -> None:
        config = resolve_collector_config(
            config, "DeltaCollector",
            mode=mode, charge_cost=charge_cost, vm_tier=vm_tier, cpus=cpus,
        )
        if config.mode not in ("native", "vm"):
            raise ValueError(f"unknown mode {config.mode!r}")
        self.config = config
        self.kernel = kernel
        self.tgid = tgid
        self.syscall_nrs = tuple(syscall_nrs)
        if not self.syscall_nrs:
            raise ValueError("need at least one syscall number")
        self.mode = config.mode
        self.name = name
        self.cpus = config.cpus
        with_hist = config.export is not None
        self._cpu_of = (cpu_of if cpu_of is not None
                        else (lambda ctx: ctx.tid % self.cpus))
        self._attached = False
        if self.mode == "vm":
            self._map = ArrayMap(value_size=_DELTA_VALUE_SIZE,
                                 max_entries=self.cpus, name=f"{name}_state")
            maps = {f"{name}_state": self._map}
            self._hist_map: Optional[ArrayMap] = None
            if with_hist:
                self._hist_map = ArrayMap(value_size=8,
                                          max_entries=self.cpus * NBUCKETS,
                                          name=f"{name}_hist")
                maps[f"{name}_hist"] = self._hist_map
            program = build_delta_program(
                f"{name}_state", tgid, self.syscall_nrs,
                prog_name=f"{name}_enter", cpus=self.cpus,
                hist_map=f"{name}_hist" if with_hist else None,
            )
            self._bpf = BPF(kernel, maps=maps, programs=[program],
                            config=config,
                            cpu_of=self._cpu_of if self.cpus > 1 else None)
            # The in-kernel _EVENTS slot doubles as the "have an anchor
            # timestamp" flag, so after reset_window() it reads 1 even
            # though the anchor belongs to the previous window; userspace
            # tracks carried-ness per shard so snapshots report true
            # event counts.
            self._carried: List[bool] = [False] * self.cpus
        else:
            self._bpf = None
            self._stats = DeltaStats()
            self._shards: List[DeltaStats] = (
                [self._stats] if self.cpus == 1
                else [DeltaStats() for _ in range(self.cpus)])
            self._hists: Optional[List[DeltaHistogram]] = (
                [DeltaHistogram() for _ in range(self.cpus)]
                if with_hist else None)
            self._nr_set = frozenset(self.syscall_nrs)

    @property
    def bpf(self) -> Optional[BPF]:
        """The underlying BPF object (``None`` in native mode)."""
        return self._bpf

    # -- lifecycle ---------------------------------------------------------
    def attach(self) -> "DeltaCollector":
        if self._attached:
            raise RuntimeError("collector already attached")
        if self.mode == "vm":
            self._bpf.attach_tracepoint("raw_syscalls:sys_enter", f"{self.name}_enter")
        else:
            self.kernel.tracepoints.sys_enter.attach(self._native_probe)
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        if self.mode == "vm":
            self._bpf.detach_all()
        else:
            self.kernel.tracepoints.sys_enter.detach(self._native_probe)
        self._attached = False

    def _native_probe(self, ctx) -> int:
        if ctx.pid_tgid >> 32 != self.tgid:
            return 0
        if ctx.syscall_nr not in self._nr_set:
            return 0
        if self.cpus == 1:
            if self._hists is not None and self._stats.last_ns is not None:
                self._hists[0].observe(ctx.ktime_ns - self._stats.last_ns)
            self._stats.add_timestamp(ctx.ktime_ns)
            return 0
        # Mirror the sharded program exactly: the 4-byte array key wraps
        # the CPU id, and an id outside [0, cpus) finds no slot.
        cpu = self._cpu_of(ctx) & 0xFFFFFFFF
        if cpu < self.cpus:
            shard = self._shards[cpu]
            if self._hists is not None and shard.last_ns is not None:
                self._hists[cpu].observe(ctx.ktime_ns - shard.last_ns)
            shard.add_timestamp(ctx.ktime_ns)
        return 0

    # -- window access -----------------------------------------------------
    def _shard_snapshot(self, cpu: int) -> Optional[DeltaStats]:
        """One shard's window statistics, or ``None`` for an untouched shard."""
        if self.mode == "native":
            s = self._shards[cpu]
            if s.events == 0 and not s.carried:
                return None
            return DeltaStats(count=s.count, sum=s.sum, sumsq=s.sumsq,
                              first_ns=s.first_ns, last_ns=s.last_ns,
                              carried=s.carried, events=s.events)
        entry = self._map.lookup(self._map.key_of(cpu))
        events = _read_u64(entry, _EVENTS)
        if events == 0:
            return None
        # While no event has landed since reset, the entry still holds the
        # carried anchor only; once events grow past the anchor the window
        # is carried iff it was reset with an anchor.  The in-kernel slot
        # counts the anchor, so the window's own event count excludes it.
        return DeltaStats(
            count=_read_u64(entry, _COUNT),
            sum=_read_u64(entry, _SUM),
            sumsq=_read_u64(entry, _SUMSQ),
            first_ns=_read_u64(entry, _FIRST),
            last_ns=_read_u64(entry, _LAST),
            carried=self._carried[cpu],
            events=events - 1 if self._carried[cpu] else events,
        )

    def snapshot(self) -> DeltaStats:
        """Current window's statistics (a copy; window keeps accumulating).

        With ``cpus > 1`` the per-CPU shards are merged in CPU order —
        the userspace half of the per-CPU-map discipline.  A single
        active shard (and any ``cpus == 1`` configuration) passes
        through unmerged, preserving the unsharded carried semantics.
        """
        merged: Optional[DeltaStats] = None
        for cpu in range(self.cpus):
            shard = self._shard_snapshot(cpu)
            if shard is None:
                continue
            merged = shard if merged is None else merged.merge(shard)
        return merged if merged is not None else DeltaStats()

    def hist_snapshot(self) -> Optional[DeltaHistogram]:
        """Current window's log2 delta histogram, shards merged (a copy).

        ``None`` unless the collector was built with ``export`` enabled.
        The histogram buckets exactly the deltas the window's
        :class:`~repro.core.deltas.DeltaStats` accumulates, so
        ``hist_snapshot().total == snapshot().count`` always holds.
        """
        if self.config.export is None:
            return None
        if self.mode == "native":
            merged = DeltaHistogram()
            for shard_hist in self._hists:
                merged = merged.merge(shard_hist)
            return merged
        hist = DeltaHistogram()
        for cpu in range(self.cpus):
            base = cpu * NBUCKETS
            for bucket in range(NBUCKETS):
                hist.counts[bucket] += self._hist_map.lookup_int(base + bucket)
        return hist

    def reset_window(self) -> None:
        """Zero the accumulators; the next delta spans the boundary."""
        if self.mode == "native":
            for shard in self._shards:
                shard.reset_window()
            if self._hists is not None:
                for shard_hist in self._hists:
                    shard_hist.reset()
            return
        for cpu in range(self.cpus):
            entry = self._map.lookup(self._map.key_of(cpu))
            events = _read_u64(entry, _EVENTS)
            _write_u64(entry, _COUNT, 0)
            _write_u64(entry, _SUM, 0)
            _write_u64(entry, _SUMSQ, 0)
            if events > 0:
                _write_u64(entry, _FIRST, _read_u64(entry, _LAST))
                _write_u64(entry, _EVENTS, 1)
                self._carried[cpu] = True
        if self._hist_map is not None:
            for slot in range(self.cpus * NBUCKETS):
                self._hist_map.update_int(slot, 0)


@dataclass
class DurationStats:
    """Accumulated syscall durations (integer ns, eBPF-computable)."""

    count: int = 0
    sum: int = 0
    sumsq: int = 0

    def mean_ns(self) -> int:
        return self.sum // self.count if self.count else 0

    def variance_ns2(self) -> int:
        if not self.count:
            return 0
        mean = self.sum // self.count
        return self.sumsq // self.count - mean * mean

    def merge(self, other: "DurationStats") -> "DurationStats":
        """Combine two disjoint windows (duration populations concatenate)."""
        return DurationStats(
            count=self.count + other.count,
            sum=self.sum + other.sum,
            sumsq=self.sumsq + other.sumsq,
        )


class DurationCollector:
    """Syscall duration statistics (Listing 1 generalized to a process).

    Takes the same :class:`~repro.core.config.CollectorConfig` (or mode
    string) as :class:`DeltaCollector`; fields with no duration-side
    meaning (``cpus``, ``capacity``, ``export``) are ignored, which is what
    lets one config describe a whole monitor's collector set.
    """

    def __init__(
        self,
        kernel: Kernel,
        tgid: int,
        syscall_nrs: Iterable[int],
        config: Union[None, str, CollectorConfig] = None,
        *,
        name: str = "dur",
        mode: Optional[str] = None,
        charge_cost: Optional[bool] = None,
        vm_tier: Optional[str] = None,
    ) -> None:
        config = resolve_collector_config(
            config, "DurationCollector",
            mode=mode, charge_cost=charge_cost, vm_tier=vm_tier,
        )
        if config.mode not in ("native", "vm"):
            raise ValueError(f"unknown mode {config.mode!r}")
        self.config = config
        self.kernel = kernel
        self.tgid = tgid
        self.syscall_nrs = tuple(syscall_nrs)
        if not self.syscall_nrs:
            raise ValueError("need at least one syscall number")
        self.mode = config.mode
        self.name = name
        self._attached = False
        if self.mode == "vm":
            self._start = HashMap(key_size=8, value_size=8, max_entries=4096,
                                  name=f"{name}_start")
            self._state = ArrayMap(value_size=_DUR_VALUE_SIZE, max_entries=1,
                                   name=f"{name}_state")
            enter, exit_ = build_duration_programs(
                f"{name}_start", f"{name}_state", tgid, self.syscall_nrs,
                prog_prefix=name,
            )
            self._bpf = BPF(
                kernel,
                maps={f"{name}_start": self._start, f"{name}_state": self._state},
                programs=[enter, exit_],
                config=config,
            )
        else:
            self._bpf = None
            self._open: Dict[int, int] = {}
            self._stats = DurationStats()
            self._nr_set = frozenset(self.syscall_nrs)

    @property
    def bpf(self) -> Optional[BPF]:
        """The underlying BPF object (``None`` in native mode)."""
        return self._bpf

    def attach(self) -> "DurationCollector":
        if self._attached:
            raise RuntimeError("collector already attached")
        if self.mode == "vm":
            self._bpf.attach_tracepoint("raw_syscalls:sys_enter", f"{self.name}_enter")
            self._bpf.attach_tracepoint("raw_syscalls:sys_exit", f"{self.name}_exit")
        else:
            self.kernel.tracepoints.sys_enter.attach(self._native_enter)
            self.kernel.tracepoints.sys_exit.attach(self._native_exit)
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        if self.mode == "vm":
            self._bpf.detach_all()
        else:
            self.kernel.tracepoints.sys_enter.detach(self._native_enter)
            self.kernel.tracepoints.sys_exit.detach(self._native_exit)
        self._attached = False

    def _wanted(self, ctx) -> bool:
        return ctx.pid_tgid >> 32 == self.tgid and ctx.syscall_nr in self._nr_set

    def _native_enter(self, ctx) -> int:
        if self._wanted(ctx):
            self._open[ctx.pid_tgid] = ctx.ktime_ns
        return 0

    def _native_exit(self, ctx) -> int:
        if self._wanted(ctx):
            start_ns = self._open.get(ctx.pid_tgid)
            if start_ns is not None:
                duration = ctx.ktime_ns - start_ns
                self._stats.count += 1
                self._stats.sum += duration
                self._stats.sumsq += duration * duration
        return 0

    def snapshot(self) -> DurationStats:
        if self.mode == "native":
            s = self._stats
            return DurationStats(count=s.count, sum=s.sum, sumsq=s.sumsq)
        entry = self._state.lookup(self._state.key_of(0))
        return DurationStats(
            count=_read_u64(entry, _D_COUNT),
            sum=_read_u64(entry, _D_SUM),
            sumsq=_read_u64(entry, _D_SUMSQ),
        )

    def reset_window(self) -> None:
        if self.mode == "native":
            self._stats = DurationStats()
            return
        entry = self._state.lookup(self._state.key_of(0))
        for offset in (_D_COUNT, _D_SUM, _D_SUMSQ):
            _write_u64(entry, offset, 0)
