"""EXP-CORR — blind-spot detection and false-positive rates per scenario.

The cross-layer correlator (:mod:`repro.analysis.correlate`) joins the
windowed eBPF-side snapshots with the client's ground-truth outcome log
and labels each window AGREE_HEALTHY / AGREE_DEGRADED / KERNEL_SILENT /
APP_SILENT.  This benchmark runs the full adversarial scenario pack
(:data:`repro.faults.SCENARIOS`) against all nine workloads and measures,
per scenario:

* **detection rate** — the fraction of workloads on which the scenario
  produced its annotated taxonomy label (the ``clean`` control counts as
  detected only when *every* window is AGREE_HEALTHY);
* **false-positive rate** — over the ``clean`` control cells, the
  fraction of windows labelled discrepant (KERNEL_SILENT or APP_SILENT).
  A correlator that cries wolf on healthy runs is worthless, so the
  documented bound is exactly zero.

Documented bounds asserted here:

* every scenario's detection rate is 1.0 across the workload grid;
* the clean false-positive rate is 0.0 — no healthy window is ever
  labelled discrepant, on any workload;
* the app-invisible scenarios (``fragmented-writes``, ``slow-drain``)
  never violate client QoS — the pathology really is invisible to the
  app layer, so only the kernel side could have reported it.

Runs two ways:

* under pytest-benchmark with the rest of the suite
  (``pytest benchmarks/bench_blind_spots.py --benchmark-only``);
* standalone for CI smoke (``python benchmarks/bench_blind_spots.py
  --smoke``), one representative workload per threading architecture
  with the same qualitative assertions.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Sequence

from repro.analysis import ExperimentSpec, save_record
from repro.analysis.correlate import AGREE_HEALTHY
from repro.faults import SCENARIOS, run_blind_spot_cell
from repro.workloads import get_workload, workload_keys

#: One representative per threading architecture (§IV-A): epoll
#: poll-loop, select poll-loop, dispatch pool, two-tier.  The smoke mode
#: covers these; the full bench covers all nine workloads.
ARCHETYPES = ("data-caching", "xapian", "triton-grpc", "web-search")

#: Scenarios whose pathology must stay invisible to the app layer.
APP_INVISIBLE = ("fragmented-writes", "slow-drain")


def _spec(key: str, requests: int) -> ExperimentSpec:
    definition = get_workload(key)
    rate = 0.5 * definition.paper_fail_rps
    return ExperimentSpec(
        workload=key,
        offered_rps=rate,
        requests=min(requests, max(240, int(rate * 0.3))),
    )


def run_blind_spots(workloads: Sequence[str], requests: int) -> dict:
    record = {"bench": "blind_spots", "scenarios": {}}
    for entry in SCENARIOS:
        cells = {}
        for key in workloads:
            result, report, fault_report = run_blind_spot_cell(
                _spec(key, requests), entry)
            if entry.expected_label == AGREE_HEALTHY:
                detected = report.clean
            else:
                detected = entry.expected_label in report.labels
            cells[key] = {
                "detected": detected,
                "counts": report.counts,
                "windows": len(report.windows),
                "discrepant_windows": len(report.discrepancies),
                "faults_applied": len(fault_report.applied),
                "qos_violated": result.qos_violated,
                "lost_records": result.lost_records,
                "completed": result.completed,
            }
            print(f"  {entry.key:<18} {key:<14} "
                  f"{'ok  ' if detected else 'MISS'} "
                  f"{ {k: v for k, v in report.counts.items() if v} }",
                  file=sys.stderr)
        detected_count = sum(1 for c in cells.values() if c["detected"])
        record["scenarios"][entry.key] = {
            "expected_label": entry.expected_label,
            "kind": entry.kind,
            "detection_rate": detected_count / len(cells),
            "cells": cells,
        }
    clean = record["scenarios"]["clean"]["cells"]
    total = sum(c["windows"] for c in clean.values())
    flagged = sum(c["discrepant_windows"] for c in clean.values())
    record["false_positive_rate"] = flagged / total if total else 0.0
    record["clean_windows"] = total
    return record


def check_bounds(record: dict) -> List[str]:
    """The documented EXP-CORR bounds; returns human-readable violations."""
    problems = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    for key, data in record["scenarios"].items():
        expect(data["detection_rate"] == 1.0,
               f"{key}: detection rate {data['detection_rate']:.2f} < 1.0 "
               f"(missed: {[w for w, c in data['cells'].items() if not c['detected']]})")
        for workload, cell in data["cells"].items():
            expect(cell["completed"] > 0, f"{key}/{workload}: no completions")
            if key in APP_INVISIBLE:
                expect(not cell["qos_violated"],
                       f"{key}/{workload}: QoS violated — the pathology "
                       "leaked into the app layer")
            if key == "slow-drain":
                expect(cell["lost_records"] > 0,
                       f"slow-drain/{workload}: no records dropped "
                       "(fault not exercised)")
    expect(record["false_positive_rate"] == 0.0,
           f"clean false-positive rate {record['false_positive_rate']:.4f} "
           f"> 0 over {record['clean_windows']} windows")
    return problems


def _summarize(record: dict, emit) -> None:
    emit(f"{'scenario':<18} {'expected':<14} {'kind':<12} detection")
    for key, data in record["scenarios"].items():
        emit(f"{key:<18} {data['expected_label']:<14} {data['kind']:<12} "
             f"{data['detection_rate']:.0%} of {len(data['cells'])} workloads")
    emit(f"clean false-positive rate: {record['false_positive_rate']:.4f} "
         f"over {record['clean_windows']} windows")


def test_blind_spots(benchmark):
    from conftest import emit, scaled

    record = benchmark.pedantic(
        lambda: run_blind_spots(workload_keys(),
                                requests=scaled(600, minimum=240)),
        rounds=1, iterations=1)
    save_record(record, "blind_spots")

    emit("EXP-CORR — blind-spot detection / false-positive rates")
    _summarize(record, emit)

    problems = check_bounds(record)
    assert not problems, "\n".join(problems)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="one workload per threading architecture")
    parser.add_argument("--requests", type=int, default=600)
    args = parser.parse_args(argv)
    workloads = ARCHETYPES if args.smoke else workload_keys()

    record = run_blind_spots(workloads, requests=args.requests)
    save_record(record, "blind_spots")
    _summarize(record, print)

    problems = check_bounds(record)
    for problem in problems:
        print(f"BOUND VIOLATED: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
