"""Inter-syscall delta statistics — the paper's primary signal (§III).

The methodology reduces a syscall trace to the stream of **deltas** between
consecutive occurrences, then keeps only what fits in a few integer map
slots: count, sum, and sum of squares.  From those three integers,

* Eq. 1 recovers throughput: ``RPS_obsv = 1 / mean(Δt_send)``;
* Eq. 2 recovers the saturation signal:
  ``var(Δt) = mean(Δt²) − mean(Δt)²``.

:class:`DeltaStats` is the exact arithmetic the in-kernel collector
performs: integer nanoseconds only (the eBPF verifier bans floats), with
the same truncating divisions.  Float conveniences are provided for
userspace analysis on drained windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..sim.timebase import SEC

__all__ = ["DeltaStats", "deltas_of", "variance_int"]


def deltas_of(timestamps: Sequence[int]) -> List[int]:
    """Deltas between consecutive timestamps of a sorted trace."""
    return [b - a for a, b in zip(timestamps, timestamps[1:])]


def variance_int(deltas: Iterable[int]) -> int:
    """Eq. 2 with pure integer arithmetic, as computable inside eBPF."""
    count = 0
    total = 0
    total_sq = 0
    for delta in deltas:
        count += 1
        total += delta
        total_sq += delta * delta
    if count == 0:
        return 0
    mean = total // count
    return total_sq // count - mean * mean


@dataclass
class DeltaStats:
    """Streaming {count, sum, sumsq} over deltas, plus window endpoints."""

    count: int = 0
    sum: int = 0
    sumsq: int = 0
    first_ns: Optional[int] = None
    last_ns: Optional[int] = None
    #: True when ``last_ns`` was inherited from the previous window by
    #: :meth:`reset_window` rather than observed in this one — the carried
    #: timestamp anchors the boundary-spanning delta but is not an event
    #: of this window.
    carried: bool = False
    #: Number of events observed in this window.  Tracked explicitly: it
    #: cannot be recovered from ``count`` + ``carried`` once windows are
    #: merged (two uncarried 3-event windows hold 4 deltas but 6 events).
    events: int = 0

    # -- kernel-side updates ----------------------------------------------
    def add_timestamp(self, ts_ns: int) -> None:
        """Feed the next event timestamp (must be monotone non-decreasing)."""
        if self.last_ns is not None:
            delta = ts_ns - self.last_ns
            if delta < 0:
                raise ValueError(f"timestamps went backwards ({self.last_ns} -> {ts_ns})")
            self.count += 1
            self.sum += delta
            self.sumsq += delta * delta
        else:
            self.first_ns = ts_ns
        self.last_ns = ts_ns
        self.events += 1

    def add_timestamps(self, timestamps: Iterable[int]) -> None:
        """Feed a monotone batch of event timestamps in one call.

        Bit-identical arithmetic to calling :meth:`add_timestamp` per
        element, but the accumulation runs over locals so a whole drained
        perf window costs one method call instead of one per record (the
        batched stream-collection path).
        """
        last = self.last_ns
        count = 0
        total = 0
        sumsq = 0
        events = 0
        for ts_ns in timestamps:
            if last is not None:
                delta = ts_ns - last
                if delta < 0:
                    raise ValueError(
                        f"timestamps went backwards ({last} -> {ts_ns})")
                count += 1
                total += delta
                sumsq += delta * delta
            else:
                self.first_ns = ts_ns
            last = ts_ns
            events += 1
        if events:
            self.count += count
            self.sum += total
            self.sumsq += sumsq
            self.last_ns = last
            self.events += events

    def add_delta(self, delta_ns: int) -> None:
        """Feed a pre-computed delta (used when merging partial traces)."""
        if delta_ns < 0:
            raise ValueError(f"negative delta {delta_ns}")
        self.count += 1
        self.sum += delta_ns
        self.sumsq += delta_ns * delta_ns

    def reset_window(self) -> None:
        """Start a new observation window, keeping the last timestamp so the
        next delta spans the window boundary correctly.

        The kept timestamp is marked *carried*: it anchors the next delta
        but does not count as an event of the new window (a freshly reset
        window has observed nothing yet)."""
        self.count = 0
        self.sum = 0
        self.sumsq = 0
        self.first_ns = self.last_ns
        self.carried = self.last_ns is not None
        self.events = 0

    # -- Eq. 1 / Eq. 2 ---------------------------------------------------
    def mean_delta_ns(self) -> int:
        """Integer mean inter-event time (0 when under two events)."""
        return self.sum // self.count if self.count else 0

    def variance_ns2(self) -> int:
        """Eq. 2, integer form (the in-kernel computation)."""
        if not self.count:
            return 0
        mean = self.sum // self.count
        return self.sumsq // self.count - mean * mean

    def variance_float(self) -> float:
        """Eq. 2 computed in floats (userspace analysis)."""
        if not self.count:
            return 0.0
        mean = self.sum / self.count
        return self.sumsq / self.count - mean * mean

    def rps_obsv(self) -> float:
        """Eq. 1: observed requests/second, ``1 / mean(Δt)``."""
        mean = self.mean_delta_ns()
        return SEC / mean if mean else 0.0

    def cov2(self) -> float:
        """Dispersion index ``var(Δt) / mean(Δt)²``.

        A rate-independent form of Eq. 2: raw variance scales like 1/λ² with
        load, so sparse senders look noisy at low RPS; dividing by the
        squared mean removes that trend, leaving the contention signature.
        Computable in eBPF integers as ``count·sumsq/sum² − 1`` (scaled).
        """
        mean = self.sum / self.count if self.count else 0.0
        if mean <= 0.0:
            return 0.0
        return self.variance_float() / (mean * mean)

    # -- composition -----------------------------------------------------
    def merge(self, other: "DeltaStats") -> "DeltaStats":
        """Combine two disjoint windows (delta populations are concatenated;
        window endpoints take the extremes)."""
        merged = DeltaStats(
            count=self.count + other.count,
            sum=self.sum + other.sum,
            sumsq=self.sumsq + other.sumsq,
        )
        firsts = [f for f in (self.first_ns, other.first_ns) if f is not None]
        lasts = [l for l in (self.last_ns, other.last_ns) if l is not None]
        merged.first_ns = min(firsts) if firsts else None
        merged.last_ns = max(lasts) if lasts else None
        merged.events = self.events + other.events
        # The merged anchor is carried iff no part contributed an
        # uncarried anchor of its own (all events are interior).
        merged.carried = merged.last_ns is not None and merged.events <= merged.count
        return merged

    @classmethod
    def from_timestamps(cls, timestamps: Sequence[int]) -> "DeltaStats":
        stats = cls()
        for ts in timestamps:
            stats.add_timestamp(ts)
        return stats
