"""Tests for the CPU scheduler and interference substrate."""

import pytest

from repro.kernel import CPU, InterferenceModel, MachineSpec, NullInterference
from repro.kernel.machine import InterferenceSpec
from repro.sim import MSEC, USEC, Environment, SeedSequence


def _spec(cores=2, quantum=1 * MSEC, ctx=0):
    return MachineSpec(name="test", cores=cores, quantum_ns=quantum, ctx_switch_ns=ctx)


def test_machine_spec_validation():
    with pytest.raises(ValueError):
        MachineSpec(name="bad", cores=0)
    with pytest.raises(ValueError):
        MachineSpec(name="bad", cores=1, quantum_ns=0)
    with pytest.raises(ValueError):
        MachineSpec(name="bad", cores=1, ctx_switch_ns=-1)


def test_with_cores():
    spec = _spec(cores=8)
    assert spec.with_cores(2).cores == 2
    assert spec.with_cores(2).name == spec.name


def test_interference_spec_validation():
    with pytest.raises(ValueError):
        InterferenceSpec(prob_per_occupancy=2.0)
    with pytest.raises(ValueError):
        InterferenceSpec(stall_mean_ns=-1)


def test_uncontended_execute_takes_exact_duration():
    env = Environment()
    cpu = CPU(env, _spec(cores=1))

    def job():
        yield from cpu.execute(5 * MSEC)
        return env.now

    p = env.process(job())
    assert env.run(until=p) == 5 * MSEC
    assert cpu.busy_ns == 5 * MSEC


def test_uncontended_job_runs_in_one_hold():
    env = Environment()
    cpu = CPU(env, MachineSpec(name="t", cores=1, quantum_ns=1 * MSEC, ctx_switch_ns=10 * USEC))

    def job():
        yield from cpu.execute(3 * MSEC)  # no contention -> single slice
        return env.now

    p = env.process(job())
    assert env.run(until=p) == 3 * MSEC + 10 * USEC


def test_contended_jobs_round_robin_by_quantum():
    env = Environment()
    cpu = CPU(env, _spec(cores=1, quantum=1 * MSEC))
    done = {}

    def job(tag):
        yield from cpu.execute(2 * MSEC)
        done[tag] = env.now

    env.process(job("a"))
    env.process(job("b"))
    env.run()
    # "b" queues before "a"'s grant event is processed, so "a" sees
    # contention and the two interleave in 1ms quanta:
    # a@[0,1) b@[1,2) a@[2,3) b@[3,4).
    assert done == {"a": 3 * MSEC, "b": 4 * MSEC}


def test_three_jobs_interleave_under_contention():
    env = Environment()
    cpu = CPU(env, _spec(cores=1, quantum=1 * MSEC))
    order = []

    def job(tag, duration):
        yield from cpu.execute(duration)
        order.append((tag, env.now))

    def late_job():
        yield env.timeout(100)  # arrives while "a" holds the core
        yield from cpu.execute(2 * MSEC)
        order.append(("c", env.now))

    env.process(job("a", 4 * MSEC))
    env.process(job("b", 2 * MSEC))
    env.process(late_job())
    env.run()
    done = dict(order)
    # Deterministic RR interleaving in 1ms quanta while contended; each
    # job's final quantum may extend to its whole remainder once the queue
    # empties.  Completion order is shortest-first: b, then c, then a.
    assert done["b"] == 5 * MSEC
    assert done["c"] == 6 * MSEC
    assert done["a"] == 8 * MSEC
    # Total work conserved: 8ms of demand on one core finishes at 8ms.
    assert env.now == 8 * MSEC


def test_parallel_jobs_on_separate_cores():
    env = Environment()
    cpu = CPU(env, _spec(cores=2))
    done = {}

    def job(tag):
        yield from cpu.execute(2 * MSEC)
        done[tag] = env.now

    env.process(job("a"))
    env.process(job("b"))
    env.run()
    assert done == {"a": 2 * MSEC, "b": 2 * MSEC}


def test_run_queue_grows_under_overload():
    env = Environment()
    cpu = CPU(env, _spec(cores=1))
    seen = []

    def job():
        yield from cpu.execute(10 * MSEC)

    def sampler():
        yield env.timeout(5 * MSEC)
        seen.append((cpu.running, cpu.run_queue_len))

    for _ in range(4):
        env.process(job())
    env.process(sampler())
    env.run()
    running, queued = seen[0]
    assert running == 1
    assert queued == 3


def test_utilization_accounting():
    env = Environment()
    cpu = CPU(env, _spec(cores=2))

    def job():
        yield from cpu.execute(4 * MSEC)

    env.process(job())
    env.run(until=8 * MSEC)
    # 4ms busy on one of two cores over 8ms elapsed -> 0.25.
    assert cpu.utilization() == pytest.approx(0.25)


def test_utilization_at_boot_is_zero():
    env = Environment()
    cpu = CPU(env, _spec())
    assert cpu.utilization() == 0.0


def test_negative_duration_rejected():
    env = Environment()
    cpu = CPU(env, _spec())

    def job():
        yield from cpu.execute(-1)

    p = env.process(job())
    with pytest.raises(ValueError):
        env.run(until=p)


def test_zero_duration_is_noop():
    env = Environment()
    cpu = CPU(env, _spec())

    def job():
        yield from cpu.execute(0)
        return env.now

    p = env.process(job())
    assert env.run(until=p) == 0


class TestInterference:
    def test_null_interference_never_stalls(self):
        model = NullInterference()
        assert all(model.stall_ns(q, 1, q * 100) == 0 for q in range(100))

    def test_no_convoys_when_idle(self):
        spec = InterferenceSpec(min_occupancy=0.05)
        model = InterferenceModel(spec, SeedSequence(1).stream("i"))
        assert all(model.stall_ns(0, 16, t) == 0 for t in range(0, 100000, 100))

    def test_convoy_opens_under_occupancy(self):
        spec = InterferenceSpec(prob_per_occupancy=1.0, max_prob=1.0, stall_mean_ns=1 * MSEC)
        model = InterferenceModel(spec, SeedSequence(1).stream("i"))
        assert model.stall_ns(32, 16, now_ns=0) > 0
        assert model.window_count == 1

    def test_acquisitions_join_open_window(self):
        spec = InterferenceSpec(prob_per_occupancy=1.0, max_prob=1.0, stall_mean_ns=5 * MSEC)
        model = InterferenceModel(spec, SeedSequence(1).stream("i"))
        first = model.stall_ns(32, 16, now_ns=0)
        assert first > 0
        # A later acquisition inside the window waits exactly to its end.
        joined = model.stall_ns(32, 16, now_ns=first // 2)
        assert joined == first - first // 2
        assert model.window_count == 1  # no new window

    def test_cooldown_enforces_duty_cycle(self):
        spec = InterferenceSpec(
            prob_per_occupancy=1.0, max_prob=1.0, stall_mean_ns=10 * MSEC, duty_cycle=0.1
        )
        model = InterferenceModel(spec, SeedSequence(2).stream("i"))
        duration = model.stall_ns(32, 16, now_ns=0)
        # Just after the window: cooldown blocks a new convoy.
        assert model.stall_ns(32, 16, now_ns=duration + 1) == 0
        # Long after the cooldown (9x duration quiet period): allowed again.
        assert model.stall_ns(32, 16, now_ns=duration * 11) > 0
        assert model.window_count == 2

    def test_long_run_duty_cycle_bounded(self):
        spec = InterferenceSpec(
            prob_per_occupancy=1.0, max_prob=1.0, stall_mean_ns=10 * MSEC, duty_cycle=0.1
        )
        model = InterferenceModel(spec, SeedSequence(3).stream("i"))
        horizon = 0
        # Acquire constantly at max occupancy for ~100 simulated seconds.
        while horizon < 100_000 * MSEC:
            stall = model.stall_ns(32, 16, horizon)
            horizon += max(stall, MSEC)
        stalled_fraction = model.stall_total_ns / horizon
        assert stalled_fraction <= 0.15  # duty 0.1 plus join-tail slack

    def test_probability_scales_with_occupancy(self):
        spec = InterferenceSpec(
            prob_per_occupancy=0.05, max_prob=1.0, min_occupancy=0.0, duty_cycle=0.99
        )
        low = InterferenceModel(spec, SeedSequence(4).stream("a"))
        high = InterferenceModel(spec, SeedSequence(4).stream("b"))
        low_hits = sum(low.stall_ns(2, 16, t * 10**9) > 0 for t in range(2000))
        high_hits = sum(high.stall_ns(32, 16, t * 10**9) > 0 for t in range(2000))
        assert high_hits > 2 * low_hits

    def test_diagnostics_counters(self):
        spec = InterferenceSpec(prob_per_occupancy=1.0, max_prob=1.0)
        model = InterferenceModel(spec, SeedSequence(5).stream("i"))
        model.stall_ns(32, 16, 0)
        assert model.window_count == 1
        assert model.stall_count == 1
        assert model.stall_total_ns > 0

    def test_cpu_integrates_interference(self):
        env = Environment()
        spec = MachineSpec(
            name="t",
            cores=1,
            quantum_ns=1 * MSEC,
            ctx_switch_ns=0,
            interference=InterferenceSpec(
                prob_per_occupancy=1.0, max_prob=1.0, min_occupancy=0.0,
                stall_mean_ns=1 * MSEC,
            ),
        )
        model = InterferenceModel(spec.interference, SeedSequence(6).stream("i"))
        cpu = CPU(env, spec, model)

        def job():
            yield from cpu.execute(1 * MSEC)

        for _ in range(4):
            env.process(job())
        env.run()
        assert cpu.stall_ns > 0
        assert env.now > 4 * MSEC  # stalls stretched the schedule
