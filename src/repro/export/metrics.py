"""Prometheus exposition-format primitives.

The exporter renders two dialects from one family model:

* the classic text format 0.0.4 (what a Prometheus server scrapes by
  default), and
* OpenMetrics 1.0, which tightens counter naming (``# TYPE`` names the
  family *without* the ``_total`` suffix), terminates the exposition with
  ``# EOF``, and is the only dialect that carries **exemplars** — which is
  where this pipeline attaches the ``lost_records``-derived confidence.

Only the subset the exporter emits is modelled; the grammar rules
(escaping, name/label charsets, sample shapes per type) follow the
Prometheus exposition-format specification so the output round-trips
through any conformant parser, including the bundled strict one
(:mod:`repro.export.parser`).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

__all__ = [
    "Exemplar",
    "MetricFamily",
    "MetricSample",
    "escape_help",
    "escape_label_value",
    "format_value",
    "render_exposition",
    "render_labels",
]

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

Number = Union[int, float]
LabelPairs = Tuple[Tuple[str, str], ...]


def escape_label_value(value: str) -> str:
    """Escape a label value: backslash, double quote, and newline."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def escape_help(text: str) -> str:
    """Escape HELP text: backslash and newline (quotes stay literal)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def format_value(value: Number) -> str:
    """Render a sample value: integers exactly, floats via ``repr``.

    The collectors are integer-exact, so integer values must survive the
    round trip bit-for-bit — rendering them without a float detour is what
    makes "exported counter == source DeltaStats" testable as equality.
    """
    if isinstance(value, bool):  # bool is an int subclass; reject early
        raise TypeError("sample values must be numbers, not bool")
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(value)


def render_labels(labels: LabelPairs) -> str:
    """``{a="x",b="y"}`` (or the empty string for no labels)."""
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{escape_label_value(value)}"' for name, value in labels
    )
    return "{" + body + "}"


@dataclass(frozen=True)
class Exemplar:
    """An OpenMetrics exemplar: a labelled observation pinned to a sample."""

    labels: LabelPairs
    value: Number
    #: Unix timestamp, seconds (rendered with millisecond precision).
    timestamp: Optional[float] = None

    def render(self) -> str:
        parts = [render_labels(self.labels) or "{}", format_value(self.value)]
        if self.timestamp is not None:
            parts.append(f"{self.timestamp:.3f}")
        return " # " + " ".join(parts)


@dataclass(frozen=True)
class MetricSample:
    """One exposition line of a family.

    ``suffix`` is appended to the family name (``""``, ``"_bucket"``,
    ``"_sum"``, ``"_count"``, ``"_total"``); exemplars are emitted only in
    the OpenMetrics dialect and only on suffixes the spec allows them on
    (``_total`` and ``_bucket``).
    """

    suffix: str
    labels: LabelPairs
    value: Number
    exemplar: Optional[Exemplar] = None


@dataclass
class MetricFamily:
    """One metric family: name + type + help + its samples."""

    name: str
    type: str
    help: str
    samples: List[MetricSample] = field(default_factory=list)

    _TYPES = ("counter", "gauge", "histogram", "summary")

    def __post_init__(self) -> None:
        if not METRIC_NAME_RE.match(self.name):
            raise ValueError(f"invalid metric name {self.name!r}")
        if self.type not in self._TYPES:
            raise ValueError(f"invalid metric type {self.type!r}")

    def add(
        self,
        value: Number,
        labels: LabelPairs = (),
        suffix: str = "",
        exemplar: Optional[Exemplar] = None,
    ) -> None:
        for label_name, _v in labels:
            if not LABEL_NAME_RE.match(label_name) or label_name.startswith("__"):
                raise ValueError(f"invalid label name {label_name!r}")
        self.samples.append(MetricSample(suffix, tuple(labels), value, exemplar))

    def render(self, out: List[str], openmetrics: bool) -> None:
        # Classic counters are *named* with the _total suffix (HELP/TYPE
        # included); OpenMetrics names the family bare and suffixes only
        # the samples.
        counter = self.type == "counter"
        headline = (
            self.name if openmetrics or not counter else f"{self.name}_total"
        )
        out.append(f"# HELP {headline} {escape_help(self.help)}")
        out.append(f"# TYPE {headline} {self.type}")
        for sample in self.samples:
            suffix = sample.suffix
            if counter and suffix == "":
                suffix = "_total"
            line = (
                f"{self.name}{suffix}{render_labels(sample.labels)} "
                f"{format_value(sample.value)}"
            )
            if (
                openmetrics
                and sample.exemplar is not None
                and suffix in ("_total", "_bucket")
            ):
                line += sample.exemplar.render()
            out.append(line)


def render_exposition(
    families: Sequence[MetricFamily], openmetrics: bool = False
) -> str:
    """Render families into one exposition body.

    The classic dialect ends with a plain trailing newline; OpenMetrics
    requires the ``# EOF`` terminator as its final line.
    """
    out: List[str] = []
    for family in families:
        family.render(out, openmetrics)
    if openmetrics:
        out.append("# EOF")
    return "\n".join(out) + "\n"
