"""On-disk result cache, content-addressed by :meth:`ExperimentSpec.cache_key`.

One cache entry = one JSON file under ``results/.cache/`` holding the spec
(for auditability) and the :class:`LevelResult` it produced.  Because the
key hashes every outcome-shaping field plus the package version, a warm
cache can only ever serve results that are bit-identical to what a fresh
run would compute — re-running a sweep therefore computes missing or
changed cells only.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union

from .spec import ExperimentSpec, LevelResult

__all__ = ["ResultCache", "default_cache_dir"]


def default_cache_dir() -> Path:
    """``results/.cache`` under the repository's results directory."""
    # Imported lazily: results.py sits above this module in the analysis
    # package's import order.
    from ..results import results_dir

    return results_dir() / ".cache"


class ResultCache:
    """Persistent (spec -> LevelResult) store.

    Misses return ``None`` rather than raising; corrupt or foreign files in
    the cache directory are treated as misses, never as errors, so a cache
    can always be deleted or hand-edited safely.
    """

    def __init__(self, directory: Union[None, str, Path] = None) -> None:
        self.directory = (
            Path(directory) if directory is not None else default_cache_dir()
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def path_for(self, spec: ExperimentSpec) -> Path:
        return self.directory / f"{spec.cache_key()}.json"

    def get(self, spec: ExperimentSpec) -> Optional[LevelResult]:
        """The cached result for ``spec``, or ``None`` on a miss."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            result = LevelResult(**payload["result"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: ExperimentSpec, result: LevelResult) -> Path:
        """Store ``result`` under ``spec``'s key; returns the entry path."""
        path = self.path_for(spec)
        payload = {
            "key": spec.cache_key(),
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        # Write-then-rename so a crashed run never leaves a truncated entry
        # that a later run would have to classify as corrupt.  Two batches
        # racing on the same key are last-writer-wins: replace is atomic,
        # so readers only ever see one complete entry or the other.
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
        self.puts += 1
        return path

    def stats(self) -> dict:
        """Lifetime hit/miss/put counters for this cache object."""
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}

    def invalidate(self, spec: ExperimentSpec) -> bool:
        """Drop the entry for ``spec``; True if one existed."""
        path = self.path_for(spec)
        try:
            path.unlink()
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self) -> str:
        return f"<ResultCache dir={str(self.directory)!r} entries={len(self)}>"
