"""Smoke-run the example scripts — the README's promises must execute.

Each example ends with assertions of its own; running it to completion is
the test.  The slowest examples are exercised at reduced scale by patching
their module constants where provided.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run_example(name: str, capsys) -> str:
    path = EXAMPLES / f"{name}.py"
    assert path.exists(), path
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("quickstart", capsys)
    assert "RPS estimation error" in out
    assert "OK" in out


def test_custom_probe(capsys):
    out = _run_example("custom_probe", capsys)
    assert "verifier said no" in out
    assert "OK" in out


def test_listing1(capsys):
    out = _run_example("listing1", capsys)
    assert "Listing 1 (in eBPF)" in out
    assert "OK" in out


def test_netem_robustness(capsys):
    out = _run_example("netem_robustness", capsys)
    assert "OK" in out


def test_multitier_bottleneck(capsys):
    out = _run_example("multitier_bottleneck", capsys)
    assert "index-search" in out
    assert "OK" in out


@pytest.mark.slow
def test_saturation_monitor(capsys):
    out = _run_example("saturation_monitor", capsys)
    assert "detector first flagged saturation" in out


@pytest.mark.slow
def test_blackbox_autoscaler(capsys):
    out = _run_example("blackbox_autoscaler", capsys)
    assert "OK" in out


@pytest.mark.slow
def test_power_governor(capsys):
    out = _run_example("power_governor", capsys)
    assert "energy savings" in out
    assert "OK" in out
