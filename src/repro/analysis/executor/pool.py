"""Cell execution and the parallel experiment executor.

:func:`execute_cell` runs one :class:`ExperimentSpec` to completion — boot
a kernel, start the app, attach the observability monitor, drive an
open-loop burst of requests, collect every signal.  :func:`run_cells` fans
a batch of cells out across a process pool, consulting a
:class:`ResultCache` first and reporting progress through a telemetry
callback.

Determinism: each cell derives its own :class:`SeedSequence` from its spec
(see :meth:`ExperimentSpec.seed_sequence`), so results are a pure function
of the spec — ``jobs=4`` is bit-identical to ``jobs=1``, a cache hit is
bit-identical to a fresh computation, and a shard's output is positionally
bit-identical to the corresponding slice of the unsharded batch.

Fleet-scale path (DESIGN.md §11): submission is bounded-inflight (at most
``max_inflight`` pickled specs outstanding, backfilled as futures drain —
never the whole batch up front), completed results can stream to a
:class:`~repro.analysis.executor.spill.ResultSpill` instead of
accumulating in RAM, a ``shard="i/N"`` knob deterministically partitions
the batch across independent invocations, and workers share one
cross-process :class:`~repro.ebpf.diskcache.DiskCodeCache` so only the
fleet's very first attach of a program ever pays translation.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ...core.monitor import MetricsSnapshot, RequestMetricsMonitor
from ...core.windows import window_estimates
from ...kernel.kernel import Kernel
from ...loadgen.client import ClientReport, OpenLoopClient
from ...net.netem import NetemConfig
from ...sim.engine import Environment
from .cache import ResultCache
from .spec import ExperimentSpec, LevelResult
from .spill import ResultSpill

__all__ = [
    "CellHandles",
    "CellProgress",
    "ExecutorStats",
    "ProgressCallback",
    "execute_cell",
    "parse_shard",
    "run_cells",
]


class _SendTimestampProbe:
    """Minimal native probe recording send-family sys_enter timestamps
    (for the per-window estimates of Fig. 2's residual analysis)."""

    def __init__(self, kernel: Kernel, tgid: int, syscall_nrs) -> None:
        self.kernel = kernel
        self.tgid = tgid
        self.nrs = frozenset(syscall_nrs)
        self.timestamps: List[int] = []

    def __call__(self, ctx) -> int:
        if ctx.pid_tgid >> 32 == self.tgid and ctx.syscall_nr in self.nrs:
            self.timestamps.append(ctx.ktime_ns)
        return 0

    def attach(self) -> "_SendTimestampProbe":
        self.kernel.tracepoints.sys_enter.attach(self)
        return self


@dataclass
class CellHandles:
    """Live simulation objects of one running cell, handed to ``setup``
    hooks (fault orchestration, extra probes) before the clock starts."""

    env: "Environment"
    kernel: Kernel
    app: object
    monitor: RequestMetricsMonitor
    client: OpenLoopClient


def execute_cell(
    spec: ExperimentSpec,
    *,
    setup: Optional[Callable[[CellHandles], None]] = None,
    retry_timeout_ns: Optional[int] = None,
) -> LevelResult:
    """Run one experiment cell to completion and collect all signals.

    ``setup``, if given, is called with the cell's live objects after the
    client is constructed but before the simulation runs — the hook point
    for fault injectors.  ``retry_timeout_ns`` arms the client's
    retransmission watchdog (needed when faults can swallow requests
    outright, e.g. connection resets).  Cells run with either knob are
    *not* pure functions of the spec, so callers must bypass the result
    cache — :func:`repro.faults.run_faulted_cell` does exactly that.
    """
    definition = spec.definition
    config = definition.config
    machine = spec.machine.with_cores(config.cores)
    if config.interference_scale != 1.0:
        from dataclasses import replace as _replace

        machine = _replace(
            machine,
            interference=_replace(
                machine.interference,
                stall_mean_ns=max(1, int(machine.interference.stall_mean_ns
                                         * config.interference_scale)),
            ),
        )
    env = Environment()
    seeds = spec.seed_sequence()
    kernel = Kernel(env, machine, seeds, interference=spec.interference)

    app = definition.build(
        kernel,
        spec.client_to_server,
        spec.server_to_client,
        sim_tier=spec.resolved_sim_tier,
    )
    monitor = RequestMetricsMonitor(
        kernel, app.tgid, spec=config.syscalls, config=spec.collector_config(),
    ).attach()
    send_probe = _SendTimestampProbe(kernel, app.tgid, (config.syscalls.send_nr,)).attach()

    client = OpenLoopClient(
        env,
        app.client_sockets,
        seeds.stream("client:arrivals"),
        rate_rps=spec.offered_rps,
        total_requests=spec.requests,
        request_size=config.request_size,
        qos_latency_ns=config.qos_latency_ns,
        arrival=spec.arrival,
        phases=spec.phases,
        retry_timeout_ns=retry_timeout_ns,
    )
    recorder = None
    controller = None
    outcome_log: Optional[list] = None
    if spec.correlate is not None:
        # Imported lazily: repro.analysis.correlate consumes executor types
        # through LevelResult.extra only, but keeping the import local means
        # cells without correlation never pay for the module.
        from ..correlate import WindowRecorder

        recorder = WindowRecorder(monitor, spec.correlate.window_ns).start()
        outcome_log = client.enable_outcome_log()
    elif spec.control is not None and spec.control.policy != "none":
        # ``policy="none"`` deliberately wires nothing: the cell must stay
        # byte-identical to a control-free run (zero overhead when off).
        from ...control import QoSController

        controller = QoSController(app, monitor, spec.control).start()
    if setup is not None:
        setup(CellHandles(env=env, kernel=kernel, app=app,
                          monitor=monitor, client=client))
    client.start()
    report: ClientReport = env.run(until=client.done)
    export_payload: Optional[dict] = None
    extra: Optional[dict] = None
    if recorder is not None:
        from ..correlate import correlate_windows

        windows = recorder.finish()
        # Merging the recorded windows reproduces the unwindowed totals
        # exactly (carried-anchor window semantics), so the headline
        # LevelResult numbers stay bit-identical to a correlate-off cell.
        snapshot = recorder.merged() if windows else monitor.snapshot()
        correlation = correlate_windows(
            windows,
            outcome_log or (),
            spec.correlate,
            config.qos_latency_ns,
            workload=definition.key,
        )
        extra = {"correlation": correlation.to_dict()}
    elif controller is not None:
        windows = controller.finish()
        # Same carried-anchor merge as the correlate path: the headline
        # numbers stay bit-identical to an unwindowed snapshot.
        snapshot = controller.merged() if windows else monitor.snapshot()
        extra = {"control": controller.summary(report, config.qos_latency_ns)}
    elif monitor.exporter is not None:
        # Close the partial tail window, then rebuild the whole-run view by
        # merging the exported windows — bit-identical to the unwindowed
        # snapshot in vm/native modes (the carried-anchor window semantics
        # partition the delta population exactly).
        exporter = monitor.exporter
        exporter.observe_window(monitor.snapshot(reset=True))
        snapshot = MetricsSnapshot.merge_all(exporter.windows)
        export_payload = {
            "windows": len(exporter.windows),
            "window_ns": spec.export.window_ns,
            "window_rps": [w.rps_obsv for w in exporter.windows],
            "window_lost": [w.lost_records for w in exporter.windows],
            "window_confidence": [w.confidence for w in exporter.windows],
            "scrapes": exporter.render_count,
            "bytes_rendered": exporter.bytes_rendered,
            "text": exporter.render(),
            "openmetrics": exporter.render(openmetrics=True),
        }
    else:
        snapshot = monitor.snapshot()

    # Steady-state trim for the per-window estimates too: sends after the
    # final offered arrival belong to the drain, not the measured load.
    send_times = send_probe.timestamps
    if client.last_offered_ns is not None:
        send_times = [t for t in send_times if t <= client.last_offered_ns]

    c2s = spec.client_to_server or NetemConfig.ideal()
    return LevelResult(
        workload=definition.key,
        offered_rps=spec.offered_rps,
        achieved_rps=report.achieved_rps,
        p99_ns=report.p99_ns,
        p50_ns=report.latency.p50_ns(),
        mean_latency_ns=report.latency.mean_ns(),
        completed=report.completed,
        qos_violated=report.qos_violated,
        abandoned=report.abandoned,
        rejected=report.rejected,
        late_completions=sum(
            1 for s in report.latency.samples() if s > config.qos_latency_ns
        ),
        rps_obsv=snapshot.rps_obsv,
        rps_obsv_recv=snapshot.rps_obsv_recv,
        send_delta_variance=float(snapshot.send_delta_variance),
        send_delta_cov2=snapshot.send_delta_cov2,
        recv_delta_variance=float(snapshot.recv_delta_variance),
        poll_mean_duration_ns=float(snapshot.poll_mean_duration_ns),
        poll_count=snapshot.poll.count,
        window_rps=window_estimates(send_times, spec.estimate_windows),
        lost_records=snapshot.lost_records,
        confidence=snapshot.overall_confidence,
        rps_obsv_corrected=snapshot.rps_obsv_corrected,
        recv_rate_corrected=snapshot.recv_rate_corrected,
        machine=machine.name,
        netem_label=c2s.label(),
        utilization=kernel.cpu.utilization(),
        sim_duration_ns=env.now,
        export=export_payload,
        extra=extra,
    )


# Translation-cache counters aggregated across workers.  Workers report
# per-cell *deltas* (snapshot before/after each cell), so sums stay exact
# even though pool workers are persistent across cells.
_TRANSLATION_KEYS = ("hits", "misses", "translations", "translate_ns")
_DISK_KEYS = ("hits", "misses", "writes")


def _translation_counters() -> Dict[str, int]:
    from ...ebpf.fastvm import _GLOBAL_CACHE

    stats = _GLOBAL_CACHE.stats()
    out = {key: int(stats.get(key, 0)) for key in _TRANSLATION_KEYS}
    disk = stats.get("disk") or {}
    for key in _DISK_KEYS:
        out[f"disk_{key}"] = int(disk.get(key, 0))
    return out


def _counter_delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    return {key: after[key] - before[key] for key in after}


def _merge_counters(into: Dict[str, int], delta: Dict[str, int]) -> None:
    for key, value in delta.items():
        into[key] = into.get(key, 0) + value


def _pool_worker_init(code_cache_dir: Optional[str]) -> None:
    """Pool initializer: attach the shared disk code cache, so a fresh
    worker's first attach of any program another process already
    translated is a disk hit, not a retranslation."""
    if code_cache_dir is not None:
        from ...ebpf.diskcache import enable_disk_cache

        enable_disk_cache(code_cache_dir)


def _cell_worker(payload: dict) -> dict:
    """Process-pool entry point: dicts in, dicts out (spawn-safe, picklable).

    Alongside the result, reports the translation-cache counter delta the
    cell caused in this worker, so the parent can aggregate fleet-wide
    cache effectiveness without assuming one worker per cell.
    """
    before = _translation_counters()
    result = execute_cell(ExperimentSpec.from_dict(payload)).to_dict()
    return {
        "result": result,
        "translation": _counter_delta(before, _translation_counters()),
    }


def parse_shard(shard: Union[None, str, Tuple[int, int]]) -> Optional[Tuple[int, int]]:
    """Parse a ``"i/N"`` shard designator into a 1-based ``(i, N)`` pair.

    Shard ``i`` of ``N`` owns the batch positions ``p`` with
    ``p % N == i - 1`` — a pure function of position, so the same batch
    sharded any way always partitions identically and the per-shard
    outputs union to the unsharded result bit-identically.
    """
    if shard is None:
        return None
    if isinstance(shard, str):
        try:
            index_s, _, count_s = shard.partition("/")
            parsed = (int(index_s), int(count_s))
        except ValueError:
            raise ValueError(
                f"shard must look like 'i/N' (e.g. '1/4'), got {shard!r}"
            ) from None
    else:
        parsed = (int(shard[0]), int(shard[1]))
    index, count = parsed
    if count < 1 or not (1 <= index <= count):
        raise ValueError(f"shard index must satisfy 1 <= i <= N, got {index}/{count}")
    return index, count


@dataclass(frozen=True)
class CellProgress:
    """One telemetry event: a cell finished (from cache or computed)."""

    #: Position of the cell in the submitted batch.
    index: int
    #: Batch size.
    total: int
    #: The cell's spec.
    spec: ExperimentSpec
    #: ``"cache"`` or ``"computed"``.
    source: str
    #: Cells finished so far (cache hits + computed).
    done: int
    #: Cache hits so far.
    cache_hits: int
    #: Cells computed so far.
    computed: int
    #: Wall-clock seconds since the batch started.
    elapsed_s: float


@dataclass
class ExecutorStats:
    """End-of-batch telemetry: cells done, cache hits, wall-clock.

    ``translation`` aggregates the in-memory translation-cache and disk
    code-cache counter deltas this batch caused (parent plus the per-cell
    deltas every worker reported), ``result_cache`` the
    :class:`ResultCache` hit/miss/put deltas — together they make the
    amortization claims of the fleet-scale sweep path measurable from
    any run's own ``--json`` output.
    """

    total: int = 0
    cache_hits: int = 0
    computed: int = 0
    wall_s: float = 0.0
    #: Cells that failed in a worker but were recovered by the one
    #: in-process retry (counted in ``computed`` as well).
    retried: int = 0
    #: Cells with no result: the worker failed *and* the in-process retry
    #: failed.  Their batch positions stay ``None`` in the results list.
    failed: int = 0
    #: ``{"index", "label", "error"}`` per unrecoverable cell.
    errors: List[dict] = field(default_factory=list)
    #: The ``"i/N"`` designator when the batch ran sharded.
    shard: Optional[str] = None
    #: Results streamed to a :class:`ResultSpill` instead of held in RAM.
    spilled: int = 0
    #: Translation + disk code-cache counter deltas for the whole batch.
    translation: Optional[Dict[str, int]] = None
    #: ResultCache hit/miss/put deltas for the batch.
    result_cache: Optional[Dict[str, int]] = None

    def to_dict(self) -> dict:
        return dict(self.__dict__)

    def summary(self) -> str:
        text = (
            f"{self.total} cells: {self.cache_hits} cached, "
            f"{self.computed} computed in {self.wall_s:.2f}s"
        )
        if self.failed:
            text += f" ({self.failed} failed)"
        return text


ProgressCallback = Callable[[CellProgress], None]


def run_cells(
    specs: Sequence[ExperimentSpec],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    shard: Union[None, str, Tuple[int, int]] = None,
    spill: Union[None, bool, str, Path, ResultSpill] = None,
    code_cache: Union[None, bool, str, Path] = None,
    max_inflight: Optional[int] = None,
) -> Tuple[Union[List[Optional[LevelResult]], ResultSpill], ExecutorStats]:
    """Run a batch of cells, in spec order, across up to ``jobs`` workers.

    Cache hits are served first (and never occupy a worker); only missing
    cells are computed.  Freshly computed results are written back to the
    cache from the parent process, so concurrent workers never race on the
    cache directory.  The returned results list is ordered like ``specs``
    regardless of completion order.

    ``shard="i/N"`` runs only the batch positions owned by shard ``i`` of
    ``N`` (see :func:`parse_shard`); positions owned by other shards stay
    ``None``, so N shard invocations union positionally into exactly the
    unsharded output.

    ``spill`` streams completed results to a
    :class:`~repro.analysis.executor.spill.ResultSpill` (``True`` for a
    fresh one under ``results/``, a path, or an instance) instead of
    holding them in RAM; the spill object is returned in place of the
    results list — call ``materialize()`` on it for small batches.

    ``code_cache`` controls the cross-process compiled-program cache
    shared by parent and workers (``None`` = on at the default
    ``results/.codecache/`` unless ``REPRO_CODE_CACHE=off``; ``False`` =
    off; a path = on, there).

    At most ``max_inflight`` (default ``2 * jobs``) submitted cells are
    outstanding at once — specs are pickled as workers free up, never all
    up front.  A cell whose worker fails is retried once in the parent;
    cells that still fail are reported in ``ExecutorStats.failed`` /
    ``.errors`` with their positions left ``None``, instead of aborting
    the rest of the batch.
    """
    from ...ebpf.diskcache import enable_disk_cache, resolve_codecache_dir
    from ...ebpf.fastvm import _GLOBAL_CACHE

    specs = list(specs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    shard_parsed = parse_shard(shard)
    owned = list(range(len(specs)))
    if shard_parsed is not None:
        shard_index, shard_count = shard_parsed
        owned = [p for p in owned if p % shard_count == shard_index - 1]

    if spill is None or spill is False:
        spill_sink: Optional[ResultSpill] = None
    elif isinstance(spill, ResultSpill):
        spill_sink = spill
        if spill_sink.total is None:
            spill_sink.total = len(specs)
    elif spill is True:
        spill_sink = ResultSpill(total=len(specs))
    else:
        spill_sink = ResultSpill(spill, total=len(specs))

    start = time.perf_counter()
    stats = ExecutorStats(total=len(owned))
    if shard_parsed is not None:
        stats.shard = f"{shard_parsed[0]}/{shard_parsed[1]}"
    results: List[Optional[LevelResult]] = (
        [] if spill_sink is not None else [None] * len(specs)
    )
    cache_before = cache.stats() if cache is not None else None
    translation: Dict[str, int] = {}

    code_cache_dir = resolve_codecache_dir(code_cache)
    previous_disk = _GLOBAL_CACHE.disk
    if code_cache_dir is not None:
        enable_disk_cache(code_cache_dir)
    parent_before = _translation_counters()

    def emit(index: int, source: str) -> None:
        if progress is not None:
            progress(CellProgress(
                index=index,
                total=len(owned),
                spec=specs[index],
                source=source,
                done=stats.cache_hits + stats.computed,
                cache_hits=stats.cache_hits,
                computed=stats.computed,
                elapsed_s=time.perf_counter() - start,
            ))

    def deliver(index: int, result: LevelResult) -> None:
        if spill_sink is not None:
            spill_sink.add(index, result)
            stats.spilled += 1
        else:
            results[index] = result

    def finish(index: int, result: LevelResult) -> None:
        stats.computed += 1
        if cache is not None:
            cache.put(specs[index], result)
        deliver(index, result)
        emit(index, "computed")

    def fail(index: int, error: BaseException) -> None:
        stats.failed += 1
        stats.errors.append({
            "index": index,
            "label": specs[index].label(),
            "error": f"{type(error).__name__}: {error}",
        })

    def retry_in_process(index: int, error: BaseException) -> None:
        # One in-process retry: cells are pure functions of their spec, so
        # this recovers environmental worker deaths (OOM kill, broken
        # pool) bit-identically; deterministic cell bugs fail again here
        # and are recorded instead of sinking the rest of the batch.
        try:
            result = execute_cell(specs[index])
        except Exception as retry_error:  # noqa: BLE001 - reported, not hidden
            fail(index, retry_error)
        else:
            stats.retried += 1
            finish(index, result)

    try:
        pending: List[int] = []
        for index in owned:
            hit = cache.get(specs[index]) if cache is not None else None
            if hit is not None:
                stats.cache_hits += 1
                deliver(index, hit)
                emit(index, "cache")
            else:
                pending.append(index)

        workers = min(jobs, len(pending))
        if workers <= 1:
            for index in pending:
                try:
                    result = execute_cell(specs[index])
                except Exception as error:  # noqa: BLE001 - reported, not hidden
                    fail(index, error)
                else:
                    finish(index, result)
        else:
            inflight_cap = max_inflight if max_inflight is not None else 2 * workers
            if inflight_cap < workers:
                inflight_cap = workers
            backlog = iter(pending)
            inflight: Dict[object, int] = {}
            pool_broken = False

            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_pool_worker_init,
                initargs=(str(code_cache_dir) if code_cache_dir else None,),
            ) as pool:

                def submit_next() -> bool:
                    nonlocal pool_broken
                    if pool_broken:
                        return False
                    for index in backlog:
                        try:
                            future = pool.submit(
                                _cell_worker, specs[index].to_dict()
                            )
                        except Exception as error:  # pool broken mid-batch
                            pool_broken = True
                            retry_in_process(index, error)
                            return False
                        inflight[future] = index
                        return True
                    return False

                while len(inflight) < inflight_cap and submit_next():
                    pass
                while inflight:
                    done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = inflight.pop(future)
                        try:
                            payload = future.result()
                        except Exception as error:  # noqa: BLE001
                            retry_in_process(index, error)
                        else:
                            _merge_counters(
                                translation, payload["translation"]
                            )
                            finish(index, LevelResult(**payload["result"]))
                        submit_next()
                # Cells never submitted because the pool broke run here.
                for index in backlog:
                    try:
                        result = execute_cell(specs[index])
                    except Exception as error:  # noqa: BLE001
                        fail(index, error)
                    else:
                        finish(index, result)
    finally:
        _merge_counters(
            translation, _counter_delta(parent_before, _translation_counters())
        )
        _GLOBAL_CACHE.disk = previous_disk

    stats.translation = translation
    if cache is not None and cache_before is not None:
        stats.result_cache = _counter_delta(cache_before, cache.stats())
    stats.wall_s = time.perf_counter() - start
    return (spill_sink if spill_sink is not None else results), stats
