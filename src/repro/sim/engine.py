"""The discrete-event environment: clock + event queue + stepper."""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Generator, Iterable, Optional

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Environment", "EmptySchedule"]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """A simulation environment with an integer-nanosecond clock.

    Events are processed in (time, priority, insertion-order) order, making
    runs fully deterministic: two events scheduled for the same instant fire
    in the order they were scheduled unless priorities differ.
    """

    def __init__(self, initial_time: int = 0) -> None:
        self._now = int(initial_time)
        self._queue: list = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Lazily-canceled events: still sitting in the heap, but discarded
        #: (callbacks never run, clock not advanced) when popped.  Lazy
        #: deletion keeps :meth:`cancel` O(1) instead of rebuilding the heap.
        self._canceled: set = set()

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- scheduling ------------------------------------------------------
    def schedule(self, event: Event, delay: int = 0, priority: int = 1) -> None:
        """Queue ``event`` to have its callbacks run after ``delay`` ns."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._eid += 1
        heappush(self._queue, (self._now + int(delay), priority, self._eid, event))

    def _schedule(self, event: Event, when: int, priority: int = 1) -> None:
        """Internal schedule path: absolute time, no validation.

        The trigger paths (:meth:`Event.succeed`/``fail``, process resume)
        always schedule for *now*, so the public method's delay validation
        and ``int()`` coercion are pure overhead on the hottest call site
        in the simulator.
        """
        self._eid += 1
        heappush(self._queue, (when, priority, self._eid, event))

    def cancel(self, event: Event) -> None:
        """Lazily cancel a scheduled event.

        The event stays in the heap but is silently discarded when it
        reaches the front: its callbacks never run and the clock does not
        advance to its deadline.  This is O(1) per cancel (no heap
        rebuild), at the cost of dead entries lingering until popped —
        the right trade for watchdog timers that are almost always
        canceled before they fire.
        """
        if event.callbacks is None:
            raise RuntimeError(f"cannot cancel {event!r}: already processed")
        self._canceled.add(event)

    def peek(self) -> Optional[int]:
        """Time of the next scheduled event, or ``None`` if queue is empty.

        Canceled events are purged from the front first, so the reported
        time is one that :meth:`step` would actually advance the clock to.
        """
        queue = self._queue
        canceled = self._canceled
        while queue and canceled and queue[0][3] in canceled:
            canceled.discard(heappop(queue)[3])
        return queue[0][0] if queue else None

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, un-triggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Spawn a process from a generator coroutine."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- execution ---------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        queue = self._queue
        canceled = self._canceled
        while True:
            try:
                when, _prio, _eid, event = heappop(queue)
            except IndexError:
                raise EmptySchedule() from None
            if canceled and event in canceled:
                canceled.discard(event)
                continue
            break
        self._now = when

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure: surface it instead of silently dropping.
            raise event._value

    def run(self, until: Optional[Any] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * an ``int`` — run until the clock reaches that time (ns);
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its exception).

        Each mode has its own inlined drain loop: event dispatch is the
        simulator's hottest path, and hoisting the queue/canceled-set
        lookups plus the per-event ``step()`` call out of the loop is
        worth ~15% of end-to-end cell time.  All three loops dispatch
        bit-identically to :meth:`step`.
        """
        queue = self._queue
        canceled = self._canceled

        if until is None:
            while queue:
                when, _prio, _eid, event = heappop(queue)
                if canceled and event in canceled:
                    canceled.discard(event)
                    continue
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            return None

        if isinstance(until, Event):
            stop = until
            while stop.callbacks is not None:
                if not queue:
                    raise RuntimeError(
                        f"simulation ran out of events before {stop!r} triggered"
                    )
                when, _prio, _eid, event = heappop(queue)
                if canceled and event in canceled:
                    canceled.discard(event)
                    continue
                self._now = when
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
            if stop._ok:
                return stop._value
            stop.defuse()
            raise stop._value

        horizon = int(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} lies in the past (now={self._now})")
        while queue and queue[0][0] <= horizon:
            when, _prio, _eid, event = heappop(queue)
            if canceled and event in canceled:
                canceled.discard(event)
                continue
            self._now = when
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                raise event._value
        self._now = horizon
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._queue)}>"
