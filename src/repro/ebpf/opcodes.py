"""eBPF opcode constants (matching ``linux/bpf.h`` encodings).

An eBPF instruction is 8 bytes::

    opcode:8  dst_reg:4  src_reg:4  off:16(signed)  imm:32(signed)

The opcode's low 3 bits select the instruction *class*; the remaining bits
encode the operation and operand source.  ``BPF_LD | BPF_IMM | BPF_DW``
(0x18) is the only 16-byte (two-slot) instruction, used to load 64-bit
immediates and map references.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = [
    "InsnClass",
    "AluOp",
    "JmpOp",
    "MemSize",
    "MemMode",
    "Src",
    "Reg",
    "BPF_PSEUDO_MAP_FD",
]


class InsnClass(IntEnum):
    """Instruction class (low 3 opcode bits)."""

    LD = 0x00
    LDX = 0x01
    ST = 0x02
    STX = 0x03
    ALU = 0x04  # 32-bit ALU
    JMP = 0x05
    JMP32 = 0x06
    ALU64 = 0x07


class Src(IntEnum):
    """Operand source bit (0x08): immediate (K) or register (X)."""

    K = 0x00
    X = 0x08


class AluOp(IntEnum):
    """ALU operation (opcode bits 4-7)."""

    ADD = 0x00
    SUB = 0x10
    MUL = 0x20
    DIV = 0x30
    OR = 0x40
    AND = 0x50
    LSH = 0x60
    RSH = 0x70
    NEG = 0x80
    MOD = 0x90
    XOR = 0xA0
    MOV = 0xB0
    ARSH = 0xC0


class JmpOp(IntEnum):
    """Jump operation (opcode bits 4-7)."""

    JA = 0x00
    JEQ = 0x10
    JGT = 0x20
    JGE = 0x30
    JSET = 0x40
    JNE = 0x50
    JSGT = 0x60
    JSGE = 0x70
    CALL = 0x80
    EXIT = 0x90
    JLT = 0xA0
    JLE = 0xB0
    JSLT = 0xC0
    JSLE = 0xD0


class MemSize(IntEnum):
    """Load/store width (opcode bits 3-4 within LD/ST classes)."""

    W = 0x00  # 4 bytes
    H = 0x08  # 2 bytes
    B = 0x10  # 1 byte
    DW = 0x18  # 8 bytes

    @property
    def nbytes(self) -> int:
        return {MemSize.W: 4, MemSize.H: 2, MemSize.B: 1, MemSize.DW: 8}[self]


class MemMode(IntEnum):
    """Addressing mode (opcode bits 5-7 within LD/ST classes)."""

    IMM = 0x00
    ABS = 0x20
    IND = 0x40
    MEM = 0x60


class Reg(IntEnum):
    """Register names.  R0 return value, R1-R5 args (caller-saved), R6-R9
    callee-saved, R10 read-only frame pointer."""

    R0 = 0
    R1 = 1
    R2 = 2
    R3 = 3
    R4 = 4
    R5 = 5
    R6 = 6
    R7 = 7
    R8 = 8
    R9 = 9
    R10 = 10


#: ``src_reg`` value marking an LD_IMM64 as a map-fd load.
BPF_PSEUDO_MAP_FD = 1
