"""Map semantics tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebpf import ArrayMap, HashMap, MapError, PerfEventArray, RingBuf


class TestHashMap:
    def test_lookup_missing_returns_none(self):
        m = HashMap(8, 8)
        assert m.lookup(b"\x00" * 8) is None

    def test_update_lookup_round_trip(self):
        m = HashMap(8, 8)
        m.update(b"\x01" * 8, b"\x02" * 8)
        assert m.lookup(b"\x01" * 8) == bytearray(b"\x02" * 8)

    def test_lookup_returns_live_reference(self):
        m = HashMap(8, 8)
        m.update_int(1, 0)
        entry = m.lookup(m.key_of(1))
        entry[0] = 7
        assert m.lookup_int(1) == 7

    def test_key_size_enforced(self):
        m = HashMap(8, 8)
        with pytest.raises(MapError, match="key is"):
            m.lookup(b"\x00" * 4)

    def test_value_size_enforced(self):
        m = HashMap(8, 8)
        with pytest.raises(MapError, match="value is"):
            m.update(b"\x00" * 8, b"\x00" * 4)

    def test_max_entries_enforced(self):
        m = HashMap(8, 8, max_entries=2)
        m.update_int(1, 1)
        m.update_int(2, 2)
        with pytest.raises(MapError, match="full"):
            m.update_int(3, 3)
        # Overwriting an existing key is still fine.
        m.update_int(1, 10)
        assert m.lookup_int(1) == 10

    def test_delete(self):
        m = HashMap(8, 8)
        m.update_int(5, 5)
        assert m.delete(m.key_of(5))
        assert not m.delete(m.key_of(5))
        assert m.lookup_int(5) is None

    def test_items_int(self):
        m = HashMap(8, 8)
        m.update_int(1, 10)
        m.update_int(2, 20)
        assert dict(m.items_int()) == {1: 10, 2: 20}

    def test_clear(self):
        m = HashMap(8, 8)
        m.update_int(1, 1)
        m.clear()
        assert len(m) == 0

    def test_validation(self):
        with pytest.raises(MapError):
            HashMap(0, 8)

    @given(st.dictionaries(st.integers(0, 2**32), st.integers(0, 2**32), max_size=30))
    @settings(max_examples=50)
    def test_behaves_like_dict(self, model):
        m = HashMap(8, 8, max_entries=64)
        for key, value in model.items():
            m.update_int(key, value)
        assert dict(m.items_int()) == model


class TestArrayMap:
    def test_preallocated_zeroes(self):
        m = ArrayMap(value_size=8, max_entries=4)
        assert m.lookup_int(0) == 0
        assert m.lookup_int(3) == 0

    def test_out_of_range_lookup_none(self):
        m = ArrayMap(value_size=8, max_entries=4)
        assert m.lookup_int(4) is None

    def test_out_of_range_update_raises(self):
        m = ArrayMap(value_size=8, max_entries=4)
        with pytest.raises(MapError, match="out of range"):
            m.update_int(9, 1)

    def test_delete_not_supported(self):
        m = ArrayMap(value_size=8, max_entries=4)
        with pytest.raises(MapError, match="delete"):
            m.delete(m.key_of(0))

    def test_key_is_u32(self):
        m = ArrayMap(value_size=8, max_entries=4)
        assert m.key_size == 4

    def test_live_reference(self):
        m = ArrayMap(value_size=8, max_entries=1)
        entry = m.lookup(m.key_of(0))
        entry[:] = (42).to_bytes(8, "little")
        assert m.lookup_int(0) == 42


class TestRingBuf:
    def test_fifo_order(self):
        ring = RingBuf(size=1024)
        for i in range(5):
            assert ring.output(bytes([i]))
        assert ring.drain() == [bytes([i]) for i in range(5)]
        assert ring.drain() == []

    def test_drop_when_full(self):
        ring = RingBuf(size=16)
        assert ring.output(b"\x00" * 16)
        assert not ring.output(b"\x01")
        assert ring.drops == 1

    def test_drain_resets_capacity(self):
        ring = RingBuf(size=16)
        ring.output(b"\x00" * 16)
        ring.drain()
        assert ring.output(b"\x01" * 16)

    def test_size_validation(self):
        with pytest.raises(MapError):
            RingBuf(size=4)


class TestPerfEventArray:
    def test_per_cpu_then_poll(self):
        perf = PerfEventArray(cpus=2)
        perf.output(0, b"a")
        perf.output(1, b"b")
        perf.output(0, b"c")
        events = perf.poll()
        assert sorted(events) == [b"a", b"b", b"c"]
        assert perf.poll() == []

    def test_poll_merges_cross_cpu_arrival_order(self):
        """Regression: poll() used to drain buffer-by-buffer (all of CPU 0,
        then all of CPU 1, ...), so interleaved emissions came back out of
        order and order-sensitive consumers saw time run backwards."""
        perf = PerfEventArray(cpus=3)
        for cpu, data in [(0, b"a"), (1, b"b"), (0, b"c"),
                          (2, b"d"), (1, b"e"), (0, b"f")]:
            perf.output(cpu, data)
        assert perf.poll() == [b"a", b"b", b"c", b"d", b"e", b"f"]

    def test_poll_order_preserved_across_polls(self):
        perf = PerfEventArray(cpus=2)
        perf.output(1, b"a")
        perf.output(0, b"b")
        assert perf.poll() == [b"a", b"b"]
        perf.output(0, b"c")
        perf.output(1, b"d")
        assert perf.poll() == [b"c", b"d"]

    def test_dropped_record_leaves_no_sequence_gap_effect(self):
        """A lost record (full buffer) must not disturb merge order."""
        perf = PerfEventArray(cpus=2, per_cpu_capacity=1)
        perf.output(0, b"a")
        perf.output(0, b"dropped")
        perf.output(1, b"b")
        assert perf.lost == 1
        assert perf.poll() == [b"a", b"b"]

    def test_lost_accounting(self):
        perf = PerfEventArray(cpus=1, per_cpu_capacity=1)
        perf.output(0, b"a")
        perf.output(0, b"b")
        assert perf.lost == 1

    def test_cpu_wraps(self):
        perf = PerfEventArray(cpus=2)
        perf.output(5, b"x")  # cpu 5 % 2 == 1
        assert len(perf) == 1

    def test_validation(self):
        with pytest.raises(MapError):
            PerfEventArray(cpus=0)
