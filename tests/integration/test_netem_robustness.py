"""§V-A invariants at test scale: impairments hurt the client, not the
kernel-side metrics."""

import pytest

from repro.analysis import ExperimentSpec, run_level
from repro.net import NetemConfig
from repro.workloads import get_workload

REQUESTS = 500


@pytest.fixture(scope="module")
def triton_runs():
    definition = get_workload("triton-grpc")
    clean = ExperimentSpec(workload="triton-grpc",
                           offered_rps=definition.paper_fail_rps * 0.6,
                           requests=REQUESTS)
    return {
        "clean": run_level(clean),
        "delay": run_level(clean.replace(
            client_to_server=NetemConfig(delay_ns=10_000_000),
            server_to_client=NetemConfig(delay_ns=10_000_000),
        )),
        "loss": run_level(clean.replace(
            client_to_server=NetemConfig(loss=0.01),
            server_to_client=NetemConfig(loss=0.01),
        )),
    }


def test_delay_shifts_latency_not_metrics(triton_runs):
    clean, delay = triton_runs["clean"], triton_runs["delay"]
    # End-to-end latency gains ~2x the one-way delay.
    assert delay.p50_ns > clean.p50_ns + 15_000_000
    # Observed RPS is untouched.
    assert delay.rps_obsv == pytest.approx(clean.rps_obsv, rel=0.03)


def test_loss_inflates_tail_not_metrics(triton_runs):
    clean, loss = triton_runs["clean"], triton_runs["loss"]
    assert loss.p99_ns > clean.p99_ns + 50_000_000  # +50ms at least
    assert loss.rps_obsv == pytest.approx(clean.rps_obsv, rel=0.03)
    assert loss.poll_mean_duration_ns == pytest.approx(
        clean.poll_mean_duration_ns, rel=0.1
    )


def test_server_throughput_unchanged(triton_runs):
    clean = triton_runs["clean"]
    for label in ("delay", "loss"):
        assert triton_runs[label].achieved_rps == pytest.approx(
            clean.achieved_rps, rel=0.05
        ), label
