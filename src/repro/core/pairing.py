"""Per-request timeline reconstruction (Fig. 1(c), §III).

In the *simple* case — a single thread handling the whole request cycle —
``recv`` and ``send`` syscalls pair up one-to-one and service time is
directly observable as the gap between the recv's exit and the send's
entry.  The paper shows this breaks down with multi-threaded dispatch
("eBPF has no observability into request boundaries"); the pairing below
therefore reports how many syscalls it could *not* pair, which is exactly
the signal that a workload needs the statistical methodology instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..kernel.syscalls import SyscallFamily
from ..kernel.tracelog import SyscallRecord

__all__ = ["RequestTimeline", "PairingResult", "reconstruct_timelines"]


@dataclass(frozen=True)
class RequestTimeline:
    """One reconstructed request: recv → (service) → send."""

    tid: int
    recv: SyscallRecord
    send: SyscallRecord

    @property
    def service_ns(self) -> int:
        """Time between finishing the read and starting the response."""
        return self.send.enter_ns - self.recv.exit_ns

    @property
    def total_ns(self) -> int:
        """recv entry to send exit."""
        return self.send.exit_ns - self.recv.enter_ns


@dataclass
class PairingResult:
    """Reconstruction outcome + bookkeeping on what could not be paired."""

    timelines: List[RequestTimeline]
    unmatched_recvs: int
    unmatched_sends: int

    @property
    def paired(self) -> int:
        return len(self.timelines)

    @property
    def pairing_rate(self) -> float:
        total = self.paired * 2 + self.unmatched_recvs + self.unmatched_sends
        return (self.paired * 2) / total if total else 0.0

    def mean_service_ns(self) -> float:
        if not self.timelines:
            return 0.0
        return sum(t.service_ns for t in self.timelines) / len(self.timelines)


def reconstruct_timelines(records: Sequence[SyscallRecord]) -> PairingResult:
    """Pair recv/send records per thread, in time order.

    Within each tid, a ``send`` is matched to the most recent still-unmatched
    ``recv`` that *precedes* it.  This succeeds exactly for the
    single-thread-per-request structure; cross-thread request hand-offs
    surface as unmatched syscalls.
    """
    timelines: List[RequestTimeline] = []
    pending: Dict[int, List[SyscallRecord]] = {}
    unmatched_sends = 0

    for record in sorted(records, key=lambda r: r.enter_ns):
        family = record.family
        if family == SyscallFamily.RECV:
            pending.setdefault(record.tid, []).append(record)
        elif family == SyscallFamily.SEND:
            stack = pending.get(record.tid)
            if stack:
                recv = stack.pop(0)  # FIFO: oldest outstanding request first
                timelines.append(RequestTimeline(tid=record.tid, recv=recv, send=record))
            else:
                unmatched_sends += 1

    unmatched_recvs = sum(len(stack) for stack in pending.values())
    return PairingResult(
        timelines=timelines,
        unmatched_recvs=unmatched_recvs,
        unmatched_sends=unmatched_sends,
    )
