"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "data-caching" in out
    assert "triton-grpc" in out
    assert "62000" in out


def test_run(capsys):
    assert main(["run", "silo", "--load", "0.5", "--requests", "300"]) == 0
    out = capsys.readouterr().out
    assert "RPS_obsv" in out
    assert "QoS ok" in out


def test_run_explicit_rps(capsys):
    assert main(["run", "silo", "--rps", "700", "--requests", "200"]) == 0
    assert "700" in capsys.readouterr().out


def test_run_vm_monitor(capsys):
    assert main(["run", "silo", "--load", "0.4", "--requests", "150",
                 "--monitor", "vm"]) == 0
    assert "var(dt_send)" in capsys.readouterr().out


def test_sweep(capsys):
    assert main(["sweep", "silo", "--levels", "4", "--requests", "200"]) == 0
    out = capsys.readouterr().out
    assert "dispersion" in out
    assert "QoS failure at offered" in out or "never violated" in out


def test_report_empty(tmp_path, capsys):
    directory = tmp_path / "results"
    directory.mkdir()
    assert main(["report", "--results", str(directory)]) == 0
    assert "No renderable results" in capsys.readouterr().out


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nginx"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
