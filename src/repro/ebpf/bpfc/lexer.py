"""Tokenizer for the restricted BPF-C dialect (see package docstring)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import BpfError

__all__ = ["Token", "tokenize", "CompileError"]


class CompileError(BpfError):
    """Source rejected by the BPF-C front-end."""

    def __init__(self, message: str, line: int = 0) -> None:
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'number' | 'punct' | 'eof'
    text: str
    line: int

    def __repr__(self) -> str:
        return f"<{self.kind} {self.text!r} @{self.line}>"


_KEYWORDS = frozenset({
    "u32", "u64", "s32", "s64", "int", "long", "return", "if", "else", "void",
})

# Longest-first so '>>'/'<<'/'->'/'==' beat their prefixes.
_PUNCTUATION = (
    "->", "<<", ">>", "==", "!=", "<=", ">=", "&&", "||",
    "+=", "-=", "*=", "/=", "&=", "|=", "^=", "++", "--",
    "(", ")", "{", "}", "[", "]", ";", ",", ".",
    "=", "+", "-", "*", "/", "%", "&", "|", "^", "<", ">", "!", "~",
)


def tokenize(source: str) -> List[Token]:
    """Tokenize; raises :class:`CompileError` on illegal characters."""
    tokens: List[Token] = []
    line = 1
    index = 0
    length = len(source)
    while index < length:
        ch = source[index]
        if ch == "\n":
            line += 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            continue
        if source.startswith("//", index):
            end = source.find("\n", index)
            index = length if end == -1 else end
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end == -1:
                raise CompileError("unterminated block comment", line)
            line += source.count("\n", index, end)
            index = end + 2
            continue
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            tokens.append(Token("ident", source[start:index], line))
            continue
        if ch.isdigit():
            start = index
            if source.startswith("0x", index) or source.startswith("0X", index):
                index += 2
                while index < length and source[index] in "0123456789abcdefABCDEF":
                    index += 1
            else:
                while index < length and source[index].isdigit():
                    index += 1
            # Swallow C integer suffixes (232UL and friends).
            while index < length and source[index] in "uUlL":
                index += 1
            tokens.append(Token("number", source[start:index], line))
            continue
        for punct in _PUNCTUATION:
            if source.startswith(punct, index):
                tokens.append(Token("punct", punct, line))
                index += len(punct)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens


def parse_int(text: str, line: int) -> int:
    core = text.rstrip("uUlL")
    try:
        return int(core, 0)
    except ValueError:
        raise CompileError(f"bad integer literal {text!r}", line) from None
