"""The kernel façade: boot a machine, create processes, wire connections."""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

from ..net.netem import NetemConfig
from ..sim.engine import Environment
from ..sim.rng import SeedSequence
from .cpu import CPU
from .interference import InterferenceModel, NullInterference
from .machine import MachineSpec
from .sockets import ListenSocket, SocketEndpoint, connect_pair
from .threads import KernelTask, KProcess
from .tracepoints import TracepointBus

__all__ = ["Kernel"]


class Kernel:
    """A booted machine: cores + tracepoints + processes + sockets.

    Parameters
    ----------
    env:
        Simulation environment (integer-ns clock).
    spec:
        Machine profile (cores, quantum, overheads, interference spec).
    seeds:
        Seed sequence; the kernel derives per-purpose child streams.
    interference:
        ``True`` (default) builds the contention model from ``spec``;
        ``False`` disables stalls; or pass a custom model.
    """

    _FIRST_PID = 100

    def __init__(
        self,
        env: Environment,
        spec: MachineSpec,
        seeds: SeedSequence,
        interference=True,
    ) -> None:
        self.env = env
        self.spec = spec
        self.seeds = seeds
        self.tracepoints = TracepointBus()
        if interference is True:
            model = InterferenceModel(spec.interference, seeds.stream("kernel:interference"))
        elif interference is False:
            model = NullInterference()
        else:
            model = interference
        self.cpu = CPU(env, spec, model)
        self._pids = itertools.count(self._FIRST_PID)
        self._tids = itertools.count(self._FIRST_PID)
        self._conn_ids = itertools.count(1)
        self.processes: list = []

    # -- time ------------------------------------------------------------
    def ktime_ns(self) -> int:
        """``bpf_ktime_get_ns()`` as seen by probes."""
        return self.env.now

    # -- processes ---------------------------------------------------------
    def create_process(self, name: str) -> KProcess:
        """Create a process; its pid doubles as the tgid of its tasks."""
        process = KProcess(self, next(self._pids), name)
        self.processes.append(process)
        return process

    def _new_task(self, process: KProcess, name: str) -> KernelTask:
        return KernelTask(self, process, next(self._tids), name)

    # -- sockets ---------------------------------------------------------
    def create_listener(self, name: str = "listener") -> ListenSocket:
        return ListenSocket(self.env, name=name)

    def open_connection(
        self,
        listener: Optional[ListenSocket] = None,
        client_to_server: Optional[NetemConfig] = None,
        server_to_client: Optional[NetemConfig] = None,
        name: Optional[str] = None,
    ) -> Tuple[SocketEndpoint, SocketEndpoint]:
        """Establish a connection; returns ``(client_side, server_side)``.

        When ``listener`` is given, the server side also lands in its accept
        queue so a server thread can ``sys_accept`` it.
        """
        conn_name = name or f"conn{next(self._conn_ids)}"
        return connect_pair(
            self.env,
            self.seeds,
            conn_name,
            client_to_server or NetemConfig.ideal(),
            server_to_client or NetemConfig.ideal(),
            listener=listener,
        )

    def __repr__(self) -> str:
        return f"<Kernel {self.spec.name} processes={len(self.processes)}>"
