"""Multi-stage observability (§V-B).

"For multi-stage workloads, like microservices, we would require eBPF
observability of individual services in the microservice workload in order
to then combine the request-level observability metrics together."

:class:`MultiServiceMonitor` does exactly that: one
:class:`~repro.core.monitor.RequestMetricsMonitor` per service process,
plus the combination layer — per-tier idleness, per-tier saturation
dispersion, and bottleneck attribution (which tier is closest to
saturation right now).  The Web Search workload (front-end + index-search
processes) is the in-repo testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..kernel.kernel import Kernel
from ..kernel.syscalls import SyscallSpec
from .config import CollectorConfig, resolve_collector_config
from .monitor import MetricsSnapshot, RequestMetricsMonitor
from .slack import idleness_fraction

__all__ = ["ServiceSpec", "MultiServiceMonitor", "CombinedSnapshot", "TierReading"]


@dataclass(frozen=True)
class ServiceSpec:
    """One monitored service: process + its syscall profile + worker count."""

    name: str
    tgid: int
    workers: int
    syscalls: Optional[SyscallSpec] = None


@dataclass(frozen=True)
class TierReading:
    """Combined per-tier signals for one window."""

    name: str
    snapshot: MetricsSnapshot
    idleness: float
    dispersion: float

    @property
    def rps_obsv(self) -> float:
        return self.snapshot.rps_obsv


@dataclass(frozen=True)
class CombinedSnapshot:
    """All tiers for one window + derived attribution."""

    tiers: Tuple[TierReading, ...]

    def tier(self, name: str) -> TierReading:
        for reading in self.tiers:
            if reading.name == name:
                return reading
        raise KeyError(f"no tier named {name!r}")

    @property
    def bottleneck(self) -> TierReading:
        """The tier with the least idleness (closest to saturation)."""
        return min(self.tiers, key=lambda t: t.idleness)

    @property
    def entry_rps(self) -> float:
        """Observed request rate at the entry tier (end-to-end throughput
        proxy; the first tier fronts the clients)."""
        return self.tiers[0].rps_obsv

    def idleness_by_tier(self) -> Dict[str, float]:
        return {t.name: t.idleness for t in self.tiers}


class MultiServiceMonitor:
    """Per-service monitors + the combination layer.

    Services are given entry-tier first; the entry tier's send-family rate
    doubles as the end-to-end throughput proxy.
    """

    def __init__(self, kernel: Kernel, services: List[ServiceSpec],
                 config: "CollectorConfig | str | None" = None, *,
                 mode: Optional[str] = None) -> None:
        config = resolve_collector_config(
            config, "MultiServiceMonitor", mode=mode)
        if not services:
            raise ValueError("need at least one service to monitor")
        names = [s.name for s in services]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate service names in {names}")
        self.kernel = kernel
        self.services = list(services)
        self.config = config
        self._monitors: Dict[str, RequestMetricsMonitor] = {
            s.name: RequestMetricsMonitor(
                kernel, s.tgid, spec=s.syscalls, config=config)
            for s in services
        }
        self._attached = False

    def attach(self) -> "MultiServiceMonitor":
        for monitor in self._monitors.values():
            monitor.attach()
        self._attached = True
        return self

    def detach(self) -> None:
        for monitor in self._monitors.values():
            monitor.detach()
        self._attached = False

    def __enter__(self) -> "MultiServiceMonitor":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    def snapshot(self, reset: bool = False) -> CombinedSnapshot:
        if not self._attached:
            raise RuntimeError("monitor is not attached")
        readings = []
        for service in self.services:
            snap = self._monitors[service.name].snapshot(reset=reset)
            idleness = idleness_fraction(
                snap.poll.sum, snap.duration_ns, workers=service.workers
            )
            readings.append(TierReading(
                name=service.name,
                snapshot=snap,
                idleness=idleness,
                dispersion=snap.send_delta_cov2,
            ))
        return CombinedSnapshot(tiers=tuple(readings))

    @classmethod
    def for_two_tier_app(cls, kernel: Kernel, app,
                         config: "CollectorConfig | str | None" = None,
                         ) -> "MultiServiceMonitor":
        """Convenience wiring for :class:`~repro.workloads.TwoTierApp`."""
        app_config = app.config
        return cls(kernel, [
            ServiceSpec(name="front-end", tgid=app.process.pid,
                        workers=app.worker_count, syscalls=app_config.syscalls),
            ServiceSpec(name="index-search", tgid=app.backend_process.pid,
                        workers=app_config.workers,
                        syscalls=app_config.syscalls),
        ], config)
