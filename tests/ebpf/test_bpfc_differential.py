"""Differential testing of the bpfc expression compiler.

Random integer expressions are rendered to C, compiled to eBPF, verified,
executed in the VM, and compared against a reference evaluator implementing
the BPF ISA's 64-bit semantics (wrapping, masked shifts, div-by-zero → 0,
mod-by-zero → dividend, 0/1 comparisons).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ebpf import HelperRuntime, Vm
from repro.ebpf.bpfc import compile_source

U64 = (1 << 64) - 1


# ---------------------------------------------------------------------------
# expression model: tuples ('num', v) | (op, lhs, rhs) | ('neg'|'not', x)
# ---------------------------------------------------------------------------
_BINOPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
           "==", "!=", "<", "<=", ">", ">=", "&&", "||")

_numbers = st.integers(min_value=0, max_value=2**31 - 1)


def _exprs(depth: int):
    if depth == 0:
        return st.tuples(st.just("num"), _numbers)
    sub = _exprs(depth - 1)
    return st.one_of(
        st.tuples(st.just("num"), _numbers),
        st.tuples(st.sampled_from(_BINOPS), sub, sub),
        st.tuples(st.sampled_from(("neg", "not")), sub),
    )


def to_c(expr) -> str:
    kind = expr[0]
    if kind == "num":
        return str(expr[1])
    if kind == "neg":
        return f"(-{to_c(expr[1])})"
    if kind == "not":
        return f"(!{to_c(expr[1])})"
    return f"({to_c(expr[1])} {kind} {to_c(expr[2])})"


def evaluate(expr) -> int:
    """Reference semantics: everything u64, BPF division rules."""
    kind = expr[0]
    if kind == "num":
        return expr[1] & U64
    if kind == "neg":
        return (-evaluate(expr[1])) & U64
    if kind == "not":
        return 0 if evaluate(expr[1]) else 1
    a = evaluate(expr[1])
    b = evaluate(expr[2])
    if kind == "+":
        return (a + b) & U64
    if kind == "-":
        return (a - b) & U64
    if kind == "*":
        return (a * b) & U64
    if kind == "/":
        return (a // b) & U64 if b else 0
    if kind == "%":
        return (a % b) & U64 if b else a
    if kind == "&":
        return a & b
    if kind == "|":
        return a | b
    if kind == "^":
        return a ^ b
    if kind == "<<":
        return (a << (b & 63)) & U64
    if kind == ">>":
        return a >> (b & 63)
    if kind == "==":
        return 1 if a == b else 0
    if kind == "!=":
        return 1 if a != b else 0
    if kind == "<":
        return 1 if a < b else 0
    if kind == "<=":
        return 1 if a <= b else 0
    if kind == ">":
        return 1 if a > b else 0
    if kind == ">=":
        return 1 if a >= b else 0
    if kind == "&&":
        return 1 if (a and b) else 0
    if kind == "||":
        return 1 if (a or b) else 0
    raise AssertionError(kind)


def run_compiled(expr) -> int:
    source = f"""
    TRACEPOINT_PROBE(raw_syscalls, sys_enter) {{
        u64 v = {to_c(expr)};
        return v;
    }}
    """
    unit = compile_source(source)
    program = unit.programs[0].resolve_maps(unit.maps).verify()
    result = Vm().execute(program.insns, b"\x00" * 64, HelperRuntime())
    return result.r0


@given(expr=_exprs(depth=3))
@settings(max_examples=250, deadline=None)
def test_compiled_expression_matches_reference(expr):
    assert run_compiled(expr) == evaluate(expr)


@pytest.mark.parametrize("source_expr,expected", [
    ("7 / 0", 0),                      # BPF: div by zero -> 0
    ("7 % 0", 7),                      # BPF: mod by zero -> dividend
    ("1 << 64", 1),                    # shift masked to 63 -> shift by 0
    ("(0 - 1) >> 32", (1 << 32) - 1),  # logical (unsigned) right shift
    ("(0 - 5) / 2", ((1 << 64) - 5) // 2),  # unsigned division
])
def test_semantic_corner_cases(source_expr, expected):
    source = f"""
    TRACEPOINT_PROBE(raw_syscalls, sys_enter) {{
        u64 v = {source_expr};
        return v;
    }}
    """
    unit = compile_source(source)
    program = unit.programs[0].resolve_maps(unit.maps).verify()
    result = Vm().execute(program.insns, b"\x00" * 64, HelperRuntime())
    assert result.r0 == expected
