"""Instruction representation with real 8-byte wire encoding.

Instructions round-trip through the genuine kernel encoding
(``struct bpf_insn``): 1 byte opcode, packed dst/src register nibbles,
16-bit signed offset, 32-bit signed immediate.  LD_IMM64 occupies two
slots; the second slot carries the upper 32 immediate bits.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from .errors import AssemblerError
from .opcodes import (
    BPF_PSEUDO_MAP_FD,
    AluOp,
    InsnClass,
    JmpOp,
    MemMode,
    MemSize,
    Src,
)

__all__ = ["Insn", "encode", "decode", "LD_IMM64_OPCODE"]

_STRUCT = struct.Struct("<BBhi")

#: Opcode of the two-slot 64-bit immediate load: LD | IMM | DW.
LD_IMM64_OPCODE = InsnClass.LD | MemMode.IMM | MemSize.DW  # 0x18


@dataclass(frozen=True)
class Insn:
    """One eBPF instruction (one slot; LD_IMM64 is two Insn slots)."""

    opcode: int
    dst: int = 0
    src: int = 0
    off: int = 0
    imm: int = 0
    #: Python-side annotation: the map object referenced by an LD_IMM64 map
    #: load (resolved by the loader; not part of the wire encoding).
    map_ref: Optional[object] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not 0 <= self.opcode <= 0xFF:
            raise AssemblerError(f"opcode out of range: {self.opcode:#x}")
        if not 0 <= self.dst <= 10 or not 0 <= self.src <= 10:
            # src may also carry pseudo values like BPF_PSEUDO_MAP_FD (1),
            # which is within register range anyway.
            raise AssemblerError(f"register out of range: dst={self.dst} src={self.src}")
        if not -(1 << 15) <= self.off < (1 << 15):
            raise AssemblerError(f"offset out of range: {self.off}")
        if not -(1 << 31) <= self.imm < (1 << 31):
            raise AssemblerError(f"imm out of range: {self.imm}")

    # -- classification helpers -------------------------------------------
    @property
    def insn_class(self) -> InsnClass:
        return InsnClass(self.opcode & 0x07)

    @property
    def is_alu(self) -> bool:
        return self.insn_class in (InsnClass.ALU, InsnClass.ALU64)

    @property
    def is_jump(self) -> bool:
        return self.insn_class in (InsnClass.JMP, InsnClass.JMP32)

    @property
    def alu_op(self) -> AluOp:
        return AluOp(self.opcode & 0xF0)

    @property
    def jmp_op(self) -> JmpOp:
        return JmpOp(self.opcode & 0xF0)

    @property
    def op_bits(self) -> int:
        """Raw operation bits (``opcode & 0xF0``) without enum wrapping."""
        return self.opcode & 0xF0

    @property
    def uses_reg_source(self) -> bool:
        return bool(self.opcode & Src.X)

    @property
    def mem_size(self) -> MemSize:
        return MemSize(self.opcode & 0x18)

    @property
    def mem_mode(self) -> MemMode:
        return MemMode(self.opcode & 0xE0)

    @property
    def is_ld_imm64(self) -> bool:
        return self.opcode == LD_IMM64_OPCODE

    @property
    def is_map_load(self) -> bool:
        return self.is_ld_imm64 and self.src == BPF_PSEUDO_MAP_FD

    def with_imm(self, imm: int) -> "Insn":
        return replace(self, imm=imm)

    def __repr__(self) -> str:
        return (
            f"Insn(op={self.opcode:#04x}, dst=r{self.dst}, src=r{self.src}, "
            f"off={self.off}, imm={self.imm})"
        )


def encode(insns: Sequence[Insn]) -> bytes:
    """Encode a program to its real little-endian wire format."""
    return b"".join(
        _STRUCT.pack(i.opcode, (i.src << 4) | i.dst, i.off, i.imm) for i in insns
    )


def decode(blob: bytes) -> List[Insn]:
    """Decode wire format back into instruction slots.

    Map references (a loader-side concept) cannot be recovered and are left
    unset.
    """
    if len(blob) % _STRUCT.size:
        raise AssemblerError(f"truncated program: {len(blob)} bytes")
    insns = []
    for chunk_start in range(0, len(blob), _STRUCT.size):
        opcode, regs, off, imm = _STRUCT.unpack_from(blob, chunk_start)
        insns.append(Insn(opcode=opcode, dst=regs & 0x0F, src=regs >> 4, off=off, imm=imm))
    return insns
