"""Tests for the saturation detector and slack estimator."""

import pytest

from repro.core import (
    OnlineSaturationDetector,
    SlackEstimator,
    VarianceKneeDetector,
    detect_knee,
    idleness_fraction,
    stabilization_point,
)
from repro.sim import MSEC, SEC


class TestDetectKnee:
    def test_finds_knee_in_fig3_shape(self):
        # Flat baseline then sharp rise past saturation (Fig. 3).
        xs = [100, 200, 300, 400, 500, 600, 700, 800]
        variances = [1.0, 1.2, 0.9, 1.1, 1.3, 2.0, 9.0, 30.0]
        knee = detect_knee(xs, variances, baseline_fraction=0.4, threshold_factor=5.0)
        assert knee is not None
        assert knee.x == 700
        assert knee.baseline == pytest.approx(1.1, abs=0.2)

    def test_no_knee_when_flat(self):
        xs = list(range(10))
        assert detect_knee(xs, [1.0] * 10) is None

    def test_unsorted_x_handled(self):
        xs = [800, 100, 400, 200, 600, 300, 700, 500]
        variances = [30.0, 1.0, 1.1, 1.2, 2.0, 0.9, 9.0, 1.3]
        knee = detect_knee(xs, variances, baseline_fraction=0.4)
        assert knee is not None
        assert knee.x == 700

    def test_too_few_points(self):
        assert detect_knee([1, 2], [1.0, 100.0]) is None

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            detect_knee([1, 2, 3], [1.0])

    def test_zero_baseline_does_not_divide_by_zero(self):
        xs = [1, 2, 3, 4, 5]
        variances = [0.0, 0.0, 0.0, 0.0, 5.0]
        knee = detect_knee(xs, variances, baseline_fraction=0.4)
        assert knee is not None and knee.x == 5


class TestVarianceKneeDetector:
    def test_saturation_point(self):
        det = VarianceKneeDetector(baseline_fraction=0.4, threshold_factor=5.0)
        xs = [1, 2, 3, 4, 5]
        assert det.saturation_point(xs, [1, 1, 1, 1, 10]) == 5
        assert det.saturation_point(xs, [1, 1, 1, 1, 1]) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            VarianceKneeDetector(baseline_fraction=0.0)
        with pytest.raises(ValueError):
            VarianceKneeDetector(threshold_factor=1.0)


class TestOnlineSaturationDetector:
    def test_flags_spike_after_warmup(self):
        det = OnlineSaturationDetector(threshold_factor=5.0, warmup_windows=3)
        for _ in range(5):
            assert not det.observe(1.0)
        assert det.observe(50.0)

    def test_warmup_suppresses_early_flags(self):
        det = OnlineSaturationDetector(warmup_windows=5)
        det.observe(1.0)
        assert not det.observe(100.0)  # still warming up

    def test_hysteresis_clears_flag(self):
        det = OnlineSaturationDetector(threshold_factor=5.0, warmup_windows=1, hysteresis=3)
        det.observe(1.0)
        det.observe(1.0)
        assert det.observe(100.0)
        assert det.observe(1.0)  # healthy but streak < 3
        assert det.observe(1.0)
        assert not det.observe(1.0)  # streak reaches 3 -> clears

    def test_baseline_not_poisoned_by_spikes(self):
        det = OnlineSaturationDetector(threshold_factor=5.0, warmup_windows=1, ewma_alpha=0.5)
        det.observe(1.0)
        det.observe(1.0)
        det.observe(1000.0)  # spike; baseline must not absorb it
        assert det.baseline < 10.0

    def test_saturated_start_does_not_poison_baseline(self):
        # A stream that begins saturated used to absorb the saturated
        # windows into the EWMA during warmup, inflating the baseline and
        # masking saturation forever.  The baseline must instead seed from
        # the warmup-window median.
        det = OnlineSaturationDetector(threshold_factor=5.0, warmup_windows=5)
        for variance in [100.0, 1.0, 1.0, 1.0, 1.0]:
            assert not det.observe(variance)  # warmup: flags suppressed
        assert det.baseline == pytest.approx(1.0)
        assert det.observe(20.0)  # 20 >= 5 x median(warmup) -> saturated

    def test_history_recorded(self):
        det = OnlineSaturationDetector(warmup_windows=1)
        det.observe(1.0)
        det.observe(1.0)
        det.observe(100.0)
        assert det.history == [False, False, True]


class TestStabilizationPoint:
    def test_declining_then_flat(self):
        # Fig. 4's shape: steep decline, flat at saturation.
        xs = [100, 200, 300, 400, 500, 600]
        durations = [100.0, 60.0, 30.0, 10.0, 9.5, 9.3]
        point = stabilization_point(xs, durations, flat_tolerance=0.05)
        assert point == 400

    def test_never_flattens(self):
        xs = [1, 2, 3, 4, 5]
        durations = [100.0, 80.0, 60.0, 40.0, 20.0]
        assert stabilization_point(xs, durations, flat_tolerance=0.01) is None

    def test_completely_flat_curve(self):
        assert stabilization_point([1, 2, 3], [5.0, 5.0, 5.0]) == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            stabilization_point([1, 2], [1.0])


class TestIdlenessFraction:
    def test_basic(self):
        assert idleness_fraction(500 * MSEC, SEC, workers=1) == 0.5

    def test_multiple_workers(self):
        assert idleness_fraction(SEC, SEC, workers=4) == 0.25

    def test_clamped(self):
        assert idleness_fraction(10 * SEC, SEC, workers=1) == 1.0

    def test_degenerate(self):
        assert idleness_fraction(1, 0) == 0.0
        assert idleness_fraction(1, SEC, workers=0) == 0.0


class TestSlackEstimator:
    CAL = [(100, 90 * MSEC), (500, 30 * MSEC), (1000, 2 * MSEC)]

    def test_implied_load_interpolates(self):
        est = SlackEstimator(self.CAL)
        assert est.implied_load(90 * MSEC) == pytest.approx(100)
        assert est.implied_load(2 * MSEC) == pytest.approx(1000)
        assert est.implied_load(60 * MSEC) == pytest.approx(300, rel=0.01)

    def test_out_of_range_clamps(self):
        est = SlackEstimator(self.CAL)
        assert est.implied_load(500 * MSEC) == 100
        assert est.implied_load(0) == 1000

    def test_slack_bounds(self):
        est = SlackEstimator(self.CAL)
        assert est.slack(90 * MSEC) == pytest.approx(0.9)
        assert est.slack(2 * MSEC) == pytest.approx(0.0)

    def test_unsorted_calibration_accepted(self):
        est = SlackEstimator(list(reversed(self.CAL)))
        assert est.saturation_load == 1000

    def test_non_monotone_calibration_does_not_collapse_to_saturation(self):
        # A noisy calibration tail (duration rising again past the knee)
        # used to make in-range queries fall through to the saturation load
        # (slack 0).  Durations are monotonized at construction instead.
        est = SlackEstimator([(100, 90 * MSEC), (500, 20 * MSEC), (1000, 40 * MSEC)])
        load = est.implied_load(30 * MSEC)
        assert load == pytest.approx(100 + (500 - 100) * (90 - 30) / (90 - 20), rel=0.01)
        assert est.slack(30 * MSEC) > 0.4

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            SlackEstimator([(1, 1.0)])
