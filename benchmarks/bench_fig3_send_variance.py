"""EXP-F3 — Figure 3: variance of send-family inter-syscall deltas vs load.

The paper's claim: past the QoS-failure line, the variance of Δt_send rises
sharply — the contention signature usable for saturation detection.  We
print the normalized variance series (the figure's y-axis) alongside the
rate-independent dispersion index (var/mean², see core.deltas.cov2) used by
the knee detector, and assert the knee lands at/after the failure line.
"""

from __future__ import annotations

from conftest import emit, sweep_cache

from repro.analysis import save_record, series_table, sparkline
from repro.core import detect_knee, normalize
from repro.workloads import get_workload, workload_keys


def analyze(sweep):
    norm_rps = normalize(sweep.achieved)
    norm_var = normalize(sweep.variances)
    knee = detect_knee(sweep.achieved, sweep.dispersion,
                       baseline_fraction=0.4, threshold_factor=3.0)
    return {
        "workload": sweep.workload,
        "offered": sweep.offered,
        "norm_rps": norm_rps,
        "norm_var": norm_var,
        "dispersion": sweep.dispersion,
        "qos_fail_rps": sweep.qos_failure_rps(),
        "knee_rps": None if knee is None else knee.x,
        "qos_flags": [l.qos_violated for l in sweep.levels],
    }


def test_fig3_send_variance(benchmark, sweep_cache):
    def run():
        return [analyze(sweep_cache.full_sweep(key)) for key in workload_keys()]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_record({"figure": "fig3", "rows": rows}, "fig3_send_variance")

    emit("FIGURE 3 — normalized var(Δt_send) under varying load")
    for row in rows:
        emit(f"\n[{row['workload']}]  QoS fails at offered="
             f"{row['qos_fail_rps']}  dispersion knee at={row['knee_rps']}")
        emit("  norm variance  " + sparkline(row["norm_var"]))
        emit("  dispersion     " + sparkline(row["dispersion"]))
        emit(series_table(
            {
                "offered": row["offered"],
                "norm RPS": row["norm_rps"],
                "norm var": row["norm_var"],
                "var/mean^2": row["dispersion"],
            },
            qos_marker=row["qos_flags"],
        ))

    for row in rows:
        key = row["workload"]
        assert row["qos_fail_rps"] is not None, f"{key} never violated QoS"
        # The dispersion signal rises past saturation: the final (deepest
        # overload) level disperses well above the low-load baseline.
        baseline = sum(row["dispersion"][:3]) / 3
        assert row["dispersion"][-1] > 2.0 * baseline, key
        # The knee detector fires, at or after half the failure load and not
        # wildly before the failure point.
        assert row["knee_rps"] is not None, key
        assert row["knee_rps"] >= 0.5 * row["qos_fail_rps"], key
        # Raw variance at deep overload exceeds the pre-failure minimum
        # region (the figure's rise after the vertical line).
        pre_fail = [v for off, v in zip(row["offered"], row["norm_var"])
                    if off < row["qos_fail_rps"]]
        assert row["norm_var"][-1] > min(pre_fail), key
