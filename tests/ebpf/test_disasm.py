"""Disassembler coverage: every instruction shape renders sensibly."""

from repro.ebpf import Asm, HashMap, Helper, MemSize, ProgType, Program, Reg


def _disasm(build) -> str:
    asm = Asm()
    build(asm)
    return Program("p", asm.build(), ProgType.tracepoint_sys_enter()).disasm()


def test_alu_imm_and_reg():
    text = _disasm(lambda a: a.mov_imm(Reg.R1, 5).add_reg(Reg.R1, Reg.R2)
                   .mov_imm(Reg.R0, 0).exit_())
    assert "r1 = 5" in text
    assert "r1 += r2" in text


def test_alu32_marked():
    text = _disasm(lambda a: a.wmov_imm(Reg.R0, 1).exit_())
    assert "(w)" in text


def test_neg():
    text = _disasm(lambda a: a.mov_imm(Reg.R0, 1).neg(Reg.R0).exit_())
    assert "r0 = -r0" in text


def test_memory_ops():
    def build(a):
        a.mov_imm(Reg.R1, 1)
        a.stx(MemSize.DW, Reg.R10, -8, Reg.R1)
        a.st_imm(MemSize.W, Reg.R10, -16, 7)
        a.ldx(MemSize.B, Reg.R0, Reg.R10, -8)
        a.exit_()

    text = _disasm(build)
    assert "*(u64 *)(r10 -8) = r1" in text
    assert "*(u32 *)(r10 -16) = 7" in text
    assert "r0 = *(u8 *)(r10 -8)" in text


def test_jumps_show_targets():
    def build(a):
        a.mov_imm(Reg.R0, 0)
        a.jeq_imm(Reg.R0, 3, "end")
        a.ja("end")
        a.label("end")
        a.exit_()

    text = _disasm(build)
    assert "if r0 == 3 goto 3" in text
    assert "goto 3" in text


def test_signed_compare_symbols():
    def build(a):
        a.mov_imm(Reg.R0, 0)
        a.jsgt_imm(Reg.R0, -1, "end")
        a.label("end")
        a.exit_()

    assert "s>" in _disasm(build)


def test_call_and_map_and_imm64():
    m = HashMap(8, 8, name="counters")

    def build(a):
        a.ld_map_fd(Reg.R1, m)
        a.ld_imm64(Reg.R2, 0xABCDEF0012345678)
        a.call(Helper.KTIME_GET_NS)
        a.exit_()

    text = _disasm(build)
    assert "map['counters']" in text
    assert "0xabcdef0012345678 ll" in text
    assert "call #5" in text
    # Second LD_IMM64 slots are folded into one line ("call" contains "ll",
    # hence the leading space in the needle).
    assert text.count(" ll") == 1
