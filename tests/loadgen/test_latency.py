"""Latency tracker and percentile tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loadgen import LatencyTracker, percentile


class TestPercentile:
    def test_single_sample(self):
        assert percentile([42], 99) == 42.0

    def test_median_interpolation(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        samples = [5, 1, 3]
        assert percentile(samples, 0) == 1
        assert percentile(samples, 100) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_rejects_non_finite(self):
        # NaN poisons comparison-based selection order-dependently: the
        # same multiset of samples could return different percentiles
        # depending on input order.  Reject instead of returning garbage.
        for bad in (
            [1.0, float("nan"), 2.0],
            [float("nan"), 1.0, 2.0],
            [float("inf"), 1.0],
            [1.0, float("-inf")],
            [float("nan")],
        ):
            with pytest.raises(ValueError):
                percentile(bad, 50)

    @given(st.lists(st.integers(0, 10**9), min_size=1, max_size=200),
           st.floats(min_value=0, max_value=100))
    @settings(max_examples=100)
    def test_matches_numpy(self, samples, p):
        import numpy as np

        assert percentile(samples, p) == pytest.approx(
            float(np.percentile(samples, p)), rel=1e-9, abs=1e-6
        )


class TestLatencyTracker:
    def test_empty(self):
        tracker = LatencyTracker()
        assert tracker.count == 0
        assert tracker.mean_ns() == 0.0
        assert tracker.p99_ns() == 0.0
        assert tracker.max_ns() == 0

    def test_records(self):
        tracker = LatencyTracker()
        for value in (10, 20, 30):
            tracker.record(value)
        assert tracker.count == 3
        assert tracker.mean_ns() == 20.0
        assert tracker.max_ns() == 30
        assert tracker.p50_ns() == 20.0

    def test_p99_picks_tail(self):
        tracker = LatencyTracker()
        for _ in range(99):
            tracker.record(10)
        tracker.record(1000)
        assert tracker.p99_ns() > 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyTracker().record(-1)

    def test_reset(self):
        tracker = LatencyTracker()
        tracker.record(5)
        tracker.reset()
        assert tracker.count == 0

    def test_samples_copy(self):
        tracker = LatencyTracker()
        tracker.record(5)
        samples = tracker.samples()
        samples.append(6)
        assert tracker.count == 1

    def test_percentile_ns_sorts_once_across_queries(self, monkeypatch):
        # percentile_ns caches a sorted copy; the percentile() helper must
        # honour it instead of re-sorting on every windowed p50/p99 query.
        import repro.loadgen.latency as latency_mod

        tracker = LatencyTracker()
        for value in [5, 3, 9, 1, 7]:
            tracker.record(value)
        calls = {"n": 0}

        def counting_sorted(seq, *args, **kwargs):
            # ``sorted`` here resolves in the test module, not the patched one.
            calls["n"] += 1
            return sorted(seq, *args, **kwargs)

        monkeypatch.setattr(latency_mod, "sorted", counting_sorted, raising=False)
        try:
            assert tracker.p50_ns() == 5.0
            assert tracker.p99_ns() == pytest.approx(8.92)
        finally:
            monkeypatch.delattr(latency_mod, "sorted")
        assert calls["n"] == 1

    def test_cache_invalidation(self):
        tracker = LatencyTracker()
        tracker.record(10)
        assert tracker.p99_ns() == 10
        tracker.record(100)
        assert tracker.p99_ns() > 10
