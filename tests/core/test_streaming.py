"""Tests for the stream-to-userspace collector (§III's first methodology)."""

import pytest

from repro.core import DeltaCollector, StreamingDeltaCollector
from repro.core.streaming import RECORD_SIZE
from repro.kernel import Kernel, MachineSpec, Sys
from repro.net import Message
from repro.sim import MSEC, Environment, SeedSequence


def _kernel():
    spec = MachineSpec(name="t", cores=4, ctx_switch_ns=0, syscall_overhead_ns=0)
    return Kernel(Environment(), spec, SeedSequence(1), interference=False)


def _echo_server(kernel, sends=8, period_ms=2):
    env = kernel.env
    proc = kernel.create_process("srv")
    client, server = kernel.open_connection()

    def worker(task):
        ep = yield from task.sys_epoll_create1()
        yield from task.sys_epoll_ctl(ep, server)
        for _ in range(sends):
            yield from task.sys_epoll_wait(ep)
            msg = yield from task.sys_read(server)
            yield from task.sys_sendmsg(server, Message(size=msg.size))

    proc.spawn_thread(worker)

    def driver():
        for _ in range(sends):
            yield env.timeout(period_ms * MSEC)
            client.send(Message(size=64))

    env.process(driver())
    return proc


def test_streams_records_with_timestamps():
    kernel = _kernel()
    proc = _echo_server(kernel, sends=5, period_ms=2)
    collector = StreamingDeltaCollector(kernel, proc.pid, [Sys.SENDMSG]).attach()
    kernel.env.run()
    records = collector.drain()
    assert len(records) == 5
    timestamps = [t for t, _nr in records]
    assert timestamps == sorted(timestamps)
    assert all(nr == Sys.SENDMSG for _t, nr in records)
    assert collector.bytes_streamed == 5 * RECORD_SIZE


def test_statistics_match_in_kernel_collector():
    """Streaming + userspace math == in-kernel math, when nothing drops."""
    def run(collector_cls):
        kernel = _kernel()
        proc = _echo_server(kernel, sends=10, period_ms=3)
        if collector_cls is StreamingDeltaCollector:
            collector = collector_cls(kernel, proc.pid, [Sys.SENDMSG]).attach()
        else:
            collector = collector_cls(kernel, proc.pid, [Sys.SENDMSG], mode="vm").attach()
        kernel.env.run()
        return collector.snapshot()

    streamed = run(StreamingDeltaCollector)
    in_kernel = run(DeltaCollector)
    assert streamed == in_kernel


def test_filters_tgid_and_syscall():
    kernel = _kernel()
    proc = _echo_server(kernel, sends=4)
    collector = StreamingDeltaCollector(kernel, proc.pid, [Sys.SENDTO]).attach()
    kernel.env.run()
    assert collector.snapshot().events == 0


def test_full_buffer_drops_records():
    """The operational hazard of streaming: slow consumers lose data."""
    kernel = _kernel()
    proc = _echo_server(kernel, sends=10, period_ms=1)
    collector = StreamingDeltaCollector(
        kernel, proc.pid, [Sys.SENDMSG], per_cpu_capacity=4
    ).attach()
    kernel.env.run()  # no draining while the workload runs
    assert collector.lost_records == 6
    assert collector.snapshot().events == 4


def test_periodic_draining_prevents_drops():
    kernel = _kernel()
    proc = _echo_server(kernel, sends=10, period_ms=1)
    collector = StreamingDeltaCollector(
        kernel, proc.pid, [Sys.SENDMSG], per_cpu_capacity=4
    ).attach()

    def drainer():
        while True:
            yield kernel.env.timeout(2 * MSEC)
            collector.drain()

    kernel.env.process(drainer())
    kernel.env.run(until=30 * MSEC)
    assert collector.lost_records == 0
    assert collector.snapshot().events == 10


def test_reset_window_continuity():
    kernel = _kernel()
    proc = _echo_server(kernel, sends=6, period_ms=2)
    collector = StreamingDeltaCollector(kernel, proc.pid, [Sys.SENDMSG]).attach()
    kernel.env.run(until=7 * MSEC)
    first = collector.snapshot()
    collector.reset_window()
    kernel.env.run()
    second = collector.snapshot()
    assert first.events == 3
    assert second.count == 3  # boundary-spanning delta preserved


def test_double_attach_rejected():
    kernel = _kernel()
    collector = StreamingDeltaCollector(kernel, 1, [Sys.SENDMSG]).attach()
    with pytest.raises(RuntimeError):
        collector.attach()


def test_requires_syscalls():
    kernel = _kernel()
    with pytest.raises(ValueError):
        StreamingDeltaCollector(kernel, 1, [])
