"""Collection-path faults: the slow / pausing userspace consumer.

Stream-mode monitoring (the paper's first methodology, §III) only matches
the in-kernel collectors while userspace drains the perf buffers faster
than events arrive.  :class:`SlowConsumer` models the consumer as a
scheduled process — a fixed drain cadence, optionally interrupted by
periodic pauses (a GC pause, a log rotation, a CPU-starved reader thread).
With a finite per-CPU buffer, every pause longer than the buffer can absorb
turns into ``lost_records``, which the monitor surfaces as degraded
confidence instead of silently wrong rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..sim.engine import Environment
from ..sim.timebase import MSEC

__all__ = ["ConsumerSchedule", "SlowConsumer"]


@dataclass(frozen=True)
class ConsumerSchedule:
    """When the userspace consumer polls its perf buffers.

    ``drain_interval_ns``
        Cadence of normal polls (bcc's ``perf_buffer_poll`` loop period).
    ``pause_every_ns`` / ``pause_for_ns``
        Optional periodic outage: every ``pause_every_ns`` the consumer
        stops polling for ``pause_for_ns``.  Zero disables pauses.
    """

    drain_interval_ns: int = 1 * MSEC
    pause_every_ns: int = 0
    pause_for_ns: int = 0

    def __post_init__(self) -> None:
        if self.drain_interval_ns <= 0:
            raise ValueError("drain_interval_ns must be positive")
        if self.pause_every_ns < 0 or self.pause_for_ns < 0:
            raise ValueError("pause parameters must be non-negative")
        if (self.pause_every_ns > 0) != (self.pause_for_ns > 0):
            raise ValueError("pause_every_ns and pause_for_ns must be set together")


class SlowConsumer:
    """Drains streaming collectors on a :class:`ConsumerSchedule`.

    Works on anything with a ``drain()`` method (e.g.
    :class:`~repro.core.streaming.StreamingDeltaCollector`); a monitor in
    stream mode exposes two such collectors (send and recv).
    """

    def __init__(
        self,
        env: Environment,
        collectors: Iterable,
        schedule: ConsumerSchedule,
    ) -> None:
        self.env = env
        self.collectors: List = [c for c in collectors if hasattr(c, "drain")]
        self.schedule = schedule
        #: Diagnostics: completed drain sweeps and pauses taken.
        self.drains = 0
        self.pauses = 0
        self._started = False

    def start(self) -> "SlowConsumer":
        if self._started:
            raise RuntimeError("consumer already started")
        self._started = True
        self.env.process(self._run(), name="faults:consumer")
        return self

    def _run(self):
        schedule = self.schedule
        next_pause = schedule.pause_every_ns if schedule.pause_every_ns else None
        while True:
            yield self.env.timeout(schedule.drain_interval_ns)
            if next_pause is not None and self.env.now >= next_pause:
                self.pauses += 1
                yield self.env.timeout(schedule.pause_for_ns)
                next_pause = self.env.now + schedule.pause_every_ns
            for collector in self.collectors:
                collector.drain()
            self.drains += 1
