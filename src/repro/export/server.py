"""A minimal /metrics HTTP endpoint over the exporter.

Standard-library only (``http.server``), because the repo deliberately has
no HTTP framework dependency.  The simulation is not wall-clock-driven, so
the server publishes whatever state its render callable produces at scrape
time — for a finished cell that is the final exposition text; a live
consumer could re-render per request by passing ``exporter.scrape``.

Content negotiation follows the Prometheus convention: a scraper that
advertises ``application/openmetrics-text`` in ``Accept`` receives the
OpenMetrics dialect (exemplars, ``# EOF``), everyone else the classic text
format.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

__all__ = ["MetricsServer", "CONTENT_TYPE_TEXT", "CONTENT_TYPE_OPENMETRICS"]

CONTENT_TYPE_TEXT = "text/plain; version=0.0.4; charset=utf-8"
CONTENT_TYPE_OPENMETRICS = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


class MetricsServer:
    """Serve ``render(openmetrics)`` at ``/metrics`` on a local port.

    ``port=0`` binds an ephemeral port (the tests' and CI smoke job's
    mode); :attr:`port`/:attr:`url` expose the bound address after
    :meth:`start`.
    """

    def __init__(
        self,
        render: Callable[[bool], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._render = render
        self._host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            raise RuntimeError("server already started")
        render = self._render

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.split("?", 1)[0] != "/metrics":
                    self.send_error(404, "only /metrics is served")
                    return
                accept = self.headers.get("Accept", "")
                openmetrics = "application/openmetrics-text" in accept
                try:
                    body = render(openmetrics).encode("utf-8")
                except Exception as exc:  # surface render bugs to the scraper
                    self.send_error(500, f"render failed: {exc}")
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    CONTENT_TYPE_OPENMETRICS if openmetrics
                    else CONTENT_TYPE_TEXT,
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass  # keep scrapes out of stderr

        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="metrics-server",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- address ---------------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}/metrics"
