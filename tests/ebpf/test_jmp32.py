"""JMP32-class semantics: comparisons over the low 32 bits only."""

import pytest

from repro.ebpf import Asm, ProgType, Reg, Vm, verify

U32 = (1 << 32) - 1


def run(build):
    asm = Asm()
    build(asm)
    insns = asm.build()
    verify(insns, ProgType.tracepoint_sys_enter())
    return Vm().execute(insns, b"\x00" * 64).r0


def _select(build_cond):
    """Template: r0 = 1 if cond(taken) else 0."""
    def build(asm):
        build_cond(asm)
        asm.mov_imm(Reg.R0, 0)
        asm.ja("end")
        asm.label("hit")
        asm.mov_imm(Reg.R0, 1)
        asm.label("end")
        asm.exit_()

    return build


def test_wjeq_ignores_high_bits():
    def cond(asm):
        # r1 = (1 << 32) | 5: 64-bit != 5, but low 32 bits == 5.
        asm.ld_imm64(Reg.R1, (1 << 32) | 5)
        asm.wjeq_imm(Reg.R1, 5, "hit")

    assert run(_select(cond)) == 1


def test_jeq64_sees_high_bits():
    def cond(asm):
        asm.ld_imm64(Reg.R1, (1 << 32) | 5)
        asm.jeq_imm(Reg.R1, 5, "hit")

    assert run(_select(cond)) == 0


def test_wjne():
    def cond(asm):
        asm.ld_imm64(Reg.R1, (7 << 32))  # low 32 bits are 0
        asm.wjne_imm(Reg.R1, 0, "hit")

    assert run(_select(cond)) == 0


def test_wjgt_unsigned_32():
    def cond(asm):
        asm.mov_imm(Reg.R1, -1)  # low 32 bits = 0xFFFFFFFF, huge unsigned
        asm.wjgt_imm(Reg.R1, 100, "hit")

    assert run(_select(cond)) == 1


def test_wjslt_signed_32():
    def cond(asm):
        # 64-bit value 0x00000000FFFFFFFF: as s32 it is -1, so -1 < 3.
        asm.ld_imm64(Reg.R1, U32)
        asm.wjslt_imm(Reg.R1, 3, "hit")

    assert run(_select(cond)) == 1


def test_jslt64_disagrees():
    def cond(asm):
        # Same value as s64 is 4294967295 (positive): not < 3.
        asm.ld_imm64(Reg.R1, U32)
        asm.jslt_imm(Reg.R1, 3, "hit")

    assert run(_select(cond)) == 0
