"""Open-loop load generation and client-side latency ground truth."""

from .arrivals import poisson_interarrivals, uniform_interarrivals
from .client import ClientReport, OpenLoopClient
from .latency import LatencyTracker, percentile

__all__ = [
    "OpenLoopClient",
    "ClientReport",
    "LatencyTracker",
    "percentile",
    "poisson_interarrivals",
    "uniform_interarrivals",
]
