"""Tests for the tc-netem 'rate' (bandwidth) option."""

import pytest

from repro.net import Channel, Message, NetemConfig
from repro.sim import MSEC, SEC, Environment, SeedSequence


def _channel(env, config, seed=1):
    received = []
    chan = Channel(env, config, SeedSequence(seed).stream("rate"),
                   deliver=lambda msg: received.append((env.now, msg)))
    return chan, received


def test_serialization_ns():
    cfg = NetemConfig(rate_bps=8_000_000)  # 1 MB/s
    assert cfg.serialization_ns(1000) == 1_000_000  # 1ms for 1000 bytes
    assert NetemConfig().serialization_ns(10**6) == 0  # unlimited


def test_rate_validation():
    with pytest.raises(ValueError):
        NetemConfig(rate_bps=-1)


def test_single_message_pays_serialization():
    env = Environment()
    chan, received = _channel(env, NetemConfig(rate_bps=8_000_000))
    chan.send(Message(size=1000))
    env.run()
    assert received[0][0] == 1 * MSEC


def test_back_to_back_messages_queue_on_link():
    env = Environment()
    chan, received = _channel(env, NetemConfig(rate_bps=8_000_000))
    for tag in range(3):
        chan.send(Message(size=1000, tag=tag))
    env.run()
    times = [t for t, _m in received]
    assert times == [1 * MSEC, 2 * MSEC, 3 * MSEC]


def test_rate_composes_with_delay():
    env = Environment()
    chan, received = _channel(
        env, NetemConfig(delay_ns=5 * MSEC, rate_bps=8_000_000)
    )
    chan.send(Message(size=1000))
    env.run()
    assert received[0][0] == 6 * MSEC  # propagation + serialization


def test_unlimited_rate_unchanged():
    env = Environment()
    chan, received = _channel(env, NetemConfig())
    for tag in range(3):
        chan.send(Message(size=10_000, tag=tag))
    env.run()
    assert received[-1][0] <= 3  # only FIFO min-spacing ticks


def test_spaced_sends_do_not_queue():
    env = Environment()
    chan, received = _channel(env, NetemConfig(rate_bps=8_000_000))

    def sender():
        for _ in range(3):
            chan.send(Message(size=1000))
            yield env.timeout(10 * MSEC)

    env.process(sender())
    env.run()
    gaps = [b[0] - a[0] for a, b in zip(received, received[1:])]
    assert all(gap == 10 * MSEC for gap in gaps)
