#!/usr/bin/env python3
"""The paper's Listing 1, compiled from C and run against a live workload.

The paper presents its collector as a BCC C program measuring the duration
of ``epoll_wait`` (syscall 232) for one pid_tgid.  This example feeds that
C source — comments and all — through the bundled bpfc compiler, shows the
generated eBPF, loads it through the verifier, attaches it to the
raw_syscalls tracepoints, runs the Data Caching workload, and reads the
mean epoll_wait duration out of the map, comparing it with what a trusted
Python-side recorder saw.

Run:  python examples/listing1.py
"""

from repro import (
    AMD_EPYC_7302,
    Environment,
    Kernel,
    OpenLoopClient,
    SeedSequence,
    get_workload,
)
from repro.ebpf.bpfc import compile_source, load_c
from repro.kernel import Sys, TraceRecorder

LISTING_1 = """
// Hash map for looking up entry timestamp of each pid-tgid
BPF_HASH(start, u64, u64);
// Aggregates: [0] = total duration, [1] = completed syscalls
BPF_HASH(metrics, u64, u64);

// Executed at the start of every syscall
TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
    // Get pid_tgid of the application calling this syscall
    u64 pid_tgid = bpf_get_current_pid_tgid();
    if (pid_tgid != PID_TGID) return 0;  // Filter application
    if (args->id != 232) return 0;       // Filter epoll_wait
    u64 t = bpf_ktime_get_ns();          // Entry timestamp
    start.update(&pid_tgid, &t);         // Store start
    return 0;
}

// Executed at the exit of every syscall
TRACEPOINT_PROBE(raw_syscalls, sys_exit) {
    u64 pid_tgid = bpf_get_current_pid_tgid();
    if (pid_tgid != PID_TGID) return 0;
    if (args->id != 232) return 0;
    u64 *start_ns = start.lookup(&pid_tgid);  // Retrieve entry
    if (!start_ns) return 0;
    u64 end_ns = bpf_ktime_get_ns();          // Exit timestamp
    u64 duration = end_ns - *start_ns;        // Latest duration
    /* Update metrics or stream data */
    u64 total_key = 0;
    u64 *total = metrics.lookup(&total_key);
    if (!total) {
        metrics.update(&total_key, &duration);
    } else {
        *total += duration;
    }
    metrics.increment(1);
    return 0;
}
"""


def main() -> None:
    definition = get_workload("data-caching")
    config = definition.config
    env = Environment()
    seeds = SeedSequence(8)
    kernel = Kernel(env, AMD_EPYC_7302.with_cores(config.cores), seeds)
    app = definition.build(kernel)

    # Listing 1 filters one thread; pick the app's first worker.
    target = app.process.tasks[0]
    print(f"target: {target.name} (pid_tgid={target.pid_tgid:#x})\n")

    unit = compile_source(LISTING_1, constants={"PID_TGID": target.pid_tgid})
    enter_prog = unit.programs[0].resolve_maps(unit.maps)
    print(f"compiled {len(unit.programs)} programs; sys_enter is "
          f"{len(enter_prog)} insns ({len(enter_prog.bytecode())} bytes):")
    for line in enter_prog.disasm().splitlines()[:8]:
        print("   " + line)
    print("   ...")

    bpf = load_c(kernel, LISTING_1, constants={"PID_TGID": target.pid_tgid})
    recorder = TraceRecorder(kernel.tracepoints).attach()  # ground truth

    client = OpenLoopClient(
        env, app.client_sockets, seeds.stream("client"),
        rate_rps=definition.paper_fail_rps * 0.4, total_requests=3000,
        arrival="uniform",
    )
    client.start()
    env.run(until=client.done)

    total = bpf["metrics"].lookup_int(0) or 0
    count = bpf["metrics"].lookup_int(1) or 0
    mean_ms = total / count / 1e6 if count else 0.0
    truth = [r for r in recorder.records
             if r.pid_tgid == target.pid_tgid and r.syscall_nr == Sys.EPOLL_WAIT]
    truth_mean = sum(r.duration_ns for r in truth) / len(truth) / 1e6

    print(f"\nListing 1 (in eBPF): {count} epoll_waits, mean {mean_ms:.3f} ms")
    print(f"trusted recorder   : {len(truth)} epoll_waits, mean {truth_mean:.3f} ms")
    assert count == len(truth)
    assert abs(mean_ms - truth_mean) < 1e-6
    print("\nOK — the paper's C collector runs verbatim on this substrate.")


if __name__ == "__main__":
    main()
