"""The adversarial blind-spot scenario pack for the cross-layer correlator.

Each :class:`BlindSpotScenario` is a pathology engineered to be visible to
exactly one side of the kernel/app divide, annotated with the
:mod:`~repro.analysis.correlate` taxonomy label it should produce:

``fragmented-writes`` (APP_SILENT)
    A buffering regression sends every response as many small writes.
    Requests complete on time — the app layer is silent — but the
    send-delta dispersion knees.
``slow-drain`` (APP_SILENT)
    The perf-buffer consumer pauses while the ring is small: records drop,
    collection confidence collapses, and only the kernel side knows its
    own view degraded.
``hol-stall`` (KERNEL_SILENT)
    A head-of-line stall upstream of the server (saturated listen backlog,
    delayed accepts) holds requests in flight.  The client's latencies blow
    up; the server's syscalls see a quiet spell indistinguishable from an
    idle server — the structural blind spot of §V.
``worker-stall`` (AGREE_DEGRADED — control)
    A stop-the-world compute stall is visible to both layers: the client's
    tail inflates *and* the post-stall send burst knees the dispersion.
``clean`` (AGREE_HEALTHY — control)
    No fault at all; every window must agree.

Scenario timing is *fractional* — faults fire at fixed fractions of the
nominal run duration — so the same scenario scales across all nine
workloads' very different rates, and the anomaly stays a minority of the
run's windows (which the correlator's median baselines require).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..analysis.correlate import (
    AGREE_DEGRADED,
    AGREE_HEALTHY,
    APP_SILENT,
    KERNEL_SILENT,
    CorrelationReport,
    correlation_of,
)
from ..analysis.executor.spec import ExperimentSpec, LevelResult
from ..core.config import CorrelateConfig
from ..sim.timebase import MSEC, SEC
from .collection import ConsumerSchedule
from .orchestrator import ChannelStall, FaultReport, SendFragmentation, WorkerStall
from .runner import run_faulted_cell

__all__ = ["BlindSpotScenario", "SCENARIOS", "run_blind_spot_cell", "scenario"]

_KINDS = ("none", "fragment", "slow-drain", "hol-stall", "worker-stall")


@dataclass(frozen=True)
class BlindSpotScenario:
    """One app-invisible (or control) pathology plus its expected verdict."""

    key: str
    summary: str
    #: The taxonomy label this scenario is engineered to produce (the
    #: correlator must report it among the run's window labels).
    expected_label: str
    kind: str = "none"
    #: Active span as fractions of the nominal run duration
    #: (``requests / offered_rps``).  Keeping the span a minority of the
    #: run preserves the correlator's median baselines.
    start_frac: float = 0.40
    stop_frac: float = 0.65
    #: Sends per response while ``fragment`` is active.
    chunks: int = 12

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.start_frac < self.stop_frac <= 1.0:
            raise ValueError("need 0 <= start_frac < stop_frac <= 1")

    @property
    def needs_stream(self) -> bool:
        """Only the collection-path scenario needs perf streaming."""
        return self.kind == "slow-drain"

    def nominal_duration_ns(self, spec: ExperimentSpec) -> int:
        return int(spec.requests / spec.offered_rps * SEC)

    def materialize(
        self, spec: ExperimentSpec
    ) -> Tuple[tuple, Optional[ConsumerSchedule]]:
        """Concrete ``(faults, consumer)`` for one spec, timed off its
        nominal duration."""
        duration = self.nominal_duration_ns(spec)
        start = int(duration * self.start_frac)
        span = max(1, int(duration * (self.stop_frac - self.start_frac)))
        if self.kind == "fragment":
            return (SendFragmentation(at_ns=start, duration_ns=span,
                                      chunks=self.chunks),), None
        if self.kind == "hol-stall":
            return (ChannelStall(at_ns=start, duration_ns=span),), None
        if self.kind == "worker-stall":
            return (WorkerStall(at_ns=start, duration_ns=span),), None
        if self.kind == "slow-drain":
            # First pause lands at ~start_frac of the run and lasts the
            # scenario span; the cadence keeps any second pause off the end
            # of the run.
            return (), ConsumerSchedule(
                drain_interval_ns=1 * MSEC,
                pause_every_ns=max(1, start),
                pause_for_ns=span,
            )
        return (), None


SCENARIOS: Tuple[BlindSpotScenario, ...] = (
    BlindSpotScenario(
        key="clean",
        summary="no fault at all — every window must agree healthy",
        expected_label=AGREE_HEALTHY,
        kind="none",
    ),
    BlindSpotScenario(
        key="fragmented-writes",
        summary="responses go out as many small sends; app unaffected",
        expected_label=APP_SILENT,
        kind="fragment",
    ),
    BlindSpotScenario(
        key="slow-drain",
        summary="perf-buffer consumer pauses; records drop, app unaffected",
        expected_label=APP_SILENT,
        kind="slow-drain",
    ),
    # The stall scenarios span wider fractions: their signature lives in
    # *whole silent windows*, so the stall must fully cover at least one
    # correlation window regardless of boundary phase.
    BlindSpotScenario(
        key="hol-stall",
        summary="requests held upstream of the server (delayed accepts)",
        expected_label=KERNEL_SILENT,
        kind="hol-stall",
        start_frac=0.35,
        stop_frac=0.70,
    ),
    BlindSpotScenario(
        key="worker-stall",
        summary="stop-the-world compute stall, visible to both layers",
        expected_label=AGREE_DEGRADED,
        kind="worker-stall",
        start_frac=0.35,
        stop_frac=0.70,
    ),
)


def scenario(key: str) -> BlindSpotScenario:
    for entry in SCENARIOS:
        if entry.key == key:
            return entry
    known = ", ".join(s.key for s in SCENARIOS)
    raise KeyError(f"unknown blind-spot scenario {key!r} (known: {known})")


def run_blind_spot_cell(
    spec: ExperimentSpec,
    scenario: BlindSpotScenario,
    correlate: Optional[CorrelateConfig] = None,
) -> Tuple[LevelResult, CorrelationReport, FaultReport]:
    """Run one cell with a blind-spot scenario armed and the correlator on.

    Like :func:`run_faulted_cell` (which this wraps), scenario cells bypass
    the result cache and force the reference workload-sim tier.  The
    ``slow-drain`` scenario additionally forces stream-mode monitoring with
    a perf ring deliberately too small for one correlation window — in
    vm/native modes the in-kernel collectors cannot drop records, so there
    would be nothing for the consumer pause to lose.
    """
    if correlate is None:
        # Scale the default window to ~1/10 of the run, whatever the
        # workload's rate: the scenario span then covers several whole
        # windows (the stall scenarios' signature is a fully silent
        # window), the median baselines keep a healthy majority, and slow
        # workloads (triton at ~10 rps) still collect enough deltas per
        # window to clear ``min_events``.
        nominal = scenario.nominal_duration_ns(spec)
        correlate = CorrelateConfig(window_ns=max(1, nominal // 10))
    spec = spec.replace(correlate=correlate)
    if scenario.needs_stream:
        # Size the ring so a paused consumer overflows it well inside one
        # correlation window (the recorder's own window close drains the
        # ring as a side effect, so drops must accrue faster than windows).
        per_window = spec.offered_rps * correlate.window_ns / SEC
        spec = spec.replace(
            monitor_mode="stream",
            stream_capacity=max(4, int(per_window / 4)),
        )
    faults, consumer = scenario.materialize(spec)
    result, fault_report = run_faulted_cell(spec, faults=faults, consumer=consumer)
    report = correlation_of(result)
    assert report is not None  # spec.correlate was set above
    return result, report, fault_report
