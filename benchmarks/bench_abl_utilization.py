"""ABL-UTIL — §II's motivation: utilization is a poor QoS signal.

"These metrics have been demonstrated to have poor correlation with
request-level metrics... While performance metrics may be correlated to
throughput, they are ineffective during QoS violations" (§II, citing
Paragon/Seer/Bolt).

We reproduce the *mechanism*: across the saturation boundary, p99 latency
explodes while CPU utilization barely moves (it compresses near capacity),
so no utilization threshold can separate healthy from violating windows
across workloads — whereas the syscall-derived dispersion signal moves by
an order of magnitude.
"""

from __future__ import annotations

from conftest import bench_scale, emit, sweep_cache

from repro.analysis import save_record, series_table


def analyze(sweep) -> dict:
    # Compare the last clearly-healthy level with the first violating one.
    healthy = [l for l in sweep.levels if not l.qos_violated]
    violating = [l for l in sweep.levels if l.qos_violated]
    if not healthy or not violating:
        return {"workload": sweep.workload, "usable": False}
    before, after = healthy[-1], violating[-1]
    return {
        "workload": sweep.workload,
        "usable": True,
        "util_before": before.utilization,
        "util_after": after.utilization,
        "p99_before_ms": before.p99_ns / 1e6,
        "p99_after_ms": after.p99_ns / 1e6,
        "disp_before": before.send_delta_cov2,
        "disp_after": after.send_delta_cov2,
        "util_ratio": after.utilization / max(before.utilization, 1e-9),
        "p99_ratio": after.p99_ns / max(before.p99_ns, 1),
        "disp_ratio": after.send_delta_cov2 / max(before.send_delta_cov2, 1e-9),
    }


def test_utilization_is_a_poor_qos_signal(benchmark, sweep_cache):
    from repro.workloads import workload_keys

    def run():
        return [analyze(sweep_cache.full_sweep(key)) for key in workload_keys()]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    usable = [r for r in rows if r["usable"]]
    save_record({"ablation": "utilization", "rows": rows}, "abl_utilization")

    emit("ABL-UTIL — crossing the QoS boundary: what moves, what doesn't")
    emit(series_table({
        "workload": [r["workload"] for r in usable],
        "util ok->bad": [f"{r['util_before']:.2f}->{r['util_after']:.2f}"
                         for r in usable],
        "p99 x": [r["p99_ratio"] for r in usable],
        "disp x": [r["disp_ratio"] for r in usable],
    }))

    assert len(usable) >= 7
    # Short REPRO_FAST runs blur the boundary; require the full shapes only
    # at full fidelity, sanity-bounds otherwise.
    full = bench_scale() >= 1.0
    p99_explode = 2.0 if full else 1.15
    disp_rise = 1.4 if full else 1.1
    for row in usable:
        # Utilization barely moves across the boundary (within ~35%)...
        assert row["util_ratio"] < 1.35, row["workload"]
        # ...while p99 explodes...
        assert row["p99_ratio"] > p99_explode, row["workload"]
        # ...and the syscall-derived dispersion rises decisively relative to
        # utilization's flatness (Triton's low-RPS dispersion moves least).
        assert row["disp_ratio"] > disp_rise, row["workload"]
        assert row["disp_ratio"] > row["util_ratio"], row["workload"]

    # No single utilization threshold separates healthy from violating
    # across workloads: some healthy utilizations exceed some violating ones.
    healthy_utils = [r["util_before"] for r in usable]
    violating_utils = [r["util_after"] for r in usable]
    assert max(healthy_utils) > min(violating_utils), (
        "a clean utilization threshold exists — unexpected for this study"
    )
