"""Readiness polling: ``epoll`` instances and the shared wait helper used by
both ``epoll_wait`` and legacy ``select``."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..sim.engine import Environment
from .objects import FileDescriptor

__all__ = ["EpollInstance", "wait_for_readable"]


def wait_for_readable(
    env: Environment,
    fds: Sequence[FileDescriptor],
    timeout_ns: Optional[int] = None,
):
    """Generator: block until any of ``fds`` is readable (or timeout).

    Returns the list of currently-readable fds — empty only on timeout.
    This single helper backs both ``epoll_wait`` and ``select`` semantics
    (level-triggered: an fd that is already readable returns immediately).
    """
    ready = [fd for fd in fds if fd.readable]
    if ready:
        return ready
    if timeout_ns == 0:
        return []

    wake = env.event()

    def waker(fd, _event=wake):
        if not _event.triggered:
            _event.succeed(fd)

    for fd in fds:
        fd.add_watcher(waker)
    try:
        if timeout_ns is None:
            yield wake
        else:
            yield env.any_of([wake, env.timeout(timeout_ns)])
    finally:
        for fd in fds:
            fd.remove_watcher(waker)
    return [fd for fd in fds if fd.readable]


class EpollInstance:
    """An epoll interest set (created by ``epoll_create1``).

    Only level-triggered read-side interest is modelled — the mode the
    paper's workloads (libevent, gRPC, memcached) actually exercise through
    ``epoll_wait``.
    """

    def __init__(self, env: Environment, name: str = "epoll") -> None:
        self.env = env
        self.name = name
        self._interest: List[FileDescriptor] = []

    def register(self, fd: FileDescriptor) -> None:
        if fd in self._interest:
            raise ValueError(f"{fd!r} is already registered (EEXIST)")
        self._interest.append(fd)

    def unregister(self, fd: FileDescriptor) -> None:
        try:
            self._interest.remove(fd)
        except ValueError:
            raise ValueError(f"{fd!r} is not registered (ENOENT)") from None

    @property
    def interest(self) -> Sequence[FileDescriptor]:
        return tuple(self._interest)

    def ready(self) -> List[FileDescriptor]:
        return [fd for fd in self._interest if fd.readable]

    def wait(self, timeout_ns: Optional[int] = None):
        """Generator with ``epoll_wait`` semantics over the interest set."""
        result = yield from wait_for_readable(self.env, self._interest, timeout_ns)
        return result

    def __repr__(self) -> str:
        return f"<EpollInstance {self.name} interest={len(self._interest)}>"
