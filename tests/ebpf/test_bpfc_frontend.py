"""Unit tests for the bpfc lexer and parser (front-end only)."""

import pytest

from repro.ebpf.bpfc.lexer import CompileError, Token, parse_int, tokenize
from repro.ebpf.bpfc.parser import (
    Assign, Binary, Call, CtxField, If, MapDecl, MethodCall, Name, Num,
    Return, Unary, VarDecl, parse,
)


class TestLexer:
    def test_identifiers_and_numbers(self):
        tokens = tokenize("u64 x = 0x2A;")
        kinds = [(t.kind, t.text) for t in tokens[:-1]]
        assert kinds == [
            ("ident", "u64"), ("ident", "x"), ("punct", "="),
            ("number", "0x2A"), ("punct", ";"),
        ]
        assert tokens[-1].kind == "eof"

    def test_integer_suffixes(self):
        assert parse_int("232UL", 1) == 232
        assert parse_int("0xFFul", 1) == 255

    def test_longest_match_punctuation(self):
        tokens = tokenize("a->b >> 2 >= 1")
        texts = [t.text for t in tokens[:-1]]
        assert texts == ["a", "->", "b", ">>", "2", ">=", "1"]

    def test_compound_ops(self):
        texts = [t.text for t in tokenize("x += 1; y++;")[:-1]]
        assert "+=" in texts and "++" in texts

    def test_line_numbers_through_comments(self):
        tokens = tokenize("// one\n/* two\nthree */\nfoo")
        assert tokens[0].text == "foo"
        assert tokens[0].line == 4

    def test_illegal_character(self):
        with pytest.raises(CompileError, match="unexpected character"):
            tokenize("u64 x = $;")

    def test_unterminated_block_comment(self):
        with pytest.raises(CompileError, match="unterminated"):
            tokenize("/* nope")

    def test_bad_number(self):
        with pytest.raises(CompileError, match="bad integer"):
            parse_int("0x", 3)


def _probe_body(statements: str):
    unit = parse(f"TRACEPOINT_PROBE(raw_syscalls, sys_enter) {{ {statements} }}")
    return unit.probes[0].body


class TestParser:
    def test_map_decl_defaults(self):
        unit = parse("""
        BPF_HASH(counts);
        TRACEPOINT_PROBE(raw_syscalls, sys_enter) { return 0; }
        """)
        decl = unit.maps[0]
        assert decl == MapDecl(kind="hash", name="counts", key_type="u64",
                               value_type="u64", size=10240, line=2)

    def test_map_decl_full(self):
        unit = parse("""
        BPF_HASH(m, u32, u64, 128);
        BPF_ARRAY(a, u64, 16);
        TRACEPOINT_PROBE(raw_syscalls, sys_enter) { return 0; }
        """)
        hash_decl, array_decl = unit.maps
        assert (hash_decl.key_type, hash_decl.value_type, hash_decl.size) == \
            ("u32", "u64", 128)
        assert (array_decl.kind, array_decl.key_type, array_decl.size) == \
            ("array", "u32", 16)

    def test_precedence(self):
        (ret,) = _probe_body("return 1 + 2 * 3;")
        assert isinstance(ret, Return)
        assert ret.value == Binary("+", Num(1), Binary("*", Num(2), Num(3)))

    def test_comparison_binds_looser_than_shift(self):
        (ret,) = _probe_body("return 1 << 2 == 4;")
        assert ret.value == Binary("==", Binary("<<", Num(1), Num(2)), Num(4))

    def test_parentheses(self):
        (ret,) = _probe_body("return (1 + 2) * 3;")
        assert ret.value == Binary("*", Binary("+", Num(1), Num(2)), Num(3))

    def test_unary_chain(self):
        (ret,) = _probe_body("return !!x;")
        assert ret.value == Unary("!", Unary("!", Name("x")))

    def test_ctx_fields(self):
        (ret,) = _probe_body("return args->id;")
        assert ret.value == CtxField("id")
        (ret,) = _probe_body("return args->args[3];")
        assert ret.value == CtxField("args3")

    def test_args_index_range(self):
        with pytest.raises(CompileError, match="out of range"):
            _probe_body("return args->args[6];")

    def test_method_call(self):
        (stmt,) = _probe_body("m.update(&k, &v);")
        assert stmt.expr == MethodCall(
            "m", "update", (Unary("&", Name("k")), Unary("&", Name("v"))),
        )

    def test_unknown_method(self):
        with pytest.raises(CompileError, match="unknown map method"):
            _probe_body("m.upsert(&k);")

    def test_if_else_chain(self):
        (stmt,) = _probe_body("if (x) return 1; else if (y) return 2; else return 3;")
        assert isinstance(stmt, If)
        assert isinstance(stmt.orelse[0], If)

    def test_var_decl_pointer(self):
        (stmt,) = _probe_body("u64 *p = m.lookup(&k);")
        assert isinstance(stmt, VarDecl)
        assert stmt.ctype == "u64*"

    def test_increment_desugars(self):
        (stmt,) = _probe_body("x++;")
        assert isinstance(stmt, Assign)
        assert stmt.op == "+="
        assert stmt.value == Num(1)

    def test_bare_expression_rejected(self):
        with pytest.raises(CompileError, match="no effect"):
            _probe_body("x + 1;")

    def test_missing_semicolon(self):
        with pytest.raises(CompileError, match="expected"):
            _probe_body("return 0")

    def test_eof_inside_block(self):
        with pytest.raises(CompileError, match="unterminated|expected"):
            parse("TRACEPOINT_PROBE(raw_syscalls, sys_enter) { return 0;")


class TestBlockScoping:
    def test_bare_block_parses(self):
        from repro.ebpf.bpfc.parser import BlockStmt

        (stmt,) = _probe_body("{ u64 x = 1; }")
        assert isinstance(stmt, BlockStmt)
        assert len(stmt.body) == 1

    def test_block_scope_allows_redeclaration_after(self):
        from repro.ebpf.bpfc import compile_source

        unit = compile_source("""
        TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
            { u64 x = 1; }
            u64 x = 2;
            return x;
        }
        """)
        assert unit.programs

    def test_sibling_blocks_reuse_pointer_registers(self):
        from repro.ebpf.bpfc import compile_source

        unit = compile_source("""
        BPF_HASH(m, u64, u64);
        TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
            u64 k = 0;
            { u64 *a = m.lookup(&k); if (a) *a += 1; }
            { u64 *b = m.lookup(&k); if (b) *b += 1; }
            { u64 *c = m.lookup(&k); if (c) *c += 1; }
            return 0;
        }
        """)
        for program in unit.programs:
            program.resolve_maps(unit.maps).verify()

    def test_inner_name_invisible_outside(self):
        from repro.ebpf.bpfc import compile_source
        from repro.ebpf.bpfc.lexer import CompileError
        import pytest as _pytest

        with _pytest.raises(CompileError, match="undeclared"):
            compile_source("""
            TRACEPOINT_PROBE(raw_syscalls, sys_enter) {
                { u64 hidden = 1; }
                return hidden;
            }
            """)
