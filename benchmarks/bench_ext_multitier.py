"""EXT-TIER — §V-B: combining per-service observability for a multi-stage
workload.

The paper prescribes monitoring each service of a multi-stage application
separately and combining the metrics.  We do that for Web Search (front-end
+ index-search processes) across a load sweep and show the combination
layer localizes the bottleneck: the index tier's idleness collapses first
and is attributed as the saturating stage, while the front-end — the only
externally visible process — still looks comfortable.
"""

from __future__ import annotations

from conftest import emit, scaled

from repro.analysis import default_levels, save_record, series_table
from repro.core import MultiServiceMonitor
from repro.kernel import Kernel
from repro.kernel.machine import AMD_EPYC_7302
from repro.loadgen import OpenLoopClient
from repro.sim import Environment, SeedSequence
from repro.workloads import get_workload


def run_level(rate: float, requests: int) -> dict:
    definition = get_workload("web-search")
    config = definition.config
    env = Environment()
    seeds = SeedSequence(41).child(f"tier@{rate:g}")
    kernel = Kernel(env, AMD_EPYC_7302.with_cores(config.cores), seeds)
    app = definition.build(kernel)
    monitor = MultiServiceMonitor.for_two_tier_app(kernel, app).attach()
    client = OpenLoopClient(
        env, app.client_sockets, seeds.stream("client"),
        rate_rps=rate, total_requests=requests,
        qos_latency_ns=config.qos_latency_ns, arrival="uniform",
    )
    client.start()
    report = env.run(until=client.done)
    combined = monitor.snapshot()
    return {
        "offered": rate,
        "achieved": report.achieved_rps,
        "qos_violated": report.qos_violated,
        "front_idleness": combined.tier("front-end").idleness,
        "back_idleness": combined.tier("index-search").idleness,
        "bottleneck": combined.bottleneck.name,
        "back_dispersion": combined.tier("index-search").dispersion,
    }


def run_extension() -> list:
    definition = get_workload("web-search")
    levels = default_levels(definition, count=8, low_frac=0.3, high_frac=1.1)
    return [run_level(rate, scaled(3000, minimum=800)) for rate in levels]


def test_multitier_observability(benchmark):
    rows = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    save_record({"extension": "multitier", "rows": rows}, "ext_multitier")

    emit("EXT-TIER — per-tier observability of Web Search (front-end + index)")
    emit(series_table(
        {
            "offered": [r["offered"] for r in rows],
            "achieved": [r["achieved"] for r in rows],
            "FE idle": [r["front_idleness"] for r in rows],
            "IX idle": [r["back_idleness"] for r in rows],
            "bottleneck": [r["bottleneck"] for r in rows],
        },
        qos_marker=[r["qos_violated"] for r in rows],
    ))

    # The index tier is always the binding stage...
    for row in rows:
        assert row["back_idleness"] <= row["front_idleness"] + 0.05, row
    # ...and is attributed as the bottleneck once load is non-trivial.
    for row in rows[2:]:
        assert row["bottleneck"] == "index-search", row
    # Its idleness collapses toward saturation.
    assert rows[-1]["back_idleness"] < 0.4 * rows[0]["back_idleness"]
    # The front-end alone would look deceptively healthy near saturation.
    saturated = [r for r in rows if r["qos_violated"]]
    assert saturated, "sweep never saturated"
    assert saturated[0]["front_idleness"] > saturated[0]["back_idleness"]