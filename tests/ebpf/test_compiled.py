"""Differential suite for the compiled VM tier.

The three tiers — reference interpreter (:class:`Vm`), pre-decoded
closures (:class:`FastVm`), whole-program translation
(:class:`CompiledVm`) — must be observationally indistinguishable: the
same ``(r0, steps, cost_ns)`` triple per invocation, the same map
contents afterwards, and the same :class:`VmFault` message when a
program dies.  This file proves it three ways: the real collector
corpus, hypothesis-fuzzed programs (verified *and* faulting), and a
table of hand-crafted fault shapes.
"""

import random

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.collectors import (
    _DELTA_VALUE_SIZE,
    _DUR_VALUE_SIZE,
    build_delta_program,
    build_duration_programs,
)
from repro.core.streaming import build_streaming_program
from repro.ebpf import (
    ArrayMap,
    Asm,
    CompiledVm,
    FastVm,
    HashMap,
    HelperRuntime,
    MemSize,
    PerfEventArray,
    ProgType,
    Reg,
    TranslationCache,
    VerifierError,
    Vm,
    VmFault,
    compile_insns,
    make_vm,
    pack_sys_enter,
    pack_sys_exit,
    verify,
)
from repro.ebpf.compiled import DEFAULT_VM_TIER, VM_TIERS
from repro.kernel.tracepoints import SysEnterCtx, SysExitCtx

from .test_differential import CTX_SIZE, _build, _op

TGID = 4242
PID_TGID = (TGID << 32) | TGID

_FUZZ_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)


def _fresh_tiers():
    """One VM per tier, each with private caches so runs never share state."""
    return {
        "reference": Vm(),
        "fast": FastVm(cache=TranslationCache()),
        "compiled": CompiledVm(cache=TranslationCache()),
    }


def _outcome(vm, insns, ctx, runtime=None):
    """Normal result or fault, as a comparable value."""
    try:
        result = vm.execute(insns, ctx, runtime)
        return ("ok", result.r0, result.steps, result.cost_ns)
    except VmFault as fault:
        return ("fault", str(fault))


# ----------------------------------------------------------------------
# real-program corpus: the paper's collectors, all three tiers
# ----------------------------------------------------------------------

def _map_state(bpf_map):
    if isinstance(bpf_map, HashMap):
        return dict(bpf_map.items_int())
    if isinstance(bpf_map, ArrayMap):
        return [bytes(bpf_map.lookup(bpf_map.key_of(i)))
                for i in range(bpf_map.max_entries)]
    return bpf_map.poll()  # PerfEventArray


def _enter_seq(count=40, seed=0):
    rng = random.Random(seed)
    t = 1_000
    firings = []
    for _ in range(count):
        pid_tgid = PID_TGID if rng.random() < 0.8 else (99 << 32) | 99
        firings.append(SysEnterCtx(pid_tgid=pid_tgid,
                                   syscall_nr=rng.choice([0, 1, 44, 232]),
                                   ktime_ns=t))
        t += rng.randint(1, 50_000)
    return firings


def _enter_exit_seq(count=40, seed=1, nr=232):
    rng = random.Random(seed)
    t = 5_000
    firings = []
    for _ in range(count):
        pid_tgid = PID_TGID if rng.random() < 0.85 else (99 << 32) | 99
        firings.append(SysEnterCtx(pid_tgid=pid_tgid, syscall_nr=nr, ktime_ns=t))
        t += rng.randint(10, 80_000)
        firings.append(SysExitCtx(pid_tgid=pid_tgid, syscall_nr=nr, ret=0,
                                  ktime_ns=t))
        t += rng.randint(10, 20_000)
    return firings


def _corpus_cases():
    """(name, build) pairs; build() -> (programs, maps, firings)."""

    def delta():
        state = ArrayMap(value_size=_DELTA_VALUE_SIZE, max_entries=1, name="state")
        program = (build_delta_program("state", TGID, [0, 1])
                   .resolve_maps({"state": state}).verify())
        return [program], {"state": state}, _enter_seq()

    def duration():
        start = HashMap(key_size=8, value_size=8, max_entries=64, name="start")
        state = ArrayMap(value_size=_DUR_VALUE_SIZE, max_entries=1, name="state")
        maps = {"start": start, "state": state}
        enter, exit_ = build_duration_programs("start", "state", TGID, [232])
        programs = [p.resolve_maps(maps).verify() for p in (enter, exit_)]
        return programs, maps, _enter_exit_seq()

    def streaming():
        events = PerfEventArray(cpus=2, name="events")
        program = (build_streaming_program("events", TGID, [0, 44])
                   .resolve_maps({"events": events}).verify())
        return [program], {"events": events}, _enter_seq(seed=3)

    return [("delta", delta), ("duration", duration), ("streaming", streaming)]


def _dispatch(programs, ctx):
    enter = isinstance(ctx, SysEnterCtx)
    wanted = (ProgType.tracepoint_sys_enter() if enter
              else ProgType.tracepoint_sys_exit()).name
    return [p for p in programs if p.prog_type.name == wanted]


@pytest.mark.parametrize("name,build", _corpus_cases(),
                         ids=lambda c: c if isinstance(c, str) else "")
def test_corpus_identical_across_three_tiers(name, build):
    """Every firing's (r0, steps, cost_ns) and the final map contents must
    match across all three tiers on the paper's real collector programs."""
    outcomes = {}
    for tier, vm in _fresh_tiers().items():
        programs, maps, firings = build()
        per_firing = []
        for ctx in firings:
            blob = (pack_sys_enter(ctx) if isinstance(ctx, SysEnterCtx)
                    else pack_sys_exit(ctx))
            runtime = HelperRuntime(ktime_ns=ctx.ktime_ns,
                                    pid_tgid=ctx.pid_tgid, cpu_id=0)
            for program in _dispatch(programs, ctx):
                result = vm.execute(program.insns, blob, runtime)
                per_firing.append((result.r0, result.steps, result.cost_ns))
        outcomes[tier] = (per_firing,
                          {n: _map_state(m) for n, m in maps.items()})
    assert outcomes["reference"] == outcomes["fast"] == outcomes["compiled"]


def test_collector_programs_do_not_fall_back():
    """The collectors are the hot path; the compiled tier must actually
    compile them, not silently serve them through the FastVm fallback."""
    state = ArrayMap(value_size=_DELTA_VALUE_SIZE, max_entries=1, name="state")
    program = (build_delta_program("state", TGID, [0, 1])
               .resolve_maps({"state": state}).verify())
    assert compile_insns(program.insns) is not None

    start = HashMap(key_size=8, value_size=8, max_entries=64, name="start")
    dstate = ArrayMap(value_size=_DUR_VALUE_SIZE, max_entries=1, name="state")
    for p in build_duration_programs("start", "state", TGID, [232]):
        resolved = p.resolve_maps({"start": start, "state": dstate}).verify()
        assert compile_insns(resolved.insns) is not None


# ----------------------------------------------------------------------
# hypothesis fuzz: verified programs and faulting programs alike
# ----------------------------------------------------------------------

@given(ops=st.lists(_op, min_size=0, max_size=25),
       ctx=st.binary(min_size=CTX_SIZE, max_size=CTX_SIZE))
@settings(max_examples=200, **_FUZZ_SETTINGS)
def test_three_tiers_agree_on_verified_programs(ops, ctx):
    insns = _build(ops)
    try:
        verify(insns, ProgType.tracepoint_sys_enter())
    except VerifierError:
        assume(False)
    triples = set()
    for vm in _fresh_tiers().values():
        result = vm.execute(insns, ctx)
        triples.add((result.r0, result.steps, result.cost_ns))
    assert len(triples) == 1
    # The fuzz vocabulary stays inside the codegen subset — these examples
    # exercise the compiled function itself, not the fallback.
    assert compile_insns(insns) is not None


@given(ops=st.lists(_op, min_size=0, max_size=25),
       ctx=st.binary(min_size=CTX_SIZE, max_size=CTX_SIZE))
@settings(max_examples=150, **_FUZZ_SETTINGS)
def test_three_tiers_agree_on_faults(ops, ctx):
    """Unverified programs may fault; the fault message (or clean result)
    must be identical across tiers — fault shape is part of the contract."""
    insns = _build(ops)
    outcomes = {_outcome(vm, insns, ctx) for vm in _fresh_tiers().values()}
    assert len(outcomes) == 1


# ----------------------------------------------------------------------
# hand-crafted fault shapes
# ----------------------------------------------------------------------

def _fault_cases():
    def uninit_mov():
        asm = Asm()
        asm.mov_reg(Reg.R0, Reg.R7)  # R7 never written
        asm.exit_()
        return asm.build()

    def uninit_branch():
        asm = Asm()
        asm.jeq_imm(Reg.R5, 0, "out")
        asm.label("out")
        asm.mov_imm(Reg.R0, 0)
        asm.exit_()
        return asm.build()

    def oob_stack_store():
        asm = Asm()
        asm.mov_imm(Reg.R2, 7)
        asm.stx(MemSize.DW, Reg.R10, -4096, Reg.R2)
        asm.exit_()
        return asm.build()

    def oob_ctx_load():
        asm = Asm()
        asm.ldx(MemSize.DW, Reg.R0, Reg.R1, CTX_SIZE + 64)
        asm.exit_()
        return asm.build()

    def store_non_scalar():
        asm = Asm()
        asm.stx(MemSize.DW, Reg.R10, -8, Reg.R1)  # R1 is the ctx pointer
        asm.exit_()
        return asm.build()

    def pointer_compare():
        asm = Asm()
        asm.jge_reg(Reg.R1, Reg.R10, "out")
        asm.label("out")
        asm.mov_imm(Reg.R0, 0)
        asm.exit_()
        return asm.build()

    def fall_off_end():
        asm = Asm()
        asm.mov_imm(Reg.R0, 0)
        return asm.build()  # no exit: pc runs past the program

    def exit_without_r0():
        asm = Asm()
        asm.exit_()
        return asm.build()

    return [
        ("uninit_mov", uninit_mov),
        ("uninit_branch", uninit_branch),
        ("oob_stack_store", oob_stack_store),
        ("oob_ctx_load", oob_ctx_load),
        ("store_non_scalar", store_non_scalar),
        ("pointer_compare", pointer_compare),
        ("fall_off_end", fall_off_end),
        ("exit_without_r0", exit_without_r0),
    ]


@pytest.mark.parametrize("name,build", _fault_cases(),
                         ids=lambda c: c if isinstance(c, str) else "")
def test_fault_messages_identical(name, build):
    insns = build()
    ctx = bytes(CTX_SIZE)
    outcomes = {tier: _outcome(vm, insns, ctx)
                for tier, vm in _fresh_tiers().items()}
    assert outcomes["reference"][0] == "fault"
    assert outcomes["reference"] == outcomes["fast"] == outcomes["compiled"]


# ----------------------------------------------------------------------
# fallback, factory, cache
# ----------------------------------------------------------------------

def _looping_program():
    asm = Asm()
    asm.mov_imm(Reg.R0, 3)
    asm.label("loop")
    asm.sub_imm(Reg.R0, 1)
    asm.jne_imm(Reg.R0, 0, "loop")
    asm.exit_()
    return asm.build()


def test_backward_jump_falls_back_to_fastvm():
    """Loops are outside the loop-free codegen subset: compile_insns
    declines, and CompiledVm transparently serves the program through its
    FastVm fallback with identical results."""
    insns = _looping_program()
    assert compile_insns(insns) is None
    ctx = bytes(CTX_SIZE)
    reference = Vm().execute(insns, ctx)
    compiled = CompiledVm(cache=TranslationCache()).execute(insns, ctx)
    assert (compiled.r0, compiled.steps, compiled.cost_ns) == \
        (reference.r0, reference.steps, reference.cost_ns)


def test_make_vm_factory():
    assert type(make_vm("reference")) is Vm
    assert type(make_vm("fast")) is FastVm
    assert type(make_vm("compiled")) is CompiledVm
    assert DEFAULT_VM_TIER in VM_TIERS
    assert type(make_vm()) is CompiledVm
    with pytest.raises(ValueError, match="unknown vm tier"):
        make_vm("jit")


def test_compiled_vm_shares_cache_with_fallback():
    cache = TranslationCache()
    vm = CompiledVm(cache=cache)
    assert vm.cache is cache
    assert vm._fallback.cache is cache


def test_cache_keys_tiers_separately():
    """One program, both tiers: two cache entries, hit on re-request."""
    cache = TranslationCache()
    state = ArrayMap(value_size=_DELTA_VALUE_SIZE, max_entries=1, name="state")
    program = (build_delta_program("state", TGID, [0])
               .resolve_maps({"state": state}).verify())
    decoded = cache.get(program.insns)
    compiled = cache.get_compiled(program.insns)
    assert decoded is not None and compiled is not None
    assert cache.stats()["entries"] == 2
    assert cache.get(program.insns) is decoded
    assert cache.get_compiled(program.insns) is compiled
    assert cache.stats()["misses"] == 2
    assert cache.stats()["hits"] == 2


def test_cache_remembers_unsupported_programs():
    """A declined translation is cached too, so the fallback decision is
    paid once per program, not once per firing."""
    cache = TranslationCache()
    insns = _looping_program()
    assert cache.get_compiled(insns) is None
    misses = cache.stats()["misses"]
    assert cache.get_compiled(insns) is None
    assert cache.stats()["misses"] == misses  # second probe is a hit


def test_runtime_state_consumed_identically():
    """Inlined pure helpers must draw from the runtime exactly like the
    interpreted call path (same prandom sequence, same pid/time/cpu)."""
    asm = Asm()
    from repro.ebpf import Helper

    asm.call(Helper.GET_PRANDOM_U32)
    asm.mov_reg(Reg.R6, Reg.R0)
    asm.call(Helper.GET_PRANDOM_U32)
    asm.add_reg(Reg.R0, Reg.R6)
    asm.call(Helper.KTIME_GET_NS)
    asm.call(Helper.GET_CURRENT_PID_TGID)
    asm.call(Helper.GET_SMP_PROCESSOR_ID)
    asm.exit_()
    insns = asm.build()
    ctx = bytes(CTX_SIZE)

    def run(vm):
        counter = iter(range(100, 200))
        runtime = HelperRuntime(ktime_ns=777, pid_tgid=PID_TGID, cpu_id=3,
                                prandom=lambda: next(counter))
        result = vm.execute(insns, ctx, runtime)
        return (result.r0, result.steps, result.cost_ns, next(counter))

    runs = {tier: run(vm) for tier, vm in _fresh_tiers().items()}
    assert runs["reference"] == runs["fast"] == runs["compiled"]
    # exactly two prandom draws happened before the probe drew 102
    assert runs["reference"][-1] == 102


def test_compiled_source_is_inspectable():
    """compile_insns keeps the generated source for diagnostics."""
    state = ArrayMap(value_size=_DELTA_VALUE_SIZE, max_entries=1, name="state")
    program = (build_delta_program("state", TGID, [0])
               .resolve_maps({"state": state}).verify())
    compiled = compile_insns(program.insns)
    assert "def _prog(" in compiled.source
    assert compiled.n == len(program.insns)
