"""Feedback-free closed-loop QoS control (ROADMAP item 2, eBeeMetrics direction).

The paper characterizes which request-level QoS signals the kernel can see
without application cooperation; eBeeMetrics — the same authors' follow-on —
turns those signals into an actionable library.  This package builds that
consumer inside the simulation: :class:`QoSController` reads *only* the
windowed eBPF-derived metrics (RPS_obsv, send-delta dispersion, epoll-poll
slack, collection confidence) through the PR 8 :class:`~repro.analysis.correlate.WindowRecorder`
path, and actuates below the application —

- ``policy="shed"``: an :class:`AdmissionGate` on the server-side sockets
  rejects a deterministic fraction of inbound requests on the wire, and
- ``policy="scale"``: a :class:`WorkerScaler` revives dead simulated worker
  threads (the same population a :class:`~repro.faults.WorkerCrash` kills).

Neither actuator touches application code, and the controller never reads
the client's ground truth — the loop is closed purely through the kernel's
own observability, which is the point of the exercise.

Configuration is a frozen :class:`~repro.core.ControlConfig` attached to an
:class:`~repro.analysis.executor.ExperimentSpec`; results land in
``LevelResult.extra["control"]``.  EXP-CTL (``benchmarks/bench_closed_loop.py``)
holds the quality bounds; :mod:`repro.control.scenarios` defines the
evaluated scenario matrix.
"""

from .controller import AdmissionGate, QoSController, WorkerScaler
from .scenarios import (
    SCENARIO_KEYS,
    ControlScenario,
    build_scenario,
    run_scenario,
    scenario_of,
)

__all__ = [
    "AdmissionGate",
    "ControlScenario",
    "QoSController",
    "SCENARIO_KEYS",
    "WorkerScaler",
    "build_scenario",
    "run_scenario",
    "scenario_of",
]
