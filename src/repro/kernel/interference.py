"""Contention substrate: run-queue-keyed global convoy windows.

Real saturated servers exhibit irregular multi-millisecond *global* pauses
— lock convoys, stop-the-world GC (specjbb!), allocator storms, writeback
stalls — and the paper leans on exactly these ("saturation leads to
contention", §IV-C-1) for its variance-based saturation signal.  A
discrete-event scheduler with independent per-request service demands does
not develop such pauses by itself, so we introduce the minimal mechanism
with the right signature:

* when run-queue occupancy (waiting tasks per core) is high, a **convoy
  window** may open; every core acquisition during the window waits for it
  to close, pausing the whole service pipeline;
* window durations are exponential; a duty-cycle cap bounds the fraction of
  wall time spent in convoys, so mean throughput degrades gently while the
  *variance* of merged inter-send deltas explodes — rare-large gaps, the
  Fig. 3 signature;
* below :attr:`~repro.kernel.machine.InterferenceSpec.min_occupancy`
  nothing ever happens, so an unsaturated machine is convoy-free.
"""

from __future__ import annotations

from ..sim.rng import Stream
from .machine import InterferenceSpec

__all__ = ["InterferenceModel", "NullInterference"]


class NullInterference:
    """No contention (unit tests and idealized experiments)."""

    def stall_ns(self, waiting: int, cores: int, now_ns: int) -> int:
        return 0


class InterferenceModel:
    """Stochastic convoy-window generator keyed on run-queue occupancy."""

    def __init__(self, spec: InterferenceSpec, stream: Stream) -> None:
        self.spec = spec
        self._stream = stream
        self._window_end = -1
        self._cooldown_until = 0
        #: Diagnostics: windows opened / acquisitions delayed / ns stalled.
        self.window_count = 0
        self.stall_count = 0
        self.stall_total_ns = 0

    def stall_ns(self, waiting: int, cores: int, now_ns: int) -> int:
        """Stall (ns) imposed on a task acquiring a core at ``now_ns``."""
        if now_ns < self._window_end:
            # Join the convoy in progress: wait out the window.
            stall = self._window_end - now_ns
            self.stall_count += 1
            self.stall_total_ns += stall
            return stall

        spec = self.spec
        occupancy = waiting / cores
        if occupancy <= spec.min_occupancy or now_ns < self._cooldown_until:
            return 0
        occupancy = min(occupancy, spec.max_occupancy)
        probability = min(spec.max_prob, spec.prob_per_occupancy * occupancy)
        if not self._stream.bernoulli(probability):
            return 0

        duration = self._stream.exponential_ns(max(1, int(spec.stall_mean_ns * occupancy)))
        self._window_end = now_ns + duration
        self._cooldown_until = self._window_end + int(
            duration * (1.0 / spec.duty_cycle - 1.0)
        )
        self.window_count += 1
        self.stall_count += 1
        self.stall_total_ns += duration
        return duration

    def __repr__(self) -> str:
        return (
            f"<InterferenceModel windows={self.window_count} "
            f"stalled={self.stall_total_ns}ns>"
        )
