"""Network substrate: messages, netem impairments, ordered channels."""

from .channel import Channel
from .netem import TCP_MIN_RTO_NS, NetemConfig, NetemPath
from .packet import Message

__all__ = ["Message", "NetemConfig", "NetemPath", "Channel", "TCP_MIN_RTO_NS"]
