"""Integer log2 delta histograms — the export pipeline's bucketed signal.

Prometheus consumers want distributions, not just the three moments the
paper's collectors keep; the classic in-kernel answer (bcc's ``lhist``,
ebpf_exporter's bucketed maps) is a power-of-two histogram whose bucket
index is computable with shifts and compares only — no division, no
floats, verifier-friendly.  Bucket ``b`` counts deltas whose bit length is
``b``: bucket 0 holds exact zeros and bucket ``b >= 1`` the half-open
range ``[2^(b-1), 2^b - 1]``, so the upper bound of bucket ``b`` is
``2^b - 1`` and the cumulative Prometheus ``le`` edges are exact integers.

:class:`DeltaHistogram` is the userspace accumulator; the in-probe
equivalent (an unrolled binary-search bit-length, emitted into the delta
program when export is enabled) lives in
:func:`repro.core.collectors.build_delta_program` and fills one 8-byte
array-map slot per (cpu, bucket).  Both sides bucket the *same* deltas the
delta statistics accumulate, so ``sum(counts) == DeltaStats.count`` is an
exported invariant.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

__all__ = ["NBUCKETS", "DeltaHistogram", "bucket_index", "bucket_upper_bound"]

#: log2 buckets for u64 deltas: bit lengths 0 (zero) through 64.
NBUCKETS = 65

_U64_MAX = (1 << 64) - 1


def bucket_index(delta_ns: int) -> int:
    """Bucket of a delta: its bit length (0 for a zero delta)."""
    if not 0 <= delta_ns <= _U64_MAX:
        raise ValueError(f"delta {delta_ns} outside u64 range")
    return delta_ns.bit_length()


def bucket_upper_bound(bucket: int) -> int:
    """Largest delta landing in ``bucket`` (the Prometheus ``le`` edge)."""
    if not 0 <= bucket < NBUCKETS:
        raise ValueError(f"bucket {bucket} outside [0, {NBUCKETS})")
    return (1 << bucket) - 1


class DeltaHistogram:
    """Fixed-shape log2 histogram over inter-syscall deltas."""

    __slots__ = ("counts",)

    def __init__(self, counts: Optional[Iterable[int]] = None) -> None:
        if counts is None:
            self.counts: List[int] = [0] * NBUCKETS
        else:
            self.counts = list(counts)
            if len(self.counts) != NBUCKETS:
                raise ValueError(
                    f"need exactly {NBUCKETS} buckets, got {len(self.counts)}"
                )

    def observe(self, delta_ns: int) -> None:
        """Count one delta (integer ns, as the probe computes it)."""
        self.counts[bucket_index(delta_ns)] += 1

    @property
    def total(self) -> int:
        """Observations across all buckets (== the window's delta count)."""
        return sum(self.counts)

    def cumulative(self) -> List[int]:
        """Prometheus-style cumulative bucket counts (``le`` semantics)."""
        out: List[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def merge(self, other: "DeltaHistogram") -> "DeltaHistogram":
        """Bucket-wise sum (window composition, shard merging)."""
        return DeltaHistogram(
            a + b for a, b in zip(self.counts, other.counts)
        )

    def copy(self) -> "DeltaHistogram":
        return DeltaHistogram(self.counts)

    def reset(self) -> None:
        """Zero every bucket (window close)."""
        for index in range(NBUCKETS):
            self.counts[index] = 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeltaHistogram):
            return NotImplemented
        return self.counts == other.counts

    def __repr__(self) -> str:
        populated = {
            bucket: count for bucket, count in enumerate(self.counts) if count
        }
        return f"<DeltaHistogram total={self.total} buckets={populated}>"
