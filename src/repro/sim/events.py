"""Event primitives for the discrete-event engine.

The design follows the classic simpy model: an :class:`Event` is a one-shot
future living inside an :class:`~repro.sim.engine.Environment`.  Processes
(generator coroutines, see :mod:`repro.sim.process`) ``yield`` events; when
an event *triggers*, every waiting process resumes with the event's value, or
has the event's exception thrown into it.

Events move through three states:

``pending``   created, not yet triggered;
``triggered`` value/exception decided and the event is queued for callbacks;
``processed`` callbacks have run.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Condition",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "PENDING",
]

#: Sentinel for "no value decided yet".
PENDING = object()


class Interrupt(Exception):
    """Thrown into a process when :meth:`repro.sim.process.Process.interrupt`
    is called while the process is waiting on an event.

    The ``cause`` attribute carries the value handed to ``interrupt``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        Owning environment.  The event may only be scheduled on its own
        environment's queue.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:  # noqa: F821
        self.env = env
        #: Callables invoked (with this event) when the event is processed.
        #: Becomes ``None`` once processed, which doubles as the state flag.
        self.callbacks: Optional[list] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or exception has been decided."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is PENDING:
            raise AttributeError("value of un-triggered event is not available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        env._schedule(self, env._now)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every waiting process.  If nobody is
        waiting when callbacks run, the failure propagates out of
        :meth:`Environment.step` so errors never pass silently.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        env._schedule(self, env._now)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the engine."""
        self._defused = True

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers ``delay`` nanoseconds after creation.

    Timeouts are the simulator's most-created event (every inter-arrival
    gap, service stint, and watchdog sleep is one), so construction takes
    a dedicated schedule path: the state slots are assigned directly —
    value and ok are decided at creation, skipping the generic
    pending-then-trigger transition — and the heap entry is pushed inline
    instead of going through :meth:`Environment.schedule`'s validation.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._eid += 1
        heappush(env._queue, (env._now + delay, 1, env._eid, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {hex(id(self))}>"


class Condition(Event):
    """Waits for a combination of events, as decided by ``evaluate``.

    The condition's value is a dict mapping each *triggered* constituent
    event to its value at the time the condition fired (insertion order
    follows the order events completed).
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        evaluate: Callable[[int, int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._events = tuple(events)
        self._count = 0
        self._evaluate = evaluate

        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")

        if self._evaluate(len(self._events), 0):
            # Degenerate condition (e.g. AllOf over nothing) fires at once.
            self.succeed(self._collect())
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict:
        # Use .processed, not .triggered: a Timeout pre-sets its value at
        # creation, so "triggered" would leak constituents that have not
        # actually fired yet.
        return {ev: ev._value for ev in self._events if ev.processed and ev._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(len(self._events), self._count):
            self.succeed(self._collect())


def _any_evaluate(total: int, count: int) -> bool:
    return count > 0 or total == 0


def _all_evaluate(total: int, count: int) -> bool:
    return count == total


class AnyOf(Condition):
    """Triggers as soon as any constituent event triggers."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(env, _any_evaluate, events)


class AllOf(Condition):
    """Triggers once all constituent events have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(env, _all_evaluate, events)
