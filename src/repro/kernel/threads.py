"""Kernel tasks (threads) and the syscall layer.

:class:`KernelTask` is the simulated analogue of a Linux task: it has a tid,
belongs to a process (tgid), and interacts with kernel objects exclusively
through ``sys_*`` generator methods.  Every ``sys_*`` call:

1. fires ``raw_syscalls:sys_enter`` (running attached probes, whose cost is
   charged to the syscall),
2. performs the operation — possibly blocking the task,
3. fires ``raw_syscalls:sys_exit`` with the return value.

The enter/exit timestamps observed by probes therefore bracket the true
kernel-side duration, which is the raw signal the whole paper builds on.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..net.packet import Message
from ..sim.process import Process
from ..sim.resources import Request
from .objects import FdTable, FileDescriptor
from .polling import EpollInstance, wait_for_readable
from .sockets import ListenSocket, SocketEndpoint
from .syscalls import Sys

__all__ = ["KProcess", "KernelTask"]


class KProcess:
    """A process: a tgid, an fd table, and member tasks."""

    def __init__(self, kernel, pid: int, name: str) -> None:
        self.kernel = kernel
        self.pid = pid  # == tgid
        self.name = name
        self.fds = FdTable()
        self.tasks: List["KernelTask"] = []

    def spawn_thread(self, fn, name: Optional[str] = None, flat: bool = False) -> "KernelTask":
        """Create a task running ``fn(task)`` (a generator function).

        ``flat=True`` drives the body with the compiled-tier
        :class:`~repro.sim.compiled.FlatProcess` instead of a plain
        :class:`Process` — reserved for the trace-specialized loops of
        :mod:`repro.workloads.compiled`, whose generators uphold that
        driver's yield discipline.
        """
        task = self.kernel._new_task(self, name or f"{self.name}/t{len(self.tasks)}")
        self.tasks.append(task)
        task.body_fn = fn
        if flat:
            from ..sim.compiled import FlatProcess

            task.sim_process = FlatProcess(self.kernel.env, fn(task), name=task.name)
        else:
            task.sim_process = self.kernel.env.process(fn(task), name=task.name)
        return task

    def kill_thread(self, task: "KernelTask", cause: str = "killed") -> bool:
        """Forcibly terminate a task at its current wait point (crash
        injection).  Returns False if the task already finished.

        The task's generator unwinds via :class:`Interrupt`, so ``finally``
        blocks run (held CPU cores are released); a *queued* core claim is
        withdrawn explicitly.  Anything the corpse was about to dequeue is
        lost — exactly the in-flight request a real worker crash eats, which
        is what the client's retry watchdog exists to absorb.
        """
        proc = task.sim_process
        if proc is None or not proc.is_alive:
            return False
        target = proc.target
        # The crash is deliberate: nobody joins the corpse, so stop its
        # failure from crashing the engine.
        proc.defuse()
        if target is None:
            # Spawned but never resumed: close the generator before it runs.
            proc._generator.close()
            return True
        proc.interrupt(cause)
        if isinstance(target, Request):
            target.resource.release(target)
        return True

    def respawn_thread(self, task: "KernelTask") -> "KernelTask":
        """Restart a killed worker: a fresh task (new tid, same name and
        tgid) running the same body the original was spawned with."""
        if task.body_fn is None:
            raise ValueError(f"{task!r} was not spawned with a body function")
        return self.spawn_thread(task.body_fn, name=task.name)

    def adopt_thread(self, name: Optional[str] = None) -> "KernelTask":
        """Create a task whose body is driven externally (tests)."""
        task = self.kernel._new_task(self, name or f"{self.name}/t{len(self.tasks)}")
        self.tasks.append(task)
        return task

    def __repr__(self) -> str:
        return f"<KProcess {self.name} pid={self.pid} tasks={len(self.tasks)}>"


class KernelTask:
    """One schedulable thread with the full syscall interface."""

    def __init__(self, kernel, process: KProcess, tid: int, name: str) -> None:
        self.kernel = kernel
        self.process = process
        self.tid = tid
        self.name = name
        self.env = kernel.env
        self.sim_process: Optional[Process] = None
        #: The generator function this task was spawned with (None for
        #: adopted tasks); kept so a crashed worker can be respawned.
        self.body_fn = None

    @property
    def pid_tgid(self) -> int:
        """``bpf_get_current_pid_tgid()``: tgid in the high 32 bits."""
        return (self.process.pid << 32) | self.tid

    # ------------------------------------------------------------------
    # syscall plumbing
    # ------------------------------------------------------------------
    def _enter(self, nr: int, args: Sequence[int] = ()):
        """Fire sys_enter, then charge probe cost + kernel-entry overhead."""
        bus = self.kernel.tracepoints
        cost = bus.fire_enter(self.pid_tgid, nr, tuple(args), self.env.now)
        cost += self.kernel.spec.syscall_overhead_ns
        if cost > 0:
            yield self.env.timeout(cost)

    def _exit(self, nr: int, ret: int):
        """Fire sys_exit, then charge probe cost (after the timestamp)."""
        bus = self.kernel.tracepoints
        cost = bus.fire_exit(self.pid_tgid, nr, ret, self.env.now)
        if cost > 0:
            yield self.env.timeout(cost)

    # ------------------------------------------------------------------
    # compute (userspace, not a syscall)
    # ------------------------------------------------------------------
    def compute(self, duration_ns: int):
        """Burn CPU through the scheduler (request service time)."""
        yield from self.kernel.cpu.execute(duration_ns)

    # ------------------------------------------------------------------
    # receive family
    # ------------------------------------------------------------------
    def sys_read(self, sock: SocketEndpoint):
        return self._recv_syscall(Sys.READ, sock)

    def sys_recvfrom(self, sock: SocketEndpoint):
        return self._recv_syscall(Sys.RECVFROM, sock)

    def sys_recvmsg(self, sock: SocketEndpoint):
        return self._recv_syscall(Sys.RECVMSG, sock)

    def sys_recv(self, nr: int, sock: SocketEndpoint):
        """Receive using an explicit recv-family syscall number."""
        return self._recv_syscall(nr, sock)

    def _recv_syscall(self, nr: int, sock: SocketEndpoint):
        yield from self._enter(nr, (id(sock) & 0xFFFF,))
        if not sock.readable:
            yield sock.wait_readable()
        message = sock.pop()
        yield from self._exit(nr, message.size)
        return message

    # ------------------------------------------------------------------
    # send family
    # ------------------------------------------------------------------
    def sys_write(self, sock: SocketEndpoint, message: Message):
        return self._send_syscall(Sys.WRITE, sock, message)

    def sys_sendto(self, sock: SocketEndpoint, message: Message):
        return self._send_syscall(Sys.SENDTO, sock, message)

    def sys_sendmsg(self, sock: SocketEndpoint, message: Message):
        return self._send_syscall(Sys.SENDMSG, sock, message)

    def sys_send(self, nr: int, sock: SocketEndpoint, message: Message):
        """Send using an explicit send-family syscall number."""
        return self._send_syscall(nr, sock, message)

    def _send_syscall(self, nr: int, sock: SocketEndpoint, message: Message):
        yield from self._enter(nr, (id(sock) & 0xFFFF, message.size))
        ret = sock.send(message)
        yield from self._exit(nr, ret)
        return ret

    # ------------------------------------------------------------------
    # poll family
    # ------------------------------------------------------------------
    def sys_epoll_wait(self, epoll: EpollInstance, timeout_ns: Optional[int] = None):
        """``epoll_wait``: block until the interest set has readable fds."""
        def body():
            yield from self._enter(Sys.EPOLL_WAIT, (id(epoll) & 0xFFFF,))
            ready = yield from epoll.wait(timeout_ns)
            yield from self._exit(Sys.EPOLL_WAIT, len(ready))
            return ready

        return body()

    def sys_select(self, fds: Sequence[FileDescriptor], timeout_ns: Optional[int] = None):
        """Legacy ``select`` over an explicit fd list (TailBench style)."""
        def body():
            yield from self._enter(Sys.SELECT, (len(fds),))
            ready = yield from wait_for_readable(self.env, fds, timeout_ns)
            yield from self._exit(Sys.SELECT, len(ready))
            return ready

        return body()

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def sys_accept(self, listener: ListenSocket):
        """``accept``: pop (or wait for) a pending connection; installs the
        new socket in the process fd table."""
        def body():
            yield from self._enter(Sys.ACCEPT, ())
            if not listener.readable:
                ready = yield from wait_for_readable(self.env, [listener])
                assert ready, "accept woke without pending connection"
            sock = listener.pop()
            fd_number = self.process.fds.install(sock)
            yield from self._exit(Sys.ACCEPT, fd_number)
            return sock

        return body()

    def sys_epoll_create1(self):
        def body():
            yield from self._enter(Sys.EPOLL_CREATE1, ())
            epoll = EpollInstance(self.env, name=f"{self.name}:epoll")
            yield from self._exit(Sys.EPOLL_CREATE1, 0)
            return epoll

        return body()

    def sys_epoll_ctl(self, epoll: EpollInstance, fd_obj: FileDescriptor):
        """``epoll_ctl(EPOLL_CTL_ADD)``."""
        def body():
            yield from self._enter(Sys.EPOLL_CTL, ())
            epoll.register(fd_obj)
            yield from self._exit(Sys.EPOLL_CTL, 0)
            return 0

        return body()

    def sys_epoll_del(self, epoll: EpollInstance, fd_obj: FileDescriptor):
        """``epoll_ctl(EPOLL_CTL_DEL)``."""
        def body():
            yield from self._enter(Sys.EPOLL_CTL, ())
            epoll.unregister(fd_obj)
            yield from self._exit(Sys.EPOLL_CTL, 0)
            return 0

        return body()

    def sys_close(self, fd_obj: FileDescriptor):
        def body():
            yield from self._enter(Sys.CLOSE, ())
            fd_obj.close()
            yield from self._exit(Sys.CLOSE, 0)
            return 0

        return body()

    # -- setup-phase syscalls (Fig. 1(b) realism; no-ops data-wise) --------
    def sys_socket(self):
        return self._trivial(Sys.SOCKET)

    def sys_bind(self):
        return self._trivial(Sys.BIND)

    def sys_listen(self):
        return self._trivial(Sys.LISTEN)

    def sys_openat(self):
        return self._trivial(Sys.OPENAT)

    def _trivial(self, nr: int):
        def body():
            yield from self._enter(nr, ())
            yield from self._exit(nr, 0)
            return 0

        return body()

    # ------------------------------------------------------------------
    # sleeping / userspace blocking
    # ------------------------------------------------------------------
    def sys_nanosleep(self, duration_ns: int):
        def body():
            yield from self._enter(Sys.NANOSLEEP, (duration_ns,))
            yield self.env.timeout(duration_ns)
            yield from self._exit(Sys.NANOSLEEP, 0)
            return 0

        return body()

    def sys_futex_wait(self, event):
        """Block on an arbitrary sim event inside a ``futex`` syscall.

        This is how userspace queue/condvar waits (Triton's dispatch queue,
        Web Search's tier hand-off) appear to a syscall tracer.  Returns the
        event's value.
        """
        def body():
            yield from self._enter(Sys.FUTEX, ())
            value = yield event
            yield from self._exit(Sys.FUTEX, 0)
            return value

        return body()

    def __repr__(self) -> str:
        return f"<KernelTask {self.name} tid={self.tid}>"
