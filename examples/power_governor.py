#!/usr/bin/env python3
"""An in-kernel DVFS governor fed by request-level observability (§VI).

The paper's headline implication: power managers live in the kernel, and
passing userspace request metrics to them "would require significant
overhead" — but eBPF syscall observability gives the kernel those metrics
for free.  This example closes that loop:

* the governor samples the monitor every 100 ms (idleness + dispersion);
* comfortable slack → lower the P-state (cubic dynamic-power savings);
* contention signatures → race back to maximum frequency.

It then replays a day-in-miniature load trace (trough → ramp → peak →
trough) and compares energy and tail latency against a fixed-max baseline.

Run:  python examples/power_governor.py
"""

from repro import (
    AMD_EPYC_7302,
    Environment,
    Kernel,
    OpenLoopClient,
    RequestMetricsMonitor,
    SeedSequence,
    get_workload,
)
from repro.core import SlackDvfsGovernor
from repro.kernel import DvfsDriver

SEED = 31


def run_trace(governed: bool):
    definition = get_workload("xapian")
    config = definition.config
    fail = definition.paper_fail_rps

    env = Environment()
    seeds = SeedSequence(SEED)
    kernel = Kernel(env, AMD_EPYC_7302.with_cores(config.cores), seeds)
    app = definition.build(kernel)
    driver = DvfsDriver(env, kernel.cpu)
    monitor = RequestMetricsMonitor(kernel, app.tgid, spec=config.syscalls).attach()

    # Diurnal miniature: trough, morning ramp, peak, evening trough.
    phases = [
        (0.25 * fail, 800),
        (0.50 * fail, 1500),
        (0.85 * fail, 2500),
        (0.30 * fail, 900),
    ]
    client = OpenLoopClient(
        env, app.client_sockets, seeds.stream("client"),
        rate_rps=phases[0][0], total_requests=1, phases=phases,
        qos_latency_ns=config.qos_latency_ns, arrival="uniform",
    )
    governor = None
    if governed:
        governor = SlackDvfsGovernor(monitor, driver, workers=config.workers)
        env.process(governor.run(client.done))
    client.start()
    report = env.run(until=client.done)
    return report, driver, governor


def main() -> None:
    base_report, base_driver, _ = run_trace(governed=False)
    gov_report, gov_driver, governor = run_trace(governed=True)

    base_energy = base_driver.energy_joules()
    gov_energy = gov_driver.energy_joules()
    savings = 1 - gov_energy / base_energy

    print("diurnal trace: trough -> ramp -> peak -> trough (xapian)")
    print(f"{'':<12}{'energy J':>10}{'p99 ms':>10}{'QoS ok?':>9}")
    print(f"{'fixed max':<12}{base_energy:>10.1f}{base_report.p99_ns / 1e6:>10.1f}"
          f"{str(not base_report.qos_violated):>9}")
    print(f"{'governed':<12}{gov_energy:>10.1f}{gov_report.p99_ns / 1e6:>10.1f}"
          f"{str(not gov_report.qos_violated):>9}")
    print(f"\nenergy savings: {100 * savings:.1f}%  "
          f"({gov_driver.transitions} P-state transitions)")

    actions = [d.action for d in governor.decisions]
    print(f"governor actions: down={actions.count('down')} "
          f"hold={actions.count('hold')} up={actions.count('up')} "
          f"max={actions.count('max')}")

    assert savings > 0.1, "expected >10% energy savings over the trace"
    assert not gov_report.qos_violated, "governor must not break QoS here"
    print("\nOK — kernel-space power management driven entirely by "
          "syscall-derived request metrics.")


if __name__ == "__main__":
    main()
