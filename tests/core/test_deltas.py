"""Tests for delta statistics (Eq. 1 / Eq. 2 arithmetic)."""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeltaStats, deltas_of, variance_int
from repro.sim import MSEC, SEC


def test_deltas_of():
    assert deltas_of([10, 30, 60]) == [20, 30]
    assert deltas_of([5]) == []
    assert deltas_of([]) == []


def test_variance_int_constant_deltas():
    assert variance_int([100, 100, 100]) == 0


def test_variance_int_matches_population_variance():
    deltas = [100, 200, 300, 400]
    expected = statistics.pvariance(deltas)
    assert variance_int(deltas) == pytest.approx(expected, abs=2)


def test_variance_int_empty():
    assert variance_int([]) == 0


class TestDeltaStats:
    def test_streaming_matches_batch(self):
        timestamps = [0, 100, 250, 700, 1000]
        stats = DeltaStats.from_timestamps(timestamps)
        assert stats.count == 4
        assert stats.sum == 1000
        assert stats.sumsq == sum(d * d for d in deltas_of(timestamps))
        assert stats.first_ns == 0
        assert stats.last_ns == 1000

    def test_rps_obsv_eq1(self):
        # 1 send per ms -> 1000 RPS.
        stats = DeltaStats.from_timestamps([i * MSEC for i in range(100)])
        assert stats.rps_obsv() == pytest.approx(1000.0)

    def test_rps_obsv_no_events(self):
        assert DeltaStats().rps_obsv() == 0.0

    def test_mean_delta_integer_division(self):
        stats = DeltaStats()
        stats.add_delta(3)
        stats.add_delta(4)
        assert stats.mean_delta_ns() == 3  # 7 // 2

    def test_variance_eq2_integer_form(self):
        stats = DeltaStats()
        for delta in (100, 200, 300):
            stats.add_delta(delta)
        mean = 600 // 3
        assert stats.variance_ns2() == (100**2 + 200**2 + 300**2) // 3 - mean * mean

    def test_variance_float_close_to_int(self):
        stats = DeltaStats()
        for delta in (1000, 2000, 3000, 4000):
            stats.add_delta(delta)
        assert stats.variance_float() == pytest.approx(stats.variance_ns2(), rel=0.01)

    def test_backwards_timestamp_rejected(self):
        stats = DeltaStats()
        stats.add_timestamp(100)
        with pytest.raises(ValueError, match="backwards"):
            stats.add_timestamp(50)

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            DeltaStats().add_delta(-1)

    def test_reset_window_preserves_continuity(self):
        stats = DeltaStats.from_timestamps([0, 100, 200])
        stats.reset_window()
        assert stats.count == 0
        assert stats.first_ns == 200
        stats.add_timestamp(350)
        assert stats.count == 1
        assert stats.sum == 150  # delta spans the window boundary

    def test_events_property(self):
        stats = DeltaStats()
        assert stats.events == 0
        stats.add_timestamp(1)
        assert stats.events == 1
        stats.add_timestamp(2)
        assert stats.events == 2

    def test_reset_window_reports_zero_events(self):
        """Regression: a freshly reset window used to report ``events == 1``
        (the carried anchor timestamp counted as an observation)."""
        stats = DeltaStats.from_timestamps([0, 100, 200])
        assert stats.events == 3
        stats.reset_window()
        assert stats.events == 0
        assert stats.carried

    def test_events_across_window_rollover(self):
        """Each window's event count covers only its own timestamps even
        though the boundary delta is anchored on the carried one."""
        stats = DeltaStats.from_timestamps([0, 100, 200])
        stats.reset_window()
        stats.add_timestamp(350)
        assert stats.events == 1
        stats.add_timestamp(500)
        assert stats.events == 2
        assert stats.count == 2  # both deltas, incl. the boundary-spanning one
        # A second rollover behaves the same way.
        stats.reset_window()
        assert stats.events == 0
        stats.add_timestamp(900)
        assert stats.events == 1

    def test_reset_window_on_fresh_stats_is_not_carried(self):
        stats = DeltaStats()
        stats.reset_window()
        assert not stats.carried
        stats.add_timestamp(10)
        assert stats.events == 1

    def test_window_event_totals_partition_the_trace(self):
        """Summing per-window events over rollovers must equal the number
        of timestamps fed in — no event counted twice, none invented."""
        stats = DeltaStats()
        timestamps = [i * 10 for i in range(30)]
        total = 0
        for index, ts in enumerate(timestamps):
            stats.add_timestamp(ts)
            if index % 7 == 6:
                total += stats.events
                stats.reset_window()
        total += stats.events
        assert total == len(timestamps)

    def test_merge(self):
        a = DeltaStats.from_timestamps([0, 100, 200])
        b = DeltaStats.from_timestamps([1000, 1300])
        merged = a.merge(b)
        assert merged.count == 3
        assert merged.sum == 100 + 100 + 300
        assert merged.first_ns == 0
        assert merged.last_ns == 1300

    def test_merge_with_empty(self):
        a = DeltaStats.from_timestamps([0, 100])
        merged = a.merge(DeltaStats())
        assert merged.count == 1
        assert merged.first_ns == 0

    def test_merge_counts_events_of_uncarried_windows(self):
        # Two fresh traces of 3 timestamps each carry 6 events total; the
        # merged window must not lose one to carried-flag inference.
        a = DeltaStats.from_timestamps([0, 100, 200])
        b = DeltaStats.from_timestamps([1000, 1100, 1300])
        assert a.events == b.events == 3
        merged = a.merge(b)
        assert merged.count == 4
        assert merged.events == 6

    def test_merge_preserves_carried_event_accounting(self):
        a = DeltaStats.from_timestamps([0, 100, 200])
        a.reset_window()
        a.add_timestamp(300)
        a.add_timestamp(400)  # carried window: 2 events, 2 deltas
        b = DeltaStats.from_timestamps([1000, 1100])
        b.reset_window()
        b.add_timestamp(1250)  # carried window: 1 event, 1 delta
        merged = a.merge(b)
        assert merged.count == 3
        assert merged.events == a.events + b.events == 3

    @given(st.lists(st.integers(min_value=1, max_value=10 * SEC), min_size=2, max_size=60))
    @settings(max_examples=80)
    def test_streaming_equals_closed_form_property(self, gaps):
        timestamps = [0]
        for gap in gaps:
            timestamps.append(timestamps[-1] + gap)
        stats = DeltaStats.from_timestamps(timestamps)
        deltas = deltas_of(timestamps)
        assert stats.count == len(deltas)
        assert stats.sum == sum(deltas)
        assert stats.sumsq == sum(d * d for d in deltas)
        assert stats.variance_ns2() == variance_int(deltas)

    @given(st.lists(st.integers(min_value=1, max_value=SEC), min_size=1, max_size=50))
    @settings(max_examples=80)
    def test_variance_nonnegative_within_truncation(self, deltas):
        stats = DeltaStats()
        for delta in deltas:
            stats.add_delta(delta)
        # Integer truncation can push the Eq. 2 form at most 1 below the
        # true (non-negative) variance: sumsq//n >= sumsq/n - 1 and
        # (sum//n)^2 <= (sum/n)^2.
        assert stats.variance_ns2() >= -1
        assert stats.variance_float() >= -1.0
