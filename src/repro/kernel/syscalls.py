"""The syscall table: real x86-64 numbers and the paper's syscall families.

The observability methodology filters ``raw_syscalls`` tracepoints by
syscall id (see Listing 1 in the paper, which filters ``epoll_wait`` by its
x86-64 number 232).  We therefore carry genuine x86-64 syscall numbers so
collector programs written against this substrate would be byte-compatible
with a real kernel.

The paper groups syscalls into three *request-oriented families* (§III):

* **recv family** — ``read``, ``recvfrom``, ``recvmsg`` (+variants): request
  reception;
* **send family** — ``write``, ``sendto``, ``sendmsg`` (+variants): response
  transmission;
* **poll family** — ``epoll_wait``, ``select`` (+variants): waiting for new
  network events; their *duration* measures idleness.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet

__all__ = [
    "Sys",
    "SyscallFamily",
    "SyscallSpec",
    "SYSCALL_NAMES",
    "nr_of",
    "family_of",
    "RECV_FAMILY",
    "SEND_FAMILY",
    "POLL_FAMILY",
    "SETUP_SYSCALLS",
]


class Sys:
    """x86-64 syscall numbers used by the simulated kernel."""

    READ = 0
    WRITE = 1
    CLOSE = 3
    POLL = 7
    SELECT = 23
    NANOSLEEP = 35
    SOCKET = 41
    CONNECT = 42
    ACCEPT = 43
    SENDTO = 44
    RECVFROM = 45
    SENDMSG = 46
    RECVMSG = 47
    SHUTDOWN = 48
    BIND = 49
    LISTEN = 50
    EXIT = 60
    FUTEX = 202
    EPOLL_WAIT = 232
    EPOLL_CTL = 233
    OPENAT = 257
    ACCEPT4 = 288
    EPOLL_CREATE1 = 291


#: Number → canonical name for every syscall the simulator can emit.
SYSCALL_NAMES: Dict[int, str] = {
    Sys.READ: "read",
    Sys.WRITE: "write",
    Sys.CLOSE: "close",
    Sys.POLL: "poll",
    Sys.SELECT: "select",
    Sys.NANOSLEEP: "nanosleep",
    Sys.SOCKET: "socket",
    Sys.CONNECT: "connect",
    Sys.ACCEPT: "accept",
    Sys.SENDTO: "sendto",
    Sys.RECVFROM: "recvfrom",
    Sys.SENDMSG: "sendmsg",
    Sys.RECVMSG: "recvmsg",
    Sys.SHUTDOWN: "shutdown",
    Sys.BIND: "bind",
    Sys.LISTEN: "listen",
    Sys.EXIT: "exit",
    Sys.FUTEX: "futex",
    Sys.EPOLL_WAIT: "epoll_wait",
    Sys.EPOLL_CTL: "epoll_ctl",
    Sys.OPENAT: "openat",
    Sys.ACCEPT4: "accept4",
    Sys.EPOLL_CREATE1: "epoll_create1",
}

_NAME_TO_NR = {name: nr for nr, name in SYSCALL_NAMES.items()}


def nr_of(name: str) -> int:
    """Syscall number for a canonical name."""
    try:
        return _NAME_TO_NR[name]
    except KeyError:
        raise KeyError(f"unknown syscall name {name!r}") from None


class SyscallFamily(str, Enum):
    """The paper's request-oriented syscall groups."""

    RECV = "recv"
    SEND = "send"
    POLL = "poll"
    OTHER = "other"


RECV_FAMILY: FrozenSet[int] = frozenset({Sys.READ, Sys.RECVFROM, Sys.RECVMSG})
SEND_FAMILY: FrozenSet[int] = frozenset({Sys.WRITE, Sys.SENDTO, Sys.SENDMSG})
POLL_FAMILY: FrozenSet[int] = frozenset({Sys.EPOLL_WAIT, Sys.SELECT, Sys.POLL})

#: Syscalls typical of an application's setup/shutdown phases (Fig. 1(b));
#: the paper explicitly excludes these from the request-oriented subset.
SETUP_SYSCALLS: FrozenSet[int] = frozenset(
    {Sys.SOCKET, Sys.BIND, Sys.LISTEN, Sys.ACCEPT, Sys.ACCEPT4, Sys.CONNECT,
     Sys.EPOLL_CREATE1, Sys.EPOLL_CTL, Sys.OPENAT, Sys.CLOSE, Sys.SHUTDOWN,
     Sys.EXIT}
)


def family_of(nr: int) -> SyscallFamily:
    """Classify a syscall number into the paper's families."""
    if nr in RECV_FAMILY:
        return SyscallFamily.RECV
    if nr in SEND_FAMILY:
        return SyscallFamily.SEND
    if nr in POLL_FAMILY:
        return SyscallFamily.POLL
    return SyscallFamily.OTHER


@dataclass(frozen=True)
class SyscallSpec:
    """How a workload maps abstract operations onto concrete syscalls.

    The paper's Table of workload syscall usage (§IV-A): TailBench uses
    ``recvfrom``/``sendto`` with legacy ``select``; Data Caching uses
    ``read``/``sendmsg`` with ``epoll_wait``; Web Search ``read``/``write``;
    Triton-gRPC ``recvmsg``/``sendmsg``; Triton-HTTP ``recvfrom``/``sendto``.
    """

    recv_nr: int
    send_nr: int
    poll_nr: int

    def __post_init__(self) -> None:
        if self.recv_nr not in RECV_FAMILY:
            raise ValueError(f"{SYSCALL_NAMES.get(self.recv_nr)} is not a recv syscall")
        if self.send_nr not in SEND_FAMILY:
            raise ValueError(f"{SYSCALL_NAMES.get(self.send_nr)} is not a send syscall")
        if self.poll_nr not in POLL_FAMILY:
            raise ValueError(f"{SYSCALL_NAMES.get(self.poll_nr)} is not a poll syscall")

    @classmethod
    def tailbench(cls) -> "SyscallSpec":
        return cls(Sys.RECVFROM, Sys.SENDTO, Sys.SELECT)

    @classmethod
    def data_caching(cls) -> "SyscallSpec":
        return cls(Sys.READ, Sys.SENDMSG, Sys.EPOLL_WAIT)

    @classmethod
    def web_search(cls) -> "SyscallSpec":
        return cls(Sys.READ, Sys.WRITE, Sys.EPOLL_WAIT)

    @classmethod
    def triton_grpc(cls) -> "SyscallSpec":
        return cls(Sys.RECVMSG, Sys.SENDMSG, Sys.EPOLL_WAIT)

    @classmethod
    def triton_http(cls) -> "SyscallSpec":
        return cls(Sys.RECVFROM, Sys.SENDTO, Sys.EPOLL_WAIT)
