"""Application-level messages carried by the simulated network.

The simulation transfers whole request/response messages rather than MTU
segments: the paper's workloads exchange one logical message per direction
per request, and the observability signals (syscall counts, inter-syscall
deltas) depend on message events, not on segmentation.  Byte sizes are kept
so ``read``/``send`` syscalls can return realistic counts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Message"]

_message_ids = itertools.count(1)


@dataclass
class Message:
    """A logical message (request or response) in flight or queued."""

    payload: Any = None
    size: int = 64
    #: Correlation tag used by clients to match responses to requests.
    tag: Optional[int] = None
    #: Monotonically increasing id (diagnostics only).
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    #: Timestamp the message entered the channel (set by the channel).
    sent_at: Optional[int] = None
    #: Timestamp the message was delivered to the peer socket.
    delivered_at: Optional[int] = None

    def __repr__(self) -> str:
        return f"<Message #{self.msg_id} tag={self.tag} size={self.size}>"
