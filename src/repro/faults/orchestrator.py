"""Server-side scripted faults: stalls, worker crashes, connection resets.

Each fault is a frozen schedule entry; :class:`FaultOrchestrator` arms one
sim process per fault and applies it at its scheduled instant.  The
orchestrator only uses public hooks — :meth:`repro.kernel.cpu.CPU.inject_stall`,
:meth:`repro.kernel.threads.KProcess.kill_thread` / ``respawn_thread`` and
:meth:`repro.net.channel.Channel.reset` — so the same faults can be aimed
at any workload app built on :class:`~repro.workloads.base.ServerApp`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

from ..sim.engine import Environment

__all__ = [
    "ChannelStall",
    "ConnectionReset",
    "FaultOrchestrator",
    "FaultReport",
    "SendFragmentation",
    "WorkerCrash",
    "WorkerStall",
]


@dataclass(frozen=True)
class WorkerStall(object):
    """Freeze all compute for ``duration_ns`` starting at ``at_ns`` —
    a stop-the-world pause (GC, cgroup throttle, co-tenant burst)."""

    at_ns: int
    duration_ns: int

    def __post_init__(self) -> None:
        if self.at_ns < 0 or self.duration_ns <= 0:
            raise ValueError("need at_ns >= 0 and duration_ns > 0")


@dataclass(frozen=True)
class WorkerCrash:
    """Kill up to ``count`` worker threads at ``at_ns``; respawn each after
    ``restart_after_ns`` (0 = never — the capacity loss is permanent).

    ``match`` selects victims by task-name substring: ``"/w"`` hits the
    poll-loop workers of every built-in app, ``"/exec"`` the dispatch-pool
    executors.
    """

    at_ns: int
    restart_after_ns: int = 0
    count: int = 1
    match: str = "/w"

    def __post_init__(self) -> None:
        if self.at_ns < 0 or self.restart_after_ns < 0 or self.count < 1:
            raise ValueError("need at_ns/restart_after_ns >= 0 and count >= 1")


@dataclass(frozen=True)
class ConnectionReset:
    """At ``at_ns``, reset the first ``connections`` client connections:
    both directions drop everything in flight and both receive queues are
    flushed (an RST discards queued data)."""

    at_ns: int
    connections: int = 1

    def __post_init__(self) -> None:
        if self.at_ns < 0 or self.connections < 1:
            raise ValueError("need at_ns >= 0 and connections >= 1")


@dataclass(frozen=True)
class SendFragmentation:
    """From ``at_ns`` for ``duration_ns``, every response is sent as
    exactly ``chunks`` small writes instead of one — a buffering regression
    (TCP_NODELAY flipped on, a shrunk userspace write buffer, a serializer
    change).  Requests still complete on time, so the app layer reports
    nothing; only the send-delta dispersion sees the many-small-writes
    pattern (the APP_SILENT archetype)."""

    at_ns: int
    duration_ns: int
    chunks: int = 12

    def __post_init__(self) -> None:
        if self.at_ns < 0 or self.duration_ns <= 0:
            raise ValueError("need at_ns >= 0 and duration_ns > 0")
        if self.chunks < 2:
            raise ValueError("chunks must be >= 2 (1 is the healthy case)")


@dataclass(frozen=True)
class ChannelStall:
    """At ``at_ns``, head-of-line stall the client→server direction of the
    first ``connections`` connections (0 = all) for ``duration_ns``:
    requests sent during the stall queue upstream and arrive in a burst
    afterwards — delayed accepts / a saturated listen backlog.  The server's
    syscalls see only a quiet spell, which is exactly what an idle server
    looks like (the KERNEL_SILENT archetype)."""

    at_ns: int
    duration_ns: int
    connections: int = 0

    def __post_init__(self) -> None:
        if self.at_ns < 0 or self.duration_ns <= 0:
            raise ValueError("need at_ns >= 0 and duration_ns > 0")
        if self.connections < 0:
            raise ValueError("connections must be >= 0 (0 = all)")


Fault = Union[WorkerStall, WorkerCrash, ConnectionReset, SendFragmentation,
              ChannelStall]


@dataclass
class FaultReport:
    """What the orchestrator actually did (for result records)."""

    #: Human-readable ``(at_ns, description)`` entries, in application order.
    applied: List[tuple] = field(default_factory=list)
    killed: int = 0
    respawned: int = 0
    resets: int = 0
    stalls: int = 0
    fragmentations: int = 0
    channel_stalls: int = 0
    #: Messages discarded by connection resets (queued + in flight).
    discarded_messages: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class FaultOrchestrator:
    """Arms and applies a schedule of faults against one running app."""

    def __init__(self, env: Environment, kernel, app, faults) -> None:
        self.env = env
        self.kernel = kernel
        self.app = app
        self.faults = list(faults)
        self.report = FaultReport()
        self._started = False

    def start(self) -> "FaultOrchestrator":
        if self._started:
            raise RuntimeError("orchestrator already started")
        self._started = True
        for index, fault in enumerate(self.faults):
            self.env.process(self._arm(fault), name=f"faults:f{index}")
        return self

    # -- application -------------------------------------------------------
    def _arm(self, fault: Fault):
        yield self.env.timeout(fault.at_ns)
        if isinstance(fault, WorkerStall):
            self._apply_stall(fault)
        elif isinstance(fault, WorkerCrash):
            yield from self._apply_crash(fault)
        elif isinstance(fault, ConnectionReset):
            self._apply_reset(fault)
        elif isinstance(fault, SendFragmentation):
            yield from self._apply_fragmentation(fault)
        elif isinstance(fault, ChannelStall):
            self._apply_channel_stall(fault)
        else:
            raise TypeError(f"unknown fault {fault!r}")

    def _record(self, description: str) -> None:
        self.report.applied.append((self.env.now, description))

    def _apply_stall(self, fault: WorkerStall) -> None:
        self.kernel.cpu.inject_stall(fault.duration_ns)
        self.report.stalls += 1
        self._record(f"stall {fault.duration_ns}ns")

    def _apply_crash(self, fault: WorkerCrash):
        process = self.app.process
        victims = [
            task for task in process.tasks
            if fault.match in task.name
            and task.sim_process is not None and task.sim_process.is_alive
        ][: fault.count]
        for task in victims:
            if process.kill_thread(task, cause="fault:crash"):
                self.report.killed += 1
                self._record(f"crash {task.name}")
        if fault.restart_after_ns and victims:
            yield self.env.timeout(fault.restart_after_ns)
            for task in victims:
                process.respawn_thread(task)
                self.report.respawned += 1
                self._record(f"respawn {task.name}")

    def _apply_fragmentation(self, fault: SendFragmentation):
        self.app._fragment_override = fault.chunks
        self.report.fragmentations += 1
        self._record(f"fragment responses into {fault.chunks} sends")
        yield self.env.timeout(fault.duration_ns)
        self.app._fragment_override = None
        self._record("fragmentation cleared")

    def _apply_channel_stall(self, fault: ChannelStall) -> None:
        sockets = self.app.client_sockets
        if fault.connections:
            sockets = sockets[: fault.connections]
        for sock in sockets:
            # The client endpoint's tx channel is the client→server
            # direction: stalling it holds requests upstream of the server.
            sock._tx.stall(fault.duration_ns)
        self.report.channel_stalls += 1
        self._record(
            f"channel stall {fault.duration_ns}ns on {len(sockets)} connections"
        )

    def _apply_reset(self, fault: ConnectionReset) -> None:
        sockets = self.app.client_sockets[: fault.connections]
        for sock in sockets:
            discarded = 0
            for endpoint in (sock, sock.peer):
                if endpoint is None:
                    continue
                discarded += len(endpoint.rx)
                endpoint.rx.clear()
                if endpoint._tx is not None:
                    endpoint._tx.reset()
            self.report.resets += 1
            self.report.discarded_messages += discarded
            self._record(f"reset {sock.name} (flushed {discarded})")
