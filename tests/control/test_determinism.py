"""Controller determinism: same spec + seed => bit-identical results.

The controller's decisions derive only from windowed snapshot values the
executor already reproduces bit-identically, so a controlled cell must
stay byte-stable across process pools, eBPF VM tiers and workload-sim
tiers — and ``policy="none"`` must be indistinguishable from running
with no control config at all.
"""

from repro.analysis.executor.pool import execute_cell, run_cells
from repro.control.scenarios import build_scenario
from repro.core import ControlConfig

REQUESTS = 900


def _controlled_spec(**overrides):
    built = build_scenario("silo", "surge-shed", REQUESTS)
    spec = built["spec"].replace(control=built["control"])
    return spec.replace(**overrides) if overrides else spec


def test_jobs_fanout_is_bit_identical():
    spec = _controlled_spec()
    serial, _ = run_cells([spec], jobs=1, cache=None)
    fanned, _ = run_cells([spec], jobs=4, cache=None)
    assert serial[0].to_dict() == fanned[0].to_dict()
    serial_control = serial[0].extra["control"]
    assert serial_control["actions"] == fanned[0].extra["control"]["actions"]
    assert serial_control["engagements"] >= 1


def test_vm_and_sim_tiers_are_bit_identical():
    results = {}
    for vm_tier in ("reference", "fast", "compiled"):
        for sim_tier in ("reference", "compiled"):
            spec = _controlled_spec(monitor_mode="vm", vm_tier=vm_tier, sim_tier=sim_tier)
            results[(vm_tier, sim_tier)] = execute_cell(spec).to_dict()
    baseline = results[("reference", "reference")]
    for combo, result in results.items():
        assert result == baseline, f"{combo} diverged from reference/reference"


def test_policy_none_is_byte_identical_to_control_free():
    built = build_scenario("silo", "surge-shed", REQUESTS)
    plain = execute_cell(built["spec"])
    nulled = execute_cell(built["spec"].replace(control=ControlConfig(policy="none")))
    assert plain.to_dict() == nulled.to_dict()
    assert nulled.extra is None
