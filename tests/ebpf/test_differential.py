"""Differential fuzzing: any program the verifier accepts must execute
without faulting — the substrate's version of the kernel's core soundness
contract.

Programs are generated from a constrained vocabulary (register inits, ALU
ops, stack traffic, jump-over-next conditionals) so a useful fraction pass
verification; rejected programs are simply skipped.  Accepted ones run in
the VM over arbitrary context bytes and must terminate cleanly with a
scalar r0.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

# Verifier-rejected programs are discarded via assume(); the rejection rate
# is intentionally high, so silence the filter-rate health check.
_FUZZ_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)

from repro.ebpf import Asm, ProgType, Reg, VerifierError, Vm, VmFault, verify

CTX_SIZE = ProgType.tracepoint_sys_enter().ctx_size

_ALU_IMM = ("add_imm", "sub_imm", "mul_imm", "div_imm", "mod_imm",
            "and_imm", "or_imm", "lsh_imm", "rsh_imm", "arsh_imm")
_ALU_REG = ("add_reg", "sub_reg", "mul_reg", "div_reg", "mod_reg", "xor_reg")
_JMP_IMM = ("jeq_imm", "jne_imm", "jgt_imm", "jge_imm", "jlt_imm",
            "jle_imm", "jsgt_imm", "jslt_imm", "jset_imm")

_reg = st.integers(min_value=0, max_value=9)
_imm = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
_shift = st.integers(min_value=0, max_value=63)
_slot = st.integers(min_value=1, max_value=8)  # stack slots fp-8*slot

_op = st.one_of(
    st.tuples(st.just("mov_imm"), _reg, _imm),
    st.tuples(st.just("mov_reg"), _reg, _reg),
    st.tuples(st.sampled_from(_ALU_IMM), _reg, _imm),
    st.tuples(st.sampled_from(_ALU_REG), _reg, _reg),
    st.tuples(st.just("neg"), _reg),
    st.tuples(st.just("wmov_imm"), _reg, _imm),
    st.tuples(st.just("wadd_imm"), _reg, _imm),
    st.tuples(st.just("store"), _reg, _slot),
    st.tuples(st.just("load"), _reg, _slot),
    st.tuples(st.just("ctx_load"), _reg, st.integers(min_value=0, max_value=CTX_SIZE - 8)),
    st.tuples(st.sampled_from(_JMP_IMM), _reg, _imm, st.just("mov_imm"), _reg, _imm),
)


def _build(ops):
    asm = Asm()
    label_counter = 0
    for op in ops:
        name = op[0]
        if name in ("mov_imm", "wmov_imm", "wadd_imm"):
            getattr(asm, name)(op[1], op[2])
        elif name in _ALU_IMM:
            # keep shifts in range; other imms arbitrary
            imm = op[2] & 63 if name in ("lsh_imm", "rsh_imm", "arsh_imm") else op[2]
            getattr(asm, name)(op[1], imm)
        elif name in _ALU_REG or name == "mov_reg":
            getattr(asm, name)(op[1], op[2])
        elif name == "neg":
            asm.neg(op[1])
        elif name == "store":
            from repro.ebpf import MemSize
            asm.stx(MemSize.DW, Reg.R10, -8 * op[2], op[1])
        elif name == "load":
            from repro.ebpf import MemSize
            asm.ldx(MemSize.DW, op[1], Reg.R10, -8 * op[2])
        elif name == "ctx_load":
            from repro.ebpf import MemSize
            asm.ldx(MemSize.DW, op[1], Reg.R1, op[2])
        else:  # conditional jump over exactly one mov
            jmp_name, jreg, jimm, _mname, mreg, mimm = op
            label = f"fuzz_{label_counter}"
            label_counter += 1
            getattr(asm, jmp_name)(jreg, jimm, label)
            asm.mov_imm(mreg, mimm)
            asm.label(label)
    asm.mov_imm(Reg.R0, 0)
    asm.exit_()
    return asm.build()


@given(ops=st.lists(_op, min_size=0, max_size=25),
       ctx=st.binary(min_size=CTX_SIZE, max_size=CTX_SIZE))
@settings(max_examples=300, **_FUZZ_SETTINGS)
def test_verified_programs_never_fault(ops, ctx):
    insns = _build(ops)
    try:
        verify(insns, ProgType.tracepoint_sys_enter())
    except VerifierError:
        assume(False)  # rejected programs are out of scope
    result = Vm().execute(insns, ctx)
    assert isinstance(result.r0, int)
    assert result.steps <= len(insns)  # straight-line-ish: no loops possible


@given(ops=st.lists(_op, min_size=0, max_size=25),
       ctx=st.binary(min_size=CTX_SIZE, max_size=CTX_SIZE))
@settings(max_examples=150, **_FUZZ_SETTINGS)
def test_vm_is_deterministic(ops, ctx):
    insns = _build(ops)
    try:
        verify(insns, ProgType.tracepoint_sys_enter())
    except VerifierError:
        assume(False)
    first = Vm().execute(insns, ctx)
    second = Vm().execute(insns, ctx)
    assert first.r0 == second.r0
    assert first.steps == second.steps


def test_acceptance_rate_is_meaningful():
    """Guard against the fuzzer silently testing nothing: a healthy share
    of generated programs must pass verification."""
    import random

    rng = random.Random(0)
    accepted = 0
    total = 200
    for _ in range(total):
        ops = []
        # Seed registers so later reads are initialized.
        for reg in range(5):
            ops.append(("mov_imm", reg, rng.randint(-100, 100)))
        for _ in range(rng.randint(0, 10)):
            kind = rng.choice(["alu", "mov"])
            if kind == "alu":
                ops.append((rng.choice(_ALU_IMM), rng.randint(0, 4),
                            rng.randint(-1000, 1000)))
            else:
                ops.append(("mov_reg", rng.randint(0, 4), rng.randint(0, 4)))
        insns = _build(ops)
        try:
            verify(insns, ProgType.tracepoint_sys_enter())
            accepted += 1
        except VerifierError:
            pass
    assert accepted > total // 2
