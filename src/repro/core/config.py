"""The unified collector/consumer configuration contract.

PRs 2-5 accreted overlapping construction knobs across the collection
stack: ``DeltaCollector(cpus=..., vm_tier=...)``,
``StreamingDeltaCollector(per_cpu_capacity=...)``,
``RequestMetricsMonitor(mode=..., stream_capacity=...)``.
:class:`CollectorConfig` replaces that sprawl with one frozen value object
threaded uniformly through :class:`~repro.ebpf.bcc.BPF`, the collectors,
the monitor, and :class:`~repro.analysis.executor.ExperimentSpec` — so a
consumer stage like the Prometheus exporter (:mod:`repro.export`) is just
another field (``export``), not a special case.

The legacy keywords went through one release as deprecated aliases (with a
:class:`DeprecationWarning`) and are now *removed*: supplying any of them
is a :class:`TypeError`.  The keywords stay in the constructor signatures
so callers migrating across two releases get the targeted migration
message from :func:`resolve_collector_config` rather than a bare
unexpected-keyword error.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass, field, replace as _dc_replace
from typing import Mapping, Optional, Tuple, Union

from ..ebpf.compiled import VM_TIERS
from ..sim.timebase import MSEC

__all__ = [
    "COLLECTOR_MODES",
    "CONTROL_POLICIES",
    "CollectorConfig",
    "ControlConfig",
    "CorrelateConfig",
    "DEFAULT_CONTROL_WINDOW_NS",
    "DEFAULT_CORRELATE_WINDOW_NS",
    "DEFAULT_EXPORT_WINDOW_NS",
    "ExportConfig",
    "resolve_collector_config",
]

#: Collection strategies: in-kernel aggregation via the native twin or the
#: eBPF VM, or per-event perf streaming with userspace aggregation.
COLLECTOR_MODES = ("native", "vm", "stream")

#: Default export window / scrape interval (sim time).
DEFAULT_EXPORT_WINDOW_NS = 100 * MSEC

#: Default cross-layer correlation window (sim time).
DEFAULT_CORRELATE_WINDOW_NS = 50 * MSEC

#: Default closed-loop controller decision window (sim time).
DEFAULT_CONTROL_WINDOW_NS = 50 * MSEC

#: Closed-loop controller policies: off, socket-layer load shedding, or
#: worker-thread scaling.
CONTROL_POLICIES = ("none", "shed", "scale")

#: Prometheus metric-name / label-name grammar (the exporter validates its
#: namespace and static labels against these at construction time).
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


@dataclass(frozen=True)
class ExportConfig:
    """Configuration of the streaming Prometheus export stage.

    Attaching this to a :class:`CollectorConfig` turns the export pipeline
    on: the monitor closes an observation window every ``window_ns`` of sim
    time, feeds it to a :class:`~repro.export.PrometheusExporter`, and
    renders a scrape — so the scrape interval *is* the window length, and
    the EXP-EXPORT benchmark's interval-vs-fidelity-vs-cost tradeoff is a
    single knob.  Frozen, hashable and JSON-serializable, so it can live
    inside an :class:`~repro.analysis.executor.ExperimentSpec` and
    participate in its cache key.
    """

    #: Export window length == scrape interval, in sim nanoseconds.
    window_ns: int = DEFAULT_EXPORT_WINDOW_NS
    #: Metric-name prefix (``<namespace>_deltas_total``, ...).
    namespace: str = "repro"
    #: Attach OpenMetrics exemplars carrying the last window's
    #: ``lost_records``-derived confidence to the delta counter/histogram.
    exemplars: bool = True
    #: Static labels stamped on every exported series, as (name, value)
    #: pairs (kept as a tuple so the config stays hashable).
    labels: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "window_ns", int(self.window_ns))
        if self.window_ns < 1:
            raise ValueError(f"window_ns must be >= 1, got {self.window_ns}")
        if not _METRIC_NAME_RE.match(self.namespace):
            raise ValueError(
                f"namespace {self.namespace!r} is not a valid Prometheus "
                "metric-name prefix"
            )
        labels = tuple((str(k), str(v)) for k, v in self.labels)
        for name, _value in labels:
            if not _LABEL_NAME_RE.match(name) or name.startswith("__"):
                raise ValueError(f"invalid Prometheus label name {name!r}")
        object.__setattr__(self, "labels", labels)

    def replace(self, **changes) -> "ExportConfig":
        """A copy of this config with the given fields changed."""
        return _dc_replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via :meth:`from_dict`)."""
        payload = asdict(self)
        payload["labels"] = [list(pair) for pair in self.labels]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ExportConfig":
        data = dict(payload)
        data["labels"] = tuple(tuple(pair) for pair in data.get("labels", ()))
        return cls(**data)


@dataclass(frozen=True)
class CorrelateConfig:
    """Configuration of the cross-layer blind-spot correlator.

    Attaching this to an :class:`~repro.analysis.executor.ExperimentSpec`
    makes the cell close a :class:`~repro.core.MetricsSnapshot` window
    every ``window_ns`` of sim time and log client-side request outcomes,
    so that after the run :mod:`repro.analysis.correlate` can join the two
    streams and classify each window into the discrepancy taxonomy.  The
    correlation itself is post-hoc — the only in-run cost is one simulated
    window event per ``window_ns`` plus an outcome-log append per request
    event, both outside the probe hot loop.

    Threshold fields are deliberately *relative* where the underlying
    signal is workload-dependent: pattern signals (dispersion knee, slack
    collapse) are judged against the run's own median window, which a
    time-bounded anomaly cannot shift.  Only the confidence floor is
    absolute — a clean collection path never drops records, at any load.

    Frozen, hashable and JSON-serializable, so it participates in the
    spec's cache key.
    """

    #: Correlation window length, in sim nanoseconds.
    window_ns: int = DEFAULT_CORRELATE_WINDOW_NS
    #: Kernel-side signal: a window whose combined (send+recv) collection
    #: confidence falls below this is drop-degraded.
    confidence_floor: float = 0.999
    #: Kernel-side signal: the variance knee.  A window knees when its
    #: send-delta dispersion (``cov2``) sits more than ``knee_multiplier``
    #: robust deviations (median absolute deviation, floored at 10% of the
    #: median) above the run's median window — self-calibrating to each
    #: run's own normal, so moses' chunky baseline and data-caching's tight
    #: one use the same threshold.
    knee_multiplier: float = 8.0
    #: Absolute dispersion floor the knee must also clear (guards against
    #: a near-zero median turning window noise into knees).
    cov2_floor: float = 1.0
    #: Kernel-side signal: mean poll duration below ``1/slack_ratio`` x
    #: the run's median window — the epoll-slack collapse.
    slack_ratio: float = 6.0
    #: Pattern signals need at least this many send deltas in the window
    #: (sparse windows are exactly the instability §IV-B warns about).
    min_events: int = 8
    #: App-side signal: a window with zero completions while at least this
    #: many requests are in flight counts as starvation.
    starve_inflight: int = 4
    #: App-side signal: a completion whose latency exceeds this multiple
    #: of the workload's QoS threshold marks the window as QoS-troubled.
    qos_multiplier: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "window_ns", int(self.window_ns))
        if self.window_ns < 1:
            raise ValueError(f"window_ns must be >= 1, got {self.window_ns}")
        if not 0.0 < self.confidence_floor <= 1.0:
            raise ValueError("confidence_floor must be in (0, 1]")
        if self.knee_multiplier <= 1.0:
            raise ValueError("knee_multiplier must be > 1")
        if self.cov2_floor < 0.0:
            raise ValueError("cov2_floor must be non-negative")
        if self.slack_ratio <= 1.0:
            raise ValueError("slack_ratio must be > 1")
        if self.min_events < 2:
            raise ValueError("min_events must be >= 2")
        if self.starve_inflight < 1:
            raise ValueError("starve_inflight must be >= 1")
        if self.qos_multiplier <= 0.0:
            raise ValueError("qos_multiplier must be positive")

    def replace(self, **changes) -> "CorrelateConfig":
        """A copy of this config with the given fields changed."""
        return _dc_replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CorrelateConfig":
        return cls(**dict(payload))


@dataclass(frozen=True)
class ControlConfig:
    """Configuration of the feedback-free closed-loop QoS controller.

    Attaching this to an :class:`~repro.analysis.executor.ExperimentSpec`
    (with ``policy != "none"``) puts a :class:`~repro.control.QoSController`
    in the cell: the monitor closes a window every ``window_ns`` of sim
    time and the controller reads *only* the windowed eBPF-derived signals
    (RPS_obsv, send-delta dispersion, epoll-poll slack, collection
    confidence) — never the application's or the client's view — and
    actuates below the application: socket-layer admission control
    (``"shed"``) or worker-thread scaling (``"scale"``).

    The first ``calibrate_windows`` eligible windows establish the run's
    own baseline (median + MAD, exactly the correlator's self-calibrating
    robust-z scheme); until then the controller never actuates.  A window
    is *troubled* when any kernel signal fires: confidence below
    ``confidence_floor``, dispersion more than ``knee_multiplier`` robust
    deviations above baseline (and above ``cov2_floor``), or mean poll
    duration collapsed below ``1/slack_ratio`` x baseline.  Hysteresis
    (``trigger_windows`` / ``clear_windows``) plus a ``cooldown_windows``
    refractory period between actuations keep the loop from flapping.

    Frozen, hashable and JSON-serializable; participates in the spec's
    cache key like :class:`CorrelateConfig`.
    """

    #: Actuation policy: ``"none"``, ``"shed"`` or ``"scale"``.
    policy: str = "none"
    #: Decision window length, in sim nanoseconds.
    window_ns: int = DEFAULT_CONTROL_WINDOW_NS
    #: Eligible windows used to establish the baseline before any
    #: actuation is allowed.
    calibrate_windows: int = 6
    #: Kernel signal: combined collection confidence below this.
    confidence_floor: float = 0.999
    #: Kernel signal: send-delta dispersion knee, in robust deviations
    #: above the calibration median (MAD floored at 10% of the median).
    knee_multiplier: float = 8.0
    #: Absolute dispersion floor the knee must also clear.
    cov2_floor: float = 1.0
    #: Kernel signal: mean poll duration below ``1/slack_ratio`` x the
    #: calibration baseline — the epoll-slack collapse.
    slack_ratio: float = 6.0
    #: Kernel signal: windowed RPS_obsv below ``1/rps_drop_ratio`` x the
    #: calibration baseline — the service went quiet while the window
    #: clock kept ticking (stall, crash, capacity loss).  Deliberately not
    #: gated on ``min_events``: silence *is* the signal.
    rps_drop_ratio: float = 2.0
    #: Pattern signals need at least this many send deltas in the window.
    min_events: int = 8
    #: Consecutive troubled windows before the controller engages.
    trigger_windows: int = 2
    #: Consecutive healthy windows before an engaged controller releases.
    clear_windows: int = 3
    #: Refractory windows after any engage/release before the next action.
    cooldown_windows: int = 2
    #: Fraction of inbound requests rejected while shedding is engaged
    #: (deterministic error-accumulator, no RNG).
    shed_fraction: float = 0.5
    #: Dead worker threads revived per ``"scale"`` engagement (0 = all).
    scale_step: int = 0
    #: Simulated size (bytes) of the rejection response message.
    reject_size: int = 32

    def __post_init__(self) -> None:
        if self.policy not in CONTROL_POLICIES:
            raise ValueError(
                f"policy must be one of {CONTROL_POLICIES}, got {self.policy!r}"
            )
        for name in ("window_ns", "calibrate_windows", "min_events",
                     "trigger_windows", "clear_windows", "cooldown_windows",
                     "scale_step", "reject_size"):
            object.__setattr__(self, name, int(getattr(self, name)))
        if self.window_ns < 1:
            raise ValueError(f"window_ns must be >= 1, got {self.window_ns}")
        if self.calibrate_windows < 3:
            raise ValueError("calibrate_windows must be >= 3")
        if not 0.0 < self.confidence_floor <= 1.0:
            raise ValueError("confidence_floor must be in (0, 1]")
        if self.knee_multiplier <= 1.0:
            raise ValueError("knee_multiplier must be > 1")
        if self.cov2_floor < 0.0:
            raise ValueError("cov2_floor must be non-negative")
        if self.slack_ratio <= 1.0:
            raise ValueError("slack_ratio must be > 1")
        if self.rps_drop_ratio <= 1.0:
            raise ValueError("rps_drop_ratio must be > 1")
        if self.min_events < 2:
            raise ValueError("min_events must be >= 2")
        if self.trigger_windows < 1:
            raise ValueError("trigger_windows must be >= 1")
        if self.clear_windows < 1:
            raise ValueError("clear_windows must be >= 1")
        if self.cooldown_windows < 0:
            raise ValueError("cooldown_windows must be >= 0")
        if not 0.0 < self.shed_fraction <= 1.0:
            raise ValueError("shed_fraction must be in (0, 1]")
        if self.scale_step < 0:
            raise ValueError("scale_step must be >= 0")
        if self.reject_size < 1:
            raise ValueError("reject_size must be >= 1")

    def replace(self, **changes) -> "ControlConfig":
        """A copy of this config with the given fields changed."""
        return _dc_replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ControlConfig":
        return cls(**dict(payload))


@dataclass(frozen=True)
class CollectorConfig:
    """Every knob that shapes how one process is observed, in one place.

    The same object configures the whole stack: the monitor picks its
    collector classes from ``mode``, the collectors shard state over
    ``cpus`` and pin their VM ``vm_tier``, the streaming collector sizes
    its perf rings from ``capacity``, :class:`~repro.ebpf.bcc.BPF` reads
    ``charge_cost``/``vm_tier`` defaults from it, and a non-``None``
    ``export`` bolts the Prometheus consumer stage on.  Collectors that
    have no use for a field simply ignore it (a duration collector has no
    per-CPU shards), which is what lets one config describe the full
    pipeline.
    """

    #: Collection strategy: ``"native"``, ``"vm"`` or ``"stream"``.
    mode: str = "native"
    #: eBPF VM tier (``None`` = the default, highest tier).
    vm_tier: Optional[str] = None
    #: Simulated CPUs the collection state / perf rings are sharded over.
    cpus: int = 1
    #: Per-CPU perf ring capacity, in records (stream mode).
    capacity: int = 65536
    #: Charge probe execution cost to the traced syscalls.
    charge_cost: bool = False
    #: Streaming Prometheus export stage (``None`` = off).
    export: Optional[ExportConfig] = field(default=None)

    def __post_init__(self) -> None:
        if self.mode not in COLLECTOR_MODES:
            raise ValueError(
                f"mode must be one of {COLLECTOR_MODES}, got {self.mode!r}"
            )
        if self.vm_tier is not None and self.vm_tier not in VM_TIERS:
            raise ValueError(
                f"vm_tier must be one of {VM_TIERS} (or None), got {self.vm_tier!r}"
            )
        if self.cpus < 1:
            raise ValueError(f"cpus must be >= 1, got {self.cpus}")
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if isinstance(self.export, Mapping):
            object.__setattr__(self, "export", ExportConfig.from_dict(self.export))

    def replace(self, **changes) -> "CollectorConfig":
        """A copy of this config with the given fields changed."""
        return _dc_replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-compatible representation (round-trips via :meth:`from_dict`)."""
        return {
            "mode": self.mode,
            "vm_tier": self.vm_tier,
            "cpus": self.cpus,
            "capacity": self.capacity,
            "charge_cost": self.charge_cost,
            "export": self.export.to_dict() if self.export else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CollectorConfig":
        data = dict(payload)
        export = data.get("export")
        if export is not None and not isinstance(export, ExportConfig):
            data["export"] = ExportConfig.from_dict(export)
        return cls(**data)


#: Legacy keyword -> CollectorConfig field (where the names drifted apart).
_FIELD_ALIASES = {
    "per_cpu_capacity": "capacity",
    "stream_capacity": "capacity",
}


def resolve_collector_config(
    config: Union[None, str, CollectorConfig],
    where: str,
    **legacy,
) -> CollectorConfig:
    """Resolve a constructor's ``config`` argument against legacy kwargs.

    ``config`` may be a :class:`CollectorConfig`, a bare mode string (the
    positional shorthand: ``DeltaCollector(kernel, tgid, nrs, "vm")``), or
    ``None``.  ``legacy`` carries the *removed* per-knob keywords with
    ``None`` meaning "not supplied"; supplying any of them — alone or
    mixed with an explicit ``config`` — is a :class:`TypeError` carrying
    the migration hint (they were deprecated aliases for one release).
    """
    supplied = {k: v for k, v in legacy.items() if v is not None}
    if supplied:
        hints = ", ".join(
            f"{_FIELD_ALIASES.get(k, k)}=..." for k in sorted(supplied)
        )
        raise TypeError(
            f"{where}: the keyword(s) {', '.join(sorted(supplied))} were "
            f"removed after their deprecation cycle; pass "
            f"config=CollectorConfig({hints}) instead"
        )
    if config is not None:
        if isinstance(config, str):
            return CollectorConfig(mode=config)
        if not isinstance(config, CollectorConfig):
            raise TypeError(
                f"{where}: config must be a CollectorConfig or a mode "
                f"string, got {type(config).__name__}"
            )
        return config
    return CollectorConfig()
