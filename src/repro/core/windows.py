"""Trace windowing.

§IV-B: Eq. 1 "is particularly effective over extended periods (at least
2048 syscalls) where request distribution stabilizes".  These helpers slice
timestamp traces into fixed-count windows and produce the per-window
estimates the figures plot (ten estimations per load level in Fig. 2).
"""

from __future__ import annotations

from typing import List, Sequence

from ..sim.timebase import SEC
from .deltas import DeltaStats

__all__ = ["RECOMMENDED_WINDOW_EVENTS", "chunk_by_count", "window_estimates"]

#: The paper's stability guidance: at least this many syscalls per window.
RECOMMENDED_WINDOW_EVENTS = 2048


def chunk_by_count(timestamps: Sequence[int], events_per_window: int) -> List[Sequence[int]]:
    """Split a sorted trace into consecutive windows of N events.

    The trailing partial window is dropped (a short window is exactly the
    unstable case §IV-B warns about).
    """
    if events_per_window < 2:
        raise ValueError("a window needs at least 2 events to contain a delta")
    full = len(timestamps) // events_per_window
    return [
        timestamps[i * events_per_window : (i + 1) * events_per_window] for i in range(full)
    ]


def window_estimates(timestamps: Sequence[int], windows: int) -> List[float]:
    """Split a trace into ``windows`` equal-count windows and return the
    per-window ``RPS_obsv`` estimates (Fig. 2's green dots)."""
    if windows < 1:
        raise ValueError("need at least one window")
    events_per_window = len(timestamps) // windows
    if events_per_window < 2:
        return []
    estimates = []
    for window in chunk_by_count(timestamps, events_per_window):
        stats = DeltaStats.from_timestamps(window)
        estimates.append(stats.rps_obsv())
    return estimates
