"""run_level must be monitor-mode-invariant: with cost charging off, the
interpreted-eBPF and native collectors are pure observers, so every single
result field — ground truth and observations alike — must match exactly."""

import pytest

from repro.analysis import ExperimentSpec, run_level
from repro.workloads import get_workload


@pytest.mark.parametrize("key", ["data-caching", "xapian", "triton-grpc"])
def test_run_level_identical_across_monitor_modes(key):
    definition = get_workload(key)
    spec = ExperimentSpec(workload=key,
                          offered_rps=definition.paper_fail_rps * 0.6,
                          requests=400)
    native = run_level(spec.replace(monitor_mode="native"))
    vm = run_level(spec.replace(monitor_mode="vm"))
    assert native.to_dict() == vm.to_dict()


def test_charge_cost_breaks_equivalence_as_expected():
    """With cost charging ON the vm mode perturbs syscall timing — that is
    the whole overhead experiment, so the results must differ."""
    definition = get_workload("data-caching")
    spec = ExperimentSpec(workload="data-caching",
                          offered_rps=definition.paper_fail_rps * 0.6,
                          requests=400, monitor_mode="vm")
    free = run_level(spec.replace(charge_cost=False))
    charged = run_level(spec.replace(charge_cost=True))
    assert charged.sim_duration_ns != free.sim_duration_ns
