"""Stream sockets over netem channels.

A connection is a pair of :class:`SocketEndpoint` objects joined by two
:class:`~repro.net.channel.Channel` instances (one per direction).  Each
endpoint buffers delivered messages in an unbounded receive queue; delivery
notifies readiness watchers so blocked ``epoll_wait``/``recv`` calls wake.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..net.channel import Channel
from ..net.netem import NetemConfig
from ..net.packet import Message
from ..sim.engine import Environment
from ..sim.rng import SeedSequence
from .objects import FileDescriptor

__all__ = ["SocketEndpoint", "ListenSocket", "connect_pair"]


class SocketEndpoint(FileDescriptor):
    """One end of an established stream connection."""

    #: Optional admission gate consulted before a delivered message is
    #: queued (closed-loop load shedding, :mod:`repro.control`).  ``None``
    #: on the class so the plain data path pays a single attribute check.
    admission = None

    def __init__(self, env: Environment, name: str = "sock") -> None:
        super().__init__(name=name)
        self.env = env
        self.rx: Deque[Message] = deque()
        self._tx: Optional[Channel] = None
        self.peer: Optional["SocketEndpoint"] = None
        #: Diagnostics.
        self.rx_messages = 0
        self.tx_messages = 0

    # -- wiring ------------------------------------------------------------
    def attach_tx(self, channel: Channel) -> None:
        self._tx = channel

    # -- data path ---------------------------------------------------------
    @property
    def readable(self) -> bool:
        return bool(self.rx)

    def deliver(self, message: Message) -> None:
        """Called by the inbound channel when a message arrives.

        When an admission gate is installed on this endpoint (server-side
        sockets under a ``"shed"`` controller), the gate may consume the
        message *below* the application — the rejected request never
        reaches the receive queue; the gate answers it on the wire.  Both
        sim tiers funnel every inbound message through here, so the gate
        behaves identically under the reference and compiled workload
        loops.
        """
        if self.closed:
            return
        if self.admission is not None and not self.admission.admit(self, message):
            return
        self.rx.append(message)
        self.rx_messages += 1
        self._notify()

    def send(self, message: Message) -> int:
        """Hand a message to the outbound channel; returns bytes sent."""
        if self.closed:
            raise OSError(f"send on closed socket {self.name}")
        if self._tx is None:
            raise RuntimeError(f"socket {self.name} is not connected")
        self._tx.send(message)
        self.tx_messages += 1
        return message.size

    def pop(self) -> Message:
        """Dequeue the oldest received message (caller checked readable)."""
        return self.rx.popleft()

    def wait_readable(self):
        """Event that fires when the socket has (or receives) data."""
        event = self.env.event()
        if self.rx:
            event.succeed(self)
            return event

        def waker(fd, _event=event):
            if not _event.triggered:
                _event.succeed(fd)
            self.remove_watcher(waker)

        self.add_watcher(waker)
        return event


class ListenSocket(FileDescriptor):
    """A listening socket: readiness means a pending connection to accept."""

    def __init__(self, env: Environment, name: str = "listen") -> None:
        super().__init__(name=name)
        self.env = env
        self.pending: Deque[SocketEndpoint] = deque()
        self.accepted = 0

    @property
    def readable(self) -> bool:
        return bool(self.pending)

    def enqueue(self, server_side: SocketEndpoint) -> None:
        self.pending.append(server_side)
        self._notify()

    def pop(self) -> SocketEndpoint:
        self.accepted += 1
        return self.pending.popleft()


def connect_pair(
    env: Environment,
    seeds: SeedSequence,
    name: str,
    client_to_server: NetemConfig,
    server_to_client: NetemConfig,
    listener: Optional[ListenSocket] = None,
) -> Tuple[SocketEndpoint, SocketEndpoint]:
    """Create a connected (client, server) socket pair.

    Each direction gets its own netem path and RNG stream.  If ``listener``
    is given, the server side lands in its accept queue instead of being
    returned ready-made (the accepting thread still sees the same object).
    """
    client = SocketEndpoint(env, name=f"{name}:client")
    server = SocketEndpoint(env, name=f"{name}:server")
    client.peer, server.peer = server, client

    c2s = Channel(env, client_to_server, seeds.stream(f"{name}:c2s"), name=f"{name}:c2s")
    s2c = Channel(env, server_to_client, seeds.stream(f"{name}:s2c"), name=f"{name}:s2c")
    c2s.connect(server.deliver)
    s2c.connect(client.deliver)
    client.attach_tx(c2s)
    server.attach_tx(s2c)

    if listener is not None:
        listener.enqueue(server)
    return client, server
