"""Tests for the fault-injection subsystem (collection + server faults)."""

import pytest

from repro.analysis.executor import ExperimentSpec, execute_cell
from repro.core import CollectorConfig, StreamingDeltaCollector
from repro.faults import (
    ConnectionReset,
    ConsumerSchedule,
    FaultOrchestrator,
    SlowConsumer,
    WorkerCrash,
    WorkerStall,
    run_faulted_cell,
)
from repro.kernel import CPU, Kernel, MachineSpec, Sys
from repro.net import Message, NetemConfig
from repro.sim import MSEC, Environment, SeedSequence


def _kernel():
    spec = MachineSpec(name="t", cores=4, ctx_switch_ns=0, syscall_overhead_ns=0)
    return Kernel(Environment(), spec, SeedSequence(1), interference=False)


def _echo_server(kernel, sends=8, period_ms=2):
    env = kernel.env
    proc = kernel.create_process("srv")
    client, server = kernel.open_connection()

    def worker(task):
        ep = yield from task.sys_epoll_create1()
        yield from task.sys_epoll_ctl(ep, server)
        for _ in range(sends):
            yield from task.sys_epoll_wait(ep)
            msg = yield from task.sys_read(server)
            yield from task.sys_sendmsg(server, Message(size=msg.size))

    proc.spawn_thread(worker)

    def driver():
        for _ in range(sends):
            yield env.timeout(period_ms * MSEC)
            client.send(Message(size=64))

    env.process(driver())
    return proc


class TestConsumerSchedule:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConsumerSchedule(drain_interval_ns=0)
        with pytest.raises(ValueError):
            ConsumerSchedule(pause_every_ns=-1)
        with pytest.raises(ValueError):
            ConsumerSchedule(pause_every_ns=5 * MSEC)  # pause_for missing
        ConsumerSchedule(pause_every_ns=5 * MSEC, pause_for_ns=1 * MSEC)


class TestSlowConsumer:
    def test_fast_consumer_prevents_drops(self):
        kernel = _kernel()
        proc = _echo_server(kernel, sends=10, period_ms=1)
        collector = StreamingDeltaCollector(
            kernel, proc.pid, [Sys.SENDMSG], CollectorConfig(capacity=4)
        ).attach()
        consumer = SlowConsumer(
            kernel.env, [collector], ConsumerSchedule(drain_interval_ns=2 * MSEC)
        ).start()
        kernel.env.run(until=30 * MSEC)
        assert collector.lost_records == 0
        assert collector.snapshot().events == 10
        assert consumer.drains > 0

    def test_paused_consumer_drives_drops(self):
        kernel = _kernel()
        proc = _echo_server(kernel, sends=20, period_ms=1)
        collector = StreamingDeltaCollector(
            kernel, proc.pid, [Sys.SENDMSG], CollectorConfig(capacity=4)
        ).attach()
        # Pause for 10 ms every 5 ms: the 4-record buffer overflows during
        # each outage.
        consumer = SlowConsumer(
            kernel.env,
            [collector],
            ConsumerSchedule(drain_interval_ns=1 * MSEC,
                             pause_every_ns=5 * MSEC, pause_for_ns=10 * MSEC),
        ).start()
        kernel.env.run(until=40 * MSEC)
        assert consumer.pauses >= 1
        assert collector.lost_records > 0
        assert collector.snapshot().events + collector.lost_records == 20

    def test_double_start_rejected(self):
        kernel = _kernel()
        consumer = SlowConsumer(kernel.env, [], ConsumerSchedule()).start()
        with pytest.raises(RuntimeError):
            consumer.start()


class TestInjectStall:
    def test_stall_delays_execution(self):
        env = Environment()
        cpu = CPU(env, MachineSpec(name="t", cores=1, ctx_switch_ns=0))
        cpu.inject_stall(5 * MSEC)

        def job():
            yield from cpu.execute(1 * MSEC)
            return env.now

        p = env.process(job())
        assert env.run(until=p) == 6 * MSEC

    def test_overlapping_stalls_extend_not_stack(self):
        env = Environment()
        cpu = CPU(env, MachineSpec(name="t", cores=1, ctx_switch_ns=0))
        cpu.inject_stall(5 * MSEC)
        cpu.inject_stall(3 * MSEC)  # already covered by the first

        def job():
            yield from cpu.execute(1 * MSEC)
            return env.now

        p = env.process(job())
        assert env.run(until=p) == 6 * MSEC

    def test_expired_stall_costs_nothing(self):
        env = Environment()
        cpu = CPU(env, MachineSpec(name="t", cores=1, ctx_switch_ns=0))
        cpu.inject_stall(2 * MSEC)

        def job():
            yield env.timeout(10 * MSEC)  # stall window long gone
            yield from cpu.execute(1 * MSEC)
            return env.now

        p = env.process(job())
        assert env.run(until=p) == 11 * MSEC

    def test_validation(self):
        env = Environment()
        cpu = CPU(env, MachineSpec(name="t", cores=1))
        with pytest.raises(ValueError):
            cpu.inject_stall(0)


class TestKillRespawn:
    def test_kill_waiting_worker_and_respawn(self):
        kernel = _kernel()
        env = kernel.env
        proc = kernel.create_process("srv")
        client, server = kernel.open_connection()
        served = []

        def worker(task):
            while True:
                msg = yield from task.sys_read(server)
                served.append(msg.tag)
                yield from task.sys_sendmsg(server, Message(size=8, tag=msg.tag))

        task = proc.spawn_thread(worker, name="srv/w0")

        def script():
            client.send(Message(size=8, tag=1))
            yield env.timeout(1 * MSEC)
            assert proc.kill_thread(task)
            # While dead, requests pile up unanswered.
            client.send(Message(size=8, tag=2))
            yield env.timeout(1 * MSEC)
            proc.respawn_thread(task)
            yield env.timeout(1 * MSEC)

        p = env.process(script())
        env.run(until=p)
        assert served == [1, 2]  # tag 2 served by the replacement
        assert not task.sim_process.is_alive

    def test_kill_dead_task_returns_false(self):
        kernel = _kernel()
        proc = _echo_server(kernel, sends=1, period_ms=1)
        kernel.env.run()
        task = proc.tasks[0]
        assert not proc.kill_thread(task)

    def test_kill_releases_queued_core_claim(self):
        env = Environment()
        kernel = Kernel(env, MachineSpec(name="t", cores=1, ctx_switch_ns=0),
                        SeedSequence(1), interference=False)
        proc = kernel.create_process("p")

        def hog(task):
            yield from task.compute(10 * MSEC)

        def victim(task):
            yield from task.compute(10 * MSEC)

        proc.spawn_thread(hog, name="p/hog")
        victim_task = proc.spawn_thread(victim, name="p/victim")

        def script():
            yield env.timeout(1 * MSEC)  # victim is queued behind the hog
            assert kernel.cpu.run_queue_len == 1
            assert proc.kill_thread(victim_task)
            assert kernel.cpu.run_queue_len == 0
            yield env.timeout(1 * MSEC)

        p = env.process(script())
        env.run(until=p)
        env.run()  # the hog finishes; engine must not crash on the corpse

    def test_respawn_requires_body(self):
        kernel = _kernel()
        proc = kernel.create_process("p")
        task = proc.adopt_thread()
        with pytest.raises(ValueError):
            proc.respawn_thread(task)


def _spec(**overrides):
    defaults = dict(workload="data-caching", offered_rps=2000, requests=300)
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestFaultedCells:
    def test_stall_inflates_tail_latency(self):
        baseline = execute_cell(_spec())
        stalled, report = run_faulted_cell(
            _spec(), faults=[WorkerStall(at_ns=50 * MSEC, duration_ns=40 * MSEC)]
        )
        assert report.stalls == 1
        assert stalled.p99_ns > 5 * baseline.p99_ns
        assert stalled.completed == 300

    def test_crash_with_restart_recovers(self):
        result, report = run_faulted_cell(
            _spec(),
            faults=[WorkerCrash(at_ns=50 * MSEC, restart_after_ns=20 * MSEC)],
            retry_timeout_ns=500 * MSEC,
        )
        assert report.killed == 1 and report.respawned == 1
        assert result.completed == 300

    def test_connection_reset_run_still_finishes(self):
        netem = NetemConfig(delay_ns=5 * MSEC)
        result, report = run_faulted_cell(
            _spec(client_to_server=netem, server_to_client=netem),
            faults=[ConnectionReset(at_ns=60 * MSEC, connections=4)],
            retry_timeout_ns=300 * MSEC,
        )
        assert report.resets == 4
        # Every request is either answered or explicitly abandoned — the
        # cell terminates instead of hanging on swallowed requests.
        assert result.completed == 300

    def test_degraded_consumer_reports_low_confidence(self):
        spec = _spec(monitor_mode="stream", stream_capacity=64)
        result, _report = run_faulted_cell(
            spec,
            consumer=ConsumerSchedule(drain_interval_ns=5 * MSEC,
                                      pause_every_ns=40 * MSEC,
                                      pause_for_ns=30 * MSEC),
        )
        baseline = execute_cell(_spec())
        assert result.lost_records > 0
        assert result.confidence < 1.0
        # The raw rate visibly under-reports; the drop-aware correction
        # recovers the native collector's answer.
        assert result.rps_obsv < 0.97 * baseline.rps_obsv
        assert result.rps_obsv_corrected == pytest.approx(baseline.rps_obsv, rel=0.02)

    def test_orchestrator_rejects_double_start(self):
        env = Environment()
        orch = FaultOrchestrator(env, None, None, [])
        orch.start()
        with pytest.raises(RuntimeError):
            orch.start()


class TestFaultValidation:
    def test_worker_stall(self):
        with pytest.raises(ValueError):
            WorkerStall(at_ns=-1, duration_ns=1)
        with pytest.raises(ValueError):
            WorkerStall(at_ns=0, duration_ns=0)

    def test_worker_crash(self):
        with pytest.raises(ValueError):
            WorkerCrash(at_ns=0, count=0)

    def test_connection_reset(self):
        with pytest.raises(ValueError):
            ConnectionReset(at_ns=0, connections=0)
