"""Tests for sockets, fd tables, epoll and select semantics."""

import pytest

from repro.kernel import (
    EpollInstance,
    FdTable,
    ListenSocket,
    SocketEndpoint,
    connect_pair,
    wait_for_readable,
)
from repro.net import Message, NetemConfig
from repro.sim import MSEC, Environment, SeedSequence


@pytest.fixture
def env():
    return Environment()


def _pair(env, seed=1, c2s=None, s2c=None, listener=None):
    return connect_pair(
        env,
        SeedSequence(seed),
        "test",
        c2s or NetemConfig.ideal(),
        s2c or NetemConfig.ideal(),
        listener=listener,
    )


class TestFdTable:
    def test_numbers_start_at_three(self, env):
        table = FdTable()
        sock = SocketEndpoint(env)
        assert table.install(sock) == 3
        assert table.install(SocketEndpoint(env)) == 4

    def test_lookup_and_contains(self, env):
        table = FdTable()
        sock = SocketEndpoint(env)
        number = table.install(sock)
        assert table.lookup(number) is sock
        assert number in table
        assert table.number_of(sock) == number

    def test_lookup_bad_fd(self):
        with pytest.raises(KeyError, match="bad file descriptor"):
            FdTable().lookup(99)

    def test_remove(self, env):
        table = FdTable()
        number = table.install(SocketEndpoint(env))
        table.remove(number)
        assert number not in table
        assert len(table) == 0


class TestSockets:
    def test_message_flows_between_peers(self, env):
        client, server = _pair(env)
        client.send(Message(payload="ping", size=10))
        env.run()
        assert server.readable
        msg = server.pop()
        assert msg.payload == "ping"
        assert not server.readable

    def test_bidirectional(self, env):
        client, server = _pair(env)
        client.send(Message(payload="req"))
        env.run()
        server.pop()
        server.send(Message(payload="resp"))
        env.run()
        assert client.pop().payload == "resp"

    def test_netem_applies_per_direction(self, env):
        client, server = _pair(env, c2s=NetemConfig(delay_ns=5 * MSEC))
        client.send(Message())
        env.run()
        assert server.rx[0].delivered_at == 5 * MSEC

    def test_send_on_closed_socket_raises(self, env):
        client, _server = _pair(env)
        client.close()
        with pytest.raises(OSError):
            client.send(Message())

    def test_deliver_to_closed_socket_dropped(self, env):
        client, server = _pair(env)
        server.close()
        client.send(Message())
        env.run()
        assert not server.rx

    def test_unconnected_send_raises(self, env):
        sock = SocketEndpoint(env)
        with pytest.raises(RuntimeError):
            sock.send(Message())

    def test_wait_readable_immediate_when_data_present(self, env):
        client, server = _pair(env)
        client.send(Message())
        env.run()
        event = server.wait_readable()
        assert event.triggered

    def test_wait_readable_wakes_on_delivery(self, env):
        client, server = _pair(env, c2s=NetemConfig(delay_ns=2 * MSEC))
        woke = []

        def waiter():
            yield server.wait_readable()
            woke.append(env.now)

        env.process(waiter())
        client.send(Message())
        env.run()
        assert woke == [2 * MSEC]

    def test_counters(self, env):
        client, server = _pair(env)
        for _ in range(3):
            client.send(Message())
        env.run()
        assert client.tx_messages == 3
        assert server.rx_messages == 3


class TestListener:
    def test_connect_lands_in_accept_queue(self, env):
        listener = ListenSocket(env)
        _client, server = _pair(env, listener=listener)
        assert listener.readable
        assert listener.pop() is server
        assert not listener.readable
        assert listener.accepted == 1


class TestWaitForReadable:
    def test_immediate_when_ready(self, env):
        client, server = _pair(env)
        client.send(Message())
        env.run()

        def waiter():
            ready = yield from wait_for_readable(env, [server])
            return (env.now, ready)

        p = env.process(waiter())
        when, ready = env.run(until=p)
        assert ready == [server]

    def test_blocks_then_wakes(self, env):
        client, server = _pair(env, c2s=NetemConfig(delay_ns=3 * MSEC))

        def waiter():
            ready = yield from wait_for_readable(env, [server])
            return (env.now, ready)

        p = env.process(waiter())
        client.send(Message())
        when, ready = env.run(until=p)
        assert when == 3 * MSEC
        assert ready == [server]

    def test_timeout_returns_empty(self, env):
        server = SocketEndpoint(env)

        def waiter():
            ready = yield from wait_for_readable(env, [server], timeout_ns=1 * MSEC)
            return (env.now, ready)

        p = env.process(waiter())
        when, ready = env.run(until=p)
        assert when == 1 * MSEC
        assert ready == []

    def test_zero_timeout_is_nonblocking(self, env):
        server = SocketEndpoint(env)

        def waiter():
            ready = yield from wait_for_readable(env, [server], timeout_ns=0)
            return (env.now, ready)

        p = env.process(waiter())
        when, ready = env.run(until=p)
        assert when == 0
        assert ready == []

    def test_watchers_cleaned_up(self, env):
        client, server = _pair(env)

        def waiter():
            yield from wait_for_readable(env, [server])

        p = env.process(waiter())
        client.send(Message())
        env.run(until=p)
        assert not server._watchers


class TestEpoll:
    def test_register_unregister(self, env):
        ep = EpollInstance(env)
        sock = SocketEndpoint(env)
        ep.register(sock)
        assert sock in ep.interest
        ep.unregister(sock)
        assert sock not in ep.interest

    def test_double_register_eexist(self, env):
        ep = EpollInstance(env)
        sock = SocketEndpoint(env)
        ep.register(sock)
        with pytest.raises(ValueError, match="EEXIST"):
            ep.register(sock)

    def test_unregister_missing_enoent(self, env):
        ep = EpollInstance(env)
        with pytest.raises(ValueError, match="ENOENT"):
            ep.unregister(SocketEndpoint(env))

    def test_wait_returns_all_ready_fds(self, env):
        ep = EpollInstance(env)
        pairs = [_pair(env, seed=i) for i in range(3)]
        for _client, server in pairs:
            ep.register(server)
        pairs[0][0].send(Message())
        pairs[2][0].send(Message())
        env.run()

        def waiter():
            ready = yield from ep.wait()
            return ready

        p = env.process(waiter())
        ready = env.run(until=p)
        assert set(ready) == {pairs[0][1], pairs[2][1]}

    def test_level_triggered(self, env):
        """Un-consumed data keeps the fd ready on the next wait."""
        ep = EpollInstance(env)
        client, server = _pair(env)
        ep.register(server)
        client.send(Message())
        env.run()

        def waiter():
            first = yield from ep.wait()
            second = yield from ep.wait()
            return first, second

        p = env.process(waiter())
        first, second = env.run(until=p)
        assert first == [server] and second == [server]
