"""Text renderers for the paper's tables (Table I and Table II)."""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..kernel.machine import MachineSpec
from ..sim.timebase import USEC

__all__ = ["render_table1", "render_table2"]


def render_table1(machines: Sequence[MachineSpec]) -> str:
    """Table I analogue: the simulated platform profiles."""
    rows = [
        ("Profile", lambda m: m.name),
        ("Schedulable CPUs", lambda m: str(m.cores)),
        ("Scheduler quantum", lambda m: f"{m.quantum_ns / 1e6:g} ms"),
        ("Context switch", lambda m: f"{m.ctx_switch_ns / USEC:g} us"),
        ("Syscall overhead", lambda m: f"{m.syscall_overhead_ns} ns"),
        ("Convoy stall mean", lambda m: f"{m.interference.stall_mean_ns / 1e6:g} ms"),
        ("Convoy duty cap", lambda m: f"{m.interference.duty_cycle:.0%}"),
    ]
    label_width = max(len(label) for label, _ in rows)
    col_width = max(max(len(fn(m)) for _, fn in rows) for m in machines) + 2
    lines = ["TABLE I — SIMULATED SYSTEM SPECIFICATION"]
    header = " " * label_width + "".join(m.name.upper().rjust(col_width) for m in machines)
    lines.append(header)
    lines.append("-" * len(header))
    for label, fn in rows:
        lines.append(label.ljust(label_width) + "".join(fn(m).rjust(col_width) for m in machines))
    return "\n".join(lines)


def render_table2(
    r2_by_workload: Dict[str, Tuple[float, float]],
    config_labels: Tuple[str, str] = ("0ms delay / 0% loss", "10ms delay / 1% loss"),
    paper_values: Dict[str, Tuple[float, float]] = None,
) -> str:
    """Table II analogue: R² of RPS_obsv under the two netem configs.

    ``r2_by_workload`` maps workload label to (ideal R², impaired R²);
    ``paper_values`` (optional) adds the paper's columns for comparison.
    """
    lines = ["TABLE II — EFFECT OF THE NETWORK ON APPROXIMATED RPS (R^2)"]
    header = f"{'Workload':<24}{config_labels[0]:>22}{config_labels[1]:>22}"
    if paper_values:
        header += f"{'paper(0/0)':>12}{'paper(10/1)':>12}"
    lines.append(header)
    lines.append("-" * len(header))
    for workload, (ideal, impaired) in r2_by_workload.items():
        line = f"{workload:<24}{ideal:>22.4f}{impaired:>22.4f}"
        if paper_values and workload in paper_values:
            p_ideal, p_impaired = paper_values[workload]
            line += f"{p_ideal:>12.4f}{p_impaired:>12.4f}"
        lines.append(line)
    return "\n".join(lines)
