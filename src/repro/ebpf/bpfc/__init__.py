"""bpfc — a miniature BCC: restricted-C → verified eBPF.

The paper presents its collector as C source (Listing 1) compiled through
BCC.  This package closes that last fidelity gap: it compiles a restricted
C dialect — the subset BCC-style tracepoint programs actually use — down to
this substrate's eBPF bytecode, which then passes the verifier and runs in
the VM like any hand-assembled program.

Supported surface (see ``docs/ebpf-substrate.md``):

* ``BPF_HASH(name[, ktype[, vtype[, size]]]);`` / ``BPF_ARRAY(name, vtype, size);``
* ``TRACEPOINT_PROBE(raw_syscalls, sys_enter|sys_exit) { ... }``
* ``u32/u64/int/long`` scalars, ``u64 *`` map-value pointers
* expressions: integer arithmetic/bitwise/shifts, comparisons, ``&&``/``||``
  (short-circuit), ``!``/``-``/``~``, ``*ptr``, ``args->id``, ``args->ret``,
  ``args->args[i]``
* statements: declarations, assignment (incl. ``+=`` family, ``++``/``--``),
  ``if``/``else``, ``return`` (loops are *not* supported — the verifier
  would reject them anyway)
* builtins: ``bpf_get_current_pid_tgid()``, ``bpf_ktime_get_ns()``,
  ``bpf_get_prandom_u32()``, ``bpf_get_smp_processor_id()``
* map methods: ``.lookup(&key)``, ``.update(&key, &val)``,
  ``.delete(&key)``, ``.increment(key)``

Usage::

    from repro.ebpf.bpfc import load_c

    bpf = load_c(kernel, LISTING_1_SOURCE, constants={"PID_TGID": task.pid_tgid})
    # programs are compiled, verified, and attached to their tracepoints

Free identifiers can be bound through ``constants`` — the stand-in for
BCC's preprocessor-macro substitution (the paper's ``PID_TGID``).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..bcc import BPF
from .codegen import CompiledUnit, compile_unit
from .lexer import CompileError
from .parser import parse

__all__ = ["compile_source", "load_c", "CompileError", "CompiledUnit"]


def compile_source(source: str,
                   constants: Optional[Dict[str, int]] = None) -> CompiledUnit:
    """Compile BPF-C source to maps + verified-ready programs."""
    return compile_unit(parse(source), constants)


def load_c(kernel, source: str, constants: Optional[Dict[str, int]] = None,
           charge_cost: bool = False, attach: bool = True) -> BPF:
    """Compile, load (verify) and attach all probes in ``source``.

    Returns the :class:`~repro.ebpf.bcc.BPF` object; maps are reachable via
    ``bpf["map_name"]`` exactly as with hand-built programs.
    """
    unit = compile_source(source, constants)
    bpf = BPF(kernel, maps=unit.maps, programs=unit.programs,
              charge_cost=charge_cost)
    if attach:
        for program_name, tracepoint in unit.attach_points.items():
            bpf.attach_tracepoint(tracepoint, program_name)
    return bpf
