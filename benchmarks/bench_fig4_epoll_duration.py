"""EXP-F4 — Figure 4: mean poll-syscall duration (idleness) vs load.

Paper's claims:
* epoll/select duration *decreases* as RPS approaches saturation;
* it stabilizes (flattens near zero) at saturation;
* Web Search shows *increased* idleness post-saturation (queue contention
  and backpressure), together with declining achieved RPS.
"""

from __future__ import annotations

from conftest import bench_scale, emit, sweep_cache

from repro.analysis import save_record, series_table, sparkline
from repro.core import normalize, stabilization_point
from repro.workloads import workload_keys


def analyze(sweep):
    durations = sweep.poll_durations
    return {
        "workload": sweep.workload,
        "offered": sweep.offered,
        "achieved": sweep.achieved,
        "poll_ms": [d / 1e6 for d in durations],
        "norm_poll": normalize(durations),
        "qos_fail_rps": sweep.qos_failure_rps(),
        "qos_flags": [l.qos_violated for l in sweep.levels],
        "stabilizes_at": stabilization_point(sweep.offered, durations,
                                             flat_tolerance=0.04),
    }


def test_fig4_epoll_duration(benchmark, sweep_cache):
    def run():
        return [analyze(sweep_cache.full_sweep(key)) for key in workload_keys()]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_record({"figure": "fig4", "rows": rows}, "fig4_epoll_duration")

    emit("FIGURE 4 — mean event-polling duration under varying load")
    for row in rows:
        emit(f"\n[{row['workload']}]  QoS fails at={row['qos_fail_rps']}  "
             f"duration stabilizes at={row['stabilizes_at']}")
        emit("  poll duration  " + sparkline(row["norm_poll"]))
        emit(series_table(
            {
                "offered": row["offered"],
                "achieved": row["achieved"],
                "poll ms": row["poll_ms"],
                "norm": row["norm_poll"],
            },
            qos_marker=row["qos_flags"],
        ))

    for row in rows:
        key = row["workload"]
        poll = row["poll_ms"]
        # Strictly lower near saturation than at low load (the decline).
        assert poll[0] > 3 * min(poll), key
        # Pre-saturation decline is essentially monotone.
        pre = [p for off, p in zip(row["offered"], poll)
               if row["qos_fail_rps"] is None or off < row["qos_fail_rps"]]
        violations = sum(1 for a, b in zip(pre, pre[1:]) if b > a * 1.15)
        assert violations <= 1, f"{key}: pre-saturation idleness not declining"

    # Web Search's signature: idleness *rises* again past saturation.
    websearch = next(r for r in rows if r["workload"] == "web-search")
    fail = websearch["qos_fail_rps"]
    post = [p for off, p in zip(websearch["offered"], websearch["poll_ms"])
            if off >= fail]
    assert len(post) >= 2
    # The rise needs full-length levels to develop; REPRO_FAST runs only
    # sanity-check that idleness stops declining.
    rise_factor = 1.3 if bench_scale() >= 1.0 else 1.0
    assert post[-1] >= min(post) * rise_factor, \
        "web-search post-saturation idleness rise missing"
    # ...and its achieved RPS declines past the QoS point.
    post_achieved = [a for off, a in zip(websearch["offered"], websearch["achieved"])
                     if off >= fail]
    assert post_achieved[-1] < max(websearch["achieved"])
