"""Scripted fault injection for degraded-observability experiments.

The paper's methodology assumes a healthy collection path and a healthy
server; this package breaks both on purpose, so the robustness experiments
can measure how far the in-kernel metrics (Eq. 1 / Eq. 2, poll slack) stay
usable when reality degrades:

* :mod:`~repro.faults.collection` — a slow or pausing userspace consumer
  that drives perf-buffer streaming into its drop path (stream mode), the
  operational hazard the paper's in-kernel computation exists to avoid;
* :mod:`~repro.faults.orchestrator` — server-side faults on a schedule:
  whole-machine compute stalls, worker crash (with optional restart), and
  connection resets that discard in-flight data;
* :mod:`~repro.faults.runner` — glue running one experiment cell with
  faults armed, bypassing the result cache (faulted cells are not pure
  functions of their spec);
* :mod:`~repro.faults.blindspots` — the adversarial scenario pack for the
  cross-layer correlator: pathologies engineered to be visible to exactly
  one side of the kernel/app divide, each annotated with the discrepancy
  taxonomy label it should produce.
"""

from .blindspots import BlindSpotScenario, SCENARIOS, run_blind_spot_cell, scenario
from .collection import ConsumerSchedule, SlowConsumer
from .orchestrator import (
    ChannelStall,
    ConnectionReset,
    FaultOrchestrator,
    FaultReport,
    SendFragmentation,
    WorkerCrash,
    WorkerStall,
)
from .runner import run_faulted_cell

__all__ = [
    "BlindSpotScenario",
    "ChannelStall",
    "ConnectionReset",
    "ConsumerSchedule",
    "FaultOrchestrator",
    "FaultReport",
    "SCENARIOS",
    "SendFragmentation",
    "SlowConsumer",
    "WorkerCrash",
    "WorkerStall",
    "run_blind_spot_cell",
    "run_faulted_cell",
    "scenario",
]
